"""Microbenchmark experiments (§4.4 and §5 of the paper).

Each module implements one evaluation experiment end to end on the
simulated cluster and returns plain numbers; the benchmark harness in
:mod:`repro.bench` sweeps them into the paper's tables and figures.

===================  =======================================
module               reproduces
===================  =======================================
``pingpong``         Fig. 3a–c (RDMA / P4 / sPIN store / stream)
``accumulate``       Fig. 3d (remote accumulate, int + dis)
``littles_law``      Fig. 4 + §4.4.2 analytics
``broadcast``        Fig. 5a (binomial broadcast, 3 protocols)
``datatype_recv``    Fig. 7a (strided vector receive)
``raid_update``      Fig. 7c (RAID-5 update, via repro.storage)
===================  =======================================
"""

from repro.experiments.pingpong import pingpong_half_rtt_ns, PINGPONG_MODES
from repro.experiments.accumulate import accumulate_completion_ns
from repro.experiments.littles_law import (
    arrival_rate_mmps,
    hpus_needed,
    max_handler_time_ns,
)
from repro.experiments.broadcast import broadcast_latency_ns, BCAST_MODES
from repro.experiments.datatype_recv import datatype_recv_completion_ns
from repro.experiments.raid_update import raid_update_completion_ns

__all__ = [
    "BCAST_MODES",
    "PINGPONG_MODES",
    "accumulate_completion_ns",
    "arrival_rate_mmps",
    "broadcast_latency_ns",
    "datatype_recv_completion_ns",
    "hpus_needed",
    "max_handler_time_ns",
    "pingpong_half_rtt_ns",
    "raid_update_completion_ns",
]
