"""Strided datatype receive (§5.2, Fig. 7a).

A 4 MiB message is unpacked at the destination into a vector layout
⟨start, stride, blocksize, count⟩ with stride = 2 × blocksize:

* **rdma** — the message lands in a contiguous bounce buffer; the CPU then
  performs the strided unpack copy (the marshalling overhead Schneider et
  al. identified: up to 80 % of communication time).  The per-byte unpack
  cost and the per-block loop overhead keep RDMA around 9–12 GiB/s
  regardless of block size.
* **spin** — the C.3.4 payload handler computes every covered block's
  offset and DMAs it straight to its final location: for blocks ≥ a few
  hundred bytes the deposit runs at line rate (~46 GiB/s paper, Fig. 7a);
  tiny blocks are dominated by per-descriptor DMA overhead.
"""

from __future__ import annotations

from repro.core.api import PtlHPUAllocMem, spin_me
from repro.experiments.common import config_by_name, pair_session
from repro.machine.config import MachineConfig
from repro.portals.matching import MatchEntry
from repro.handlers_library import make_ddtvec_handlers

__all__ = ["datatype_recv_completion_ns"]

DDT_TAG = 21
#: CPU-side strided unpack: ~0.28 instructions/byte on the IPC-2 host —
#: together with the 2 memory passes this lands the RDMA curve at the
#: paper's ≈9–12 GiB/s.
UNPACK_CYCLES_PER_BYTE = 0.28
#: Loop bookkeeping per block on the host CPU.
UNPACK_CYCLES_PER_BLOCK = 2


def datatype_recv_completion_ns(
    message_bytes: int,
    blocksize: int,
    mode: str,
    config: MachineConfig | str,
    stride: int | None = None,
) -> float:
    """Completion time (ns) of receiving+unpacking a strided message."""
    if isinstance(config, str):
        config = config_by_name(config)
    if mode not in ("rdma", "spin"):
        raise ValueError(f"unknown mode {mode!r}")
    stride = 2 * blocksize if stride is None else stride
    sess = pair_session(config, with_memory=False)
    env = sess.env
    origin, target = sess[0], sess[1]
    done = env.event()
    nblocks = -(-message_bytes // blocksize)

    if mode == "rdma":
        eq = target.new_eq()
        sess.install(1, MatchEntry(match_bits=DDT_TAG, length=message_bytes,
                                   event_queue=eq))

        def unpacker():
            yield from target.wait_event(eq)
            yield from target.cpu.compute_cycles(
                nblocks * UNPACK_CYCLES_PER_BLOCK
                + message_bytes * UNPACK_CYCLES_PER_BYTE,
                label="unpack-loop",
            )
            yield from target.cpu.touch(message_bytes, passes=2, label="unpack-copy")
            done.succeed(env.now)

        sess.process(unpacker())
    else:
        _, ph, _ = make_ddtvec_handlers(blocksize=blocksize, stride=stride)
        eq = target.new_eq()
        sess.install(1, spin_me(
            match_bits=DDT_TAG, length=message_bytes,
            payload_handler=ph, event_queue=eq,
            hpu_memory=PtlHPUAllocMem(target, 256),
        ))
        eq.on_next(lambda ev: done.succeed(env.now))

    def sender():
        start = env.now
        yield from origin.host_put(1, message_bytes, match_bits=DDT_TAG)
        finish = yield done
        return finish - start

    proc = sess.process(sender())
    elapsed_ps = sess.run(until=proc)
    sess.drain()
    return elapsed_ps / 1000.0


def effective_bandwidth_gib(message_bytes: int, completion_ns: float) -> float:
    """GiB/s figure-of-merit used by Fig. 7a's annotations."""
    return message_bytes / (completion_ns * 1e-9) / (1 << 30)


from repro.campaign.registry import Param, scenario as campaign_scenario


@campaign_scenario(
    "datatype_recv",
    params=[
        Param("message", int, default=4 << 20, help="message size in bytes"),
        Param("blocksize", int, default=4096, help="vector block size"),
        Param("mode", str, default="spin", choices=("rdma", "spin")),
        Param("config", str, default="int", choices=("int", "dis")),
    ],
    description="Fig 7a strided datatype receive completion/bandwidth",
    tiny={"message": 1 << 16, "blocksize": 1024},
    sweep={"blocksize": (256, 1024, 4096, 32_768, 262_144),
           "mode": ("rdma", "spin")},
    tags=("figure", "datatypes"),
)
def _datatype_scenario(message: int, blocksize: int, mode: str, config: str) -> dict:
    completion = datatype_recv_completion_ns(message, blocksize, mode, config)
    return {"completion_ns": completion,
            "gib_s": effective_bandwidth_gib(message, completion)}
