"""Shared experiment scaffolding."""

from __future__ import annotations

from typing import Optional

from repro.core.nic import SpinNIC
from repro.machine.cluster import Cluster
from repro.machine.config import (
    CROSS_POD_LATENCY_PS,
    MachineConfig,
    config_by_name,
)
from repro.network.topology import UniformLatency

__all__ = ["config_by_name", "pair_cluster", "CROSS_POD_LATENCY_PS"]


def pair_cluster(
    config: MachineConfig,
    nprocs: int = 2,
    trace: bool = False,
    with_memory: bool = True,
    latency_ps: Optional[int] = None,
) -> Cluster:
    """A small cluster whose endpoint pairs sit cross-pod (worst case L)."""
    topo = UniformLatency(
        latency=CROSS_POD_LATENCY_PS if latency_ps is None else latency_ps
    )
    return Cluster(
        nprocs,
        config=config,
        nic_factory=SpinNIC,
        topology=topo,
        trace=trace,
        with_memory=with_memory,
    )
