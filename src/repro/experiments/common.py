"""Shared experiment scaffolding (thin wrappers over :mod:`repro.sim`)."""

from __future__ import annotations

from typing import Optional

from repro.machine.cluster import Cluster
from repro.machine.config import (
    CROSS_POD_LATENCY_PS,
    MachineConfig,
    config_by_name,
)
from repro.sim.session import ClusterSpec, Session

__all__ = ["config_by_name", "pair_cluster", "pair_session",
           "CROSS_POD_LATENCY_PS"]


def pair_session(
    config: MachineConfig | str,
    nprocs: int = 2,
    trace: bool = False,
    with_memory: bool = True,
    latency_ps: Optional[int] = None,
) -> Session:
    """A session whose endpoint pairs sit cross-pod (worst case L).

    Routed through the session reuse pool: memory-less, trace-less specs
    (the microbenchmark shape) are rewound and reused across calls instead
    of rebuilt.  Callers that want to opt in should ``sess.release()``
    when done; everything else just works — an unpoolable spec builds
    fresh as before.
    """
    return Session.checkout(ClusterSpec(
        nodes=nprocs,
        config=config,
        nic="spin",
        topology="pair",
        latency_ps=latency_ps,
        trace=trace,
        with_memory=with_memory,
    ))


def pair_cluster(
    config: MachineConfig,
    nprocs: int = 2,
    trace: bool = False,
    with_memory: bool = True,
    latency_ps: Optional[int] = None,
) -> Cluster:
    """Back-compat wrapper: the bare cluster of :func:`pair_session`."""
    return pair_session(config, nprocs=nprocs, trace=trace,
                        with_memory=with_memory, latency_ps=latency_ps).cluster
