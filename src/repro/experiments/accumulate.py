"""Remote accumulate (§4.4.2, Fig. 3d).

An array of complex numbers is sent to the destination and multiplied into
an equally-sized destination array:

* **rdma** (≡ Portals 4 here) — the NIC deposits the operand into a
  temporary buffer; the destination CPU polls, then reads both arrays,
  multiplies, and writes the result back: 2 N-sized reads plus 2 N-sized
  writes of host memory traffic.
* **spin** — each payload handler DMA-fetches the destination slice,
  multiplies on the HPU, and DMA-writes it back: N read + N written, and
  the per-packet DMA round trips pipeline across HPUs.

Completion time = simulated time until the result is durable in destination
memory (measured from the initiator's post).
"""

from __future__ import annotations

from repro.campaign.registry import Param, scenario as campaign_scenario
from repro.core.api import PtlHPUAllocMem, spin_me
from repro.experiments.common import config_by_name, pair_session
from repro.handlers_library import ACCUMULATE_CYCLES_PER_BYTE, make_accumulate_handlers
from repro.machine.config import MachineConfig
from repro.portals.matching import MatchEntry

__all__ = ["accumulate_completion_ns"]

ACC_TAG = 7


def accumulate_completion_ns(size: int, mode: str, config: MachineConfig | str,
                             timeline_sink: list | None = None) -> float:
    """Completion time (ns) of one remote accumulate of ``size`` bytes.

    ``timeline_sink``, when given a list, receives the cluster's
    :class:`~repro.des.trace.Timeline` (trace recording enabled).
    """
    if isinstance(config, str):
        config = config_by_name(config)
    if mode not in ("rdma", "spin"):
        raise ValueError(f"unknown mode {mode!r}")
    sess = pair_session(config, with_memory=False,
                        trace=timeline_sink is not None)
    if timeline_sink is not None:
        timeline_sink.append(sess.timeline)
    env = sess.env
    origin, target = sess[0], sess[1]
    done = env.event()

    if mode == "rdma":
        eq = target.new_eq()
        sess.install(1, MatchEntry(match_bits=ACC_TAG, length=size, event_queue=eq))

        def consumer():
            yield from target.wait_event(eq)
            # Read operand + destination, write destination: the paper's
            # "two N-sized read and two N-sized write transactions" minus
            # the NIC's deposit (already charged on arrival) = 3 passes.
            yield from target.cpu.touch(size, passes=3, label="acc-mem")
            yield from target.cpu.compute_cycles(
                size * ACCUMULATE_CYCLES_PER_BYTE, label="acc-fma"
            )
            done.succeed(env.now)

        sess.process(consumer())
    else:
        hh, ph, ch = make_accumulate_handlers(pong=False)
        eq = target.new_eq()
        sess.install(1, spin_me(
            match_bits=ACC_TAG, length=size,
            header_handler=hh, payload_handler=ph,
            event_queue=eq,
            hpu_memory=PtlHPUAllocMem(target, 4096),
        ))
        eq.on_next(lambda ev: done.succeed(env.now))

    def producer():
        start = env.now
        yield from origin.host_put(1, size, match_bits=ACC_TAG)
        finish = yield done
        return finish - start

    proc = sess.process(producer())
    elapsed_ps = sess.run(until=proc)
    sess.drain()
    return elapsed_ps / 1000.0


@campaign_scenario(
    "accumulate",
    params=[
        Param("size", int, default=4096, help="operand size in bytes"),
        Param("mode", str, default="spin", choices=("rdma", "spin")),
        Param("config", str, default="int", choices=("int", "dis")),
    ],
    description="Fig 3d remote accumulate completion time",
    tiny={"size": 64},
    sweep={"size": (8, 512, 4096, 32_768, 262_144),
           "mode": ("rdma", "spin"), "config": ("int", "dis")},
    tags=("figure",),
)
def _accumulate_scenario(size: int, mode: str, config: str) -> dict:
    return {"completion_ns": accumulate_completion_ns(size, mode, config)}
