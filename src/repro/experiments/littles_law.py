"""HPU-count analytics (§4.4.2, Fig. 4).

Little's law sizes the HPU pool: with handler time T and packet arrival
rate Δ, T·Δ handlers are in flight on average, so the NIC needs ⌈T·Δ⌉ HPUs
for line rate.  Δ = min{1/g, 1/(G·s)}: packets smaller than g/G = 335 B are
message-rate (g) bound, larger ones bandwidth (G) bound.

Checked paper numbers (tests/bench assert them):

* Δ ranges from 12.5 Mpps (4 KiB packets) to ~150 Mpps (g-bound);
* with 8 HPUs any packet size sustains line rate if T ≤ T̂s = 8·g ≈ 53 ns;
* for s ≥ 335 B the bound is T̂l(s) = 8·G·s — 650 ns at 4 KiB.
"""

from __future__ import annotations

import math

from repro.network.loggp import LogGPParams

__all__ = ["arrival_rate_mmps", "hpus_needed", "max_handler_time_ns"]


def arrival_rate_mmps(packet_bytes: int, params: LogGPParams | None = None) -> float:
    """Expected packet arrival rate Δ in million packets per second."""
    params = params or LogGPParams()
    return params.arrival_rate_pps(packet_bytes) * 1e6


def hpus_needed(
    handler_time_ns: float, packet_bytes: int, params: LogGPParams | None = None
) -> int:
    """HPUs required to sustain line rate (Fig. 4's y-axis)."""
    params = params or LogGPParams()
    if handler_time_ns < 0:
        raise ValueError("negative handler time")
    delta_per_ps = params.arrival_rate_pps(packet_bytes)
    return max(1, math.ceil(handler_time_ns * 1000 * delta_per_ps))


def max_handler_time_ns(
    hpus: int, packet_bytes: int, params: LogGPParams | None = None
) -> float:
    """Longest handler that still sustains line rate with ``hpus`` units.

    T̂ = hpus / Δ(s): 53 ns for 8 HPUs in the g-bound regime; 8·G·s beyond
    the 335 B crossover (650 ns for full 4 KiB packets).
    """
    params = params or LogGPParams()
    if hpus < 1:
        raise ValueError("need at least one HPU")
    return hpus / params.arrival_rate_pps(packet_bytes) / 1000.0


from repro.campaign.registry import Param, scenario as campaign_scenario


@campaign_scenario(
    "linerate",
    params=[
        Param("handler_ns", float, default=200.0, help="handler time T"),
        Param("packet_bytes", int, default=335, help="packet size s"),
    ],
    description="Fig 4 Little's-law HPU sizing for line rate",
    tiny={},
    sweep={"packet_bytes": (16, 64, 128, 335, 512, 1024, 2048, 4096),
           "handler_ns": (100.0, 200.0, 500.0, 1000.0)},
    tags=("figure", "analytics"),
)
def _linerate_scenario(handler_ns: float, packet_bytes: int) -> dict:
    return {
        "hpus": hpus_needed(handler_ns, packet_bytes),
        "arrival_mmps": arrival_rate_mmps(packet_bytes),
        "max_handler_ns": max_handler_time_ns(8, packet_bytes),
    }
