"""RAID-5 update microbenchmark (Fig. 7c).

Contiguous client data of growing size is striped across four data nodes;
completion is the arrival of all ACKs after the parity node was updated.
"""

from __future__ import annotations

from repro.machine.config import MachineConfig
from repro.storage.raid import RaidCluster

__all__ = ["raid_update_completion_ns"]


def raid_update_completion_ns(
    size: int, mode: str, config: MachineConfig | str, ndata: int = 4
) -> float:
    """Completion time (ns) of one striped RAID-5 update of ``size`` bytes."""
    raid = RaidCluster(mode, config, ndata=ndata,
                       region_bytes=max(size, 4096), with_memory=False)
    env = raid.env

    def client():
        start = env.now
        finish = yield from raid.client_write(size)
        return finish - start

    proc = env.process(client())
    elapsed_ps = env.run(until=proc)
    return elapsed_ps / 1000.0


from repro.campaign.registry import Param, scenario as campaign_scenario


@campaign_scenario(
    "raid_update",
    params=[
        Param("size", int, default=4096, help="client write size in bytes"),
        Param("mode", str, default="spin", choices=("rdma", "spin")),
        Param("config", str, default="int", choices=("int", "dis")),
        Param("ndata", int, default=4, help="data servers in the stripe"),
    ],
    description="Fig 7c RAID-5 update completion time",
    tiny={"size": 64},
    sweep={"size": (64, 4096, 32_768, 262_144), "mode": ("rdma", "spin"),
           "config": ("int", "dis")},
    tags=("figure", "storage"),
)
def _raid_scenario(size: int, mode: str, config: str, ndata: int) -> dict:
    return {"completion_ns": raid_update_completion_ns(size, mode, config,
                                                       ndata=ndata)}
