"""RAID-5 update microbenchmark (Fig. 7c).

Contiguous client data of growing size is striped across four data nodes;
completion is the arrival of all ACKs after the parity node was updated.
"""

from __future__ import annotations

from repro.machine.config import MachineConfig
from repro.storage.raid import RaidCluster

__all__ = ["raid_update_completion_ns"]


def raid_update_completion_ns(
    size: int, mode: str, config: MachineConfig | str, ndata: int = 4
) -> float:
    """Completion time (ns) of one striped RAID-5 update of ``size`` bytes."""
    raid = RaidCluster(mode, config, ndata=ndata,
                       region_bytes=max(size, 4096), with_memory=False)
    env = raid.env

    def client():
        start = env.now
        finish = yield from raid.client_write(size)
        return finish - start

    proc = env.process(client())
    elapsed_ps = env.run(until=proc)
    return elapsed_ps / 1000.0
