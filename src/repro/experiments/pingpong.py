"""Ping-pong latency (§4.4.1, Fig. 3a–c).

Four protocol variants answer a ping of ``size`` bytes:

* **rdma** — the destination CPU polls for the completion of the incoming
  ping, matches it in software, and posts the pong (data fetched from host
  memory).  System noise on the CPU delays the pong.
* **p4** — the pong is a pre-set-up Portals 4 triggered put: no CPU, but
  the ping is still deposited to host memory and the pong data is fetched
  from host memory by DMA.
* **spin_store** — sPIN store-and-forward: single-packet pings are buffered
  in HPU memory and answered from the device by the completion handler;
  larger pings take the default deposit path and are answered with a put
  from host.
* **spin_stream** — sPIN streaming: every payload packet is answered
  immediately with a put from device; data never commits to host memory.

The reported number is the half round-trip time observed by the origin's
CPU (event poll included), as in Fig. 3b/3c.
"""

from __future__ import annotations

from repro.campaign.registry import Param, scenario as campaign_scenario
from repro.core.api import PtlHPUAllocMem, spin_me
from repro.experiments.common import config_by_name, pair_session
from repro.handlers_library import PONG_TAG, make_pingpong_handlers
from repro.machine.config import MachineConfig
from repro.network.packets import Message
from repro.portals.matching import MatchEntry

__all__ = ["PINGPONG_MODES", "pingpong_half_rtt_ns"]

PINGPONG_MODES = ("rdma", "p4", "spin_store", "spin_stream")
PING_TAG = 1


def _discard(_event) -> None:
    """Continuation for chained puts whose injection-done event is unused."""


def pingpong_half_rtt_ns(size: int, mode: str, config: MachineConfig | str,
                         noise=None, timeline_sink: list | None = None) -> float:
    """Half round-trip time in nanoseconds for one ping-pong.

    ``timeline_sink``, when given a list, receives the cluster's
    :class:`~repro.des.trace.Timeline` (trace recording enabled) — used by
    the golden-trace determinism tests.
    """
    if isinstance(config, str):
        config = config_by_name(config)
    if mode not in PINGPONG_MODES:
        raise ValueError(f"unknown mode {mode!r}")
    sess = pair_session(config, with_memory=False,
                        trace=timeline_sink is not None)
    if timeline_sink is not None:
        timeline_sink.append(sess.timeline)
    if noise is not None:
        sess[1].cpu.noise = noise
    env = sess.env
    origin, target = sess[0], sess[1]

    pong_eq = origin.new_eq()
    sess.install(0, MatchEntry(match_bits=PONG_TAG, length=size,
                               event_queue=pong_eq))

    if mode == "rdma":
        ping_eq = target.new_eq()
        sess.install(1, MatchEntry(match_bits=PING_TAG, length=size,
                                   event_queue=ping_eq))
        cpu = target.cpu

        # Chain form of the old responder process (poll the completion,
        # match in software, post the pong): identical charges on the same
        # core at the same timestamps, without the process scaffolding.
        def respond(_event):
            cpu.run_fn(cpu.params.poll_cost_ps, "poll",
                       lambda: cpu.run_fn(cpu.params.match_cost_ps, "match",
                                          lambda: target.host_put_fn(
                                              0, size, _discard,
                                              match_bits=PONG_TAG)))

        ping_eq.on_next(respond)
    elif mode == "p4":
        ct = target.new_counter()
        sess.install(1, MatchEntry(match_bits=PING_TAG, length=size, counter=ct))
        target.ni.triggered.arm(
            ct, 1,
            lambda: target.nic.send(
                Message(source=1, target=0, length=size, kind="put",
                        match_bits=PONG_TAG),
                from_host=True,
            ),
            "triggered pong",
        )
    else:
        hh, ph, ch = make_pingpong_handlers(streaming=(mode == "spin_stream"))
        sess.install(1, spin_me(
            match_bits=PING_TAG, length=size,
            header_handler=hh, payload_handler=ph, completion_handler=ch,
            hpu_memory=PtlHPUAllocMem(target, 8192),
        ))

    result = env.event()
    state = {"received": 0, "start": env.now}

    def pong_watch(ev):
        state["received"] += ev.length
        if state["received"] >= size:
            # Origin CPU observes the pong completion (poll cost, symmetric
            # with the responder side), then the measurement completes.
            origin.cpu.run_fn(
                origin.cpu.params.poll_cost_ps, "poll",
                lambda: result.succeed(env.now - state["start"]))
        else:
            pong_eq.on_next(pong_watch)

    pong_eq.on_next(pong_watch)
    origin.host_put_fn(1, size, _discard, match_bits=PING_TAG)
    rtt_ps = sess.run(until=result)
    sess.drain()  # drain remaining events
    sess.release()
    return rtt_ps / 2 / 1000.0


@campaign_scenario(
    "pingpong",
    params=[
        Param("size", int, default=4096, help="message size in bytes"),
        Param("mode", str, default="spin_stream", choices=PINGPONG_MODES),
        Param("config", str, default="int", choices=("int", "dis")),
    ],
    description="Fig 3a-c ping-pong half-RTT across protocol variants",
    tiny={"size": 64, "mode": "spin_store"},
    # 16 points; multi-MiB messages so each job carries real simulation
    # work and a 4-worker sweep beats the serial run by wall-clock.
    sweep={"size": (4 << 20, 8 << 20, 16 << 20, 32 << 20),
           "mode": PINGPONG_MODES},
    tags=("figure", "latency"),
)
def _pingpong_scenario(size: int, mode: str, config: str) -> dict:
    return {"half_rtt_ns": pingpong_half_rtt_ns(size, mode, config)}
