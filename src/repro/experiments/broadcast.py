"""Binomial-tree broadcast (§4.4.3, Fig. 5a).

Three implementations of the same binomial tree:

* **rdma** — every internal rank's CPU polls for the message, matches it,
  and posts the forwards to its children (o per send, noise-sensitive);
* **p4** — Portals 4 triggered operations: each internal rank pre-arms one
  triggered put per child (logarithmic NIC state, the scalability limit
  §4.4.3 notes), firing when the inbound counter reaches 1; data is
  fetched from host memory;
* **spin** — the streaming sPIN handler of C.3.3: every payload packet is
  forwarded from the device to all children as soon as it arrives
  (wormhole-style pipelining), with a non-blocking local deposit.

Latency = time until the *last* rank has the full message (its completion
event, i.e. data durable in host memory).
"""

from __future__ import annotations

from repro.core.api import PtlHPUAllocMem, spin_me
from repro.experiments.common import config_by_name
from repro.handlers_library import binomial_children, make_bcast_handlers
from repro.machine.config import MachineConfig
from repro.network.packets import Message
from repro.portals.matching import MatchEntry
from repro.sim.session import Session

__all__ = ["BCAST_MODES", "broadcast_latency_ns"]

BCAST_MODES = ("rdma", "p4", "spin")
BCAST_TAG = 11


def broadcast_latency_ns(
    nprocs: int, size: int, mode: str, config: MachineConfig | str, noise=None
) -> float:
    """Broadcast completion latency (ns) from root post to last delivery."""
    if isinstance(config, str):
        config = config_by_name(config)
    if mode not in BCAST_MODES:
        raise ValueError(f"unknown mode {mode!r}")
    sess = Session.fattree(nprocs, config=config, noise=noise)
    env = sess.env
    done = env.event()
    remaining = {"count": nprocs - 1}

    def rank_done(_ev=None):
        remaining["count"] -= 1
        if remaining["count"] == 0 and not done.triggered:
            done.succeed(env.now)

    for rank in range(1, nprocs):
        machine = sess[rank]
        eq = machine.new_eq()
        children = binomial_children(rank, nprocs)
        if mode == "rdma":
            sess.install(rank, MatchEntry(match_bits=BCAST_TAG, length=size,
                                          event_queue=eq))

            def forwarder(machine=machine, eq=eq, children=children):
                yield from machine.wait_event(eq)
                yield from machine.cpu.match()
                for child in children:
                    yield from machine.host_put(child, size, match_bits=BCAST_TAG)
                rank_done()

            sess.process(forwarder())
        elif mode == "p4":
            ct = machine.new_counter()
            sess.install(rank, MatchEntry(match_bits=BCAST_TAG, length=size,
                                          counter=ct, event_queue=eq))
            for child in children:
                machine.ni.triggered.arm(
                    ct, 1,
                    lambda machine=machine, child=child: machine.nic.send(
                        Message(source=machine.rank, target=child, length=size,
                                kind="put", match_bits=BCAST_TAG),
                        from_host=True,
                    ),
                    f"fwd->{child}",
                )
            eq.on_next(lambda ev: rank_done())
        else:  # spin
            hh, ph, ch = make_bcast_handlers(rank, nprocs, streaming=True,
                                             match_bits=BCAST_TAG)
            sess.install(rank, spin_me(
                match_bits=BCAST_TAG, length=size,
                header_handler=hh, payload_handler=ph, completion_handler=ch,
                event_queue=eq,
                hpu_memory=PtlHPUAllocMem(machine, 256),
            ))
            eq.on_next(lambda ev: rank_done())

    def root():
        start = env.now
        for child in binomial_children(0, nprocs):
            yield from sess[0].host_put(child, size, match_bits=BCAST_TAG)
        finish = yield done
        return finish - start

    proc = sess.process(root())
    elapsed_ps = sess.run(until=proc)
    sess.drain()
    return elapsed_ps / 1000.0


from repro.campaign.registry import Param, scenario as campaign_scenario


@campaign_scenario(
    "broadcast",
    params=[
        Param("procs", int, default=16, help="process count"),
        Param("size", int, default=8, help="message size in bytes"),
        Param("mode", str, default="spin", choices=BCAST_MODES),
        Param("config", str, default="dis", choices=("int", "dis")),
    ],
    description="Fig 5a binomial broadcast latency",
    tiny={"procs": 4, "size": 8},
    sweep={"procs": (4, 16, 64, 256), "size": (8, 1 << 16),
           "mode": BCAST_MODES},
    tags=("figure", "collective"),
)
def _broadcast_scenario(procs: int, size: int, mode: str, config: str) -> dict:
    return {"latency_ns": broadcast_latency_ns(procs, size, mode, config)}
