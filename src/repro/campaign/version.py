"""Code-version fingerprint for cache keys.

Cached campaign results are only valid for the code that produced them, so
every cache record carries a digest of the ``repro`` package sources.  The
digest covers file *contents* (not mtimes) and is computed once per
process.  ``REPRO_CODE_VERSION`` overrides it, which lets tests and
long-lived campaign archives pin an explicit version string.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

__all__ = ["code_version"]

_CACHED: str | None = None


def code_version() -> str:
    """Hex digest identifying the current ``repro`` source tree."""
    global _CACHED
    override = os.environ.get("REPRO_CODE_VERSION")
    if override:
        return override
    if _CACHED is None:
        root = Path(__file__).resolve().parent.parent  # src/repro
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _CACHED = h.hexdigest()[:16]
    return _CACHED
