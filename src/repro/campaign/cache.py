"""JSON-lines result cache for campaign runs.

Each record is one line of JSON::

    {"key": "...", "scenario": "...", "params": {...}, "seed": 123,
     "code_version": "...", "result": {...}, "elapsed_s": 0.42}

``key`` binds ``(scenario, params, code_version)``; a sweep consults the
cache before executing and skips any job whose key is present, which is
what makes interrupted campaigns resumable and repeated campaigns free.
Records are append-only (last record for a key wins), so concurrent
history survives and the file doubles as a run log.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

__all__ = ["ResultCache"]

#: Fields of a record that identify the computation (everything except
#: measurement noise like wall-clock timings).
DETERMINISTIC_FIELDS = ("key", "scenario", "params", "seed", "code_version", "result")


class ResultCache:
    """Append-only JSONL store keyed by the planner's cache key."""

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def load(self) -> dict[str, dict]:
        """All records by key (last one wins); {} if the file is absent."""
        records: dict[str, dict] = {}
        if not self.path.exists():
            return records
        with self.path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    continue  # tolerate a torn final line from a killed run
                if isinstance(rec, dict) and "key" in rec:
                    records[rec["key"]] = rec
        return records

    def append(self, record: dict) -> None:
        """Durably append one result record."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True)
        with self.path.open("a") as fh:
            fh.write(line + "\n")

    def append_many(self, records: Iterable[dict]) -> None:
        for rec in records:
            self.append(rec)

    @staticmethod
    def deterministic_view(record: dict) -> dict:
        """The record minus timing noise — what equivalence tests compare."""
        return {k: record[k] for k in DETERMINISTIC_FIELDS if k in record}
