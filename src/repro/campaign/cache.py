"""JSON-lines result cache for campaign runs, with a cross-run index.

Each record is one line of JSON::

    {"key": "...", "scenario": "...", "params": {...}, "seed": 123,
     "code_version": "...", "result": {...}, "elapsed_s": 0.42}

``key`` binds ``(scenario, params, code_version)``; a sweep consults the
cache before executing and skips any job whose key is present, which is
what makes interrupted campaigns resumable and repeated campaigns free.
Records are append-only (last record for a key wins), so concurrent
history survives and the file doubles as a run log.

The index
---------
A multi-sweep history accumulates thousands of records, most of them
superseded duplicates or stale code versions; re-parsing every one on
every ``load()`` is what the **cross-run index** removes.  ``index.jsonl``
lives next to the cache files and holds one compact line per appended
record::

    {"file": "results.jsonl", "key": "...", "offset": 1234,
     "length": 210, "code_version": "..."}

Invariants:

* **append-only** — every :meth:`ResultCache.append` writes the data line
  and then its index line; nothing is ever edited in place;
* **pure accelerator** — the index carries no information of its own:
  byte ranges *not* covered by index entries (legacy caches, torn lines
  from killed runs, raw appends) are scanned tolerantly, and a corrupt or
  stale index makes ``load()`` fall back to a full scan and rebuild it;
* **rebuildable on demand** — :meth:`ResultCache.rebuild_index` (or
  ``python -m repro.campaign index --rebuild``) re-derives a file's
  entries from its contents.

With a healthy index, ``load()`` JSON-parses only the *last* record per
key and skips every superseded line — the dominant cost for big result
payloads.

Sharded campaigns write per-shard files (``results.shard-i-of-K.jsonl``);
:func:`merge_caches` folds them (plus any legacy ``results.jsonl``) into
one canonical cache, treating two records with the same key but differing
:meth:`~ResultCache.deterministic_view` as a hard error.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

__all__ = ["CacheConflictError", "CacheIndex", "ResultCache", "merge_caches"]

#: Fields of a record that identify the computation (everything except
#: measurement noise like wall-clock timings).
DETERMINISTIC_FIELDS = ("key", "scenario", "params", "seed", "code_version", "result")

#: Default index file name, shared by every cache file in one directory.
INDEX_NAME = "index.jsonl"


class CacheConflictError(RuntimeError):
    """Two caches disagree on the deterministic view of one key."""


def _parse_line(line: Union[str, bytes]) -> Optional[dict]:
    """One tolerant JSONL parse: a dict or None (torn/blank lines)."""
    line = line.strip()
    if not line:
        return None
    try:
        rec = json.loads(line)
    except json.JSONDecodeError:
        return None
    return rec if isinstance(rec, dict) else None


class CacheIndex:
    """Append-only record locator shared by the cache files of one dir.

    One index serves every cache file in a directory, so concurrent shard
    processes (which de-contend the *result* files, not the index) write
    here simultaneously.  Appends are single ``write`` calls on an
    append-mode handle under a shared ``flock``; :meth:`rewrite` holds an
    exclusive one and rewrites the file *in place* (same inode, no
    tmp-and-replace), so a rebuild can never swap the file out from under
    a blocked appender and lose its entries.  Unlocked readers may catch
    a mid-rewrite state; that only costs them a full-scan fallback.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    @contextmanager
    def _locked(self, fh, exclusive: bool):
        if fcntl is None:  # pragma: no cover - non-POSIX
            yield
            return
        fcntl.flock(fh, fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
        try:
            yield
        finally:
            fcntl.flock(fh, fcntl.LOCK_UN)

    def append(self, file: str, key: str, offset: int, length: int,
               code_version: str) -> None:
        """Register one just-appended record of ``file``."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(
            {"file": file, "key": key, "offset": offset, "length": length,
             "code_version": code_version},
            sort_keys=True,
        )
        with self.path.open("a") as fh:
            with self._locked(fh, exclusive=False):
                fh.write(line + "\n")

    def entries(self) -> list[dict]:
        """Every valid index entry, in append order (torn lines skipped)."""
        if not self.path.exists():
            return []
        out = []
        with self.path.open("rb") as fh:
            for line in fh:
                e = _parse_line(line)
                if e is not None and {"file", "key", "offset", "length"} <= set(e):
                    out.append(e)
        return out

    def entries_for(self, file: str) -> list[dict]:
        return [e for e in self.entries() if e["file"] == file]

    def rewrite(self, file: str, entries: Iterable[tuple[str, int, int, str]]) -> None:
        """Replace ``file``'s entries in place (other files' are kept)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a+") as fh:
            with self._locked(fh, exclusive=True):
                fh.seek(0)
                out = []
                for line in fh:
                    e = _parse_line(line)
                    if (e is not None
                            and {"file", "key", "offset", "length"} <= set(e)
                            and e.get("file") != file):
                        out.append(json.dumps(e, sort_keys=True))
                for key, offset, length, code_version in entries:
                    out.append(json.dumps(
                        {"file": file, "key": key, "offset": offset,
                         "length": length, "code_version": code_version},
                        sort_keys=True,
                    ))
                fh.seek(0)
                fh.truncate()
                fh.write("".join(line + "\n" for line in out))

    def stats(self, current_version: Optional[str] = None) -> dict:
        """Aggregate index health: entry counts and stale code versions.

        ``stale_code_versions`` counts, per version, the live (last-wins)
        records whose ``code_version`` differs from ``current_version`` —
        i.e. cache entries a sweep under the current code cannot reuse.
        """
        entries = self.entries()
        per_file: dict[str, int] = {}
        live: dict[tuple[str, str], str] = {}
        for e in entries:
            per_file[e["file"]] = per_file.get(e["file"], 0) + 1
            live[(e["file"], e["key"])] = e.get("code_version", "")
        stale: dict[str, int] = {}
        if current_version is not None:
            for version in live.values():
                if version != current_version:
                    stale[version] = stale.get(version, 0) + 1
        return {
            "entries": len(entries),
            "live_records": len(live),
            "superseded": len(entries) - len(live),
            "per_file": per_file,
            "stale_code_versions": stale,
        }


class ResultCache:
    """Append-only JSONL store keyed by the planner's cache key.

    ``index_path="auto"`` (the default) maintains ``index.jsonl`` next to
    the cache file; pass ``index_path=None`` to disable indexing (pure
    legacy behaviour).  ``last_load_stats`` describes the most recent
    :meth:`load`: how many records were resolved via the index
    (``indexed``), skipped as superseded without parsing (``skipped``),
    parsed from unindexed byte ranges (``scanned``), and whether the index
    had to be abandoned for a full scan (``full_scan``).
    """

    def __init__(self, path: Union[str, Path],
                 index_path: Union[str, Path, None] = "auto"):
        self.path = Path(path)
        if index_path == "auto":
            index_path = self.path.parent / INDEX_NAME
        self.index = CacheIndex(index_path) if index_path is not None else None
        self.last_load_stats: dict = {}

    # -- reading -----------------------------------------------------------
    def load(self) -> dict[str, dict]:
        """All records by key (last one wins); {} if the file is absent."""
        stats = {"records": 0, "indexed": 0, "skipped": 0, "scanned": 0,
                 "full_scan": False}
        self.last_load_stats = stats
        records: dict[str, dict] = {}
        if not self.path.exists():
            return records
        if self.index is not None and self._load_indexed(records, stats):
            stats["records"] = len(records)
            return records
        records.clear()
        stats.update(indexed=0, skipped=0, scanned=0, full_scan=True)
        self._load_full(records, stats)
        stats["records"] = len(records)
        return records

    def _load_indexed(self, records: dict, stats: dict) -> bool:
        """Index-accelerated load; False means 'fall back to a full scan'.

        Walks the file in offset order: index entries that lost a
        last-wins race are skipped without parsing, surviving entries are
        parsed via seek, and any byte range the index does not cover
        (legacy records, torn lines, raw appends) is scanned tolerantly —
        so a partial index is still exact, just less of a shortcut.
        """
        entries = self.index.entries_for(self.path.name)
        size = self.path.stat().st_size
        if not entries:
            return size == 0
        entries.sort(key=lambda e: e["offset"])
        last_for_key: dict[str, dict] = {}
        for e in entries:
            last_for_key[e["key"]] = e  # ascending offsets: later wins
        pos = 0
        with self.path.open("rb") as fh:
            for e in entries:
                offset, length = e["offset"], e["length"]
                if offset < pos or length <= 0 or offset + length > size:
                    return False  # overlapping/out-of-range: index corrupt
                if offset > pos:
                    self._scan_region(fh, pos, offset, records, stats)
                if last_for_key[e["key"]] is e:
                    fh.seek(offset)
                    rec = _parse_line(fh.read(length))
                    if rec is None or rec.get("key") != e["key"]:
                        return False  # entry does not match the file
                    records[rec["key"]] = rec
                    stats["indexed"] += 1
                else:
                    stats["skipped"] += 1
                pos = offset + length
            if pos < size:
                self._scan_region(fh, pos, size, records, stats)
        return True

    def _scan_region(self, fh, start: int, end: int, records: dict,
                     stats: dict) -> None:
        """Tolerantly parse an unindexed byte range of the data file."""
        fh.seek(start)
        for line in fh.read(end - start).splitlines():
            rec = _parse_line(line)
            if rec is not None and "key" in rec:
                records[rec["key"]] = rec
                stats["scanned"] += 1

    def _load_full(self, records: dict, stats: dict) -> None:
        """Full tolerant scan; rebuilds the index as a side effect."""
        entries = []
        offset = 0
        with self.path.open("rb") as fh:
            for line in fh:
                start, offset = offset, offset + len(line)
                rec = _parse_line(line)
                if rec is None or "key" not in rec:
                    continue  # tolerate a torn final line from a killed run
                records[rec["key"]] = rec
                stats["scanned"] += 1
                entries.append((rec["key"], start, len(line),
                                rec.get("code_version", "")))
        if self.index is not None:
            try:
                self.index.rewrite(self.path.name, entries)
            except OSError:  # pragma: no cover - read-only cache dir
                pass

    def rebuild_index(self) -> int:
        """Re-derive this file's index entries from its contents."""
        records: dict[str, dict] = {}
        stats = {"records": 0, "indexed": 0, "skipped": 0, "scanned": 0,
                 "full_scan": True}
        if self.path.exists():
            self._load_full(records, stats)
        elif self.index is not None:
            self.index.rewrite(self.path.name, [])
        return len(records)

    # -- writing -----------------------------------------------------------
    def append(self, record: dict) -> None:
        """Durably append one result record (and its index entry)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = (json.dumps(record, sort_keys=True) + "\n").encode()
        offset = self.path.stat().st_size if self.path.exists() else 0
        repair = b""
        if offset:
            # A killed run may have left a torn line without a newline;
            # never concatenate a fresh record onto it.
            with self.path.open("rb") as fh:
                fh.seek(offset - 1)
                if fh.read(1) != b"\n":
                    repair = b"\n"
        with self.path.open("ab") as fh:
            fh.write(repair + line)
        if self.index is not None:
            try:
                self.index.append(self.path.name, record["key"],
                                  offset + len(repair), len(line),
                                  record.get("code_version", ""))
            except OSError:  # pragma: no cover - read-only cache dir
                pass

    def append_many(self, records: Iterable[dict]) -> None:
        for rec in records:
            self.append(rec)

    @staticmethod
    def deterministic_view(record: dict) -> dict:
        """The record minus timing noise — what equivalence tests compare."""
        return {k: record[k] for k in DETERMINISTIC_FIELDS if k in record}


def merge_caches(sources: Sequence[Union[str, Path]],
                 dest: Union[str, Path],
                 index_path: Union[str, Path, None] = "auto") -> dict:
    """Fold several cache files into one canonical cache at ``dest``.

    Within a file, the ordinary last-record-wins rule applies.  Across
    files, the same key must carry the same deterministic view — shards of
    one sweep are disjoint by construction, so a disagreement means two
    hosts computed different results for one job (broken determinism or a
    mislabelled shard) and raises :class:`CacheConflictError` instead of
    silently picking a winner.

    ``dest`` may itself appear in ``sources`` (the legacy-results case);
    the canonical file is written atomically and its index rebuilt.
    Returns a report dict (``records``, ``per_file``, ``conflicts_checked``).
    """
    dest = Path(dest)
    merged: dict[str, dict] = {}
    origin: dict[str, str] = {}
    per_file: dict[str, int] = {}
    conflicts_checked = 0
    for src in sources:
        src = Path(src)
        if not src.exists():
            continue
        recs = ResultCache(src, index_path=index_path).load()
        per_file[src.name] = len(recs)
        for key, rec in recs.items():
            if key in merged:
                conflicts_checked += 1
                if (ResultCache.deterministic_view(rec)
                        != ResultCache.deterministic_view(merged[key])):
                    raise CacheConflictError(
                        f"key {key!r} differs between {origin[key]} and "
                        f"{src.name}: sharded runs of one sweep must be "
                        f"byte-equivalent (check shard specs and seeds)"
                    )
                continue
            merged[key] = rec
            origin[key] = src.name
    dest.parent.mkdir(parents=True, exist_ok=True)
    tmp = dest.parent / (dest.name + ".tmp")
    with tmp.open("w") as fh:
        for rec in merged.values():
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
    os.replace(tmp, dest)
    canonical = ResultCache(dest, index_path=index_path)
    canonical.rebuild_index()
    return {
        "dest": str(dest),
        "records": len(merged),
        "per_file": per_file,
        "conflicts_checked": conflicts_checked,
    }
