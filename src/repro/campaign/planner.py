"""Sweep planner: expand parameter grids into deterministic job lists.

A :class:`Job` is the unit of campaign work: one scenario evaluated at one
point of its parameter space, with a seed derived deterministically from
``(scenario, params, base_seed)`` so the same sweep always replays the
same randomness regardless of worker count or execution order, and a cache
key derived from ``(scenario, params, code_version)`` so results survive
process restarts but invalidate when the code changes.

Both planners guarantee a **stable total order** over their jobs —
:func:`plan_grid` expands the cartesian product with the last axis
fastest (deterministic for a given grid mapping), :func:`plan_points`
keeps the caller's point order.  That order is the contract
:mod:`repro.campaign.shard` slices: shard ``i`` of ``K`` takes jobs with
index ``i (mod K)``, so K hosts planning the same sweep partition it
identically without coordinating.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from repro.campaign.registry import Scenario, ScenarioError, get_scenario
from repro.campaign.version import code_version

__all__ = [
    "Job",
    "cache_key",
    "canonical_params",
    "job_seed",
    "plan_grid",
    "plan_points",
]


def canonical_params(params: Mapping[str, Any]) -> str:
    """Stable JSON encoding of a parameter dict (sorted keys)."""
    return json.dumps(dict(params), sort_keys=True, separators=(",", ":"))


def job_seed(scenario: str, params: Mapping[str, Any], base_seed: int = 0) -> int:
    """Deterministic 63-bit per-job seed."""
    blob = f"{scenario}|{canonical_params(params)}|{base_seed}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") >> 1


def cache_key(scenario: str, params: Mapping[str, Any],
              version: Optional[str] = None) -> str:
    """Cache key binding a parameter point to the code that runs it."""
    version = version if version is not None else code_version()
    blob = f"{scenario}|{canonical_params(params)}|{version}".encode()
    return hashlib.sha256(blob).hexdigest()[:24]


@dataclass(frozen=True)
class Job:
    """One scenario evaluation at one parameter point."""

    scenario: str
    params: tuple[tuple[str, Any], ...]  # sorted (name, value) pairs
    seed: int
    key: str

    @property
    def params_dict(self) -> dict:
        return dict(self.params)

    def describe(self) -> str:
        ps = " ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.scenario}({ps})"


def _make_job(sc: Scenario, point: Mapping[str, Any], base_seed: int,
              version: Optional[str]) -> Job:
    params = sc.resolve(point)
    return Job(
        scenario=sc.name,
        params=tuple(sorted(params.items())),
        seed=job_seed(sc.name, params, base_seed),
        key=cache_key(sc.name, params, version),
    )


def plan_grid(
    scenario_name: str,
    grid: Optional[Mapping[str, Sequence[Any]]] = None,
    base_seed: int = 0,
    overrides: Optional[Mapping[str, Any]] = None,
    version: Optional[str] = None,
) -> list[Job]:
    """Expand a parameter grid into jobs (cartesian product, grid order).

    ``grid`` maps param names to value sequences; axes iterate with the
    *last* axis fastest, matching nested-loop order.  Omitted params take
    their defaults (or ``overrides``).  With no grid at all, the
    scenario's registered default sweep is used.
    """
    sc = get_scenario(scenario_name)
    if grid is None:
        grid = sc.sweep
    if not grid:
        raise ScenarioError(
            f"scenario {scenario_name!r} declares no default sweep; "
            f"pass an explicit grid"
        )
    axes = []
    for name, values in grid.items():
        p = sc.param(name)
        values = list(values)
        if not values:
            raise ScenarioError(f"grid axis {name!r} is empty")
        axes.append((name, [p.coerce(v) for v in values]))
    jobs = []
    for combo in itertools.product(*(vals for _, vals in axes)):
        point = dict(overrides or {})
        point.update({name: value for (name, _), value in zip(axes, combo)})
        jobs.append(_make_job(sc, point, base_seed, version))
    return jobs


def plan_points(
    scenario_name: str,
    points: Sequence[Mapping[str, Any]],
    base_seed: int = 0,
    version: Optional[str] = None,
) -> list[Job]:
    """Plan an explicit list of parameter points (non-grid sweeps)."""
    sc = get_scenario(scenario_name)
    return [_make_job(sc, point, base_seed, version) for point in points]
