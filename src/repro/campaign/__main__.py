"""CLI: ``python -m repro.campaign`` — list/run/sweep/resume/merge/index.

Examples::

    python -m repro.campaign list
    python -m repro.campaign run pingpong --tiny
    python -m repro.campaign run accumulate -p size=4096 -p mode=spin
    python -m repro.campaign sweep pingpong --workers 4
    python -m repro.campaign sweep broadcast -g procs=4,16 -g size=8,65536
    python -m repro.campaign sweep pingpong --shard 0/3   # one host of three
    python -m repro.campaign resume --workers 8
    python -m repro.campaign merge                        # fold shard files
    python -m repro.campaign index --stats

Sweeps record a manifest next to the result cache, so ``resume`` replays
every known sweep; jobs whose results are already cached execute nothing.
``--shard i/K`` (zero-based) runs one deterministic slice of a sweep into
its own ``results.shard-i-of-K.jsonl``; ``merge`` folds the shard files
(and any legacy ``results.jsonl``) into the canonical cache, and
``index`` inspects or rebuilds the cross-run record index.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.campaign.cache import (
    INDEX_NAME,
    CacheConflictError,
    CacheIndex,
    ResultCache,
    merge_caches,
)
from repro.campaign.executor import run_grid, run_jobs, run_observed
from repro.campaign.planner import plan_grid, plan_points
from repro.campaign.registry import ScenarioError, all_scenarios, get_scenario
from repro.campaign.shard import ShardSpec, shard_cache_name
from repro.campaign.version import code_version

DEFAULT_CAMPAIGN_DIR = Path(".campaign")


def _cache_path(args) -> Path:
    return Path(args.campaign_dir) / "results.jsonl"


def _manifest_path(args) -> Path:
    return Path(args.campaign_dir) / "manifests.jsonl"


def _parse_shard(args) -> ShardSpec | None:
    text = getattr(args, "shard", None)
    if not text:
        return None
    try:
        return ShardSpec.parse(text)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")


def _shard_caches(args) -> tuple[ShardSpec | None, Path, tuple[Path, ...]]:
    """Resolve (shard, write-cache, read-only caches) for sweep/resume.

    A sharded run writes its own ``results.shard-i-of-K.jsonl`` so K
    hosts never contend on one file, but still *reads* the canonical
    cache — after a ``merge``, re-running any shard executes nothing.
    """
    shard = _parse_shard(args)
    canonical = _cache_path(args)
    if shard is None:
        return None, canonical, ()
    shard_path = canonical.parent / shard_cache_name(shard)
    return shard, shard_path, (canonical,)


def _parse_kv(pairs: list[str], what: str) -> dict:
    out = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"bad {what} {pair!r}: expected name=value")
        name, value = pair.split("=", 1)
        out[name] = value
    return out


def _parse_grid(pairs: list[str]) -> dict:
    return {k: v.split(",") for k, v in _parse_kv(pairs, "grid axis").items()}


def _print_records(res) -> None:
    for rec in res.records:
        params = " ".join(f"{k}={v}" for k, v in sorted(rec["params"].items()))
        result = " ".join(
            f"{k}={v:.3f}" if isinstance(v, float) else f"{k}={v}"
            for k, v in rec["result"].items()
        )
        print(f"  {rec['scenario']:>14}  {params:<52} -> {result}")
    print(res.summary())


def cmd_list(args) -> int:
    scenarios = all_scenarios()
    if args.tag:
        scenarios = {name: sc for name, sc in scenarios.items()
                     if args.tag in sc.tags}
        if not scenarios:
            known = sorted({t for sc in all_scenarios().values()
                            for t in sc.tags})
            print(f"no scenarios tagged {args.tag!r}; known tags: "
                  f"{', '.join(known) or '(none)'}", file=sys.stderr)
            return 1
    for name, sc in scenarios.items():
        tags = f"  [{', '.join(sc.tags)}]" if sc.tags else ""
        print(f"{name:<20} {sc.description}{tags}")
        if args.brief:
            continue
        for p in sc.params:
            choices = f"  choices={list(p.choices)}" if p.choices else ""
            help_ = f"  ({p.help})" if p.help else ""
            print(f"    {p.name}: {p.type.__name__} = {p.default!r}"
                  f"{choices}{help_}")
        if sc.sweep:
            axes = ", ".join(
                f"{k}={list(v)}" for k, v in sc.sweep.items()
            )
            npoints = 1
            for v in sc.sweep.values():
                npoints *= len(v)
            print(f"    default sweep: {axes} ({npoints} points)")
    return 0


def cmd_run(args) -> int:
    sc = get_scenario(args.scenario)
    overrides = dict(sc.tiny) if args.tiny else {}
    overrides.update(_parse_kv(args.param, "param"))
    jobs = plan_points(args.scenario, [overrides], base_seed=args.seed)
    want_profile = args.profile or args.profile_out
    want_obs = args.trace_out or args.report
    if want_profile or want_obs:
        # Profiled and observed runs bypass the cache — a cache hit would
        # replay a stored result dict and there would be nothing to measure.
        # The flags compose: profiling wraps the observed run.
        profiler = None
        if want_profile:
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
        if want_obs:
            from repro.obs import ObsCapture
            from repro.perf.meter import KernelMeter

            capture = ObsCapture()
            meter = KernelMeter()
            res = run_observed(jobs, capture, meter=meter,
                               progress=print if args.verbose else None)
        else:
            res = run_jobs(jobs, cache_path=None,
                           progress=print if args.verbose else None)
        if profiler is not None:
            profiler.disable()
        _print_records(res)
        if profiler is not None:
            import pstats

            print(f"\n--- cProfile: top 25 by cumulative time "
                  f"({args.scenario}) ---")
            pstats.Stats(profiler).sort_stats("cumulative").print_stats(25)
            if args.profile_out:
                profiler.dump_stats(args.profile_out)
                print(f"wrote full profile to {args.profile_out} "
                      f"(inspect with python -m pstats)")
        if args.trace_out:
            capture.export_trace(args.trace_out)
            print(f"wrote {args.trace_out} (open in https://ui.perfetto.dev)")
        if args.report:
            job = jobs[0]
            doc = capture.build_report(
                meter=meter, scenario=args.scenario,
                params=dict(job.params), seed=job.seed)
            Path(args.report).write_text(
                json.dumps(doc, indent=1, sort_keys=True) + "\n")
            print(f"wrote {args.report} "
                  f"(view with python -m repro.obs view {args.report})")
        return 0
    res = run_jobs(jobs, cache_path=None if args.no_cache else _cache_path(args),
                   progress=print if args.verbose else None,
                   retries=args.retries, retry_backoff_s=args.retry_backoff,
                   job_timeout_s=args.job_timeout)
    _print_records(res)
    return 0


def cmd_perf(args) -> int:
    from repro.perf.basket import compare_to_baseline, load_bench, run_baskets

    # With --json, stdout is the machine-readable document — progress and
    # human-readable lines are suppressed (errors still go to stderr).
    doc = run_baskets(tiny=args.tiny, names=args.basket or None,
                      progress=None if args.json else print,
                      repeats=args.repeats)
    status = 0
    if args.out:
        Path(args.out).write_text(json.dumps(doc, indent=1) + "\n")
        if not args.json:
            print(f"wrote {args.out}")
    if args.check:
        bench = load_bench(args.check)
        which = "tiny" if args.tiny else "full"
        committed = bench.get("optimized", {}).get(which) or bench.get(which) or {}
        ratios = compare_to_baseline(doc, committed)
        if not ratios:
            print(f"error: no comparable baskets in {args.check}", file=sys.stderr)
            return 2
        failed = {k: r for k, r in ratios.items() if r < args.min_ratio}
        doc["check"] = {
            "against": str(args.check),
            "min_ratio": args.min_ratio,
            "ratios": {k: ratios[k] for k in sorted(ratios)},
            "failed": sorted(failed),
        }
        if not args.json:
            for name, ratio in sorted(ratios.items()):
                verdict = "FAIL" if name in failed else "ok"
                print(f"  {name:>14}: {ratio:.2f}x of committed ({verdict})")
        if failed:
            print(f"error: events/sec regressed below {args.min_ratio:.2f}x "
                  f"of the committed numbers: {sorted(failed)}", file=sys.stderr)
            status = 1
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
    return status


def _record_manifest(args, scenario: str, grid: dict) -> None:
    path = _manifest_path(args)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        fh.write(json.dumps({
            "scenario": scenario,
            "grid": grid,
            "base_seed": args.seed,
        }, sort_keys=True) + "\n")


def cmd_sweep(args) -> int:
    sc = get_scenario(args.scenario)
    grid = _parse_grid(args.grid) or {k: list(v) for k, v in sc.sweep.items()}
    if not grid:
        raise SystemExit(f"scenario {args.scenario!r} has no default sweep; "
                         f"pass -g axis=v1,v2")
    # Canonical axis order (manifests round-trip through sorted-key JSON):
    # `sweep --shard` and `resume --shard` must slice the same job order.
    grid = dict(sorted(grid.items()))
    if args.no_cache and args.shard:
        raise SystemExit("error: --shard requires the cache "
                         "(a shard's only output is its cache file)")
    shard, cache, read_caches = _shard_caches(args)
    # Validate the grid BEFORE recording the manifest — a typo'd axis must
    # not poison future `resume` runs.
    jobs = plan_grid(args.scenario, grid, base_seed=args.seed)
    if args.no_cache:
        cache, read_caches = None, ()
    else:
        _record_manifest(args, args.scenario, grid)
    res = run_jobs(jobs, workers=args.workers, cache_path=cache,
                   progress=print if args.verbose else None,
                   shard=shard, read_caches=read_caches,
                   retries=args.retries, retry_backoff_s=args.retry_backoff,
                   job_timeout_s=args.job_timeout)
    if shard is not None:
        print(f"shard {shard} of {len(jobs)} planned jobs:")
    _print_records(res)
    return 0


def cmd_resume(args) -> int:
    path = _manifest_path(args)
    if not path.exists():
        print(f"no manifests at {path}; nothing to resume")
        return 1
    shard, cache, read_caches = _shard_caches(args)
    manifests: dict[tuple, dict] = {}
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            m = json.loads(line)
            manifests[(m["scenario"], json.dumps(m["grid"], sort_keys=True))] = m
    total_exec = total_cached = failures = 0
    for m in manifests.values():
        if args.scenario and m["scenario"] != args.scenario:
            continue
        try:
            res = run_grid(m["scenario"], m["grid"], workers=args.workers,
                           cache_path=cache, read_caches=read_caches,
                           base_seed=m.get("base_seed", 0),
                           progress=print if args.verbose else None,
                           shard=shard, retries=args.retries,
                           retry_backoff_s=args.retry_backoff,
                           job_timeout_s=args.job_timeout)
        except ScenarioError as exc:
            # One stale/broken manifest must not block the others.
            print(f"{m['scenario']}: skipped ({exc})", file=sys.stderr)
            failures += 1
            continue
        print(f"{m['scenario']}: {res.summary()}")
        total_exec += res.executed
        total_cached += res.cached
    print(f"resume total: {total_exec} executed, {total_cached} cached"
          + (f", {failures} manifests skipped" if failures else ""))
    return 1 if failures else 0


def _campaign_cache_files(args) -> list[Path]:
    """The canonical cache plus any shard files, in a stable order."""
    directory = Path(args.campaign_dir)
    canonical = _cache_path(args)
    files = [canonical] if canonical.exists() else []
    files += sorted(directory.glob("results.shard-*-of-*.jsonl"))
    return files


def cmd_merge(args) -> int:
    canonical = _cache_path(args)
    sources = _campaign_cache_files(args)
    if not sources:
        print(f"no caches under {args.campaign_dir}; nothing to merge")
        return 1
    shard_files = [p for p in sources if p != canonical]
    try:
        report = merge_caches(sources, canonical)
    except CacheConflictError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for name in sorted(report["per_file"]):
        print(f"  {name}: {report['per_file'][name]} records")
    if not args.keep_shards:
        for path in shard_files:
            path.unlink()
            # Drop the deleted file's index entries with it.
            ResultCache(path).rebuild_index()
    print(f"merged {len(report['per_file'])} files -> {report['dest']} "
          f"({report['records']} records, "
          f"{report['conflicts_checked']} cross-file keys verified"
          + (", shard files removed)" if shard_files and not args.keep_shards
             else ")"))
    return 0


def cmd_index(args) -> int:
    directory = Path(args.campaign_dir)
    index = CacheIndex(directory / INDEX_NAME)
    files = _campaign_cache_files(args)
    if args.rebuild:
        for path in files:
            n = ResultCache(path).rebuild_index()
            print(f"  rebuilt {path.name}: {n} live records")
    if not files:
        print(f"no caches under {directory}")
        return 0 if args.rebuild else 1
    # Hit rates come from an instrumented load of each cache file.
    for path in files:
        cache = ResultCache(path)
        cache.load()
        s = cache.last_load_stats
        # Hit rate = lines the index handled (resolved by seek OR skipped
        # unparsed as superseded) over all lines considered.
        handled = s["indexed"] + s["skipped"]
        total_lines = handled + s["scanned"]
        hit = handled / total_lines if total_lines else 1.0
        print(f"  {path.name}: {s['records']} records, "
              f"{s['indexed']} via index, {s['skipped']} skipped unparsed, "
              f"{s['scanned']} scanned, hit rate {hit:.0%}"
              + (" [FULL SCAN]" if s["full_scan"] else ""))
    stats = index.stats(current_version=code_version())
    stale = sum(stats["stale_code_versions"].values())
    print(f"index: {stats['entries']} entries, {stats['live_records']} live, "
          f"{stats['superseded']} superseded, {stale} stale-code-version"
          + (f" {dict(sorted(stats['stale_code_versions'].items()))}"
             if stale else ""))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Simulation campaigns: sweep scenarios across parameter "
                    "grids with caching and parallel execution.",
    )
    parser.add_argument("--campaign-dir", default=str(DEFAULT_CAMPAIGN_DIR),
                        help="directory for the result cache and manifests")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed for deterministic per-job seeding")
    parser.add_argument("-v", "--verbose", action="store_true")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_reliability_flags(p) -> None:
        p.add_argument("--retries", type=int, default=0, metavar="N",
                       help="re-run a failed or timed-out job up to N more "
                            "times with exponential backoff; a retried job "
                            "keeps its planner seed and cache key")
        p.add_argument("--job-timeout", type=float, default=None,
                       metavar="SECONDS", dest="job_timeout",
                       help="run each job in its own subprocess and "
                            "terminate it past this wall-clock budget")
        p.add_argument("--retry-backoff", type=float, default=0.5,
                       metavar="SECONDS", dest="retry_backoff",
                       help="base backoff between attempts "
                            "(sleep = backoff * 2**attempt; default 0.5)")

    p_list = sub.add_parser(
        "list",
        help="list registered scenarios with parameter spaces and sweeps")
    p_list.add_argument("--brief", action="store_true",
                        help="names and descriptions only")
    p_list.add_argument("--tag", default=None, metavar="TAG",
                        help="only scenarios carrying this tag "
                             "(e.g. traffic, faults, congestion)")
    p_list.add_argument("--params", action="store_true",
                        help="(default; kept for compatibility)")
    p_list.set_defaults(fn=cmd_list)

    p_run = sub.add_parser("run", help="run one scenario point")
    p_run.add_argument("scenario")
    p_run.add_argument("-p", "--param", action="append", default=[],
                       metavar="NAME=VALUE")
    p_run.add_argument("--tiny", action="store_true",
                       help="apply the scenario's smoke-test parameters")
    p_run.add_argument("--no-cache", action="store_true")
    p_run.add_argument("--profile", action="store_true",
                       help="run under cProfile and print the top-25 "
                            "cumulative entries (disables the cache)")
    p_run.add_argument("--profile-out", default=None, metavar="FILE",
                       dest="profile_out",
                       help="dump the full cProfile stats to FILE for "
                            "offline analysis (implies --profile; inspect "
                            "with python -m pstats FILE or snakeviz)")
    p_run.add_argument("--trace-out", default=None, metavar="FILE",
                       dest="trace_out",
                       help="export a Perfetto/Chrome trace of the run to "
                            "FILE (disables the cache; open in "
                            "ui.perfetto.dev)")
    p_run.add_argument("--report", default=None, metavar="FILE",
                       help="write a structured run-telemetry report to "
                            "FILE (disables the cache; view with "
                            "python -m repro.obs view FILE)")
    add_reliability_flags(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_perf = sub.add_parser(
        "perf",
        help="measure the perf basket (kernel events/sec per workload mix)")
    p_perf.add_argument("--tiny", action="store_true",
                        help="small-scale smoke variant of each basket")
    p_perf.add_argument("-b", "--basket", action="append", default=[],
                        metavar="NAME", help="run only the named basket(s)")
    p_perf.add_argument("--repeats", type=int, default=3,
                        help="measure each basket N times, keep the best "
                             "(default 3; guards against scheduler noise)")
    p_perf.add_argument("--out", default=None, metavar="FILE",
                        help="write the measurement document as JSON")
    p_perf.add_argument("--check", default=None, metavar="BENCH_JSON",
                        help="compare events/sec against a committed "
                             "BENCH_*.json and fail on regression")
    p_perf.add_argument("--json", action="store_true",
                        help="emit the measurement document (plus any "
                             "--check ratios) as JSON on stdout and "
                             "suppress progress output")
    p_perf.add_argument("--min-ratio", type=float, default=0.70,
                        help="minimum acceptable events/sec ratio vs the "
                             "committed numbers (default 0.70 = fail when "
                             "regressed >30%%)")
    p_perf.set_defaults(fn=cmd_perf)

    p_sweep = sub.add_parser("sweep", help="run a parameter-grid sweep")
    p_sweep.add_argument("scenario")
    p_sweep.add_argument("-g", "--grid", action="append", default=[],
                         metavar="AXIS=V1,V2,...")
    p_sweep.add_argument("-w", "--workers", type=int, default=1)
    p_sweep.add_argument("--shard", default=None, metavar="I/K",
                         help="run only shard I of K (zero-based, "
                              "round-robin over the planned jobs) into "
                              "results.shard-I-of-K.jsonl")
    p_sweep.add_argument("--no-cache", action="store_true")
    add_reliability_flags(p_sweep)
    p_sweep.set_defaults(fn=cmd_sweep)

    p_resume = sub.add_parser("resume",
                              help="re-run recorded sweeps (cache skips "
                                   "finished jobs)")
    p_resume.add_argument("scenario", nargs="?", default=None)
    p_resume.add_argument("-w", "--workers", type=int, default=1)
    p_resume.add_argument("--shard", default=None, metavar="I/K",
                          help="replay only shard I of K of every manifest")
    add_reliability_flags(p_resume)
    p_resume.set_defaults(fn=cmd_resume)

    p_merge = sub.add_parser(
        "merge",
        help="fold shard caches (and legacy results.jsonl) into the "
             "canonical cache; key conflicts with differing deterministic "
             "views are hard errors")
    p_merge.add_argument("--keep-shards", action="store_true",
                         help="leave results.shard-*.jsonl files in place "
                              "after folding them in")
    p_merge.set_defaults(fn=cmd_merge)

    p_index = sub.add_parser(
        "index",
        help="inspect or rebuild the cross-run cache index (index.jsonl)")
    p_index.add_argument("--stats", action="store_true",
                         help="(default; kept for symmetry) print per-file "
                              "hit rates and stale code-version counts")
    p_index.add_argument("--rebuild", action="store_true",
                         help="re-derive index entries from the cache files")
    p_index.set_defaults(fn=cmd_index)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
