"""Parallel simulation-campaign subsystem.

The paper's evaluation is parameter sweeps; this package turns every
experiment, use case, and storage workload into a *scenario* with a typed
parameter space, expands sweeps into deterministic jobs, executes them
serially or across worker processes, and caches results keyed by
``(scenario, params, code_version)``.

Layers
------
``registry``   scenario registration + typed parameter spaces
``planner``    grid/point expansion → :class:`~repro.campaign.planner.Job`
``shard``      deterministic round-robin slices of one sweep (multi-host)
``executor``   serial / multiprocessing execution with per-job seeding
``cache``      append-only JSONL result store + cross-run index + merge
``__main__``   CLI (list / run / sweep / resume / merge / index / perf)

Quick start::

    from repro.campaign import run_grid
    res = run_grid("pingpong", {"size": (64, 4096), "mode": ("rdma",)},
                   workers=4, cache_path=".campaign/results.jsonl")
    for rec in res.records:
        print(rec["params"], rec["result"])
"""

from repro.campaign.cache import (
    CacheConflictError,
    CacheIndex,
    ResultCache,
    merge_caches,
)
from repro.campaign.executor import (
    CampaignResult,
    run_grid,
    run_jobs,
    run_one,
    run_points,
)
from repro.campaign.planner import Job, plan_grid, plan_points
from repro.campaign.shard import ShardSpec, as_shard, shard_cache_name
from repro.campaign.registry import (
    Param,
    Scenario,
    ScenarioError,
    all_scenarios,
    get_scenario,
    load_builtins,
    scenario,
)
from repro.campaign.version import code_version

__all__ = [
    "CacheConflictError",
    "CacheIndex",
    "CampaignResult",
    "Job",
    "Param",
    "ResultCache",
    "Scenario",
    "ScenarioError",
    "ShardSpec",
    "all_scenarios",
    "as_shard",
    "code_version",
    "get_scenario",
    "load_builtins",
    "merge_caches",
    "plan_grid",
    "plan_points",
    "run_grid",
    "run_jobs",
    "run_one",
    "run_points",
    "scenario",
    "shard_cache_name",
]
