"""Campaign executor: run planned jobs serially or across worker processes.

Guarantees:

* **Determinism** — every job re-seeds ``random`` and ``numpy.random``
  from its planner-assigned seed before the scenario runs, so a sweep
  produces byte-identical results whether it runs serially, with N
  workers, or resumed across several invocations.
* **Caching** — with a cache attached, finished jobs are skipped on
  re-run (key = scenario + params + code version) and fresh results are
  appended as they complete, so a killed campaign resumes where it died.
* **Isolation** — parallel jobs run in forked worker processes; one
  simulation per process at a time, no shared simulator state.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.campaign.cache import ResultCache
from repro.campaign.planner import Job, plan_grid, plan_points
from repro.campaign.registry import get_scenario
from repro.campaign.shard import ShardSpec, as_shard
from repro.campaign.version import code_version

__all__ = ["CampaignResult", "JobTimeoutError", "run_grid", "run_jobs",
           "run_observed", "run_one", "run_points"]


class JobTimeoutError(RuntimeError):
    """A job's dedicated subprocess exceeded its wall-clock budget."""


@dataclass
class CampaignResult:
    """Outcome of one campaign invocation."""

    jobs: list[Job]
    #: One record per job, in job (planner) order.
    records: list[dict] = field(default_factory=list)
    executed: int = 0
    cached: int = 0
    wall_s: float = 0.0

    def results(self) -> list[dict]:
        """Just the scenario result dicts, in job order."""
        return [rec["result"] for rec in self.records]

    def lookup(self, **params: Any) -> dict:
        """Result of the unique record matching all given param values."""
        matches = [
            rec["result"] for rec in self.records
            if all(rec["params"].get(k) == v for k, v in params.items())
        ]
        if len(matches) != 1:
            raise KeyError(
                f"{len(matches)} records match {params!r} (need exactly 1)"
            )
        return matches[0]

    def summary(self) -> str:
        return (
            f"{len(self.jobs)} jobs: {self.executed} executed, "
            f"{self.cached} cached, {self.wall_s:.2f}s wall"
        )


def _seed_rngs(seed: int) -> None:
    random.seed(seed)
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a hard dep elsewhere
        pass
    else:
        np.random.seed(seed % 2**32)


def _execute_job(payload: tuple) -> dict:
    """Worker entry point: run one job and return its cache record.

    Takes a plain tuple (picklable under any start method) and looks the
    scenario up in the worker's own registry, so closures never cross the
    process boundary.
    """
    scenario_name, params, seed, key, version = payload
    sc = get_scenario(scenario_name)
    _seed_rngs(seed)
    t0 = time.perf_counter()
    result = sc.fn(**dict(params))
    return {
        "key": key,
        "scenario": scenario_name,
        "params": dict(params),
        "seed": seed,
        "code_version": version,
        "result": result,
        "elapsed_s": round(time.perf_counter() - t0, 6),
    }


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _attempt_with_retries(payload: tuple, runner: Callable[[tuple], dict],
                          retries: int, backoff_s: float) -> dict:
    """Run one job, retrying transient failures with exponential backoff.

    The payload — and with it the planner-assigned seed and cache key —
    is reused verbatim on every attempt, so a retried job lands in the
    cache indistinguishable from a first-try success.
    """
    for attempt in range(retries + 1):
        try:
            return runner(payload)
        except Exception:
            if attempt >= retries:
                raise
            if backoff_s > 0:
                time.sleep(backoff_s * (2 ** attempt))
    raise AssertionError("unreachable")  # pragma: no cover


def _execute_job_retrying(bundle: tuple) -> dict:
    """Pool worker entry point carrying its own retry policy.

    Retries run *inside* the (daemonic) worker — it cannot fork a fresh
    subprocess, but re-running the scenario in-process is exactly as
    deterministic thanks to the per-attempt RNG reseed.
    """
    payload, retries, backoff_s = bundle
    return _attempt_with_retries(payload, _execute_job, retries, backoff_s)


def _subprocess_target(conn, payload: tuple) -> None:  # pragma: no cover
    try:
        conn.send(("ok", _execute_job(payload)))
    except BaseException as exc:
        conn.send(("err", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


def _execute_job_bounded(ctx, payload: tuple, timeout_s: float) -> dict:
    """Run one job in a dedicated subprocess with a wall-clock budget.

    Pool workers cannot be killed mid-job without poisoning the pool, so
    a bounded job gets its own process: on timeout it is terminated and
    :class:`JobTimeoutError` raised (which a retry budget then absorbs).
    """
    parent, child = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_subprocess_target, args=(child, payload))
    proc.start()
    child.close()
    try:
        if not parent.poll(timeout_s):
            proc.terminate()
            raise JobTimeoutError(
                f"job {payload[0]} {dict(payload[1])!r} exceeded "
                f"{timeout_s:g}s"
            )
        status, value = parent.recv()
    except EOFError:
        raise RuntimeError(
            f"job subprocess for {payload[0]} died without a result"
        ) from None
    finally:
        proc.join()
        parent.close()
    if status != "ok":
        raise RuntimeError(f"job {payload[0]} failed in subprocess: {value}")
    return value


def _run_bounded_parallel(ctx, payloads: Sequence[tuple], workers: int,
                          timeout_s: float, retries: int, backoff_s: float,
                          done: Callable[[dict], None]) -> None:
    """Process-per-job scheduler: up to ``workers`` bounded jobs at once.

    Used only when a job timeout is requested — each job needs a process
    the scheduler may terminate, which a shared Pool cannot offer.
    Completion order feeds ``done`` as results arrive (like
    ``imap_unordered``); per-job retries re-enqueue the same payload.
    """
    queue = [(payload, 0) for payload in reversed(payloads)]
    live: list = []  # (proc, parent_conn, payload, attempt, deadline)
    try:
        while queue or live:
            while queue and len(live) < workers:
                payload, attempt = queue.pop()
                parent, child = ctx.Pipe(duplex=False)
                proc = ctx.Process(target=_subprocess_target,
                                   args=(child, payload))
                proc.start()
                child.close()
                live.append(
                    (proc, parent, payload, attempt,
                     time.monotonic() + timeout_s))
            multiprocessing.connection.wait(
                [parent for _, parent, _, _, _ in live],
                timeout=max(0.0, min(d for *_, d in live) - time.monotonic()),
            )
            still_live = []
            for proc, parent, payload, attempt, deadline in live:
                failure: Optional[str] = None
                timed_out = False
                if parent.poll():
                    try:
                        status, value = parent.recv()
                    except EOFError:
                        status, value = "err", "subprocess died"
                    if status == "ok":
                        proc.join()
                        parent.close()
                        done(value)
                        continue
                    failure = value
                elif time.monotonic() >= deadline:
                    proc.terminate()
                    failure = f"exceeded {timeout_s:g}s"
                    timed_out = True
                else:
                    still_live.append(
                        (proc, parent, payload, attempt, deadline))
                    continue
                proc.join()
                parent.close()
                if attempt >= retries:
                    name, params = payload[0], dict(payload[1])
                    raise (JobTimeoutError if timed_out else RuntimeError)(
                        f"job {name} {params!r} failed: {failure}")
                if backoff_s > 0:
                    time.sleep(backoff_s * (2 ** attempt))
                queue.append((payload, attempt + 1))
            live = still_live
    finally:
        for proc, parent, *_ in live:
            proc.terminate()
            proc.join()
            parent.close()


def run_jobs(
    jobs: Sequence[Job],
    workers: int = 1,
    cache_path: Optional[str | Path] = None,
    progress: Optional[Callable[[str], None]] = None,
    shard: Optional[ShardSpec | str] = None,
    read_caches: Sequence[str | Path] = (),
    retries: int = 0,
    retry_backoff_s: float = 0.5,
    job_timeout_s: Optional[float] = None,
) -> CampaignResult:
    """Execute jobs, consulting/filling the cache; returns ordered records.

    ``shard`` (a :class:`ShardSpec` or ``"i/K"`` string) restricts the run
    to one deterministic round-robin slice of the planned job list — the
    planner's stable total order makes the K slices disjoint and their
    union exactly the serial sweep.  ``read_caches`` are consulted (but
    never written) before ``cache_path``; a sharded host passes the
    canonical merged cache here so already-merged jobs execute nothing.

    ``retries`` re-runs a job that raised (or timed out) up to N more
    times with exponential backoff (``retry_backoff_s * 2**attempt``);
    every attempt reuses the planner's payload verbatim, so the seed and
    cache key of a retried job are unchanged.  ``job_timeout_s`` runs
    each job in a dedicated subprocess and terminates it past the budget
    (:class:`JobTimeoutError` — absorbed by the retry budget, if any).
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if job_timeout_s is not None and job_timeout_s <= 0:
        raise ValueError(f"job_timeout_s must be > 0, got {job_timeout_s}")
    t_start = time.perf_counter()
    version = code_version()
    shard_spec = as_shard(shard)
    jobs = list(jobs)
    if shard_spec is not None:
        if cache_path is None:
            # A sharded run exists to fill a cache for `merge`; without
            # one its results would be computed and thrown away.
            raise ValueError(
                f"sharded run ({shard_spec}) requires a cache_path")
        jobs = shard_spec.select(jobs)
    cache = ResultCache(cache_path) if cache_path is not None else None
    known: dict[str, dict] = {}
    for extra in read_caches:
        known.update(ResultCache(extra).load())
    if cache is not None:
        known.update(cache.load())

    by_key: dict[str, dict] = {}
    pending: list[Job] = []
    seen_keys: set[str] = set()
    for job in jobs:
        if job.key in known:
            by_key[job.key] = known[job.key]
        elif job.key not in seen_keys:
            pending.append(job)
        seen_keys.add(job.key)

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    payloads = [
        (job.scenario, job.params, job.seed, job.key, version) for job in pending
    ]
    executed = 0

    def record(rec: dict) -> None:
        nonlocal executed
        by_key[rec["key"]] = rec
        if cache is not None:
            cache.append(rec)
        executed += 1
        note(f"[{executed}/{len(payloads)}] done "
             f"{rec['scenario']} {rec['params']}")

    if payloads:
        if workers > 1 and job_timeout_s is not None:
            _run_bounded_parallel(_mp_context(), payloads, workers,
                                  job_timeout_s, retries, retry_backoff_s,
                                  record)
        elif workers > 1:
            ctx = _mp_context()
            bundles = [(p, retries, retry_backoff_s) for p in payloads]
            with ctx.Pool(processes=min(workers, len(payloads))) as pool:
                for rec in pool.imap_unordered(_execute_job_retrying, bundles):
                    record(rec)
        else:
            if job_timeout_s is None:
                runner = _execute_job
            else:
                ctx = _mp_context()
                runner = lambda p: _execute_job_bounded(ctx, p, job_timeout_s)
            for payload in payloads:
                record(_attempt_with_retries(payload, runner, retries,
                                             retry_backoff_s))

    return CampaignResult(
        jobs=list(jobs),
        records=[by_key[job.key] for job in jobs],
        executed=executed,
        cached=len(jobs) - executed,
        wall_s=time.perf_counter() - t_start,
    )


def run_observed(
    jobs: Sequence[Job],
    capture,
    meter=None,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignResult:
    """Execute jobs serially under ambient observability.

    ``capture`` is an (unentered) :class:`~repro.obs.capture.ObsCapture`
    and ``meter`` an optional :class:`~repro.perf.meter.KernelMeter`;
    both contexts are entered around the whole run, so every session any
    job builds is traced, observed, and metered.  Observed runs are
    deliberately cache-less and in-process: a cache hit would observe
    nothing, and worker processes would strand the observers.
    """
    import contextlib

    t_start = time.perf_counter()
    version = code_version()
    records: list[dict] = []
    with contextlib.ExitStack() as stack:
        if meter is not None:
            stack.enter_context(meter)
        stack.enter_context(capture)
        for job in jobs:
            rec = _execute_job(
                (job.scenario, job.params, job.seed, job.key, version))
            records.append(rec)
            if progress is not None:
                progress(f"[{len(records)}/{len(jobs)}] done "
                         f"{rec['scenario']} {rec['params']}")
    return CampaignResult(
        jobs=list(jobs),
        records=records,
        executed=len(records),
        cached=0,
        wall_s=time.perf_counter() - t_start,
    )


def run_grid(
    scenario: str,
    grid: Optional[Mapping[str, Sequence[Any]]] = None,
    workers: int = 1,
    cache_path: Optional[str | Path] = None,
    base_seed: int = 0,
    overrides: Optional[Mapping[str, Any]] = None,
    progress: Optional[Callable[[str], None]] = None,
    shard: Optional[ShardSpec | str] = None,
    read_caches: Sequence[str | Path] = (),
    retries: int = 0,
    retry_backoff_s: float = 0.5,
    job_timeout_s: Optional[float] = None,
) -> CampaignResult:
    """Plan a grid sweep and execute it (the main campaign entry point)."""
    jobs = plan_grid(scenario, grid, base_seed=base_seed, overrides=overrides)
    return run_jobs(jobs, workers=workers, cache_path=cache_path,
                    progress=progress, shard=shard, read_caches=read_caches,
                    retries=retries, retry_backoff_s=retry_backoff_s,
                    job_timeout_s=job_timeout_s)


def run_points(
    scenario: str,
    points: Sequence[Mapping[str, Any]],
    workers: int = 1,
    cache_path: Optional[str | Path] = None,
    base_seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
    shard: Optional[ShardSpec | str] = None,
    read_caches: Sequence[str | Path] = (),
    retries: int = 0,
    retry_backoff_s: float = 0.5,
    job_timeout_s: Optional[float] = None,
) -> CampaignResult:
    """Plan and execute an explicit list of parameter points."""
    jobs = plan_points(scenario, points, base_seed=base_seed)
    return run_jobs(jobs, workers=workers, cache_path=cache_path,
                    progress=progress, shard=shard, read_caches=read_caches,
                    retries=retries, retry_backoff_s=retry_backoff_s,
                    job_timeout_s=job_timeout_s)


def run_one(
    scenario: str,
    overrides: Optional[Mapping[str, Any]] = None,
    cache_path: Optional[str | Path] = None,
    base_seed: int = 0,
) -> dict:
    """Run a single parameter point and return its result dict."""
    res = run_points(scenario, [dict(overrides or {})],
                     cache_path=cache_path, base_seed=base_seed)
    return res.records[0]["result"]
