"""Scenario registry: every experiment registers a typed parameter space.

A *scenario* is a named, parameterised simulation entry point.  Modules
under :mod:`repro.experiments`, :mod:`repro.usecases`, :mod:`repro.storage`
and :mod:`repro.apps` register themselves with the :func:`scenario`
decorator; the sweep planner and campaign executor then discover them by
name, validate and coerce parameter values against the declared
:class:`Param` specs, and expand grids into jobs.

This module deliberately imports nothing from the rest of ``repro`` so the
experiment modules can import it without cycles; :func:`load_builtins`
pulls in the known scenario-providing modules on demand.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

__all__ = [
    "Param",
    "Scenario",
    "ScenarioError",
    "all_scenarios",
    "get_scenario",
    "load_builtins",
    "register",
    "scenario",
]

#: Modules that register scenarios at import time.  Kept as strings so the
#: registry stays import-cycle free; extend this list when a new module
#: grows a scenario.
BUILTIN_SCENARIO_MODULES = (
    "repro.experiments.pingpong",
    "repro.experiments.accumulate",
    "repro.experiments.broadcast",
    "repro.experiments.datatype_recv",
    "repro.experiments.raid_update",
    "repro.experiments.littles_law",
    "repro.storage.spc",
    "repro.apps.simulator",
    "repro.usecases.kvstore",
    "repro.sim.scenarios",
    "repro.sim.serving",
    "repro.faults.scenarios",
    "repro.traffic.scenarios",
)


class ScenarioError(Exception):
    """Unknown scenario, bad parameter name, or an un-coercible value."""


@dataclass(frozen=True)
class Param:
    """One typed parameter of a scenario's parameter space."""

    name: str
    type: type
    default: Any = None
    choices: Optional[tuple] = None
    help: str = ""

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` (possibly a CLI string) to this param's type."""
        if isinstance(value, str) and self.type is not str:
            try:
                if self.type is bool:
                    lowered = value.lower()
                    if lowered in ("1", "true", "yes", "on"):
                        value = True
                    elif lowered in ("0", "false", "no", "off"):
                        value = False
                    else:
                        raise ValueError(value)
                else:
                    value = self.type(value)
            except ValueError as exc:
                raise ScenarioError(
                    f"param {self.name!r}: cannot parse {value!r} as "
                    f"{self.type.__name__}"
                ) from exc
        if not isinstance(value, self.type):
            # Allow int-where-float (JSON round trips drop the distinction).
            if self.type is float and isinstance(value, int):
                value = float(value)
            else:
                raise ScenarioError(
                    f"param {self.name!r}: expected {self.type.__name__}, "
                    f"got {type(value).__name__} ({value!r})"
                )
        if self.choices is not None and value not in self.choices:
            raise ScenarioError(
                f"param {self.name!r}: {value!r} not in {self.choices}"
            )
        return value


@dataclass(frozen=True)
class Scenario:
    """A registered simulation entry point plus its typed parameter space."""

    name: str
    fn: Callable[..., dict]
    params: tuple[Param, ...]
    description: str = ""
    #: Parameter overrides for a fast smoke run (``--tiny``).
    tiny: Mapping[str, Any] = field(default_factory=dict)
    #: Default sweep grid: param name → tuple of values.
    sweep: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    tags: tuple[str, ...] = ()

    def param(self, name: str) -> Param:
        for p in self.params:
            if p.name == name:
                return p
        raise ScenarioError(f"scenario {self.name!r} has no param {name!r}")

    def resolve(self, overrides: Optional[Mapping[str, Any]] = None) -> dict:
        """Full, validated parameter dict: defaults + coerced overrides."""
        overrides = dict(overrides or {})
        resolved = {}
        for p in self.params:
            if p.name in overrides:
                resolved[p.name] = p.coerce(overrides.pop(p.name))
            elif p.default is not None or p.type is type(None):
                resolved[p.name] = p.default
            else:
                raise ScenarioError(
                    f"scenario {self.name!r}: param {p.name!r} has no "
                    f"default and was not provided"
                )
        if overrides:
            raise ScenarioError(
                f"scenario {self.name!r}: unknown params {sorted(overrides)}"
            )
        return resolved

    def run(self, overrides: Optional[Mapping[str, Any]] = None) -> dict:
        """Resolve parameters and execute the scenario in-process."""
        return self.fn(**self.resolve(overrides))


_REGISTRY: dict[str, Scenario] = {}
_BUILTINS_LOADED = False


def register(sc: Scenario) -> Scenario:
    """Register a scenario (idempotent re-registration of the same module)."""
    existing = _REGISTRY.get(sc.name)
    if existing is not None and existing.fn.__module__ != sc.fn.__module__:
        raise ScenarioError(
            f"scenario name {sc.name!r} already registered by "
            f"{existing.fn.__module__}"
        )
    _REGISTRY[sc.name] = sc
    return sc


def scenario(
    name: str,
    params: Sequence[Param],
    description: str = "",
    tiny: Optional[Mapping[str, Any]] = None,
    sweep: Optional[Mapping[str, Sequence[Any]]] = None,
    tags: Sequence[str] = (),
) -> Callable:
    """Decorator: register the wrapped function as a campaign scenario.

    The function must accept the declared params as keyword arguments and
    return a JSON-serialisable dict of result values.
    """

    def deco(fn: Callable[..., dict]) -> Callable[..., dict]:
        doc_first_line = next(iter((fn.__doc__ or "").strip().splitlines()), "")
        register(Scenario(
            name=name,
            fn=fn,
            params=tuple(params),
            description=description or doc_first_line,
            tiny=dict(tiny or {}),
            sweep={k: tuple(v) for k, v in (sweep or {}).items()},
            tags=tuple(tags),
        ))
        return fn

    return deco


def load_builtins() -> None:
    """Import every module known to register scenarios (once per process)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    for modname in BUILTIN_SCENARIO_MODULES:
        importlib.import_module(modname)
    _BUILTINS_LOADED = True


def get_scenario(name: str) -> Scenario:
    load_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise ScenarioError(
            f"unknown scenario {name!r}; known: {known}"
        ) from None


def all_scenarios() -> dict[str, Scenario]:
    load_builtins()
    return dict(sorted(_REGISTRY.items()))
