"""Deterministic job sharding: split one sweep across hosts.

A shard is one of ``K`` disjoint slices of a planned job list, selected
round-robin by job index (``i % K == shard``), so heterogeneous parameter
points — a sweep axis where one end is 100x slower than the other — spread
evenly over the shards instead of one host drawing every slow point.

Sharding changes *which* jobs a host runs, never *what* a job is: per-job
seeds and cache keys come from the planner and are untouched, so the union
of ``K`` shard runs is byte-equivalent (via
:meth:`~repro.campaign.cache.ResultCache.deterministic_view`) to one
serial run of the same sweep.  The only requirement is the planner's
stable total order, which :func:`~repro.campaign.planner.plan_grid` and
:func:`~repro.campaign.planner.plan_points` already guarantee — grid
expansion is a deterministic cartesian product, point lists keep their
given order.

``--shard i/K`` on the CLI uses zero-based indices: a three-host sweep is
``--shard 0/3``, ``--shard 1/3``, ``--shard 2/3``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Sequence, Union

__all__ = ["ShardSpec", "as_shard", "shard_cache_name"]

_SHARD_RE = re.compile(r"^(\d+)/(\d+)$")


@dataclass(frozen=True)
class ShardSpec:
    """One slice of a sharded sweep: shard ``index`` of ``count`` total."""

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ValueError(
                f"shard index {self.index} outside [0, {self.count})"
            )

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse ``"i/K"`` (zero-based: ``0/3``, ``1/3``, ``2/3``)."""
        m = _SHARD_RE.match(text.strip())
        if m is None:
            raise ValueError(
                f"bad shard spec {text!r}: expected I/K, e.g. 0/3"
            )
        return cls(index=int(m.group(1)), count=int(m.group(2)))

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"

    def select(self, jobs: Sequence) -> list:
        """This shard's slice of ``jobs`` (round-robin by job index)."""
        return [job for i, job in enumerate(jobs) if i % self.count == self.index]


def as_shard(spec: Union[ShardSpec, str, None]) -> Optional[ShardSpec]:
    """Coerce a CLI string / ShardSpec / None into an Optional[ShardSpec]."""
    if spec is None or isinstance(spec, ShardSpec):
        return spec
    return ShardSpec.parse(spec)


def shard_cache_name(shard: ShardSpec, base: str = "results") -> str:
    """The per-shard result file name (``results.shard-1-of-3.jsonl``)."""
    return f"{base}.shard-{shard.index}-of-{shard.count}.jsonl"
