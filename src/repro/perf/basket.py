"""The perf basket: fixed scenario mixes whose throughput we track per PR.

Seven baskets cover the simulator's load profiles:

* **small-message** — message-rate-bound pingpongs (64 B), every protocol;
* **large-message** — bandwidth-bound 64 KiB pingpongs (16 packets/msg),
  the fabric serialization pipeline dominates;
* **storage-trace** — SPC-style trace replay over the RAID cluster, both
  RDMA and sPIN protocols (deep pipelines, heavy contention);
* **app-scale** — full-application trace matching at 16 ranks;
* **congestion** — incast and permutation mixes on the congestion fabric
  (per-link routed walks dominate; added with the fabric in PR 4);
* **kernel-ops** — pure event-queue churn with no model code, isolating
  the calendar/heap core itself (added with the calendar queue in PR 6);
* **serving** — million-client population serving: fluid arrival
  callbacks, streaming sketch inserts, Zipf draws, windowed SLO tracking
  (added with the population driver in PR 10).

``run_baskets`` executes each basket under a :class:`KernelMeter` and
reports wall seconds, kernel events, and events/sec.  ``python -m
repro.campaign perf`` is the CLI; ``BENCH_<n>.json`` files committed at the
repo root record the trajectory (see ROADMAP "Performance tracking").

Basket definitions are append-only by convention: changing an existing
basket invalidates the committed trajectory, so add a new basket instead.
"""

from __future__ import annotations

import json
import platform
import sys
from typing import Callable, Optional

from repro.perf.meter import KernelMeter

__all__ = ["BASKETS", "compare_to_baseline", "run_baskets"]


def _small_message(scale: int) -> None:
    from repro.experiments.pingpong import PINGPONG_MODES, pingpong_half_rtt_ns

    for _ in range(2 * scale):
        for mode in PINGPONG_MODES:
            pingpong_half_rtt_ns(64, mode, "int")


def _large_message(scale: int) -> None:
    from repro.experiments.pingpong import PINGPONG_MODES, pingpong_half_rtt_ns

    for _ in range(scale):
        for mode in PINGPONG_MODES:
            pingpong_half_rtt_ns(65536, mode, "int")
        pingpong_half_rtt_ns(262144, "rdma", "int")
        pingpong_half_rtt_ns(262144, "spin_stream", "int")


def _storage_trace(scale: int) -> None:
    from repro.storage.spc import (
        generate_financial_trace,
        generate_websearch_trace,
        replay_trace_ns,
    )

    fin = generate_financial_trace(nops=30 * scale, seed=11)
    web = generate_websearch_trace(nops=30 * scale, seed=11)
    for mode in ("rdma", "spin"):
        replay_trace_ns(fin, mode, "int")
        replay_trace_ns(web, mode, "int")


def _app_scale(scale: int) -> None:
    from repro.apps.simulator import matching_speedup
    from repro.apps.tracegen import APP_TRACES

    for app in ("MILC", "POP"):
        gen = APP_TRACES[app][0]
        matching_speedup(gen(nprocs=16, iters=scale), eager_threshold=16384)


def _congestion(scale: int) -> None:
    from repro.campaign.registry import get_scenario

    incast = get_scenario("incast_load")
    permutation = get_scenario("permutation_traffic")
    for _ in range(scale):
        incast.run({"fanin": 8, "count": 16, "seed": 3})
        permutation.run({"nhosts": 16, "shift": 4, "count": 8,
                         "routing": "ecmp", "seed": 3})
        permutation.run({"nhosts": 16, "shift": 4, "count": 8,
                         "routing": "dmodk", "seed": 3})


def _kernel_ops(scale: int) -> None:
    """Pure event-kernel churn: no machines, just the queue core.

    The scenario baskets are dominated by model code (NIC chains, fabric,
    matching), so a queue-core regression can hide inside their noise.
    This basket schedules and drains events with no model at all,
    exercising every queue path the simulator leans on: same-bucket
    pushes, far-future pushes (ring rotations / overflow), urgent-vs-
    normal priority ties, mid-drain nested scheduling, and cancellations.
    The mix is a fixed xorshift64 stream — identical run to run.
    """
    from repro.des.engine import _BUCKET_SHIFT, PRIORITY_URGENT, Environment

    bucket = 1 << _BUCKET_SHIFT
    for rep in range(scale):
        env = Environment()
        seed = 88172645463325252 + rep

        def rng() -> int:
            nonlocal seed
            seed ^= (seed << 13) & 0xFFFFFFFFFFFFFFFF
            seed ^= seed >> 7
            seed ^= (seed << 17) & 0xFFFFFFFFFFFFFFFF
            return seed

        def tick(depth: int) -> None:
            # Mid-drain push: what driver chains do on every hop.
            if depth:
                r = rng()
                delay = r % (bucket if r & 1 else 64 * bucket)
                env.schedule_fn(delay, lambda: tick(depth - 1),
                                PRIORITY_URGENT if r & 4 else 1)

        handles = []
        for _ in range(2000):
            r = rng()
            if r & 7 == 0:
                delay = bucket * (r % 512)     # far: rotations/overflow
            else:
                delay = r % (2 * bucket)       # near: current/adjacent
            if r & 3 == 0:
                handles.append(env.schedule_callback(delay, lambda: None))
            else:
                env.schedule_fn(delay, lambda: tick(2))
        for handle in handles[::2]:
            handle.cancel()
        env.run()


def _serving(scale: int) -> None:
    """Million-client serving mixes on the aggregated population stack.

    Exercises the paths the other baskets never touch: fluid arrival
    callbacks (machine-repairman rate engine), streaming sketch inserts
    on every latency record, Zipf key draws, and windowed SLO tracking.
    The population stays at the scenario default (10^6 clients) — the
    whole point is that cost scales with requests, not clients.
    """
    from repro.campaign.registry import get_scenario

    kv = get_scenario("kv_serving")
    tenants = get_scenario("tenant_overload")
    for rep in range(scale):
        kv.run({"requests": 1500, "window_ns": 60_000.0, "seed": 3 + rep})
        tenants.run({"tenants": 2, "population": 50_000, "requests": 600,
                     "window_ns": 40_000.0, "seed": 3 + rep})


#: name -> (workload fn taking a scale factor, full-run scale, tiny scale)
#: Tiny scales are sized so each measurement window is tens of ms at least;
#: shorter windows make events/sec hostage to a single scheduler preemption.
BASKETS: dict[str, tuple[Callable[[int], None], int, int]] = {
    "small-message": (_small_message, 400, 8),
    "large-message": (_large_message, 60, 2),
    "storage-trace": (_storage_trace, 12, 2),
    "app-scale": (_app_scale, 6, 1),
    "congestion": (_congestion, 12, 1),
    "kernel-ops": (_kernel_ops, 120, 8),
    "serving": (_serving, 10, 1),
}


def run_baskets(
    tiny: bool = False,
    names: Optional[list[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
    repeats: int = 1,
) -> dict:
    """Run the basket and return the measurement document (JSON-ready).

    ``repeats`` re-runs each basket and keeps the best (lowest-wall)
    measurement — one scheduler preemption inside a short window otherwise
    halves events/sec, so regression gates should use ``repeats >= 3``
    (matching how committed BENCH numbers are captured).
    """
    wanted = names or list(BASKETS)
    unknown = [n for n in wanted if n not in BASKETS]
    if unknown:
        raise ValueError(f"unknown baskets {unknown}; known: {list(BASKETS)}")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    baskets = {}
    for name in wanted:
        fn, full_scale, tiny_scale = BASKETS[name]
        scale = tiny_scale if tiny else full_scale
        fn(1)  # warm imports and caches out of the timed window
        best = None
        for _ in range(repeats):
            with KernelMeter() as meter:
                fn(scale)
            if best is None or meter.wall_s < best.wall_s:
                best = meter
        baskets[name] = {
            "scale": scale,
            "wall_s": round(best.wall_s, 4),
            "kernel_events": best.events,
            "events_per_sec": round(best.events_per_sec, 1),
            "environments": best.environments,
        }
        if progress is not None:
            progress(
                f"{name:>14}: {best.events} events in {best.wall_s:.2f}s "
                f"-> {best.events_per_sec:,.0f} events/s"
            )
    return {
        "tiny": tiny,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "baskets": baskets,
    }


def compare_to_baseline(measured: dict, baseline: dict) -> dict:
    """Per-basket events/sec ratios of ``measured`` over ``baseline``.

    Both arguments are measurement documents from :func:`run_baskets` (the
    baseline typically parsed from a committed ``BENCH_<n>.json``'s
    ``"baseline"`` key).  Baskets missing on either side are skipped.
    """
    ratios = {}
    for name, m in measured.get("baskets", {}).items():
        b = baseline.get("baskets", {}).get(name)
        if b and b.get("events_per_sec"):
            ratios[name] = round(m["events_per_sec"] / b["events_per_sec"], 3)
    return ratios


def load_bench(path) -> dict:
    """Parse a committed BENCH_*.json."""
    with open(path) as fh:
        return json.load(fh)
