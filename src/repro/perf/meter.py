"""Kernel event metering.

A :class:`KernelMeter` hooks :mod:`repro.des.engine` so every
:class:`~repro.des.engine.Environment` created while the meter is active
registers itself; at exit the meter sums each environment's scheduled-event
counter.  This measures *kernel events per second* without threading the
environment through every scenario API — scenarios keep returning plain
result dicts.

"Kernel events" are heap entries pushed onto the event queue (timeouts,
process resumptions, fire-and-forget callbacks).  The fabric fast path is
push-structure-preserving (see ``network/fabric.py``), so counts are
comparable across the slow and fast paths and across code versions.
"""

from __future__ import annotations

import time

from repro.des import engine as _engine

__all__ = ["KernelMeter"]


class KernelMeter:
    """Context manager: count kernel events scheduled inside the window.

    Usage::

        with KernelMeter() as meter:
            run_scenario(...)
        print(meter.events, meter.wall_s, meter.events_per_sec)

    Nested meters raise, so basket items cannot double-count each other.
    """

    def __init__(self) -> None:
        self._envs: list = []
        self._flushed: int = 0
        self.events: int = 0
        self.environments: int = 0
        self.wall_s: float = 0.0
        self._t0: float = 0.0

    def register(self, env) -> None:
        """Called by Environment.__init__ while this meter is installed.

        Session checkout also registers *reused* (pooled) environments, so
        a metered window sees events from sessions built before it opened.
        Idempotent — repeated checkouts of one env register it once.
        """
        if env not in self._envs:
            self._envs.append(env)

    def flush(self, count: int) -> None:
        """Bank events from an environment about to be rewound.

        ``Environment.reset()`` (session reuse) zeroes the scheduled-event
        counter; the count up to that point is accumulated here so pooling
        never under-reports a metered window.
        """
        self._flushed += count

    def __enter__(self) -> "KernelMeter":
        if _engine._METER is not None:
            raise RuntimeError("another KernelMeter is already active")
        _engine._METER = self
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.wall_s = time.perf_counter() - self._t0
        _engine._METER = None
        self.events = self._flushed + sum(env._seq for env in self._envs)
        self.environments = len(self._envs)
        self._envs.clear()

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def stats(self) -> dict:
        """JSON-ready measurement snapshot (telemetry reports).

        Only meaningful after the metered window closed; inside the
        window the totals have not been summed yet.
        """
        return {
            "events": self.events,
            "environments": self.environments,
            "wall_s": round(self.wall_s, 6),
            "events_per_sec": round(self.events_per_sec, 1),
        }
