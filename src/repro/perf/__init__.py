"""Simulator performance tracking.

The paper's whole premise is sustaining line-rate packet processing; the
reproduction mirrors that by making *simulator* throughput (kernel events
per wall-clock second) a first-class, tracked metric.

* :mod:`repro.perf.meter` — counts kernel events across every Environment
  created inside a measurement window.
* :mod:`repro.perf.basket` — a fixed basket of scenarios (small-message,
  large-message, storage-trace, app-scale) measured by
  ``python -m repro.campaign perf``; results land in ``BENCH_<n>.json``.
"""

from repro.perf.meter import KernelMeter
from repro.perf.basket import BASKETS, run_baskets, compare_to_baseline

__all__ = ["BASKETS", "KernelMeter", "compare_to_baseline", "run_baskets"]
