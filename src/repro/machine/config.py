"""Machine configuration presets (paper §4.2 and §4.3).

Two NIC attachments are modelled:

* **discrete** ("dis") — PCIe 4.0 x32: DMA latency 250 ns, 64 GiB/s
  (G ≈ 15.6 ps/B);
* **integrated** ("int") — on-chip, memory-controller attached: DMA latency
  50 ns, full memory bandwidth 150 GiB/s (G ≈ 6.7 ps/B).

Host: eight 2.5 GHz cores, 8 MiB cache (not modelled explicitly), 51 ns DRAM
latency, 150 GiB/s.  NIC: four 2.5 GHz ARM Cortex-A15-class HPUs with
single-cycle scratchpad (k = 1), hardware matching at 30 ns per header packet
and 2 ns per CAM hit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.des.engine import ns
from repro.network.loggp import LogGPParams, NetworkParams

__all__ = [
    "HostParams",
    "MachineConfig",
    "NICParams",
    "discrete_config",
    "integrated_config",
]


@dataclass(frozen=True)
class HostParams:
    """Host CPU and memory-system parameters."""

    cores: int = 8
    clock_ghz: float = 2.5
    dram_latency_ps: int = ns(51)
    mem_G_ps_per_byte: float = 6.7          # 150 GiB/s
    #: Time for a polling CPU to observe a NIC completion (one DRAM round
    #: trip for the completion-queue entry).
    poll_cost_ps: int = ns(51)
    #: CPU-side MPI matching cost per message (queue walk + bookkeeping);
    #: comparable to the NIC's 30 ns hardware matching, software is slower.
    match_cost_ps: int = ns(60)
    #: Haswell cores are wide out-of-order; relative to the in-order A15
    #: HPUs (IPC = 1) we credit the host with this many instructions/cycle.
    ipc: float = 2.0

    def cycles_to_ps(self, cycles: float) -> int:
        """Convert a host instruction count to picoseconds (IPC-adjusted)."""
        return max(0, round(cycles / (self.clock_ghz * self.ipc) * 1_000))


@dataclass(frozen=True)
class NICParams:
    """NIC microarchitecture parameters."""

    attachment: str = "discrete"            # "discrete" | "integrated"
    dma_latency_ps: int = ns(250)
    dma_G_ps_per_byte: float = 15.6         # 64 GiB/s
    header_match_ps: int = ns(30)
    cam_lookup_ps: int = ns(2)
    hpu_count: int = 4
    hpu_clock_ghz: float = 2.5
    scratchpad_cycles: int = 1              # k: HPU memory access cost
    #: Packets that may wait for an HPU before flow control trips (§3.2).
    max_pending_packets: int = 256
    #: Per-descriptor DMA engine overhead (doorbell + descriptor fetch),
    #: charged once per transfer on the engine.  This is what makes many
    #: tiny transfers slow (Fig 7a's small-block regime).
    dma_per_op_ps: int = ns(10)

    def hpu_cycles_to_ps(self, cycles: float) -> int:
        """Convert HPU cycles to picoseconds (IPC = 1 per §4.2)."""
        return max(0, round(cycles / self.hpu_clock_ghz * 1_000))


@dataclass(frozen=True)
class MachineConfig:
    """Everything needed to instantiate one simulated machine + network."""

    host: HostParams = field(default_factory=HostParams)
    nic: NICParams = field(default_factory=NICParams)
    network: NetworkParams = field(default_factory=NetworkParams)
    #: Default host memory arena per process, bytes (numpy-backed).
    host_memory_bytes: int = 16 * 1024 * 1024

    def __hash__(self) -> int:
        # The dataclass-generated hash recurses through every nested
        # params dataclass; the session pool hashes configs on each
        # checkout/release, so memoize it (all parts are frozen).
        h = getattr(self, "_hash", None)
        if h is None:
            h = hash((self.host, self.nic, self.network,
                      self.host_memory_bytes))
            object.__setattr__(self, "_hash", h)
        return h

    @property
    def loggp(self) -> LogGPParams:
        return self.network.loggp

    def with_nic(self, **kwargs) -> "MachineConfig":
        return replace(self, nic=replace(self.nic, **kwargs))

    def with_host(self, **kwargs) -> "MachineConfig":
        return replace(self, host=replace(self.host, **kwargs))

    def with_network(self, **kwargs) -> "MachineConfig":
        """Copy with some :class:`NetworkParams` fields replaced (radix,
        link queue depth, routing policy, switch/wire delays)."""
        return replace(self, network=replace(self.network, **kwargs))


#: Cross-pod endpoint latency in the 36-port fat tree (5 switches +
#: 6 wires): the worst-case pair the microbenchmarks use.
CROSS_POD_LATENCY_PS = NetworkParams().latency_for_hops(5)


#: Memoized name → config instances.  MachineConfig is frozen (as are its
#: parts), so handing every caller the same object is safe — and experiment
#: code resolves "int"/"dis" once per simulated session, which adds up in
#: construction-heavy perf baskets.
_CONFIG_CACHE: dict = {}


def config_by_name(name: str, **nic_overrides) -> MachineConfig:
    """'int' / 'dis' → the §4.3 machine configurations."""
    if not nic_overrides:
        cached = _CONFIG_CACHE.get(name)
        if cached is not None:
            return cached
    if name in ("int", "integrated"):
        config = integrated_config(**nic_overrides)
    elif name in ("dis", "discrete"):
        config = discrete_config(**nic_overrides)
    else:
        raise ValueError(f"unknown config {name!r} (use 'int' or 'dis')")
    if not nic_overrides:
        _CONFIG_CACHE[name] = config
    return config


def discrete_config(**nic_overrides) -> MachineConfig:
    """The paper's discrete ("dis") NIC: PCIe-attached, L=250 ns, 64 GiB/s."""
    nic = NICParams(
        attachment="discrete",
        dma_latency_ps=ns(250),
        dma_G_ps_per_byte=15.6,
        **nic_overrides,
    )
    return MachineConfig(nic=nic)


def integrated_config(**nic_overrides) -> MachineConfig:
    """The paper's integrated ("int") NIC: on-chip, L=50 ns, 150 GiB/s."""
    nic = NICParams(
        attachment="integrated",
        dma_latency_ps=ns(50),
        dma_G_ps_per_byte=6.7,
        **nic_overrides,
    )
    return MachineConfig(nic=nic)
