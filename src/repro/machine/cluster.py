"""Machine and cluster assembly.

A :class:`Machine` wires together one rank's host memory, CPU, memory port,
DMA engine, Portals NI, and NIC model.  A :class:`Cluster` builds N machines
on a shared fat-tree fabric — the complete simulated system of §4.2.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.des.engine import Environment, Event
from repro.des.resources import Server
from repro.des.trace import Timeline
from repro.machine.config import MachineConfig, discrete_config
from repro.machine.dma import DMAEngine
from repro.machine.host import HostCPU, HostMemory
from repro.machine.nic import BaselineNIC
from repro.network.congestion import CongestionFabric
from repro.network.fabric import Fabric
from repro.network.packets import Message, reset_msg_ids
from repro.network.topology import FatTree
from repro.portals.counters import Counter
from repro.portals.events import EventQueue, PortalsEvent
from repro.portals.limits import NILimits
from repro.portals.matching import MatchEntry
from repro.portals.ni import MemoryDescriptor, NetworkInterface

__all__ = ["Cluster", "FABRIC_FLAVOURS", "Machine"]

#: Fabric model registry: flavour name → fabric class.  ``"loggp"`` is the
#: contention-free pipe the paper assumes (full bisection, endpoint-only
#: contention); ``"congestion"`` adds routed paths and per-link queues.
FABRIC_FLAVOURS = {
    "loggp": Fabric,
    "congestion": CongestionFabric,
}


#: Shared NILimits instances keyed by MTU — frozen dataclass, so every
#: Machine with the same MTU can use the same object instead of re-running
#: the dataclass machinery per rank.
_LIMITS_BY_MTU: dict[int, NILimits] = {}


def _limits_for_mtu(mtu: int) -> NILimits:
    limits = _LIMITS_BY_MTU.get(mtu)
    if limits is None:
        limits = _LIMITS_BY_MTU[mtu] = NILimits(max_payload_size=mtu)
    return limits


class Machine:
    """One simulated endpoint: host + NIC + DMA + Portals NI."""

    def __init__(
        self,
        env: Environment,
        rank: int,
        config: MachineConfig,
        fabric: Fabric,
        timeline: Optional[Timeline] = None,
        noise: Any = None,
        nic_factory: Callable[[Environment, "Machine"], BaselineNIC] = BaselineNIC,
        with_memory: bool = True,
    ):
        self.env = env
        self.rank = rank
        self.config = config
        self.fabric = fabric
        self.timeline = timeline or Timeline(enabled=False)
        self.memory: Optional[HostMemory] = (
            HostMemory(config.host_memory_bytes) if with_memory else None
        )
        self.mem_port = Server(env, name=f"mem[{rank}]")
        self.cpu = HostCPU(
            env, config.host, self.mem_port, rank=rank, noise=noise,
            timeline=self.timeline,
        )
        limits = _limits_for_mtu(config.loggp.mtu)
        self.ni = NetworkInterface(rank, limits=limits, memory=self.memory)
        self.dma = DMAEngine(
            env,
            config.nic,
            self.mem_port,
            memory=self.memory,
            rank=rank,
            timeline=self.timeline,
            mem_G_ps_per_byte=config.host.mem_G_ps_per_byte,
        )
        self.nic = nic_factory(env, self)
        fabric.attach(rank, self.nic.on_packet)

    def reset(self) -> None:
        """Restore construction state (cluster reuse; see Session pooling).

        Pooled clusters are built ``with_memory=False``; a machine that
        does own a memory arena cannot be handed to a new tenant (stale
        bytes where a fresh arena guarantees zeros), so reset refuses.
        """
        if self.memory is not None:
            raise ValueError("cannot reset a machine with a host memory arena")
        self.mem_port.reset()
        self.cpu.reset()
        self.ni.reset()
        self.dma.reset()
        self.nic.reset()

    # -- Portals conveniences --------------------------------------------------
    def new_eq(self, capacity: int = 1 << 16) -> EventQueue:
        return EventQueue(capacity=capacity, name=f"eq[{self.rank}]")

    def new_counter(self, name: str = "") -> Counter:
        return Counter(name=name or f"ct[{self.rank}]")

    def post_me(self, pt_index: int, entry: MatchEntry, overflow: bool = False) -> MatchEntry:
        if pt_index not in self.ni.portal_table:
            self.ni.pt_alloc(pt_index)
        return self.ni.me_append(pt_index, entry, overflow=overflow)

    def bind_md(self, md: MemoryDescriptor) -> MemoryDescriptor:
        return self.ni.md_bind(md)

    # -- host-initiated operations (charge o on a core) ----------------------
    def host_put(
        self,
        target: int,
        nbytes: int,
        match_bits: int = 0,
        pt_index: int = 0,
        payload=None,
        offset: int = 0,
        hdr_data: int = 0,
        user_hdr: Any = None,
        ack: bool = False,
        md: Optional[MemoryDescriptor] = None,
        from_host: bool = True,
    ) -> Generator[object, object, Event]:
        """PtlPut from this host; returns the injection-done event."""
        yield from self.cpu.run(self.config.loggp.o_ps, "post")
        msg = Message(
            source=self.rank,
            target=target,
            length=nbytes,
            kind="put",
            match_bits=match_bits,
            offset=offset,
            hdr_data=hdr_data,
            user_hdr=user_hdr,
            payload=payload,
            meta={
                "pt_index": pt_index,
                "ack": ack,
                "md_id": md.md_id if md else -1,
            },
        )
        return self.nic.send(msg, from_host=from_host)

    def host_put_fn(
        self,
        target: int,
        nbytes: int,
        k: Any,
        match_bits: int = 0,
        pt_index: int = 0,
        payload=None,
        offset: int = 0,
        hdr_data: int = 0,
        user_hdr: Any = None,
        ack: bool = False,
        md: Optional[MemoryDescriptor] = None,
        from_host: bool = True,
    ) -> None:
        """Chain flavour of :meth:`host_put`: ``k(done)`` gets the
        injection-done event once the post overhead has been charged.

        Same kernel events at the same positions as the generator (the
        ``o`` charge on a core, then the NIC send), minus the process
        scaffolding; see :meth:`HostCPU.run_fn`.
        """
        def posted() -> None:
            msg = Message(
                source=self.rank,
                target=target,
                length=nbytes,
                kind="put",
                match_bits=match_bits,
                offset=offset,
                hdr_data=hdr_data,
                user_hdr=user_hdr,
                payload=payload,
                meta={
                    "pt_index": pt_index,
                    "ack": ack,
                    "md_id": md.md_id if md else -1,
                },
            )
            k(self.nic.send(msg, from_host=from_host))

        self.cpu.run_fn(self.config.loggp.o_ps, "post", posted)

    def host_get(
        self,
        target: int,
        nbytes: int,
        match_bits: int = 0,
        pt_index: int = 0,
        get_offset: int = 0,
        reply_offset: int = 0,
        md: Optional[MemoryDescriptor] = None,
    ) -> Generator[object, object, Event]:
        """PtlGet from this host; the reply lands in ``md``."""
        yield from self.cpu.run(self.config.loggp.o_ps, "post")
        msg = Message(
            source=self.rank,
            target=target,
            length=0,
            kind="get",
            match_bits=match_bits,
            meta={
                "pt_index": pt_index,
                "get_length": nbytes,
                "get_offset": get_offset,
                "reply_offset": reply_offset,
                "md_id": md.md_id if md else -1,
            },
        )
        return self.nic.send(msg, from_host=False)

    def wait_event(self, eq: EventQueue) -> Generator[object, object, PortalsEvent]:
        """Block until an event arrives, then charge the poll cost."""
        gate = self.env.event()
        eq.on_next(gate.succeed)
        event: PortalsEvent = yield gate
        yield from self.cpu.poll()
        return event


class Cluster:
    """N machines on one fabric — the complete simulated system."""

    def __init__(
        self,
        nprocs: int,
        config: Optional[MachineConfig] = None,
        nic_factory: Callable[..., BaselineNIC] = BaselineNIC,
        topology: Any = None,
        noise: Any = None,
        trace: bool = False,
        with_memory: bool = True,
        fabric: str = "loggp",
    ):
        self.config = config or discrete_config()
        reset_msg_ids()  # fresh id space: traces are run-to-run identical
        self.env = Environment()
        self.timeline = Timeline(enabled=trace)
        if topology is None:
            topology = FatTree(params=self.config.network, nhosts=max(nprocs, 2))
        self.topology = topology
        try:
            fabric_cls = FABRIC_FLAVOURS[fabric]
        except KeyError:
            raise ValueError(
                f"unknown fabric flavour {fabric!r} "
                f"(use {sorted(FABRIC_FLAVOURS)})"
            ) from None
        self.fabric = fabric_cls(
            self.env, topology, self.config.network, timeline=self.timeline
        )
        self.machines = [
            Machine(
                self.env,
                rank,
                self.config,
                self.fabric,
                timeline=self.timeline,
                noise=noise,
                nic_factory=nic_factory,
                with_memory=with_memory,
            )
            for rank in range(nprocs)
        ]

    def __len__(self) -> int:
        return len(self.machines)

    def __getitem__(self, rank: int) -> Machine:
        return self.machines[rank]

    def crash(self, rank: int) -> int:
        """Fail-stop node ``rank`` mid-run (fault injection).

        Detaches it from the fabric (inbound packets are dropped), marks
        it dead so in-flight sends from its own HPUs/host vanish instead
        of raising, and reaps its stalled receive states.  Returns the
        reap count.  Crashes are permanent for the run — there is no
        rejoin protocol in this model.
        """
        machine = self.machines[rank]
        self.fabric.detach(rank)
        self.fabric.mark_dead(rank)
        return machine.nic.reap_stalled()

    def reset(self) -> None:
        """Rewind the whole system to its just-built state (reuse).

        Equivalent to constructing a fresh cluster with the same spec: the
        kernel rewinds to t=0 with seq 0, the message-id space restarts
        (same invariant as construction — one active cluster per process),
        and every machine and the fabric restore their construction state.
        Raises if the DES still has pending events.
        """
        self.env.reset()
        reset_msg_ids()
        self.timeline.clear()
        for machine in self.machines:
            machine.reset()
        self.fabric.reset()

    def run(self, until=None):
        return self.env.run(until=until)

    @property
    def now_ns(self) -> float:
        return self.env.now_ns
