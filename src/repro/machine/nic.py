"""Baseline NIC models: RDMA and Portals 4 (no sPIN).

The receive pipeline implements §4.2's hardware matching: a header packet
searches the full match list (30 ns) and installs a channel in a CAM; every
following packet of the message hits the CAM (2 ns).  Matching proceeds in
parallel with the network gap because the match unit is its own server.

Matched put data is DMA-written to host memory packet by packet; the
message's completion actions (events, counters — which may fire triggered
operations — and ACKs) run once all packets have arrived *and* all DMA
writes are durable.  Get requests are served by DMA-reading the matched
region and streaming a reply message back.

The sPIN NIC (:class:`repro.core.nic.SpinNIC`) subclasses this model and
reroutes matched messages whose ME carries a handler binding.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.des.engine import Environment, Event
from repro.des.resources import Server
from repro.network.packets import Message, Packet
from repro.portals.events import PortalsEvent
from repro.portals.matching import MatchResult
from repro.portals.types import EventKind

__all__ = ["BaselineNIC"]


class _MessageRx:
    """Receiver-side state for one in-flight message."""

    __slots__ = (
        "message",
        "match",
        "bytes_seen",
        "packets_seen",
        "dma_events",
        "dropped_bytes",
        "finished",
        "extra",
    )

    def __init__(self, message: Message, match: Optional[MatchResult]):
        self.message = message
        self.match = match
        self.bytes_seen = 0
        self.packets_seen = 0
        self.dma_events: list[Event] = []
        self.dropped_bytes = 0
        self.finished = False
        self.extra: dict = {}

    @property
    def complete(self) -> bool:
        return self.bytes_seen + self.dropped_bytes >= self.message.length


class BaselineNIC:
    """An RDMA / Portals 4 NIC attached to one machine."""

    def __init__(self, env: Environment, machine) -> None:
        self.env = env
        self.machine = machine
        self.rank = machine.rank
        self.params = machine.config.nic
        self.loggp = machine.config.loggp
        self.timeline = machine.timeline
        #: Serializes match-unit work; pipelined with packet arrivals.
        self.match_unit = Server(env, f"match[{self.rank}]")
        self._rx: dict[int, _MessageRx] = {}
        self.messages_received = 0
        self.messages_sent = 0

    # ------------------------------------------------------------------ RX --
    def on_packet(self, pkt: Packet) -> None:
        """Fabric delivery entry point (one process per packet)."""
        self.env.process(self._rx_packet(pkt), name=f"rx[{self.rank}]")

    def _rx_packet(self, pkt: Packet) -> Generator:
        msg = pkt.message
        state = self._rx.get(msg.msg_id)
        if pkt.is_header:
            start = self.env.now
            yield from self.match_unit.serve(self.params.header_match_ps)
            self.timeline.record(self.rank, "NIC", start, self.env.now, "match")
            match = self._match_message(msg)
            state = _MessageRx(msg, match)
            self._rx[msg.msg_id] = state
            yield from self._on_header_matched(state, pkt)
        else:
            start = self.env.now
            yield from self.match_unit.serve(self.params.cam_lookup_ps)
            self.timeline.record(self.rank, "NIC", start, self.env.now, "cam")
            state = self._rx[msg.msg_id]

        yield from self._deliver_packet(state, pkt)
        state.packets_seen += 1
        if state.complete and not state.finished:
            state.finished = True
            yield from self._finish_message(state)
            del self._rx[msg.msg_id]

    def _match_message(self, msg: Message) -> Optional[MatchResult]:
        """Route the header through Portals matching (None for ack/reply)."""
        if msg.kind in ("ack", "reply"):
            return None
        pt_index = msg.meta.get("pt_index", 0)
        kind = "get" if msg.kind == "get" else "put"
        length = msg.meta.get("get_length", msg.length) if kind == "get" else msg.length
        return self.machine.ni.match(
            pt_index,
            msg.source,
            msg.match_bits,
            kind=kind,
            length=length,
            requested_offset=msg.offset,
            header_meta={"hdr_data": msg.hdr_data, "user_hdr": msg.user_hdr},
        )

    def _on_header_matched(self, state: _MessageRx, pkt: Packet) -> Generator:
        """Hook for subclasses (sPIN header handlers).  Default: nothing."""
        return
        yield  # pragma: no cover - makes this a generator

    # -- per-packet data movement ----------------------------------------
    def _deliver_packet(self, state: _MessageRx, pkt: Packet) -> Generator:
        msg = state.message
        if msg.kind in ("put", "atomic"):
            if state.match is None or not state.match.matched:
                state.dropped_bytes += pkt.payload_len
                pt = self._pt_for(msg)
                if pt is not None:
                    pt.record_drop(pkt.payload_len)
                return
            yield from self._deposit_put_packet(state, pkt)
        elif msg.kind == "reply":
            yield from self._deposit_reply_packet(state, pkt)
        elif msg.kind in ("get", "ack"):
            state.bytes_seen += pkt.payload_len  # header-only messages
        else:
            raise ValueError(f"unknown message kind {msg.kind!r}")

    def _deposit_put_packet(self, state: _MessageRx, pkt: Packet) -> Generator:
        entry = state.match.entry
        offset = entry.start + state.match.deposit_offset + pkt.payload_offset
        completion = yield from self.machine.dma.write(
            offset if self.machine.memory is not None else 0,
            pkt.payload,
            nbytes=pkt.payload_len,
            label=f"rx m{state.message.msg_id}",
        )
        state.dma_events.append(completion)
        state.bytes_seen += pkt.payload_len

    def _deposit_reply_packet(self, state: _MessageRx, pkt: Packet) -> Generator:
        msg = state.message
        md = self.machine.ni.mds.get(msg.meta.get("md_id", -1))
        base = (md.start if md else 0) + msg.meta.get("reply_offset", 0)
        completion = yield from self.machine.dma.write(
            base + pkt.payload_offset,
            pkt.payload,
            nbytes=pkt.payload_len,
            label=f"rx-reply m{msg.msg_id}",
        )
        state.dma_events.append(completion)
        state.bytes_seen += pkt.payload_len

    # -- message completion ---------------------------------------------------
    def _finish_message(self, state: _MessageRx) -> Generator:
        msg = state.message
        if state.dma_events:
            yield self.env.all_of(state.dma_events)
        self.messages_received += 1
        if msg.kind in ("put", "atomic"):
            yield from self._complete_put(state)
        elif msg.kind == "get":
            yield from self._serve_get(state)
        elif msg.kind == "reply":
            self._complete_initiator(msg, EventKind.REPLY)
        elif msg.kind == "ack":
            self._complete_initiator(msg, EventKind.ACK)

    def _complete_put(self, state: _MessageRx) -> Generator:
        msg = state.message
        match = state.match
        if match is None or not match.matched:
            return  # dropped: flow-control event was already raised
        entry = match.entry
        if entry.counter is not None:
            entry.counter.increment(1, nbytes=state.bytes_seen)
        if entry.event_queue is not None:
            kind = (
                EventKind.PUT_OVERFLOW
                if match.list_name == "overflow"
                else EventKind.PUT
            )
            entry.event_queue.push(
                PortalsEvent(
                    kind=kind,
                    initiator=msg.source,
                    match_bits=msg.match_bits,
                    length=msg.length,
                    offset=match.deposit_offset,
                    hdr_data=msg.hdr_data,
                    user_ptr=entry.user_ptr,
                    when_ps=self.env.now,
                    meta={"user_hdr": msg.user_hdr},
                )
            )
        if msg.meta.get("ack"):
            ack = Message(
                source=self.rank,
                target=msg.source,
                length=0,
                kind="ack",
                match_bits=msg.match_bits,
                meta={"md_id": msg.meta.get("md_id", -1), "acked_bytes": msg.length},
            )
            yield from self._send_now(ack, from_host=False)

    def _serve_get(self, state: _MessageRx) -> Generator:
        msg = state.message
        match = state.match
        if match is None or not match.matched:
            return
        entry = match.entry
        nbytes = msg.meta.get("get_length", 0)
        src_offset = entry.start + msg.meta.get("get_offset", 0)
        data = yield from self.machine.dma.read(
            src_offset, nbytes, label=f"get m{msg.msg_id}"
        )
        if entry.counter is not None:
            entry.counter.increment(1, nbytes=nbytes)
        if entry.event_queue is not None:
            entry.event_queue.push(
                PortalsEvent(
                    kind=EventKind.GET,
                    initiator=msg.source,
                    match_bits=msg.match_bits,
                    length=nbytes,
                    when_ps=self.env.now,
                    user_ptr=entry.user_ptr,
                )
            )
        reply = Message(
            source=self.rank,
            target=msg.source,
            length=nbytes,
            kind="reply",
            payload=data,
            match_bits=msg.match_bits,
            meta={
                "md_id": msg.meta.get("md_id", -1),
                "reply_offset": msg.meta.get("reply_offset", 0),
            },
        )
        yield from self._send_now(reply, from_host=False)

    def _complete_initiator(self, msg: Message, kind: EventKind) -> None:
        md = self.machine.ni.mds.get(msg.meta.get("md_id", -1))
        if md is None:
            return
        if md.counter is not None:
            md.counter.increment(1, nbytes=msg.meta.get("acked_bytes", msg.length))
        if md.event_queue is not None:
            md.event_queue.push(
                PortalsEvent(
                    kind=kind,
                    initiator=msg.source,
                    match_bits=msg.match_bits,
                    length=msg.length,
                    when_ps=self.env.now,
                )
            )

    # ------------------------------------------------------------------- TX --
    def send(self, msg: Message, from_host: bool = True) -> Event:
        """Queue a message for transmission; returns the injection-done event.

        ``from_host`` charges the source-side DMA staging (L + first-packet
        fill at the DMA rate) and streams the remaining bytes through the
        memory port in the background — NIC sends from device buffers
        (sPIN put-from-device, ACKs, get replies) skip all of that.
        """
        return self.env.process(
            self._send_now(msg, from_host), name=f"tx[{self.rank}]"
        )

    def _send_now(self, msg: Message, from_host: bool) -> Generator:
        self.messages_sent += 1
        if from_host and msg.length > 0:
            yield self.env.timeout(self.machine.dma.latency_ps)
            first = min(msg.length, self.loggp.mtu)
            yield from self.machine.mem_port.serve(
                self.params.dma_per_op_ps + round(first * self.machine.dma.G_eff)
            )
            rest = msg.length - first
            if rest > 0:
                # Remaining bytes stream behind the wire; account their
                # memory-port occupancy without blocking injection.
                self.env.process(
                    self.machine.mem_port.serve(round(rest * self.machine.dma.G_eff)),
                    name=f"dma-stage[{self.rank}]",
                )
        done = self.machine.fabric.inject(msg)
        yield done
        return self.env.now

    # -- misc ------------------------------------------------------------------
    def _pt_for(self, msg: Message):
        try:
            return self.machine.ni.pt(msg.meta.get("pt_index", 0))
        except Exception:
            return None
