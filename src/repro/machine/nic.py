"""Baseline NIC models: RDMA and Portals 4 (no sPIN).

The receive pipeline implements §4.2's hardware matching: a header packet
searches the full match list (30 ns) and installs a channel in a CAM; every
following packet of the message hits the CAM (2 ns).  Matching proceeds in
parallel with the network gap because the match unit is its own server.

Matched put data is DMA-written to host memory packet by packet; the
message's completion actions (events, counters — which may fire triggered
operations — and ACKs) run once all packets have arrived *and* all DMA
writes are durable.  Get requests are served by DMA-reading the matched
region and streaming a reply message back.

The sPIN NIC (:class:`repro.core.nic.SpinNIC`) subclasses this model and
reroutes matched messages whose ME carries a handler binding.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.des.engine import PRIORITY_URGENT, Environment, Event, env_flag
from repro.des.resources import ServeChain, Server
from repro.network.packets import Message, Packet
from repro.portals.events import PortalsEvent
from repro.portals.matching import MatchResult
from repro.portals.types import EventKind

__all__ = ["BaselineNIC"]


def _fast_rx_default() -> bool:
    return env_flag("REPRO_NIC_FAST_RX")


class _MessageRx:
    """Receiver-side state for one in-flight message."""

    __slots__ = (
        "message",
        "match",
        "bytes_seen",
        "packets_seen",
        "dma_events",
        "dropped_bytes",
        "finished",
        "extra",
    )

    def __init__(self, message: Message, match: Optional[MatchResult]):
        self.message = message
        self.match = match
        self.bytes_seen = 0
        self.packets_seen = 0
        self.dma_events: list[Event] = []
        self.dropped_bytes = 0
        self.finished = False
        self.extra: dict = {}

    @property
    def complete(self) -> bool:
        return self.bytes_seen + self.dropped_bytes >= self.message.length


class _RxChain:
    """Callback-driven receive pipeline for one non-header packet.

    Push-structure mirror of ``_rx_packet``'s generator path: the pseudo
    URGENT begin stands in for the process initialize, the match-unit and
    memory-port requests are the same FIFO Request events the generator
    would issue, and the service completions are fire-and-forget callbacks
    at the positions of the generator's serve timeouts.  Deposits for
    baseline-mode put/atomic/reply packets run inline; anything needing
    model logic beyond the plain deposit (sPIN handler modes) is handed
    back to the generator tail via ``process_inline``, which preserves the
    event order exactly.

    Subclasses of :class:`BaselineNIC` that change ``_deliver_packet``
    semantics for *baseline-mode* packets must set ``fast_rx = False``.
    """

    __slots__ = ("nic", "pkt", "state", "req", "t0", "bw", "offset", "nbytes",
                 "data", "reply")

    def __init__(self, nic: "BaselineNIC", pkt: Packet):
        self.nic = nic
        self.pkt = pkt
        self.state: Optional[_MessageRx] = None
        self.req = None
        self.t0 = 0
        self.bw = 0
        self.offset = 0
        self.nbytes = 0
        self.data = None
        self.reply = False

    def _begin(self) -> None:
        """Mirrors the rx process initialize: issue the match-unit lookup."""
        nic = self.nic
        self.t0 = nic.env._now
        self.req = req = nic.match_unit.request()
        if req.callbacks is None:
            self._match_granted(req)
        else:
            req.callbacks.append(self._match_granted)

    def _match_granted(self, _event: Event) -> None:
        nic = self.nic
        params = nic.params
        dur = params.header_match_ps if self.pkt.is_header else params.cam_lookup_ps
        nic.env.schedule_fn(dur, self._match_done)

    def _match_done(self) -> None:
        """Match-unit service done: account, release, dispatch the deposit."""
        nic = self.nic
        env = nic.env
        now = env._now
        pkt = self.pkt
        msg = pkt.message
        mu = nic.match_unit
        params = nic.params
        is_header = pkt.is_header
        dur = params.header_match_ps if is_header else params.cam_lookup_ps
        mu.busy_time += dur
        mu.jobs_served += 1
        mu.release(self.req)
        self.req = None
        if nic.timeline.enabled:
            nic.timeline.record(
                nic.rank, "NIC", self.t0, now, "match" if is_header else "cam"
            )
        if is_header:
            match = nic._match_message(msg)
            self.state = state = _MessageRx(msg, match)
            nic._rx[msg.msg_id] = state
            hook = nic._header_hook(state, pkt)
            if hook is not None:
                # Header handlers (sPIN): generator path, inline.
                env.process_inline(
                    nic._hook_tail(hook, state, pkt), name=nic._rx_name
                )
                return
        else:
            self.state = state = nic._rx.get(msg.msg_id)
            if state is None:
                # Unknown flow: the header packet was lost in the network
                # (congestion tail-drop), so there is no channel to deposit
                # into — drop the packet, as real NICs do.
                nic.rx_orphan_packets += 1
                return
            mode = state.extra.get("mode", "baseline")
            if mode == "process":
                # sPIN payload handlers: the dispatch itself is yield-free
                # (flow-control checks + HPU process spawn) — run it inline.
                nic._spin_payload(state, pkt)
                self._after_deposit()
                return
            if mode == "drop":
                state.dropped_bytes += pkt.payload_len
                self._after_deposit()
                return
            if mode == "undecided":
                # Header handler still running: the generator path waits on
                # its completion event.
                env.process_inline(nic._rx_tail(state, pkt), name=nic._rx_name)
                return
            # "baseline" and "proceed" both take the plain deposit below.
        if msg.kind in ("put", "atomic"):
            if state.match is None or not state.match.matched:
                state.dropped_bytes += pkt.payload_len
                pt = nic._pt_for(msg)
                if pt is not None:
                    pt.record_drop(pkt.payload_len)
                self._after_deposit()
                return
            entry = state.match.entry
            offset = entry.start + state.match.deposit_offset + pkt.payload_offset
            self.offset = offset if nic.machine.memory is not None else 0
            self.reply = False
        elif msg.kind == "reply":
            md = nic.machine.ni.mds.get(msg.meta.get("md_id", -1))
            base = (md.start if md else 0) + msg.meta.get("reply_offset", 0)
            self.offset = base + pkt.payload_offset
            self.reply = True
        elif msg.kind in ("get", "ack"):
            # Header-only kinds; mirrored for completeness.
            state.bytes_seen += pkt.payload_len
            self._after_deposit()
            return
        else:
            raise ValueError(f"unknown message kind {msg.kind!r}")
        # -- the DMA write toward host memory (mirrors DMAEngine.write) --
        self.data = pkt.payload
        self.nbytes = pkt.payload_len
        dma = nic.machine.dma
        self.t0 = now
        self.bw = dma._bw_ps(self.nbytes)
        self.req = req = dma.mem_port.request()
        if req.callbacks is None:
            self._mem_granted(req)
        else:
            req.callbacks.append(self._mem_granted)

    def _mem_granted(self, _event: Event) -> None:
        self.nic.env.schedule_fn(self.bw, self._mem_done)

    def _mem_done(self) -> None:
        """Memory-port service done: durability callback + bookkeeping."""
        nic = self.nic
        env = nic.env
        dma = nic.machine.dma
        port = dma.mem_port
        port.busy_time += self.bw
        port.jobs_served += 1
        port.release(self.req)
        self.req = None
        nbytes = self.nbytes
        dma.bytes_written += nbytes
        if dma.timeline.enabled:
            msg_id = self.pkt.message.msg_id
            label = f"rx-reply m{msg_id}" if self.reply else f"rx m{msg_id}"
            dma.timeline.record(dma.rank, "DMA", self.t0, env._now, label)
        completed = Event(env)
        memory, offset, data = dma.memory, self.offset, self.data

        def land() -> None:
            if memory is not None and data is not None and nbytes:
                memory.write(offset, data)
            completed.succeed(env._now)

        env.schedule_fn(dma.latency_ps, land)
        state = self.state
        state.dma_events.append(completed)
        state.bytes_seen += nbytes
        self._after_deposit()

    def _after_deposit(self) -> None:
        state = self.state
        state.packets_seen += 1
        if state.complete and not state.finished:
            state.finished = True
            nic = self.nic
            nic.env.process_inline(nic._finish_tail(state), name=nic._rx_name)


class _SendChain:
    """Callback-driven host-send staging pipeline for one message.

    Push-structure mirror of ``_send_now`` with ``from_host=True``: pseudo
    initialize (URGENT), the DMA request latency, the memory-port fill of
    the first packet (real FIFO request), the background staging of the
    remaining bytes (:class:`ServeChain`), then the fabric injection.  The
    ``done`` event fires at the position the wrapper process would have
    completed, with the same value (the injection-finish time).
    """

    __slots__ = ("nic", "msg", "done", "bw", "req")

    def __init__(self, nic: "BaselineNIC", msg: Message):
        self.nic = nic
        self.msg = msg
        self.done = Event(nic.env)
        self.bw = 0
        self.req = None
        # Begin synchronously (no URGENT 0-delay hop): _staged's timestamp
        # is identical and the counter bump is not simulation-visible.
        nic.messages_sent += 1
        nic.env.schedule_fn(nic.machine.dma.latency_ps, self._staged)

    def _staged(self) -> None:
        nic = self.nic
        first = min(self.msg.length, nic.loggp.mtu)
        dma = nic.machine.dma
        self.bw = nic.params.dma_per_op_ps + round(first * dma.G_eff)
        self.req = req = nic.machine.mem_port.request()
        if req.callbacks is None:
            self._granted(req)
        else:
            req.callbacks.append(self._granted)

    def _granted(self, _event: Event) -> None:
        self.nic.env.schedule_fn(self.bw, self._filled)

    def _filled(self) -> None:
        nic = self.nic
        port = nic.machine.mem_port
        port.busy_time += self.bw
        port.jobs_served += 1
        port.release(self.req)
        self.req = None
        rest = self.msg.length - min(self.msg.length, nic.loggp.mtu)
        if rest > 0:
            # Remaining bytes stream behind the wire; account their
            # memory-port occupancy without blocking injection.
            ServeChain(port, round(rest * nic.machine.dma.G_eff))
        injected = nic.machine.fabric.inject(self.msg)
        injected.callbacks.append(self._injected)

    def _injected(self, _event: Event) -> None:
        self.done.succeed(self.nic.env._now)


class BaselineNIC:
    """An RDMA / Portals 4 NIC attached to one machine."""

    #: Fault-injection hook (see :mod:`repro.faults`): when set on an
    #: instance, ``(label, code) -> code`` is consulted after each handler
    #: invocation on sPIN NICs.  A class-level ``None`` keeps the default
    #: path to a single identity test.
    _handler_fault = None

    #: Observer probe slots (see :mod:`repro.obs`), both neutral
    #: class-level ``None`` defaults set as *instance* attributes by an
    #: attached observer — pure readers, never scheduling kernel events:
    #:
    #: * ``_obs_msg_probe``: ``(rank, now_ps, message) -> None``, fired
    #:   when a received message completes (all packets arrived, DMA
    #:   durable) on both the baseline and sPIN completion paths;
    #: * ``_obs_hpu_probe``: ``(rank, now_ps, waiting) -> None``, fired by
    #:   the sPIN NIC after each payload-packet dispatch with the HPU
    #:   input-queue depth (the §3.2 flow-control signal).
    _obs_msg_probe = None
    _obs_hpu_probe = None

    def __init__(self, env: Environment, machine) -> None:
        self.env = env
        self.machine = machine
        self.rank = machine.rank
        self.params = machine.config.nic
        self.loggp = machine.config.loggp
        self.timeline = machine.timeline
        #: Serializes match-unit work; pipelined with packet arrivals.
        self.match_unit = Server(env, f"match[{self.rank}]")
        self._rx: dict[int, _MessageRx] = {}
        self._rx_name = f"rx[{self.rank}]"
        self._tx_name = f"tx[{self.rank}]"
        #: Packets take the callback chain (:class:`_RxChain`) instead of a
        #: generator process; structure-preserving, so traces are identical
        #: — disable to force the generator path everywhere.
        self.fast_rx = _fast_rx_default()
        self.messages_received = 0
        self.messages_sent = 0
        #: Non-header packets with no rx state (their header packet was
        #: dropped upstream by the congestion fabric).
        self.rx_orphan_packets = 0

    def reset(self) -> None:
        """Restore construction state (cluster reuse; see Session pooling)."""
        self.match_unit.reset()
        self._rx.clear()
        self.messages_received = 0
        self.messages_sent = 0
        self.rx_orphan_packets = 0
        # Drop any instance-level fault/observer hooks back to the class
        # defaults.
        self.__dict__.pop("_handler_fault", None)
        self.__dict__.pop("_obs_msg_probe", None)
        self.__dict__.pop("_obs_hpu_probe", None)

    @property
    def pending_rx(self) -> int:
        """In-flight receiver message states (``_MessageRx`` entries)."""
        return len(self._rx)

    @property
    def rx_stalled_messages(self) -> int:
        """Messages whose remaining payload can never arrive.

        A message whose header was matched but whose payload packets were
        tail-dropped by the congestion fabric stays incomplete forever —
        no retransmission in this model.  While the simulation is running
        an incomplete state may still be fed; once the DES has quiesced,
        every incomplete state counts here (and leaks unless reaped).
        """
        return sum(1 for state in self._rx.values() if not state.finished)

    def reap_stalled(self) -> int:
        """Drop rx states that never finished; returns how many.

        Call after the DES has drained: the silence is definitive, so the
        per-message state (match result, pending DMA events, payload
        buffers) is unreachable bookkeeping — exactly the leak this
        repairs.  Finished states are mid-completion continuations and are
        left alone.
        """
        stalled = [msg_id for msg_id, state in self._rx.items()
                   if not state.finished]
        for msg_id in stalled:
            del self._rx[msg_id]
        return len(stalled)

    # ------------------------------------------------------------------ RX --
    def on_packet(self, pkt: Packet) -> None:
        """Fabric delivery entry point (one pipeline per packet)."""
        if self.fast_rx:
            # Begin synchronously: match-unit requests join the FIFO in
            # delivery order either way, and every downstream timestamp is
            # unchanged — the URGENT 0-delay hop only cost a queue trip.
            _RxChain(self, pkt)._begin()
        else:
            self.env.process(self._rx_packet(pkt), name=self._rx_name)

    def _rx_packet(self, pkt: Packet) -> Generator:
        msg = pkt.message
        if pkt.is_header:
            start = self.env.now
            yield from self.match_unit.serve(self.params.header_match_ps)
            self.timeline.record(self.rank, "NIC", start, self.env.now, "match")
            match = self._match_message(msg)
            state = _MessageRx(msg, match)
            self._rx[msg.msg_id] = state
            hook = self._header_hook(state, pkt)
            if hook is not None:
                yield from hook
        else:
            start = self.env.now
            yield from self.match_unit.serve(self.params.cam_lookup_ps)
            self.timeline.record(self.rank, "NIC", start, self.env.now, "cam")
            state = self._rx.get(msg.msg_id)
            if state is None:
                # Unknown flow (header lost to congestion tail-drop): no
                # channel to deposit into — drop, as real NICs do.
                self.rx_orphan_packets += 1
                return

        yield from self._rx_tail(state, pkt)

    def _rx_tail(self, state: _MessageRx, pkt: Packet) -> Generator:
        """Everything after matching: deposit, bookkeeping, completion."""
        yield from self._deliver_packet(state, pkt)
        state.packets_seen += 1
        if state.complete and not state.finished:
            state.finished = True
            yield from self._finish_message(state)
            del self._rx[state.message.msg_id]

    def _finish_tail(self, state: _MessageRx) -> Generator:
        """Completion continuation for the fast RX chain."""
        yield from self._finish_message(state)
        del self._rx[state.message.msg_id]

    def _hook_tail(self, hook: Generator, state: _MessageRx,
                   pkt: Packet) -> Generator:
        """Header-handler continuation for the fast RX chain."""
        yield from hook
        yield from self._rx_tail(state, pkt)

    def _match_message(self, msg: Message) -> Optional[MatchResult]:
        """Route the header through Portals matching (None for ack/reply)."""
        if msg.kind in ("ack", "reply"):
            return None
        pt_index = msg.meta.get("pt_index", 0)
        kind = "get" if msg.kind == "get" else "put"
        length = msg.meta.get("get_length", msg.length) if kind == "get" else msg.length
        return self.machine.ni.match(
            pt_index,
            msg.source,
            msg.match_bits,
            kind=kind,
            length=length,
            requested_offset=msg.offset,
            header_meta={"hdr_data": msg.hdr_data, "user_hdr": msg.user_hdr},
        )

    def _header_hook(self, state: _MessageRx,
                     pkt: Packet) -> Optional[Generator]:
        """Hook for subclasses (sPIN header handlers).

        Called synchronously right after matching; return a generator to
        run timed header work, or None when the message takes the plain
        deposit path (which lets the fast RX chain stay inline).
        """
        return None

    # -- per-packet data movement ----------------------------------------
    def _deliver_packet(self, state: _MessageRx, pkt: Packet) -> Generator:
        msg = state.message
        if msg.kind in ("put", "atomic"):
            if state.match is None or not state.match.matched:
                state.dropped_bytes += pkt.payload_len
                pt = self._pt_for(msg)
                if pt is not None:
                    pt.record_drop(pkt.payload_len)
                return
            yield from self._deposit_put_packet(state, pkt)
        elif msg.kind == "reply":
            yield from self._deposit_reply_packet(state, pkt)
        elif msg.kind in ("get", "ack"):
            state.bytes_seen += pkt.payload_len  # header-only messages
        else:
            raise ValueError(f"unknown message kind {msg.kind!r}")

    def _deposit_put_packet(self, state: _MessageRx, pkt: Packet) -> Generator:
        entry = state.match.entry
        offset = entry.start + state.match.deposit_offset + pkt.payload_offset
        completion = yield from self.machine.dma.write(
            offset if self.machine.memory is not None else 0,
            pkt.payload,
            nbytes=pkt.payload_len,
            label=f"rx m{state.message.msg_id}",
        )
        state.dma_events.append(completion)
        state.bytes_seen += pkt.payload_len

    def _deposit_reply_packet(self, state: _MessageRx, pkt: Packet) -> Generator:
        msg = state.message
        md = self.machine.ni.mds.get(msg.meta.get("md_id", -1))
        base = (md.start if md else 0) + msg.meta.get("reply_offset", 0)
        completion = yield from self.machine.dma.write(
            base + pkt.payload_offset,
            pkt.payload,
            nbytes=pkt.payload_len,
            label=f"rx-reply m{msg.msg_id}",
        )
        state.dma_events.append(completion)
        state.bytes_seen += pkt.payload_len

    # -- message completion ---------------------------------------------------
    def _finish_message(self, state: _MessageRx) -> Generator:
        msg = state.message
        if state.dma_events:
            evs = state.dma_events
            # A 1-element AllOf is just its event; skip the extra hop.
            yield evs[0] if len(evs) == 1 else self.env.all_of(evs)
        self.messages_received += 1
        if self._obs_msg_probe is not None:
            self._obs_msg_probe(self.rank, self.env.now, msg)
        if msg.kind in ("put", "atomic"):
            yield from self._complete_put(state)
        elif msg.kind == "get":
            yield from self._serve_get(state)
        elif msg.kind == "reply":
            self._complete_initiator(msg, EventKind.REPLY)
        elif msg.kind == "ack":
            self._complete_initiator(msg, EventKind.ACK)

    def _complete_put(self, state: _MessageRx) -> Generator:
        msg = state.message
        match = state.match
        if match is None or not match.matched:
            return  # dropped: flow-control event was already raised
        entry = match.entry
        if entry.counter is not None:
            entry.counter.increment(1, nbytes=state.bytes_seen)
        if entry.event_queue is not None:
            kind = (
                EventKind.PUT_OVERFLOW
                if match.list_name == "overflow"
                else EventKind.PUT
            )
            entry.event_queue.push(
                PortalsEvent(
                    kind=kind,
                    initiator=msg.source,
                    match_bits=msg.match_bits,
                    length=msg.length,
                    offset=match.deposit_offset,
                    hdr_data=msg.hdr_data,
                    user_ptr=entry.user_ptr,
                    when_ps=self.env.now,
                    meta={"user_hdr": msg.user_hdr},
                )
            )
        if msg.meta.get("ack"):
            ack = Message(
                source=self.rank,
                target=msg.source,
                length=0,
                kind="ack",
                match_bits=msg.match_bits,
                meta={"md_id": msg.meta.get("md_id", -1), "acked_bytes": msg.length},
            )
            yield from self._send_now(ack, from_host=False)

    def _serve_get(self, state: _MessageRx) -> Generator:
        msg = state.message
        match = state.match
        if match is None or not match.matched:
            return
        entry = match.entry
        nbytes = msg.meta.get("get_length", 0)
        src_offset = entry.start + msg.meta.get("get_offset", 0)
        data = yield from self.machine.dma.read(
            src_offset, nbytes, label=f"get m{msg.msg_id}"
        )
        if entry.counter is not None:
            entry.counter.increment(1, nbytes=nbytes)
        if entry.event_queue is not None:
            entry.event_queue.push(
                PortalsEvent(
                    kind=EventKind.GET,
                    initiator=msg.source,
                    match_bits=msg.match_bits,
                    length=nbytes,
                    when_ps=self.env.now,
                    user_ptr=entry.user_ptr,
                )
            )
        reply = Message(
            source=self.rank,
            target=msg.source,
            length=nbytes,
            kind="reply",
            payload=data,
            match_bits=msg.match_bits,
            meta={
                "md_id": msg.meta.get("md_id", -1),
                "reply_offset": msg.meta.get("reply_offset", 0),
            },
        )
        yield from self._send_now(reply, from_host=False)

    def _complete_initiator(self, msg: Message, kind: EventKind) -> None:
        md = self.machine.ni.mds.get(msg.meta.get("md_id", -1))
        if md is None:
            return
        if md.counter is not None:
            md.counter.increment(1, nbytes=msg.meta.get("acked_bytes", msg.length))
        if md.event_queue is not None:
            md.event_queue.push(
                PortalsEvent(
                    kind=kind,
                    initiator=msg.source,
                    match_bits=msg.match_bits,
                    length=msg.length,
                    when_ps=self.env.now,
                )
            )

    # ------------------------------------------------------------------- TX --
    def send(self, msg: Message, from_host: bool = True) -> Event:
        """Queue a message for transmission; returns the injection-done event.

        ``from_host`` charges the source-side DMA staging (L + first-packet
        fill at the DMA rate) and streams the remaining bytes through the
        memory port in the background — NIC sends from device buffers
        (sPIN put-from-device, ACKs, get replies) skip all of that and hand
        the message straight to the fabric, no wrapper process needed.
        """
        if not from_host or msg.length == 0:
            self.messages_sent += 1
            return self.machine.fabric.inject(msg)
        if self.fast_rx:  # one switch governs both NIC fast paths
            return _SendChain(self, msg).done
        return self.env.process(
            self._send_now(msg, from_host), name=self._tx_name
        )

    def _send_now(self, msg: Message, from_host: bool) -> Generator:
        self.messages_sent += 1
        if from_host and msg.length > 0:
            yield self.env.timeout(self.machine.dma.latency_ps)
            first = min(msg.length, self.loggp.mtu)
            yield from self.machine.mem_port.serve(
                self.params.dma_per_op_ps + round(first * self.machine.dma.G_eff)
            )
            rest = msg.length - first
            if rest > 0:
                # Remaining bytes stream behind the wire; account their
                # memory-port occupancy without blocking injection.
                self.env.process(
                    self.machine.mem_port.serve(round(rest * self.machine.dma.G_eff)),
                    name=self._tx_name,
                )
        done = self.machine.fabric.inject(msg)
        yield done
        return self.env.now

    # -- misc ------------------------------------------------------------------
    def _pt_for(self, msg: Message):
        try:
            return self.machine.ni.pt(msg.meta.get("pt_index", 0))
        except Exception:
            return None
