"""Host memory and host CPU models.

``HostMemory`` is a real numpy byte arena with a bump allocator — NIC
deposits and handler DMAs write actual bytes, so every experiment's data
movement is verifiable.  ``HostCPU`` charges timed work on a bounded pool of
cores, routes copies through the shared memory port (where they contend with
NIC DMA traffic — the §5.1 copy-overhead effect), and applies the optional
noise model to CPU work (offloaded progress is immune, §4.4.1).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from repro.des.engine import Environment, Timeout
from repro.des.resources import Resource, Server
from repro.des.trace import Timeline
from repro.machine.config import HostParams
from repro.network.noise import NoNoise

__all__ = ["HostCPU", "HostMemory"]

#: Stateless default noise model: one instance serves every CPU.
_NO_NOISE = NoNoise()


class HostMemory:
    """A process's host memory: numpy arena + bump allocator."""

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError("host memory size must be positive")
        self.data = np.zeros(size, dtype=np.uint8)
        self._brk = 0

    @property
    def size(self) -> int:
        return self.data.size

    def alloc(self, nbytes: int, align: int = 64) -> int:
        """Reserve ``nbytes`` and return the base offset."""
        if nbytes < 0:
            raise ValueError("negative allocation")
        base = -(-self._brk // align) * align
        if base + nbytes > self.size:
            raise MemoryError(
                f"host arena exhausted: need {nbytes} at {base}, have {self.size}"
            )
        self._brk = base + nbytes
        return base

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise IndexError(
                f"host memory access [{offset}, {offset + nbytes}) outside "
                f"[0, {self.size})"
            )

    def write(self, offset: int, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.uint8).ravel()
        self._check(offset, data.size)
        self.data[offset : offset + data.size] = data

    def read(self, offset: int, nbytes: int) -> np.ndarray:
        self._check(offset, nbytes)
        return self.data[offset : offset + nbytes].copy()

    def view(self, offset: int, nbytes: int) -> np.ndarray:
        """Zero-copy window (mutations visible to everyone)."""
        self._check(offset, nbytes)
        return self.data[offset : offset + nbytes]


class HostCPU:
    """Timed host processor: core pool + memory-port traffic + noise."""

    def __init__(
        self,
        env: Environment,
        params: HostParams,
        mem_port: Server,
        rank: int = 0,
        noise: Any = None,
        timeline: Optional[Timeline] = None,
    ):
        self.env = env
        self.params = params
        self.mem_port = mem_port
        self.rank = rank
        self.noise = noise or _NO_NOISE
        self.timeline = timeline or Timeline(enabled=False)
        self.cores = Resource(env, capacity=params.cores)
        self.busy_ps: int = 0

    def reset(self) -> None:
        """Restore construction state (cluster reuse).

        The noise model snaps back to the shared no-noise default: pooled
        clusters are only built with ``noise=None`` (see Session pooling),
        so scenario code that set a per-CPU noise model mid-run must not
        leak it into the next tenant.
        """
        self.busy_ps = 0
        self.noise = _NO_NOISE
        self.cores.reset()

    def stats(self, elapsed_ps: Optional[int] = None) -> dict:
        """JSON-ready CPU accounting (telemetry reports).

        ``busy_frac`` normalises over the whole core pool, mirroring
        :meth:`repro.core.hpu.HPUPool.utilization`.
        """
        elapsed = self.env.now if elapsed_ps is None else elapsed_ps
        return {
            "cores": self.params.cores,
            "busy_ns": self.busy_ps / 1000.0,
            "busy_frac": (self.busy_ps / (elapsed * self.params.cores)
                          if elapsed > 0 else 0.0),
        }

    # -- primitive: timed work on a core ----------------------------------
    def run(self, work_ps: int, label: str = "work") -> Generator:
        """Occupy one core for ``work_ps`` (inflated by noise)."""
        env = self.env
        req = self.cores.request()
        yield req
        start = env._now
        finish = self.noise.finish(start, work_ps)
        try:
            yield Timeout(env, finish - start)
        finally:
            self.cores.release(req)
        now = env._now
        self.busy_ps += now - start
        if self.timeline.enabled:
            self.timeline.record(self.rank, "CPU", start, now, label)

    def run_fn(self, work_ps: int, label: str, k: Any) -> None:
        """Chain flavour of :meth:`run`: ``k()`` fires when the work ends.

        Pushes exactly the kernel events the generator path pushes — the
        core grant (synchronous when uncontended, the identical FIFO queue
        position otherwise) and the finish timeout — so timestamps, trace
        spans, and contention order match the generator byte-for-byte.
        What it skips is the generator resumption machinery; scenario
        fast paths chain through this the way the fabric's ``_TxChain``
        chains through the wire server.
        """
        req = self.cores.request()
        if req.callbacks is None:
            self._run_fn_granted(req, work_ps, label, k)
        else:
            req.callbacks.append(
                lambda _ev: self._run_fn_granted(req, work_ps, label, k))

    def _run_fn_granted(self, req: Any, work_ps: int, label: str, k: Any) -> None:
        env = self.env
        start = env._now
        finish = self.noise.finish(start, work_ps)

        def done() -> None:
            self.cores.release(req)
            now = env._now
            self.busy_ps += now - start
            if self.timeline.enabled:
                self.timeline.record(self.rank, "CPU", start, now, label)
            k()

        env.schedule_fn(finish - start, done)

    def compute_cycles(self, cycles: float, label: str = "compute") -> Generator:
        """Occupy one core for an instruction count (IPC-adjusted)."""
        yield from self.run(self.params.cycles_to_ps(cycles), label)

    # -- memory operations -------------------------------------------------
    def memcpy(self, nbytes: int, label: str = "memcpy") -> Generator:
        """Copy ``nbytes`` through the cores and memory port.

        A copy reads and writes every byte: 2·N bytes of memory-port traffic
        at G_mem.  This is the §5.1 effect — the network deposits at
        50 GiB/s while a local copy effectively moves at 75 GiB/s, so eager
        protocols lose up to ~30 % to the extra copy.
        """
        if nbytes < 0:
            raise ValueError("negative copy size")
        req = self.cores.request()
        yield req
        start = self.env.now
        traffic = round(2 * nbytes * self.params.mem_G_ps_per_byte)
        try:
            yield self.env.timeout(self.params.dram_latency_ps)
            yield from self.mem_port.serve(traffic)
        finally:
            self.cores.release(req)
        # Noise can preempt the copying core as well.
        done = self.noise.finish(start, self.env.now - start)
        if done > self.env.now:
            yield self.env.timeout(done - self.env.now)
        self.busy_ps += self.env.now - start
        self.timeline.record(self.rank, "CPU", start, self.env.now, label)

    def touch(self, nbytes: int, passes: int = 1, label: str = "touch") -> Generator:
        """Stream ``passes``·``nbytes`` through the memory port on a core."""
        req = self.cores.request()
        yield req
        start = self.env.now
        try:
            yield from self.mem_port.serve(
                round(passes * nbytes * self.params.mem_G_ps_per_byte)
            )
        finally:
            self.cores.release(req)
        self.busy_ps += self.env.now - start
        self.timeline.record(self.rank, "CPU", start, self.env.now, label)

    # -- completion observation --------------------------------------------
    def poll(self, label: str = "poll") -> Generator:
        """Charge the cost of observing a NIC completion from memory."""
        yield from self.run(self.params.poll_cost_ps, label)

    def match(self, label: str = "match") -> Generator:
        """Charge the software message-matching cost."""
        yield from self.run(self.params.match_cost_ps, label)
