"""The NIC↔host DMA engine (paper §4.3).

DMA is modelled as a LogGP system with o = g = 0: a transfer of N bytes
costs L (one-way request latency) plus N·G of bandwidth, where (L, G) depend
on the attachment — discrete/PCIe: (250 ns, 15.6 ps/B); integrated:
(50 ns, 6.7 ps/B).  All transfers serialize on the host **memory port**
(min(attachment, memory) bandwidth) where they contend with CPU copies.

Blocking semantics follow the paper's appendix trace discussion:

* ``read`` (DMAFromHost) blocks the issuer for **two** DMA latencies plus
  the bandwidth term — request out, data back;
* ``write`` (DMAToHost) blocks only while the data is pushed into the pipe
  (bandwidth term); durability in host memory lags one further L, delivered
  via the returned completion event.

Atomic CAS / fetch-add are small round trips (2·L + one-word transfer) that
execute their memory update atomically at the *completion* time.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.des.engine import Environment, Event
from repro.des.resources import Server
from repro.des.trace import Timeline
from repro.machine.config import NICParams
from repro.machine.host import HostMemory

__all__ = ["DMAEngine"]


class DMAEngine:
    """One machine's DMA path between NIC/HPUs and host memory."""

    def __init__(
        self,
        env: Environment,
        params: NICParams,
        mem_port: Server,
        memory: Optional[HostMemory] = None,
        rank: int = 0,
        timeline: Optional[Timeline] = None,
        mem_G_ps_per_byte: float = 6.7,
    ):
        self.env = env
        self.params = params
        self.mem_port = mem_port
        self.memory = memory
        self.rank = rank
        self.timeline = timeline or Timeline(enabled=False)
        #: Effective per-byte cost: the slower of the attachment and the
        #: memory system (PCIe bounds the discrete NIC at 64 GiB/s).
        self.G_eff = max(params.dma_G_ps_per_byte, mem_G_ps_per_byte)
        self.bytes_read = 0
        self.bytes_written = 0

    def reset(self) -> None:
        """Zero the transfer accounting (cluster reuse)."""
        self.bytes_read = 0
        self.bytes_written = 0

    def stats(self) -> dict:
        """JSON-ready transfer accounting (telemetry reports)."""
        return {"bytes_read": self.bytes_read,
                "bytes_written": self.bytes_written}

    # -- helpers -----------------------------------------------------------
    def _bw_ps(self, nbytes: int) -> int:
        return self.params.dma_per_op_ps + round(nbytes * self.G_eff)

    @property
    def latency_ps(self) -> int:
        return self.params.dma_latency_ps

    # -- writes -------------------------------------------------------------
    def write(
        self,
        offset: int,
        data,
        nbytes: Optional[int] = None,
        label: str = "dma-w",
    ) -> Generator[object, object, Event]:
        """Push bytes toward host memory; returns a completion event.

        The generator finishes when the issuer may proceed (data accepted by
        the pipe).  The returned event fires when the data is durable in
        host memory — that is when the actual byte mutation happens, so
        readers that respect completion events always see consistent data.
        """
        if nbytes is None:
            nbytes = len(data) if data is not None else 0
        if nbytes < 0:
            raise ValueError("negative DMA size")
        start = self.env.now
        yield from self.mem_port.serve(self._bw_ps(nbytes))
        self.bytes_written += nbytes
        self.timeline.record(self.rank, "DMA", start, self.env.now, label)
        completed = self.env.event()

        def land() -> None:
            if self.memory is not None and data is not None and nbytes:
                self.memory.write(offset, data)
            completed.succeed(self.env.now)

        self.env.schedule_fn(self.latency_ps, land)
        return completed

    def write_blocking(self, offset: int, data, nbytes: Optional[int] = None,
                       label: str = "dma-w") -> Generator:
        """Write and wait for durability (2-sided: bandwidth + L)."""
        completed = yield from self.write(offset, data, nbytes, label)
        yield completed

    # -- reads --------------------------------------------------------------
    def read(
        self, offset: int, nbytes: int, label: str = "dma-r"
    ) -> Generator[object, object, Optional[object]]:
        """Blocking read: 2·L + bandwidth; returns the bytes (or None)."""
        if nbytes < 0:
            raise ValueError("negative DMA size")
        start = self.env.now
        yield self.env.timeout(self.latency_ps)          # request travels out
        yield from self.mem_port.serve(self._bw_ps(nbytes))
        yield self.env.timeout(self.latency_ps)          # data travels back
        self.bytes_read += nbytes
        self.timeline.record(self.rank, "DMA", start, self.env.now, label)
        if self.memory is None:
            return None
        return self.memory.read(offset, nbytes)

    # -- atomics ------------------------------------------------------------
    def _atomic(
        self, label: str, apply: Callable[[], object]
    ) -> Generator[object, object, object]:
        start = self.env.now
        yield self.env.timeout(self.latency_ps)
        yield from self.mem_port.serve(self._bw_ps(8))
        yield self.env.timeout(self.latency_ps)
        self.timeline.record(self.rank, "DMA", start, self.env.now, label)
        return apply()

    def cas(
        self, offset: int, compare: int, swap: int
    ) -> Generator[object, object, tuple[bool, int]]:
        """Atomic 64-bit compare-and-swap on host memory.

        Returns (swapped?, observed value) — on failure the observed value
        is what the caller should retry with (PtlHandlerDMACASNB semantics).
        """

        def apply() -> tuple[bool, int]:
            if self.memory is None:
                return True, compare
            view = self.memory.view(offset, 8)
            current = int.from_bytes(view.tobytes(), "little")
            if current == compare:
                view[:] = bytearray(swap.to_bytes(8, "little"))
                return True, current
            return False, current

        return self._atomic("dma-cas", apply)

    def fetch_add(
        self, offset: int, increment: int
    ) -> Generator[object, object, int]:
        """Atomic 64-bit fetch-and-add on host memory; returns prior value."""

        def apply() -> int:
            if self.memory is None:
                return 0
            view = self.memory.view(offset, 8)
            current = int.from_bytes(view.tobytes(), "little")
            view[:] = bytearray(
                ((current + increment) & ((1 << 64) - 1)).to_bytes(8, "little")
            )
            return current

        return self._atomic("dma-fadd", apply)
