"""Timed machine models: host CPU, host memory, DMA, and baseline NICs.

This package charges the costs of the paper's §4.2/§4.3 system model:

* host: eight 2.5 GHz Haswell-class cores, 51 ns DRAM latency, 150 GiB/s
  memory bandwidth;
* DMA: LogGP with o = g = 0 and (L, G) = (250 ns, 64 GiB/s) for the discrete
  (PCIe-attached) NIC or (50 ns, 150 GiB/s) for the integrated NIC;
* NIC: hardware matching — 30 ns full-list search for header packets, 2 ns
  CAM lookup for the rest — plus event/counter/ACK/triggered machinery.

The sPIN-capable NIC extends :class:`~repro.machine.nic.BaselineNIC` in
:mod:`repro.core.nic`.
"""

from repro.machine.config import (
    HostParams,
    MachineConfig,
    NICParams,
    discrete_config,
    integrated_config,
)
from repro.machine.dma import DMAEngine
from repro.machine.host import HostCPU, HostMemory
from repro.machine.nic import BaselineNIC
from repro.machine.cluster import Cluster, Machine

__all__ = [
    "BaselineNIC",
    "Cluster",
    "DMAEngine",
    "HostCPU",
    "HostMemory",
    "HostParams",
    "Machine",
    "MachineConfig",
    "NICParams",
    "discrete_config",
    "integrated_config",
]
