"""Collective communication schedules.

The NIC-level broadcast protocols live in
:mod:`repro.experiments.broadcast`; this module provides the *schedule*
views shared with the application traces, plus the tree variants §4.4.3
mentions sPIN supports beyond fixed-function offload (double binary trees,
pipelines — ref [30]).
"""

from __future__ import annotations

import math

from repro.handlers_library import binomial_children

__all__ = [
    "binomial_schedule",
    "double_tree_children",
    "pipeline_children",
    "recursive_doubling_rounds",
]


def binomial_schedule(nprocs: int) -> dict[int, list[int]]:
    """rank → children map of the binomial broadcast tree (root 0)."""
    return {rank: binomial_children(rank, nprocs) for rank in range(nprocs)}


def double_tree_children(rank: int, nprocs: int) -> tuple[list[int], list[int]]:
    """Children of ``rank`` in the two trees of a double binary tree.

    Each message half travels down one of two complementary binary trees
    (ref [30]); every non-root node is internal in one tree and a leaf in
    the other, halving the per-node send load for large messages.
    Tree A is the standard in-order binary tree over 0..P-1; tree B is its
    mirror (built over the reversed rank order).
    """

    def inorder_children(r: int, n: int) -> list[int]:
        # In-order binary tree: node r covers an interval; children are the
        # midpoints of the left/right halves.  Simple recursive layout.
        out = []
        # Find r's interval by descending from the root.
        lo, hi = 0, n - 1
        while True:
            mid = (lo + hi) // 2
            if r == mid:
                break
            if r < mid:
                hi = mid - 1
            else:
                lo = mid + 1
        left = (lo, mid - 1)
        right = (mid + 1, hi)
        for a, b in (left, right):
            if a <= b:
                out.append((a + b) // 2)
        return out

    if nprocs <= 1:
        return [], []
    tree_a = inorder_children(rank, nprocs)
    mirror = nprocs - 1 - rank
    tree_b = [nprocs - 1 - c for c in inorder_children(mirror, nprocs)]
    return tree_a, tree_b


def pipeline_children(rank: int, nprocs: int) -> list[int]:
    """Linear pipeline (chain) — optimal for very large broadcasts."""
    return [rank + 1] if rank + 1 < nprocs else []


def recursive_doubling_rounds(nprocs: int) -> list[list[tuple[int, int]]]:
    """Allreduce via recursive doubling: per-round peer exchange pairs.

    For power-of-two P: log2(P) rounds; round k pairs rank r with r XOR
    2^k.  Non-power-of-two falls back to the nearest lower power with a
    fold-in/fold-out round (the classic MPICH scheme, simplified to full
    exchanges for the trace generator's purposes).
    """
    rounds: list[list[tuple[int, int]]] = []
    pow2 = 1 << int(math.log2(nprocs)) if nprocs > 1 else 1
    if pow2 != nprocs:
        # Fold the stragglers into the power-of-two core.
        rounds.append([(r, r - pow2) for r in range(pow2, nprocs)])
    k = 1
    while k < pow2:
        pairs = []
        for r in range(pow2):
            peer = r ^ k
            if r < peer:
                pairs.append((r, peer))
        rounds.append(pairs)
        k <<= 1
    if pow2 != nprocs:
        rounds.append([(r - pow2, r) for r in range(pow2, nprocs)])
    return rounds
