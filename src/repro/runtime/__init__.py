"""MPI-level runtime built on the simulated cluster.

* :mod:`repro.runtime.datatypes` — an MPI derived-datatype engine
  (contiguous / vector / indexed / struct) with numpy-verified pack/unpack
  and the O(1) vector representation §5.2 contrasts with O(n) iovecs;
* :mod:`repro.runtime.msgmatch` — the §5.1 message-matching protocols:
  eager and rendezvous, CPU-progressed (RDMA), NIC-matched (Portals 4),
  and fully offloaded (sPIN handler-issued gets), covering Fig. 5b's
  cases I–IV;
* :mod:`repro.runtime.collectives` — collective schedules (binomial and
  double binary trees, recursive doubling) shared by the broadcast
  experiment and the application traces.
"""

from repro.runtime.datatypes import (
    Contiguous,
    Datatype,
    Indexed,
    Primitive,
    Struct,
    Vector,
    BYTE,
    DOUBLE,
    FLOAT,
    INT32,
)
from repro.runtime.msgmatch import MPIEndpoint, RecvRequest, SendRequest
from repro.runtime.collectives import (
    binomial_schedule,
    double_tree_children,
    recursive_doubling_rounds,
)

__all__ = [
    "BYTE",
    "Contiguous",
    "DOUBLE",
    "Datatype",
    "FLOAT",
    "INT32",
    "Indexed",
    "MPIEndpoint",
    "Primitive",
    "RecvRequest",
    "SendRequest",
    "Struct",
    "Vector",
    "binomial_schedule",
    "double_tree_children",
    "recursive_doubling_rounds",
]
