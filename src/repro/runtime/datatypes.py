"""MPI derived datatypes (§5.2).

Communicated data is often non-contiguous; MPI describes layouts with
derived datatypes.  The paper's point: iovec-style interfaces need O(n)
state for n blocks, while a vector type is the O(1) tuple
⟨start, stride, blocksize, count⟩ that a sPIN handler can interpret per
packet.  This engine provides the classic constructors, block flattening,
and pack/unpack against numpy buffers (the correctness reference for the
Fig. 6/7a handlers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "BYTE",
    "Contiguous",
    "DOUBLE",
    "Datatype",
    "FLOAT",
    "INT32",
    "Indexed",
    "Primitive",
    "Struct",
    "Vector",
]


class Datatype:
    """Base class: a layout over a typed memory region.

    ``size``  — bytes of actual data;
    ``extent`` — span from first to last byte (incl. holes);
    ``blocks()`` — (offset, length) runs of contiguous data, in order.
    """

    size: int
    extent: int

    def blocks(self) -> Iterator[tuple[int, int]]:
        raise NotImplementedError

    # -- derived operations ---------------------------------------------
    def block_table(self) -> np.ndarray:
        """(nblocks, 2) array of [offset, length] — the iovec expansion."""
        table = np.array(list(self.blocks()), dtype=np.int64)
        return table.reshape(-1, 2)

    def pack(self, buffer: np.ndarray) -> np.ndarray:
        """Gather this layout from ``buffer`` into a contiguous array."""
        buffer = np.asarray(buffer, dtype=np.uint8)
        out = np.empty(self.size, dtype=np.uint8)
        pos = 0
        for offset, length in self.blocks():
            out[pos : pos + length] = buffer[offset : offset + length]
            pos += length
        return out

    def unpack(self, packed: np.ndarray, buffer: np.ndarray) -> None:
        """Scatter a contiguous array into ``buffer`` at this layout."""
        packed = np.asarray(packed, dtype=np.uint8)
        if packed.size != self.size:
            raise ValueError(f"packed size {packed.size} != datatype size {self.size}")
        pos = 0
        for offset, length in self.blocks():
            buffer[offset : offset + length] = packed[pos : pos + length]
            pos += length

    def blocks_in_packed_range(self, lo: int, hi: int) -> list[tuple[int, int, int]]:
        """Blocks covering packed bytes [lo, hi): (host_offset, pk_offset, len).

        This is what a sPIN payload handler evaluates per packet: which
        target runs the packet's bytes belong to (packets may arrive in any
        order, so the lookup must be stateless).
        """
        if not 0 <= lo <= hi <= self.size:
            raise ValueError(f"bad packed range [{lo}, {hi}) for size {self.size}")
        out = []
        pos = 0
        for offset, length in self.blocks():
            if pos + length <= lo:
                pos += length
                continue
            if pos >= hi:
                break
            a = max(lo, pos)
            b = min(hi, pos + length)
            out.append((offset + (a - pos), a, b - a))
            pos += length
        return out


@dataclass(frozen=True)
class Primitive(Datatype):
    """A basic type of ``nbytes`` (MPI_BYTE, MPI_INT, MPI_DOUBLE, ...)."""

    nbytes: int
    name: str = "byte"

    def __post_init__(self):
        if self.nbytes <= 0:
            raise ValueError("primitive size must be positive")

    @property
    def size(self) -> int:  # type: ignore[override]
        return self.nbytes

    @property
    def extent(self) -> int:  # type: ignore[override]
        return self.nbytes

    def blocks(self):
        yield (0, self.nbytes)


BYTE = Primitive(1, "byte")
INT32 = Primitive(4, "int32")
FLOAT = Primitive(4, "float")
DOUBLE = Primitive(8, "double")


@dataclass(frozen=True)
class Contiguous(Datatype):
    """``count`` back-to-back copies of ``base`` (MPI_Type_contiguous)."""

    count: int
    base: Datatype = BYTE

    def __post_init__(self):
        if self.count < 0:
            raise ValueError("negative count")

    @property
    def size(self) -> int:  # type: ignore[override]
        return self.count * self.base.size

    @property
    def extent(self) -> int:  # type: ignore[override]
        return self.count * self.base.extent

    def blocks(self):
        run_start = None
        run_len = 0
        for i in range(self.count):
            base_off = i * self.base.extent
            for offset, length in self.base.blocks():
                pos = base_off + offset
                if run_start is not None and pos == run_start + run_len:
                    run_len += length
                else:
                    if run_start is not None:
                        yield (run_start, run_len)
                    run_start, run_len = pos, length
        if run_start is not None:
            yield (run_start, run_len)


@dataclass(frozen=True)
class Vector(Datatype):
    """⟨count, blocklen, stride⟩ of ``base`` elements (MPI_Type_vector).

    ``stride`` is in base-extent units: distance between block starts.
    """

    count: int
    blocklen: int
    stride: int
    base: Datatype = BYTE

    def __post_init__(self):
        if self.count < 0 or self.blocklen < 0:
            raise ValueError("negative count/blocklen")
        if self.stride < self.blocklen:
            raise ValueError("stride smaller than blocklen (overlap)")

    @property
    def size(self) -> int:  # type: ignore[override]
        return self.count * self.blocklen * self.base.size

    @property
    def extent(self) -> int:  # type: ignore[override]
        if self.count == 0:
            return 0
        return ((self.count - 1) * self.stride + self.blocklen) * self.base.extent

    def blocks(self):
        unit = self.base.extent
        blk = self.blocklen * unit
        for j in range(self.count):
            yield (j * self.stride * unit, blk)


@dataclass(frozen=True)
class Indexed(Datatype):
    """Explicit (blocklen, displacement) pairs (MPI_Type_indexed), O(n)."""

    blocklens: tuple[int, ...]
    displacements: tuple[int, ...]
    base: Datatype = BYTE

    def __post_init__(self):
        if len(self.blocklens) != len(self.displacements):
            raise ValueError("blocklens and displacements differ in length")
        if any(b < 0 for b in self.blocklens):
            raise ValueError("negative block length")

    @property
    def size(self) -> int:  # type: ignore[override]
        return sum(self.blocklens) * self.base.size

    @property
    def extent(self) -> int:  # type: ignore[override]
        if not self.blocklens:
            return 0
        unit = self.base.extent
        return max(
            (d + b) * unit for d, b in zip(self.displacements, self.blocklens)
        )

    def blocks(self):
        unit = self.base.extent
        for blocklen, disp in zip(self.blocklens, self.displacements):
            if blocklen:
                yield (disp * unit, blocklen * unit)


@dataclass(frozen=True)
class Struct(Datatype):
    """Heterogeneous fields at byte displacements (MPI_Type_create_struct)."""

    fields: tuple[tuple[int, Datatype], ...]  # (byte displacement, type)

    @property
    def size(self) -> int:  # type: ignore[override]
        return sum(t.size for _, t in self.fields)

    @property
    def extent(self) -> int:  # type: ignore[override]
        if not self.fields:
            return 0
        return max(d + t.extent for d, t in self.fields)

    def blocks(self):
        for disp, dtype in self.fields:
            for offset, length in dtype.blocks():
                yield (disp + offset, length)


def iovec_state_bytes(dtype: Datatype, bytes_per_entry: int = 16) -> int:
    """NIC state needed to express ``dtype`` as an iovec (O(n) blocks)."""
    return sum(1 for _ in dtype.blocks()) * bytes_per_entry


def vector_state_bytes() -> int:
    """NIC state for the O(1) vector tuple ⟨start, stride, blocksize, count⟩."""
    return 4 * 8
