"""Message-matching protocols (§5.1, Fig. 5b).

An :class:`MPIEndpoint` gives each machine MPI-like tagged send/recv on top
of one of three protocols:

* ``rdma`` — no NIC matching: every message lands in a ring (bounce)
  buffer and the CPU matches, copies eager data into the user buffer
  (always a copy — Fig. 5b case III behaviour even when preposted), and
  progresses rendezvous **synchronously**: the CTS/get runs only inside
  ``wait`` — the classic overlap loss [32].
* ``p4`` — Portals 4 hardware matching: preposted eager receives deposit
  straight into the user buffer (case I: the copy is saved); unexpected
  messages land in the overflow list and are copied on the late receive
  (case III).  Rendezvous still needs the CPU (the triggered-get protocol
  [33] is impractical: Ω(P) state, extra match bits, no wildcards), so
  large transfers progress in ``wait`` like RDMA.
* ``spin`` — the paper's offloaded protocol (cases II/IV): the send
  pre-sets up a get descriptor; a header handler at the receiver
  interprets ⟨size, rdv bits⟩ from the user header of the RTS and issues
  the get **from the NIC**, giving fully asynchronous progress, no per-peer
  state, and wildcard support.  Unexpected RTSs are handled by the CPU
  when the receive is finally posted (case IV handler logic on the host).

Eager messages at or below ``eager_threshold`` bytes; larger transfers use
the rendezvous path.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.core.api import PtlHPUAllocMem, spin_me
from repro.core.handlers import ReturnCode
from repro.des.engine import Event
from repro.portals.events import EventQueue
from repro.portals.matching import MatchEntry
from repro.portals.ni import MemoryDescriptor
from repro.portals.types import (
    ANY_SOURCE,
    EventKind,
    ME_MANAGE_LOCAL,
    ME_OP_GET,
    ME_OP_PUT,
    ME_USE_ONCE,
)

__all__ = ["MPIEndpoint", "RecvRequest", "SendRequest"]

# Match-bit spaces (bit 62/61 select the class; low 32 bits carry the tag).
EAGER_BASE = 0
RTS_BASE = 1 << 62
RDV_DATA_BASE = 1 << 61
TAG_MASK = (1 << 32) - 1


@dataclass
class SendRequest:
    """Handle for an in-flight send."""

    done: Event
    nbytes: int
    rendezvous: bool = False


@dataclass
class RecvRequest:
    """Handle for an in-flight receive."""

    done: Event
    source: int
    tag: int
    nbytes: int
    copied: bool = False          # did completion involve a CPU copy?
    rendezvous: bool = False
    matched_unexpected: bool = False
    _sync_progress: Optional[object] = None  # generator run inside wait()
    _progress_evt: Optional[Event] = None    # wakes a blocked wait()
    meta: dict = field(default_factory=dict)

    def attach_sync(self, generator) -> None:
        """Queue synchronous progress work; wakes a blocked ``wait()``."""
        self._sync_progress = generator
        if self._progress_evt is not None and not self._progress_evt.triggered:
            self._progress_evt.succeed()


class MPIEndpoint:
    """Tagged MPI-like messaging for one machine."""

    def __init__(self, machine, protocol: str, eager_threshold: int = 16384,
                 pt_index: int = 0):
        if protocol not in ("rdma", "p4", "spin"):
            raise ValueError(f"unknown protocol {protocol!r}")
        self.machine = machine
        self.env = machine.env
        self.protocol = protocol
        self.eager_threshold = eager_threshold
        self.pt_index = pt_index
        self._seq = itertools.count()
        self.copies = 0
        self.rendezvous_stalls = 0

        if pt_index not in machine.ni.portal_table:
            machine.ni.pt_alloc(pt_index)
        # Bounce buffer for unexpected messages (ring buffer / overflow
        # list).  RDMA has *only* this; p4/spin put posted receives in the
        # priority list ahead of it.
        self.bounce_eq = machine.new_eq()
        self.bounce_me = machine.post_me(pt_index, MatchEntry(
            match_bits=0, ignore_bits=(1 << 64) - 1, source=ANY_SOURCE,
            options=ME_OP_PUT | ME_MANAGE_LOCAL, length=1 << 40,
            event_queue=self.bounce_eq,
        ), overflow=True)
        # RDMA-mode software queues.
        self._sw_posted: list[RecvRequest] = []
        self._sw_unexpected: list[dict] = []
        if protocol == "rdma":
            self.env.process(self._rdma_progress(), name=f"mpi-prog[{machine.rank}]")

    # ------------------------------------------------------------- send --
    def send(self, dest: int, nbytes: int, tag: int,
             payload=None) -> Generator[object, object, SendRequest]:
        """Post a send; returns a request whose ``done`` is local completion."""
        if nbytes <= self.eager_threshold:
            injected = yield from self.machine.host_put(
                dest, nbytes, match_bits=EAGER_BASE | (tag & TAG_MASK),
                pt_index=self.pt_index, payload=payload,
            )
            return SendRequest(done=injected, nbytes=nbytes)
        # Rendezvous: expose the data for the receiver's get, then RTS.
        rdv_bits = RDV_DATA_BASE | (self.machine.rank << 32) | next(self._seq)
        served = self.machine.new_counter("rdv-src")
        self.machine.post_me(self.pt_index, MatchEntry(
            match_bits=rdv_bits, options=ME_OP_GET | ME_USE_ONCE,
            length=nbytes, counter=served,
        ))
        done = self.env.event()
        served.on_threshold(1, lambda: done.succeed(self.env.now))
        yield from self.machine.host_put(
            dest, 0, match_bits=RTS_BASE | (tag & TAG_MASK),
            pt_index=self.pt_index, hdr_data=nbytes,
            user_hdr={"rdv_bits": rdv_bits, "size": nbytes},
        )
        return SendRequest(done=done, nbytes=nbytes, rendezvous=True)

    # ------------------------------------------------------------- recv --
    def recv(self, source: int, nbytes: int, tag: int,
             ) -> Generator[object, object, RecvRequest]:
        """Post a receive (``source`` may be ANY_SOURCE)."""
        req = RecvRequest(done=self.env.event(), source=source, tag=tag,
                          nbytes=nbytes, rendezvous=nbytes > self.eager_threshold)
        yield from self.machine.cpu.match()  # walk the queues
        if self.protocol == "rdma":
            yield from self._recv_rdma(req)
        else:
            yield from self._recv_offloaded(req)
        return req

    def wait(self, req) -> Generator:
        """Block until a request completes (runs synchronous progress).

        For CPU-progressed rendezvous (rdma/p4) the data transfer itself
        happens here — the §5.1 overlap loss.
        """
        if isinstance(req, RecvRequest):
            while not req.done.triggered:
                if req._sync_progress is not None:
                    self.rendezvous_stalls += 1
                    sync, req._sync_progress = req._sync_progress, None
                    yield from sync
                    continue
                req._progress_evt = self.env.event()
                yield self.env.any_of([req.done, req._progress_evt])
                req._progress_evt = None
        if not req.done.processed:
            yield req.done
        yield from self.machine.cpu.poll()

    def wait_all(self, reqs) -> Generator:
        """MPI_Waitall: one progress engine drives all pending requests.

        Synchronous rendezvous gets are *posted* as they become available
        (serialized on the CPU, as a real progress engine would), while the
        resulting transfers overlap each other.
        """
        reqs = list(reqs)
        while True:
            for req in reqs:
                if isinstance(req, RecvRequest) and req._sync_progress is not None:
                    self.rendezvous_stalls += 1
                    sync, req._sync_progress = req._sync_progress, None
                    yield from sync
            pending = [r for r in reqs if not r.done.triggered]
            if not pending:
                break
            watch = []
            for r in pending:
                watch.append(r.done)
                if isinstance(r, RecvRequest):
                    r._progress_evt = self.env.event()
                    watch.append(r._progress_evt)
            yield self.env.any_of(watch)
            for r in pending:
                if isinstance(r, RecvRequest):
                    r._progress_evt = None
        yield from self.machine.cpu.poll()

    # ------------------------------------------------- rdma protocol ------
    def _recv_rdma(self, req: RecvRequest) -> Generator:
        hit = self._take_sw_unexpected(req)
        if hit is None:
            self._sw_posted.append(req)
            return
        req.matched_unexpected = True
        yield from self._consume_arrival(req, hit)

    def _rdma_progress(self) -> Generator:
        while True:
            gate = self.env.event()
            self.bounce_eq.on_next(gate.succeed)
            ev = yield gate
            arrival = self._arrival_from_event(ev)
            req = self._match_posted(arrival)
            if req is None:
                self._sw_unexpected.append(arrival)
                continue
            yield from self.machine.cpu.poll()
            yield from self._consume_arrival(req, arrival)

    def _consume_arrival(self, req: RecvRequest, arrival: dict) -> Generator:
        """Complete a receive against an arrived eager message or RTS."""
        if arrival["kind"] == "eager":
            yield from self.machine.cpu.match()
            yield from self.machine.cpu.memcpy(arrival["length"], label="unexp-copy")
            req.copied = True
            self.copies += 1
            req.done.succeed(self.env.now)
            return
        # RTS: synchronous rendezvous — the get happens inside wait().
        req.attach_sync(self._sync_get(req, arrival))

    def _sync_get(self, req: RecvRequest, arrival: dict) -> Generator:
        ct = self.machine.new_counter("rdv-recv")
        md = self.machine.bind_md(
            MemoryDescriptor(length=arrival["size"], counter=ct)
        )
        ct.on_threshold(1, lambda: req.done.succeed(self.env.now))
        # The CPU only *posts* the get; the NIC performs the transfer.  A
        # synchronous protocol still pays this posting inside wait(), and
        # the transfer time whenever no other progress was possible.
        yield from self.machine.host_get(
            arrival["initiator"], arrival["size"],
            match_bits=arrival["rdv_bits"], pt_index=self.pt_index, md=md,
        )

    # -------------------------------------------- p4 / spin protocols ------
    def _recv_offloaded(self, req: RecvRequest) -> Generator:
        ml = self.machine.ni.pt(self.pt_index).match_list
        if not req.rendezvous:
            hit = ml.search_unexpected(
                match_bits=EAGER_BASE | (req.tag & TAG_MASK), source=req.source
            )
            if hit is not None:
                # Case III: late receive finds the message, CPU copies it.
                req.matched_unexpected = True
                req.copied = True
                self.copies += 1
                yield from self.machine.cpu.memcpy(hit.length, label="unexp-copy")
                req.done.succeed(self.env.now)
                return
            eq = self.machine.new_eq(capacity=4)
            self.machine.post_me(self.pt_index, MatchEntry(
                match_bits=EAGER_BASE | (req.tag & TAG_MASK), source=req.source,
                options=ME_OP_PUT | ME_USE_ONCE, length=req.nbytes,
                event_queue=eq,
            ))
            eq.on_next(lambda ev: req.done.succeed(self.env.now))
            return
        # Rendezvous receive.
        hit = ml.search_unexpected(
            match_bits=RTS_BASE | (req.tag & TAG_MASK), source=req.source
        )
        if hit is not None:
            # Case III/IV bottom: the handler logic runs on the main CPU —
            # but the transfer still progresses asynchronously afterwards.
            req.matched_unexpected = True
            user = hit.meta.get("user_hdr") or {}
            arrival = {
                "kind": "rts", "initiator": hit.initiator,
                "size": user.get("size", hit.meta.get("hdr_data", req.nbytes)),
                "rdv_bits": user["rdv_bits"],
            }
            if self.protocol == "spin":
                # Case IV: the CPU issues the get now; the rest is async.
                self.env.process(self._sync_get(req, arrival),
                                 name="spin-late-rdv")
            else:
                req.attach_sync(self._sync_get(req, arrival))
            return
        if self.protocol == "p4":
            eq = self.machine.new_eq(capacity=4)
            self.machine.post_me(self.pt_index, MatchEntry(
                match_bits=RTS_BASE | (req.tag & TAG_MASK), source=req.source,
                options=ME_OP_PUT | ME_USE_ONCE, length=0, event_queue=eq,
            ))

            def on_rts(ev):
                user = ev.meta.get("user_hdr") or {}
                arrival = {
                    "kind": "rts", "initiator": ev.initiator,
                    "size": user.get("size", ev.hdr_data),
                    "rdv_bits": user["rdv_bits"],
                }
                req.attach_sync(self._sync_get(req, arrival))

            eq.on_next(on_rts)
            return
        # spin: install the offloaded rendezvous handler (case II).
        yield from self._post_spin_rdv_me(req)

    def _post_spin_rdv_me(self, req: RecvRequest) -> Generator:
        from repro.portals.ni import MemoryDescriptor

        ct = self.machine.new_counter("rdv-recv")
        md = self.machine.bind_md(MemoryDescriptor(length=req.nbytes, counter=ct))
        ct.on_threshold(1, lambda: req.done.succeed(self.env.now))
        endpoint = self

        def rts_header_handler(ctx, h):
            # §5.1: interpret ⟨total size, source tag⟩ from the user header
            # and issue the get to the source — entirely on the NIC.
            ctx.charge(20)
            user = h.user_hdr or {}
            yield from ctx.get(
                target=h.source,
                nbytes=user.get("size", h.hdr_data),
                match_bits=user["rdv_bits"],
                pt_index=endpoint.pt_index,
                md=md,
            )
            return ReturnCode.DROP

        self.machine.post_me(self.pt_index, spin_me(
            match_bits=RTS_BASE | (req.tag & TAG_MASK), source=req.source,
            options=ME_OP_PUT | ME_USE_ONCE, length=0,
            header_handler=rts_header_handler,
            hpu_memory=PtlHPUAllocMem(self.machine, 64),
        ))
        return
        yield  # pragma: no cover

    # ---------------------------------------------------- bookkeeping ------
    @staticmethod
    def _arrival_from_event(ev) -> dict:
        user = ev.meta.get("user_hdr") or {}
        if ev.match_bits & RTS_BASE:
            return {
                "kind": "rts",
                "initiator": ev.initiator,
                "tag": ev.match_bits & TAG_MASK,
                "size": user.get("size", ev.hdr_data),
                "rdv_bits": user.get("rdv_bits"),
                "length": ev.length,
            }
        return {
            "kind": "eager",
            "initiator": ev.initiator,
            "tag": ev.match_bits & TAG_MASK,
            "length": ev.length,
        }

    def _match_posted(self, arrival: dict) -> Optional[RecvRequest]:
        for req in self._sw_posted:
            if req.tag != arrival["tag"]:
                continue
            if req.source not in (ANY_SOURCE, arrival["initiator"]):
                continue
            wanted_rdv = arrival["kind"] == "rts"
            if req.rendezvous != wanted_rdv:
                continue
            self._sw_posted.remove(req)
            return req
        return None

    def _take_sw_unexpected(self, req: RecvRequest) -> Optional[dict]:
        for arrival in self._sw_unexpected:
            if arrival["tag"] != req.tag:
                continue
            if req.source not in (ANY_SOURCE, arrival["initiator"]):
                continue
            if req.rendezvous != (arrival["kind"] == "rts"):
                continue
            self._sw_unexpected.remove(arrival)
            return arrival
        return None
