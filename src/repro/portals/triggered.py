"""Triggered operations (Portals 4 §3.1 / refs [12, 18, 33]).

Triggered operations are the pre-sPIN NISA mechanism: an operation (put,
get, counter increment) is set up ahead of time and fires — *without host
involvement* — once a counting event reaches a threshold.  The paper's
baselines use them for the Portals 4 ping-pong (pre-set-up pong) and the
collective-offload broadcast; their §5.1 discussion of Barrett et al.'s
rendezvous protocol explains their Ω(P)-state limitation that sPIN removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.portals.counters import Counter
from repro.portals.types import PortalsError

__all__ = ["TriggeredOp", "TriggeredQueue"]


@dataclass
class TriggeredOp:
    """One armed operation: ``action`` fires when ``counter`` hits ``threshold``."""

    counter: Counter
    threshold: int
    action: Callable[[], None]
    description: str = ""
    fired: bool = False
    meta: dict = field(default_factory=dict)

    def _fire(self) -> None:
        if self.fired:
            raise PortalsError(f"triggered op fired twice: {self.description}")
        self.fired = True
        self.action()


class TriggeredQueue:
    """Tracks a NIC's armed triggered operations (a bounded NIC resource).

    Portals limits the number of outstanding triggered operations
    (``max_triggered_ops`` in the NI limits) because each consumes NIC
    memory — this bound is exactly why a binomial-tree broadcast over
    triggered ops needs logarithmic NIC state per process while sPIN needs
    a single handler (§4.4.3).
    """

    def __init__(self, max_ops: int = 1 << 16):
        self.max_ops = max_ops
        self.armed: int = 0
        self.fired: int = 0
        self.high_water: int = 0

    def arm(
        self,
        counter: Counter,
        threshold: int,
        action: Callable[[], None],
        description: str = "",
    ) -> TriggeredOp:
        if self.armed >= self.max_ops:
            raise PortalsError(
                f"NIC out of triggered-op resources (max {self.max_ops})"
            )
        self.armed += 1
        self.high_water = max(self.high_water, self.armed)
        op = TriggeredOp(counter, threshold, action, description)

        def fire_and_account() -> None:
            self.armed -= 1
            self.fired += 1
            op._fire()

        counter.on_threshold(threshold, fire_and_account)
        return op
