"""Portals 4 substrate.

The paper demonstrates sPIN on top of Portals 4 (§3) because it offers
receiver-side matching, OS bypass, and NIC resource management.  This package
implements the Portals 4 semantics the evaluation depends on:

* logically addressed, matched network interfaces;
* matching entries (MEs) with 64-bit masked match bits, priority and overflow
  lists, locally managed offsets, and use-once semantics;
* memory descriptors (MDs), event queues, counting events (CTs);
* triggered operations (the baseline NISA mechanism sPIN generalizes);
* per-portal-table flow control.

This layer is *pure mechanism* (no simulated time): the timed NIC models in
:mod:`repro.machine` and the sPIN runtime in :mod:`repro.core` drive it and
charge the costs (30 ns header match, 2 ns CAM hit, DMA, ...).
"""

from repro.portals.types import (
    ME_OP_GET,
    ME_OP_PUT,
    ME_USE_ONCE,
    ME_MANAGE_LOCAL,
    ME_NO_TRUNCATE,
    ANY_SOURCE,
    EventKind,
    PortalsError,
)
from repro.portals.counters import Counter
from repro.portals.events import EventQueue, PortalsEvent
from repro.portals.matching import MatchEntry, MatchList, MatchResult
from repro.portals.triggered import TriggeredOp, TriggeredQueue
from repro.portals.limits import NILimits
from repro.portals.ni import MemoryDescriptor, NetworkInterface, PortalTableEntry

__all__ = [
    "ANY_SOURCE",
    "Counter",
    "EventKind",
    "EventQueue",
    "MatchEntry",
    "MatchList",
    "MatchResult",
    "ME_MANAGE_LOCAL",
    "ME_NO_TRUNCATE",
    "ME_OP_GET",
    "ME_OP_PUT",
    "ME_USE_ONCE",
    "MemoryDescriptor",
    "NILimits",
    "NetworkInterface",
    "PortalTableEntry",
    "PortalsError",
    "PortalsEvent",
    "TriggeredOp",
    "TriggeredQueue",
]
