"""NI limits, including the sPIN extensions of Appendix B.2.1.

All Portals resources are strictly bounded to permit hardware
implementation; sPIN adds bounds for handler/HPU resources.  The defaults
follow the paper's simulated NIC (§4.2): 4 HPU cores, 4 KiB MTU, and a
"few hundred instructions" handler budget expressed as max cycles/byte.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.portals.types import PortalsError

__all__ = ["NILimits"]


@dataclass(frozen=True)
class NILimits:
    """Resource limits for one logical network interface."""

    # Classic Portals limits (subset).
    max_entries: int = 1 << 16          # MEs per NI
    max_triggered_ops: int = 1 << 12
    max_eqs: int = 1 << 8
    max_cts: int = 1 << 12

    # sPIN extensions (Appendix B.2.1).
    max_user_hdr_size: int = 64          # bytes of user header per packet
    max_payload_size: int = 4096         # payload bytes per packet (MTU)
    max_handler_mem: int = 64 * 1024     # HPU memory bytes per handler set
    max_initial_state: int = 4096        # bytes of host-initialized HPU state
    min_fragmentation_limit: int = 64    # payload alignment/multiple guarantee
    max_cycles_per_byte: int = 16        # HPU cycle budget per payload byte

    def __post_init__(self) -> None:
        if self.max_payload_size <= 0:
            raise PortalsError("max_payload_size must be positive")
        if self.min_fragmentation_limit <= 0:
            raise PortalsError("min_fragmentation_limit must be positive")
        if self.max_user_hdr_size < 0 or self.max_user_hdr_size > self.max_payload_size:
            raise PortalsError("max_user_hdr_size out of range")
        if self.max_initial_state > self.max_handler_mem:
            raise PortalsError("initial state cannot exceed handler memory")

    def validate_user_header(self, nbytes: int) -> None:
        if nbytes > self.max_user_hdr_size:
            raise PortalsError(
                f"user header of {nbytes} B exceeds limit {self.max_user_hdr_size}"
            )

    def validate_hpu_alloc(self, nbytes: int) -> None:
        if nbytes > self.max_handler_mem:
            raise PortalsError(
                f"HPU memory request of {nbytes} B exceeds limit {self.max_handler_mem}"
            )

    def validate_initial_state(self, nbytes: int) -> None:
        if nbytes > self.max_initial_state:
            raise PortalsError(
                f"initial state of {nbytes} B exceeds limit {self.max_initial_state}"
            )
