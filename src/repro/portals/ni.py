"""Logical network interfaces, portal table, MDs, and flow control."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.portals.counters import Counter
from repro.portals.events import EventQueue, PortalsEvent
from repro.portals.limits import NILimits
from repro.portals.matching import MatchEntry, MatchList, MatchResult
from repro.portals.triggered import TriggeredQueue
from repro.portals.types import EventKind, PortalsError

__all__ = ["MemoryDescriptor", "NetworkInterface", "PortalTableEntry"]

_md_ids = itertools.count()


@dataclass
class MemoryDescriptor:
    """Initiator-side memory abstraction (``ptl_md_t``).

    ``start``/``length`` delimit a region of the process's host memory;
    the attached counter/EQ receive SEND/ACK/REPLY notifications.
    """

    start: int = 0
    length: int = 0
    counter: Optional[Counter] = None
    event_queue: Optional[EventQueue] = None
    options: int = 0
    md_id: int = field(default_factory=lambda: next(_md_ids))

    def __post_init__(self) -> None:
        if self.length < 0:
            raise PortalsError("negative MD length")


class PortalTableEntry:
    """One portal-table index: a match list plus flow-control state.

    When flow control trips (no matching resources — including, with sPIN,
    no free HPU contexts), the entry drops every arriving packet until the
    host re-enables it (§3.2), and a PT_DISABLED event is raised exactly
    once per disable episode.
    """

    def __init__(self, index: int, eq: Optional[EventQueue] = None):
        self.index = index
        self.match_list = MatchList()
        self.eq = eq
        self.enabled = True
        self.dropped_messages = 0
        self.dropped_bytes = 0
        self.disable_episodes = 0

    def disable(self) -> None:
        if not self.enabled:
            return
        self.enabled = False
        self.disable_episodes += 1
        if self.eq is not None:
            self.eq.push(PortalsEvent(kind=EventKind.PT_DISABLED, meta={"pt": self.index}))

    def enable(self) -> None:
        self.enabled = True

    def record_drop(self, nbytes: int) -> None:
        self.dropped_messages += 1
        self.dropped_bytes += nbytes


class NetworkInterface:
    """A logically addressed, matched Portals 4 NI for one process.

    Owns the portal table, MDs, counters and EQs; pure mechanism — the timed
    models in :mod:`repro.machine` and :mod:`repro.core` drive it.
    """

    def __init__(
        self,
        nid: int,
        limits: Optional[NILimits] = None,
        memory: Optional["HostMemoryLike"] = None,
    ):
        self.nid = nid
        self.limits = limits or NILimits()
        self.memory = memory
        self.portal_table: dict[int, PortalTableEntry] = {}
        self.mds: dict[int, MemoryDescriptor] = {}
        self.triggered = TriggeredQueue(self.limits.max_triggered_ops)
        self._me_count = 0

    def reset(self) -> None:
        """Drop all installed state (cluster reuse; see Session pooling).

        Portal table, MDs and armed triggered ops all go — the next tenant
        re-installs its own.  Id counters are process-global (like fresh
        construction) and simulation-invisible, so they are left alone.
        """
        self.portal_table.clear()
        self.mds.clear()
        self.triggered = TriggeredQueue(self.limits.max_triggered_ops)
        self._me_count = 0

    # -- portal table ----------------------------------------------------------
    def pt_alloc(self, index: int, eq: Optional[EventQueue] = None) -> PortalTableEntry:
        if index in self.portal_table:
            raise PortalsError(f"portal index {index} already allocated")
        pt = PortalTableEntry(index, eq)
        self.portal_table[index] = pt
        return pt

    def pt(self, index: int) -> PortalTableEntry:
        try:
            return self.portal_table[index]
        except KeyError:
            raise PortalsError(f"portal index {index} not allocated") from None

    # -- MEs -------------------------------------------------------------------
    def me_append(
        self, pt_index: int, entry: MatchEntry, overflow: bool = False
    ) -> MatchEntry:
        """PtlMEAppend (plus the sPIN handler extension via ``entry.spin``)."""
        if self._me_count >= self.limits.max_entries:
            raise PortalsError("NI out of matching entries")
        if entry.spin is not None:
            # Validate sPIN resource limits at installation time (§3.2: the
            # system can reject handler code that is too large).
            entry.spin.validate(self.limits)
        self.pt(pt_index).match_list.append(entry, overflow=overflow)
        self._me_count += 1
        return entry

    def me_unlink(self, pt_index: int, entry: MatchEntry) -> None:
        self.pt(pt_index).match_list.unlink(entry)
        self._me_count -= 1

    # -- MDs -----------------------------------------------------------------
    def md_bind(self, md: MemoryDescriptor) -> MemoryDescriptor:
        self.mds[md.md_id] = md
        return md

    # -- matching entry point (called by NIC models) --------------------------
    def match(
        self,
        pt_index: int,
        initiator: int,
        match_bits: int,
        kind: str = "put",
        length: int = 0,
        requested_offset: int = 0,
        header_meta: Optional[dict] = None,
    ) -> MatchResult:
        pt = self.pt(pt_index)
        if not pt.enabled:
            pt.record_drop(length)
            return MatchResult(None, "none")
        result = pt.match_list.match(
            initiator, match_bits, kind, length, requested_offset, header_meta
        )
        if result.entry is None:
            # No priority or overflow resources: Portals flow control.
            pt.record_drop(length)
            pt.disable()
        return result

    # -- data movement helpers ------------------------------------------------
    def deposit(self, entry: MatchEntry, offset: int, data: np.ndarray) -> None:
        """Write payload bytes into host memory at the ME-relative offset."""
        if self.memory is None or data is None:
            return
        self.memory.write(entry.start + offset, data)

    def fetch(self, entry: MatchEntry, offset: int, nbytes: int) -> Optional[np.ndarray]:
        """Read payload bytes from host memory at the ME-relative offset."""
        if self.memory is None:
            return None
        return self.memory.read(entry.start + offset, nbytes)


class HostMemoryLike:  # pragma: no cover - typing aid only
    """Protocol for the host memory objects NIs deposit into."""

    def write(self, offset: int, data: np.ndarray) -> None: ...

    def read(self, offset: int, nbytes: int) -> np.ndarray: ...
