"""Portals 4 basic types, option flags, and error handling."""

from __future__ import annotations

from enum import Enum, auto

__all__ = [
    "ANY_SOURCE",
    "EventKind",
    "ME_MANAGE_LOCAL",
    "ME_NO_TRUNCATE",
    "ME_OP_GET",
    "ME_OP_PUT",
    "ME_USE_ONCE",
    "MATCH_BITS_MASK",
    "PortalsError",
]

#: Match bits are 64-bit quantities (§3.1: "matching is performed through a
#: 64-bit masked id").
MATCH_BITS_MASK = (1 << 64) - 1

#: Wildcard source: matches messages from any initiator (MPI_ANY_SOURCE).
ANY_SOURCE = -1

# ME option flags (subset of the Portals 4.1 specification that the paper's
# protocols exercise).
ME_OP_PUT = 1 << 0        # entry accepts put operations
ME_OP_GET = 1 << 1        # entry accepts get operations
ME_USE_ONCE = 1 << 2      # entry is unlinked after the first match
ME_MANAGE_LOCAL = 1 << 3  # NIC packs messages at a locally managed offset
ME_NO_TRUNCATE = 1 << 4   # messages longer than the entry do not match


class EventKind(Enum):
    """Full-event types delivered to event queues."""

    PUT = auto()            # a put landed in an ME
    GET = auto()            # a get was served from an ME
    ATOMIC = auto()         # an atomic was applied to an ME
    PUT_OVERFLOW = auto()   # a put landed in the overflow list
    SEND = auto()           # initiator-side: message left the MD
    ACK = auto()            # initiator-side: remote acknowledged a put
    REPLY = auto()          # initiator-side: get/atomic response arrived
    AUTO_UNLINK = auto()    # a USE_ONCE entry was unlinked
    PT_DISABLED = auto()    # flow control tripped on a portal table entry
    SEARCH = auto()         # result of a PtlMESearch
    HANDLER_ERROR = auto()  # a sPIN handler returned FAIL/SEGV (§B.3)


class PortalsError(Exception):
    """Raised on misuse of the Portals interfaces (PTL_ARG_INVALID etc.)."""
