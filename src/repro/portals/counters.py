"""Counting events (Portals 4 CTs).

Counters accumulate success/failure counts (and optionally byte counts) and
are the trigger source for triggered operations: a watcher registers a
threshold and is called back the moment the success count reaches it.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.portals.types import PortalsError

__all__ = ["Counter"]


class Counter:
    """A Portals counting event (``ptl_ct_event_t``: success + failure)."""

    def __init__(self, name: str = "ct"):
        self.name = name
        self.success: int = 0
        self.failure: int = 0
        self.bytes: int = 0
        self._watchers: list[tuple[int, int, Callable[[], None]]] = []
        self._seq = itertools.count()

    # -- updates ----------------------------------------------------------
    def increment(self, successes: int = 1, nbytes: int = 0) -> None:
        """PtlCTInc: bump the success count (and byte tally)."""
        if successes < 0:
            raise PortalsError("counter increments must be non-negative")
        self.success += successes
        self.bytes += nbytes
        self._fire_ready()

    def fail(self, failures: int = 1) -> None:
        self.failure += failures

    def set(self, successes: int, failures: int = 0) -> None:
        """PtlCTSet: overwrite the counter (may fire watchers)."""
        self.success = successes
        self.failure = failures
        self._fire_ready()

    # -- watchers (triggered-op hook) ----------------------------------------
    def on_threshold(self, threshold: int, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` once when success count reaches ``threshold``.

        Fires immediately if the threshold is already met.  Callbacks at the
        same threshold fire in registration order.
        """
        if threshold <= self.success:
            callback()
            return
        heapq.heappush(self._watchers, (threshold, next(self._seq), callback))

    def _fire_ready(self) -> None:
        while self._watchers and self._watchers[0][0] <= self.success:
            _, _, callback = heapq.heappop(self._watchers)
            callback()

    @property
    def pending_watchers(self) -> int:
        return len(self._watchers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name} ok={self.success} fail={self.failure}>"
