"""Matching entries and match lists.

Implements Portals 4 receiver-side steering (§3.1): a matched interface
directs each incoming message to the first matching entry (ME) of a priority
list via a 64-bit masked comparison plus initiator check.  Messages that
match nothing on the priority list fall through to the overflow list (this
is how MPI's unexpected messages are captured, Fig. 5b case III) and their
headers become searchable for late receivers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.portals.counters import Counter
from repro.portals.events import EventQueue
from repro.portals.types import (
    ANY_SOURCE,
    MATCH_BITS_MASK,
    ME_MANAGE_LOCAL,
    ME_NO_TRUNCATE,
    ME_OP_GET,
    ME_OP_PUT,
    ME_USE_ONCE,
    PortalsError,
)

__all__ = ["MatchEntry", "MatchList", "MatchResult"]

_me_ids = itertools.count()


@dataclass
class MatchEntry:
    """A Portals matching entry (``ptl_me_t``).

    ``start`` is a byte offset into the owning process's host memory;
    ``length`` the entry's extent.  ``spin`` optionally carries the P4sPIN
    handler binding (header/payload/completion handlers + HPU memory) that
    :mod:`repro.core.api` attaches — plain Portals ignores it.
    """

    match_bits: int = 0
    ignore_bits: int = 0
    source: int = ANY_SOURCE
    options: int = ME_OP_PUT
    start: int = 0
    length: int = 0
    counter: Optional[Counter] = None
    event_queue: Optional[EventQueue] = None
    user_ptr: Any = None
    min_free: int = 0
    spin: Any = None
    me_id: int = field(default_factory=lambda: next(_me_ids))
    # Locally managed offset state (ME_MANAGE_LOCAL).
    local_offset: int = 0
    unlinked: bool = False

    def __post_init__(self) -> None:
        if self.match_bits & ~MATCH_BITS_MASK or self.ignore_bits & ~MATCH_BITS_MASK:
            raise PortalsError("match/ignore bits exceed 64 bits")
        if self.length < 0:
            raise PortalsError("negative ME length")

    # -- predicates ----------------------------------------------------------
    def accepts_operation(self, kind: str) -> bool:
        if kind in ("put", "atomic"):
            return bool(self.options & ME_OP_PUT)
        if kind == "get":
            return bool(self.options & ME_OP_GET)
        return False

    def bits_match(self, match_bits: int) -> bool:
        return (self.match_bits ^ match_bits) & ~self.ignore_bits & MATCH_BITS_MASK == 0

    def source_match(self, initiator: int) -> bool:
        return self.source == ANY_SOURCE or self.source == initiator

    def space_left(self) -> int:
        if self.options & ME_MANAGE_LOCAL:
            return self.length - self.local_offset
        return self.length

    def matches(self, initiator: int, match_bits: int, kind: str, length: int) -> bool:
        if self.unlinked:
            return False
        if not self.accepts_operation(kind):
            return False
        if not self.source_match(initiator) or not self.bits_match(match_bits):
            return False
        if self.options & ME_NO_TRUNCATE and length > self.space_left():
            return False
        if self.options & ME_MANAGE_LOCAL and length > self.space_left():
            return False
        return True


@dataclass(slots=True)
class MatchResult:
    """Outcome of presenting a message header to a match list."""

    entry: Optional[MatchEntry]
    list_name: str  # "priority" | "overflow" | "none"
    deposit_offset: int = 0
    auto_unlinked: bool = False

    @property
    def matched(self) -> bool:
        return self.entry is not None


@dataclass
class UnexpectedHeader:
    """Record of a message that landed in the overflow list (case III)."""

    initiator: int
    match_bits: int
    length: int
    kind: str
    entry: MatchEntry          # the overflow ME holding the data
    deposit_offset: int        # where in that ME the payload went
    hdr_data: int = 0
    consumed: bool = False
    meta: dict = field(default_factory=dict)


class MatchList:
    """Priority + overflow lists for one portal table entry."""

    def __init__(self) -> None:
        self.priority: list[MatchEntry] = []
        self.overflow: list[MatchEntry] = []
        self.unexpected: list[UnexpectedHeader] = []
        self.searches: int = 0  # total MEs walked (header-matching work)

    # -- posting ---------------------------------------------------------
    def append(self, entry: MatchEntry, overflow: bool = False) -> None:
        if entry.unlinked:
            raise PortalsError("cannot append an unlinked ME")
        (self.overflow if overflow else self.priority).append(entry)

    def unlink(self, entry: MatchEntry) -> None:
        entry.unlinked = True
        for lst in (self.priority, self.overflow):
            if entry in lst:
                lst.remove(entry)
                return
        raise PortalsError("ME not present in either list")

    # -- matching ----------------------------------------------------------
    def match(
        self,
        initiator: int,
        match_bits: int,
        kind: str = "put",
        length: int = 0,
        requested_offset: int = 0,
        header_meta: Optional[dict] = None,
    ) -> MatchResult:
        """Match an incoming header; mutates locally-managed offsets.

        ``requested_offset`` is the initiator-specified remote offset; it
        steers the deposit for normal MEs and is ignored for
        locally-managed ones (Portals 4 offset semantics).

        The caller (NIC model) charges the time cost; we count list search
        work in ``self.searches`` so models can charge proportionally.
        """
        for list_name, entries in (("priority", self.priority), ("overflow", self.overflow)):
            for entry in entries:
                self.searches += 1
                if not entry.matches(initiator, match_bits, kind, length):
                    continue
                offset = self._consume_offset(entry, length, requested_offset)
                unlinked = False
                if entry.options & ME_USE_ONCE or (
                    entry.options & ME_MANAGE_LOCAL
                    and entry.space_left() < entry.min_free
                ):
                    self.unlink(entry)
                    unlinked = True
                if list_name == "overflow":
                    self.unexpected.append(
                        UnexpectedHeader(
                            initiator=initiator,
                            match_bits=match_bits,
                            length=length,
                            kind=kind,
                            entry=entry,
                            deposit_offset=offset,
                            meta=dict(header_meta or {}),
                        )
                    )
                return MatchResult(entry, list_name, offset, unlinked)
        return MatchResult(None, "none")

    @staticmethod
    def _consume_offset(entry: MatchEntry, length: int, requested: int = 0) -> int:
        if entry.options & ME_MANAGE_LOCAL:
            offset = entry.local_offset
            entry.local_offset += length
            return offset
        return requested

    # -- unexpected-message search (late receives, Fig 5b case III) --------
    def search_unexpected(
        self, match_bits: int, ignore_bits: int = 0, source: int = ANY_SOURCE
    ) -> Optional[UnexpectedHeader]:
        """Find (and consume) the oldest matching unexpected header."""
        for hdr in self.unexpected:
            if hdr.consumed:
                continue
            if source not in (ANY_SOURCE, hdr.initiator):
                continue
            if (hdr.match_bits ^ match_bits) & ~ignore_bits & MATCH_BITS_MASK:
                continue
            hdr.consumed = True
            return hdr
        return None

    def __len__(self) -> int:
        return len(self.priority) + len(self.overflow)
