"""Full events and event queues (Portals 4 EQs)."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.portals.types import EventKind, PortalsError

__all__ = ["EventQueue", "PortalsEvent"]


@dataclass(slots=True)
class PortalsEvent:
    """One entry in an event queue.

    ``when_ps`` is the simulation time the NIC delivered the event (the
    host additionally pays its polling cost to observe it — that charge
    belongs to the host model, not here).
    """

    kind: EventKind
    initiator: int = 0
    match_bits: int = 0
    length: int = 0
    offset: int = 0
    user_ptr: Any = None
    hdr_data: int = 0
    when_ps: int = 0
    ni_fail: bool = False
    meta: dict = field(default_factory=dict)


class EventQueue:
    """Bounded FIFO of full events with optional waiter callbacks.

    Hosts either poll (``poll``) or register a waiter that fires on the next
    deposit (the host model turns that into a timed process).  A full queue
    drops the event and records the overflow — matching Portals semantics
    where EQ overflow is a serious, surfaced failure.
    """

    def __init__(self, capacity: int = 1 << 16, name: str = "eq"):
        if capacity < 1:
            raise PortalsError("event queue capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._events: deque[PortalsEvent] = deque()
        self._waiters: deque[Callable[[PortalsEvent], None]] = deque()
        self.dropped: int = 0

    def __len__(self) -> int:
        return len(self._events)

    def push(self, event: PortalsEvent) -> bool:
        """Deposit an event; returns False (and counts a drop) if full."""
        if self._waiters:
            self._waiters.popleft()(event)
            return True
        if len(self._events) >= self.capacity:
            self.dropped += 1
            return False
        self._events.append(event)
        return True

    def poll(self) -> Optional[PortalsEvent]:
        """PtlEQGet: non-blocking pop."""
        return self._events.popleft() if self._events else None

    def on_next(self, callback: Callable[[PortalsEvent], None]) -> None:
        """Deliver the next event to ``callback`` (immediately if queued)."""
        if self._events:
            callback(self._events.popleft())
        else:
            self._waiters.append(callback)

    def drain(self) -> list[PortalsEvent]:
        """Pop everything currently queued."""
        out = list(self._events)
        self._events.clear()
        return out
