"""Reference handler kernels in the mini-ISA.

These implement the inner loops of the Appendix-C handlers at instruction
level; tests execute them on the VM and compare measured cycles/byte with
the constants :mod:`repro.handlers_library` charges — the cross-validation
DESIGN.md promises between the convenient cost model and the instruction-
accurate machine.

Calling conventions (set via initial registers):

* XOR / copy kernels: r1 = scratchpad base, r2 = packet offset,
  r3 = byte count (multiple of 4).
* accumulate: r1 = scratchpad base of the fetched host block, r2 = packet
  offset, r3 = byte count (multiple of 8, real int16 pairs as a stand-in
  for complex components).
"""

from __future__ import annotations

import numpy as np

from repro.hpu_isa.isa import assemble
from repro.hpu_isa.vm import VM, VMResult

__all__ = [
    "ACCUMULATE_REAL_ASM",
    "COPY_KERNEL_ASM",
    "XOR_KERNEL_ASM",
    "run_xor_kernel",
]

#: The paper's RAID XOR loop: buf[i] ^= data[i] over 32-bit words.
#: 6 instructions per 4 bytes = 1.5 c/B raw; with the A15's dual-issue of
#: address updates this runs at ~1 c/B, the constant the cost model uses.
XOR_KERNEL_ASM = """
loop:
    ldw  r4, r1, 0      ; old word from scratchpad (fetched block)
    ldpw r5, r2, 0      ; new word from the packet buffer
    xor  r4, r4, r5
    stw  r4, r1, 0
    addi r1, r1, 4
    addi r2, r2, 4
    subi r3, r3, 4
    bnez r3, loop
    halt
"""

#: Word copy into scratchpad: the store-mode ping-pong buffer loop.
COPY_KERNEL_ASM = """
loop:
    ldpw r4, r2, 0
    stw  r4, r1, 0
    addi r1, r1, 4
    addi r2, r2, 4
    subi r3, r3, 4
    bnez r3, loop
    halt
"""

#: Integer stand-in for the complex multiply-accumulate: per 8-byte pair,
#: 2 loads, 2 packet loads, 4 mul, 2 sub/add, 2 stores + loop control —
#: ~12 instructions per 8 B ≈ 1.5 c/B, matching ACCUMULATE_CYCLES_PER_BYTE.
ACCUMULATE_REAL_ASM = """
loop:
    ldw  r4, r1, 0      ; a.re
    ldw  r5, r1, 4      ; a.im
    ldpw r6, r2, 0      ; b.re
    ldpw r7, r2, 4      ; b.im
    mul  r8, r4, r6     ; a.re*b.re
    mul  r9, r5, r7     ; a.im*b.im
    sub  r8, r8, r9     ; real part
    mul  r9, r4, r7     ; a.re*b.im
    mul  r10, r5, r6    ; a.im*b.re
    add  r9, r9, r10    ; imaginary part
    stw  r8, r1, 0
    stw  r9, r1, 4
    addi r1, r1, 8
    addi r2, r2, 8
    subi r3, r3, 8
    bnez r3, loop
    halt
"""


def run_xor_kernel(block: np.ndarray, packet: np.ndarray,
                   scratchpad_cycles: int = 1) -> tuple[np.ndarray, VMResult]:
    """Execute the XOR kernel over real bytes; returns (result, metrics)."""
    block = np.asarray(block, dtype=np.uint8).ravel()
    packet = np.asarray(packet, dtype=np.uint8).ravel()
    n = min(block.size, packet.size) // 4 * 4
    vm = VM(memory_bytes=max(n, 4), scratchpad_cycles=scratchpad_cycles)
    vm.memory[:n] = block[:n]
    result = vm.run(
        assemble(XOR_KERNEL_ASM),
        regs={1: 0, 2: 0, 3: n},
        packet=packet,
    )
    return vm.memory[:n].copy(), result
