"""Cycle-accurate interpreter for the HPU mini-ISA.

Every instruction costs one cycle (the A15's in-order IPC≈1 regime of
§4.2); scratchpad and packet-buffer accesses add ``k - 1`` extra cycles
(``k = 1`` by default: single-cycle access).  Simcalls cost the cost-model's
action overhead and are recorded — the surrounding DES charges their actual
latency, exactly as LogGOPSim charged gem5's handler runtimes plus its own
network costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hpu_isa.isa import Instruction

__all__ = ["VM", "VMError", "VMResult"]

MASK32 = (1 << 32) - 1


class VMError(Exception):
    """Runtime fault: bad memory access, division, or runaway execution."""


@dataclass
class VMResult:
    """Outcome of one kernel execution."""

    cycles: int
    instructions: int
    simcalls: list[tuple[str, tuple[int, ...]]] = field(default_factory=list)

    def cycles_per_byte(self, nbytes: int) -> float:
        return self.cycles / nbytes if nbytes else float("inf")


class VM:
    """One HPU core executing a handler kernel."""

    def __init__(
        self,
        memory_bytes: int = 4096,
        scratchpad_cycles: int = 1,
        max_cycles: int = 10_000_000,
    ):
        if scratchpad_cycles < 1:
            raise VMError("scratchpad access cost must be >= 1 cycle")
        self.memory = np.zeros(memory_bytes, dtype=np.uint8)
        self.packet = np.zeros(0, dtype=np.uint8)
        self.scratchpad_cycles = scratchpad_cycles
        self.max_cycles = max_cycles
        self.regs = [0] * 16

    # -- memory helpers ----------------------------------------------------
    def _check(self, arr: np.ndarray, addr: int, n: int, what: str) -> None:
        if addr < 0 or addr + n > arr.size:
            raise VMError(f"{what} access [{addr}, {addr + n}) out of bounds "
                          f"[0, {arr.size})")

    def _load(self, arr: np.ndarray, addr: int, n: int, what: str) -> int:
        self._check(arr, addr, n, what)
        return int.from_bytes(arr[addr : addr + n].tobytes(), "little")

    def _store(self, addr: int, value: int, n: int) -> None:
        self._check(self.memory, addr, n, "scratchpad")
        self.memory[addr : addr + n] = np.frombuffer(
            (value & ((1 << (8 * n)) - 1)).to_bytes(n, "little"), dtype=np.uint8
        )

    def _set(self, reg: int, value: int) -> None:
        if reg != 0:  # r0 is hardwired to zero
            self.regs[reg] = value & MASK32

    # -- execution ---------------------------------------------------------
    def run(self, program: list[Instruction], regs: dict[int, int] | None = None,
            packet: np.ndarray | None = None) -> VMResult:
        """Execute until ``halt``; returns cycle/instruction counts."""
        self.regs = [0] * 16
        for reg, value in (regs or {}).items():
            self._set(reg, value)
        if packet is not None:
            self.packet = np.asarray(packet, dtype=np.uint8).ravel()
        r = self.regs
        pc = 0
        cycles = 0
        instructions = 0
        simcalls: list[tuple[str, tuple[int, ...]]] = []
        mem_extra = self.scratchpad_cycles - 1

        while True:
            if pc < 0 or pc >= len(program):
                raise VMError(f"pc {pc} outside program of {len(program)}")
            if cycles > self.max_cycles:
                raise VMError(f"runaway kernel: > {self.max_cycles} cycles "
                              "(§7: the NIC would kill this handler)")
            ins = program[pc]
            op, a = ins.opcode, ins.operands
            cycles += 1
            instructions += 1
            pc += 1

            if op == "halt":
                return VMResult(cycles, instructions, simcalls)
            elif op == "nop":
                pass
            elif op == "add":
                self._set(a[0], r[a[1]] + r[a[2]])
            elif op == "sub":
                self._set(a[0], r[a[1]] - r[a[2]])
            elif op == "mul":
                self._set(a[0], r[a[1]] * r[a[2]])
            elif op == "and":
                self._set(a[0], r[a[1]] & r[a[2]])
            elif op == "or":
                self._set(a[0], r[a[1]] | r[a[2]])
            elif op == "xor":
                self._set(a[0], r[a[1]] ^ r[a[2]])
            elif op == "sll":
                self._set(a[0], r[a[1]] << (r[a[2]] & 31))
            elif op == "srl":
                self._set(a[0], r[a[1]] >> (r[a[2]] & 31))
            elif op == "addi":
                self._set(a[0], r[a[1]] + a[2])
            elif op == "subi":
                self._set(a[0], r[a[1]] - a[2])
            elif op == "andi":
                self._set(a[0], r[a[1]] & a[2])
            elif op == "ori":
                self._set(a[0], r[a[1]] | a[2])
            elif op == "xori":
                self._set(a[0], r[a[1]] ^ a[2])
            elif op == "slli":
                self._set(a[0], r[a[1]] << (a[2] & 31))
            elif op == "srli":
                self._set(a[0], r[a[1]] >> (a[2] & 31))
            elif op == "li":
                self._set(a[0], a[1])
            elif op == "mov":
                self._set(a[0], r[a[1]])
            elif op == "ldw":
                cycles += mem_extra
                self._set(a[0], self._load(self.memory, r[a[1]] + a[2], 4,
                                           "scratchpad"))
            elif op == "ldb":
                cycles += mem_extra
                self._set(a[0], self._load(self.memory, r[a[1]] + a[2], 1,
                                           "scratchpad"))
            elif op == "stw":
                cycles += mem_extra
                self._store(r[a[1]] + a[2], r[a[0]], 4)
            elif op == "stb":
                cycles += mem_extra
                self._store(r[a[1]] + a[2], r[a[0]], 1)
            elif op == "ldpw":
                cycles += mem_extra
                self._set(a[0], self._load(self.packet, r[a[1]] + a[2], 4,
                                           "packet"))
            elif op == "ldpb":
                cycles += mem_extra
                self._set(a[0], self._load(self.packet, r[a[1]] + a[2], 1,
                                           "packet"))
            elif op == "beq":
                if r[a[0]] == r[a[1]]:
                    pc = a[2]
            elif op == "bne":
                if r[a[0]] != r[a[1]]:
                    pc = a[2]
            elif op == "blt":
                if r[a[0]] < r[a[1]]:
                    pc = a[2]
            elif op == "bge":
                if r[a[0]] >= r[a[1]]:
                    pc = a[2]
            elif op == "beqz":
                if r[a[0]] == 0:
                    pc = a[1]
            elif op == "bnez":
                if r[a[0]] != 0:
                    pc = a[1]
            elif op == "jmp":
                pc = a[0]
            elif op.startswith("sc_"):
                cycles += 9  # +1 base above = the cost model's 10-cycle action
                simcalls.append((op, tuple(r[x] for x in a)))
            else:  # pragma: no cover - assembler prevents this
                raise VMError(f"unimplemented opcode {op}")
