"""Instruction set and assembler.

Syntax (one instruction per line; ``;`` or ``#`` start comments)::

    loop:                 ; label
        ldw  r1, r2, 0    ; r1 = mem32[r2 + 0]
        ldpw r3, r4, 0    ; r3 = packet32[r4 + 0]
        xor  r1, r1, r3
        stw  r1, r2, 0    ; mem32[r2 + 0] = r1
        addi r2, r2, 4
        addi r4, r4, 4
        subi r5, r5, 4
        bnez r5, loop
        halt

Registers r0..r15; r0 reads as 0 (writes ignored).  Operands are registers,
immediates (decimal/hex), or labels (branch targets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["AssemblyError", "Instruction", "assemble", "OPCODES"]


class AssemblyError(Exception):
    """Raised for malformed assembly input."""


#: opcode → (number of operands, operand pattern)
#: pattern chars: r = register, i = immediate, l = label (pc target)
OPCODES = {
    # ALU register-register.
    "add": (3, "rrr"), "sub": (3, "rrr"), "and": (3, "rrr"),
    "or": (3, "rrr"), "xor": (3, "rrr"), "mul": (3, "rrr"),
    "sll": (3, "rrr"), "srl": (3, "rrr"),
    # ALU immediate.
    "addi": (3, "rri"), "subi": (3, "rri"), "andi": (3, "rri"),
    "ori": (3, "rri"), "xori": (3, "rri"), "slli": (3, "rri"),
    "srli": (3, "rri"), "li": (2, "ri"), "mov": (2, "rr"),
    # Memory: scratchpad (ldw/stw word, ldb/stb byte) and packet buffer.
    "ldw": (3, "rri"), "stw": (3, "rri"), "ldb": (3, "rri"), "stb": (3, "rri"),
    "ldpw": (3, "rri"), "ldpb": (3, "rri"),
    # Control.
    "beq": (3, "rrl"), "bne": (3, "rrl"), "blt": (3, "rrl"),
    "bge": (3, "rrl"), "beqz": (2, "rl"), "bnez": (2, "rl"),
    "jmp": (1, "l"), "halt": (0, ""), "nop": (0, ""),
    # Simcalls (handler actions; operand = argument registers, fixed use).
    "sc_dma_read": (3, "rrr"),    # host_off, local_off, len
    "sc_dma_write": (3, "rrr"),   # local_off, host_off, len
    "sc_put_dev": (3, "rrr"),     # local_off, len, target
    "sc_yield": (0, ""),
}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    opcode: str
    operands: tuple[int, ...]
    line: int = 0

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.opcode} {', '.join(map(str, self.operands))}"


def _parse_register(token: str, line: int) -> int:
    token = token.strip().lower()
    if not token.startswith("r"):
        raise AssemblyError(f"line {line}: expected register, got {token!r}")
    try:
        idx = int(token[1:])
    except ValueError:
        raise AssemblyError(f"line {line}: bad register {token!r}") from None
    if not 0 <= idx < 16:
        raise AssemblyError(f"line {line}: register {token!r} out of range")
    return idx


def _parse_immediate(token: str, line: int) -> int:
    try:
        return int(token.strip(), 0)
    except ValueError:
        raise AssemblyError(f"line {line}: bad immediate {token!r}") from None


def assemble(source: str) -> list[Instruction]:
    """Two-pass assembly: collect labels, then encode instructions."""
    # Pass 1: strip comments, find labels.
    cleaned: list[tuple[int, str]] = []
    labels: dict[str, int] = {}
    for lineno, raw in enumerate(source.splitlines(), 1):
        text = raw.split(";")[0].split("#")[0].strip()
        if not text:
            continue
        while ":" in text:
            label, _, rest = text.partition(":")
            label = label.strip()
            if not label.isidentifier():
                raise AssemblyError(f"line {lineno}: bad label {label!r}")
            if label in labels:
                raise AssemblyError(f"line {lineno}: duplicate label {label!r}")
            labels[label] = len(cleaned)
            text = rest.strip()
        if text:
            cleaned.append((lineno, text))

    # Pass 2: encode.
    program: list[Instruction] = []
    for lineno, text in cleaned:
        parts = text.replace(",", " ").split()
        opcode = parts[0].lower()
        if opcode not in OPCODES:
            raise AssemblyError(f"line {lineno}: unknown opcode {opcode!r}")
        argc, pattern = OPCODES[opcode]
        args = parts[1:]
        if len(args) != argc:
            raise AssemblyError(
                f"line {lineno}: {opcode} expects {argc} operands, got {len(args)}"
            )
        operands = []
        for kind, token in zip(pattern, args):
            if kind == "r":
                operands.append(_parse_register(token, lineno))
            elif kind == "i":
                operands.append(_parse_immediate(token, lineno))
            else:  # label
                target: Optional[int] = labels.get(token.strip())
                if target is None:
                    raise AssemblyError(f"line {lineno}: unknown label {token!r}")
                operands.append(target)
        program.append(Instruction(opcode, tuple(operands), lineno))
    return program
