"""HPU mini-ISA: the cycle-accurate gem5 stand-in.

The paper times handlers by executing their compiled ARMv8 code on a
simulated in-order Cortex-A15 (2.5 GHz, IPC 1, single-cycle scratchpad).
This package provides the equivalent measurement device at reproduction
scale: a small RISC register machine with

* 16 general registers, word (4 B) and byte loads/stores against HPU
  scratchpad memory and the packet buffer;
* ALU ops, compares, branches — each costing one cycle (configurable
  scratchpad access cost ``k``, §4.2);
* an assembler for a simple text syntax;
* ``simcall`` instructions mirroring the handler actions (DMA, put from
  device) so real handler kernels can be expressed and *counted*.

The XOR and accumulate kernels in :mod:`repro.hpu_isa.programs` execute on
this VM; tests cross-validate their measured cycles/byte against the
constants the Python handlers charge in :mod:`repro.handlers_library` —
closing the loop between the convenient cost model and an instruction-level
ground truth.
"""

from repro.hpu_isa.isa import Instruction, assemble, AssemblyError
from repro.hpu_isa.vm import VM, VMError, VMResult
from repro.hpu_isa.programs import ACCUMULATE_REAL_ASM, XOR_KERNEL_ASM, COPY_KERNEL_ASM

__all__ = [
    "ACCUMULATE_REAL_ASM",
    "AssemblyError",
    "COPY_KERNEL_ASM",
    "Instruction",
    "VM",
    "VMError",
    "VMResult",
    "XOR_KERNEL_ASM",
    "assemble",
]
