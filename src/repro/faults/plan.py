"""Declarative fault plans: what breaks, when, and with which seed.

A :class:`FaultPlan` is a validated, immutable schedule of fault specs
plus a dedicated ``seed``.  Nothing here touches a simulation — the plan
is pure data; :class:`~repro.faults.injector.FaultInjector` arms it
against a live :class:`~repro.sim.session.Session`.

Determinism contract
--------------------
Every probabilistic fault draw comes from ``random.Random(plan.seed)``
owned by the injector — never the process-global RNG — and draws happen
in kernel-event order (packet dispatch order, handler invocation order).
Both orders are pinned byte-identical across the calendar/heap event
cores and the fast/slow fabric+NIC paths by the existing equivalence
contracts, so an identical plan yields identical traces on every flavour.
Times are given in **nanoseconds** (floats are fine) and converted to the
integer-picosecond clock at arm time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "FaultPlan",
    "HandlerFault",
    "LinkDegrade",
    "LinkDown",
    "NodeCrash",
    "PacketCorrupt",
    "PacketLoss",
    "link_flap",
]


def _ps(ns: float) -> int:
    """Nanoseconds → the kernel's integer picoseconds."""
    return round(ns * 1000.0)


def _check_window(at_ns: float, duration_ns: float, what: str) -> None:
    if at_ns < 0:
        raise ValueError(f"{what}: negative start time {at_ns}")
    if duration_ns <= 0:
        raise ValueError(f"{what}: window duration must be positive")


def _check_probability(p: float, what: str) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{what}: probability {p} outside [0, 1]")


@dataclass(frozen=True)
class LinkDown:
    """A :class:`~repro.network.congestion.Link` outage window.

    ``pattern`` is a substring match against link names
    (``"srcnode->dstnode"``, e.g. ``"core"`` hits every core-adjacent
    port, ``"host3->"`` one host's uplink).  While down, every packet
    reaching a matching link is dropped at admission (counted both as a
    link tail-drop and a link fault drop).  Congestion fabric only.
    """

    pattern: str
    at_ns: float
    duration_ns: float

    def __post_init__(self) -> None:
        if not self.pattern:
            raise ValueError("LinkDown: empty link pattern")
        _check_window(self.at_ns, self.duration_ns, "LinkDown")


@dataclass(frozen=True)
class LinkDegrade:
    """A degraded-bandwidth window: serialization time × ``tx_scale``.

    Models a link renegotiating to a lower rate (flaky optics, a lane
    down): an integer ``tx_scale`` of 4 means quarter bandwidth.  Same
    ``pattern`` semantics as :class:`LinkDown`; congestion fabric only.
    """

    pattern: str
    at_ns: float
    duration_ns: float
    tx_scale: int = 4

    def __post_init__(self) -> None:
        if not self.pattern:
            raise ValueError("LinkDegrade: empty link pattern")
        _check_window(self.at_ns, self.duration_ns, "LinkDegrade")
        if not isinstance(self.tx_scale, int) or self.tx_scale < 1:
            raise ValueError(
                f"LinkDegrade: tx_scale must be an integer >= 1, "
                f"got {self.tx_scale!r}"
            )


@dataclass(frozen=True)
class PacketLoss:
    """Probabilistic packet loss on any fabric (drawn at dispatch).

    Each packet entering the fabric inside the window is dropped with
    ``probability`` — it never consumes wire or link resources past the
    source (the source-side serialization already happened).  ``stop_ns``
    ``None`` means "until the end of the run".
    """

    probability: float
    start_ns: float = 0.0
    stop_ns: Optional[float] = None

    def __post_init__(self) -> None:
        _check_probability(self.probability, "PacketLoss")
        if self.start_ns < 0:
            raise ValueError("PacketLoss: negative start time")
        if self.stop_ns is not None and self.stop_ns <= self.start_ns:
            raise ValueError("PacketLoss: stop_ns must exceed start_ns")


@dataclass(frozen=True)
class PacketCorrupt:
    """Probabilistic packet corruption on any fabric.

    A corrupted packet *does* traverse the fabric — it consumes link
    bandwidth and arrives at the destination — but the receiving NIC's
    CRC check discards it, so observably it is a loss that still congests
    the network.  Window semantics match :class:`PacketLoss`.
    """

    probability: float
    start_ns: float = 0.0
    stop_ns: Optional[float] = None

    def __post_init__(self) -> None:
        _check_probability(self.probability, "PacketCorrupt")
        if self.start_ns < 0:
            raise ValueError("PacketCorrupt: negative start time")
        if self.stop_ns is not None and self.stop_ns <= self.start_ns:
            raise ValueError("PacketCorrupt: stop_ns must exceed start_ns")


@dataclass(frozen=True)
class NodeCrash:
    """Fail-stop crash of one endpoint at ``at_ns``.

    The node is detached from the fabric (packets to it are dropped, its
    own sends vanish into the void) and its stalled receive states are
    reaped.  Crashes are permanent for the run.
    """

    rank: int
    at_ns: float

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"NodeCrash: negative rank {self.rank}")
        if self.at_ns < 0:
            raise ValueError("NodeCrash: negative crash time")


@dataclass(frozen=True)
class HandlerFault:
    """HPU handler failure: invocations return an error code mid-message.

    Inside the window, each handler invocation on ``rank`` fails with
    ``probability`` — the handler's return code is replaced by ``FAIL``
    (or ``SEGV`` with ``segv=True``), driving the NIC's existing error
    machinery: ``HANDLER_ERROR`` event, ``handler_errors`` accounting,
    dropped deposit.  sPIN NICs only.
    """

    rank: int
    probability: float = 1.0
    start_ns: float = 0.0
    stop_ns: Optional[float] = None
    segv: bool = False

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"HandlerFault: negative rank {self.rank}")
        _check_probability(self.probability, "HandlerFault")
        if self.start_ns < 0:
            raise ValueError("HandlerFault: negative start time")
        if self.stop_ns is not None and self.stop_ns <= self.start_ns:
            raise ValueError("HandlerFault: stop_ns must exceed start_ns")


_FAULT_TYPES = (LinkDown, LinkDegrade, PacketLoss, PacketCorrupt,
                NodeCrash, HandlerFault)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seeded schedule of faults.

    ``seed`` feeds the injector's dedicated ``random.Random`` — the only
    randomness any fault ever consumes — so a plan is byte-reproducible
    across workers, shards, event-queue flavours, and fast/slow paths.
    """

    faults: tuple = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        faults = tuple(self.faults)
        for f in faults:
            if not isinstance(f, _FAULT_TYPES):
                raise TypeError(
                    f"not a fault spec: {f!r} "
                    f"(use {', '.join(t.__name__ for t in _FAULT_TYPES)})"
                )
        object.__setattr__(self, "faults", faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def of_type(self, *types) -> tuple:
        return tuple(f for f in self.faults if isinstance(f, types))


def link_flap(pattern: str, *, first_down_ns: float, down_ns: float,
              up_ns: float, cycles: int = 1) -> tuple[LinkDown, ...]:
    """``cycles`` repeated down-windows: down ``down_ns``, up ``up_ns``."""
    if cycles < 1:
        raise ValueError("link_flap: need at least one cycle")
    if up_ns < 0:
        raise ValueError("link_flap: negative up time")
    period = down_ns + up_ns
    return tuple(
        LinkDown(pattern=pattern, at_ns=first_down_ns + i * period,
                 duration_ns=down_ns)
        for i in range(cycles)
    )
