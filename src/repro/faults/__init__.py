"""Deterministic fault injection: seeded plans armed on live sessions.

Quickstart::

    from repro.faults import FaultPlan, PacketLoss
    from repro.sim import Session

    with Session.pair("int") as sess:
        sess.attach_faults(FaultPlan(faults=(PacketLoss(0.05),), seed=7))
        ...  # drive load; 5% of dispatched packets vanish, reproducibly

See :mod:`repro.faults.plan` for the fault vocabulary (link down/flap,
degraded bandwidth, packet loss/corruption, node crash, handler failure)
and :mod:`repro.faults.scenarios` for the registered campaign scenarios
that pair plans with the reliability layer in :mod:`repro.sim.drivers`.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultPlan,
    HandlerFault,
    LinkDegrade,
    LinkDown,
    NodeCrash,
    PacketCorrupt,
    PacketLoss,
    link_flap,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "HandlerFault",
    "LinkDegrade",
    "LinkDown",
    "NodeCrash",
    "PacketCorrupt",
    "PacketLoss",
    "link_flap",
]
