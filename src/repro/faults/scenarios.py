"""Campaign scenarios exercising the fault-injection + reliability stack.

Three registered scenarios, one per fault family:

* ``ftbcast_faults`` — the §5.4 fault-tolerant broadcast under ``k``
  fail-stop crashes injected through a :class:`~repro.faults.plan.NodeCrash`
  plan.  The binomial graph tolerates any ``k < log2(P)`` failures; with
  adversarial placement (crashing every peer of one victim) delivery
  fails once ``k >= log2(P)`` — both regimes are reachable from the
  default sweep.
* ``lossy_pingpong`` — an open-loop sender over a uniformly lossy fabric
  with the drivers' timeout/retransmit layer and sequence-number dedup at
  the target: goodput and retransmit curves vs. configured loss rate.
* ``link_flap_recovery`` — incast on the congestion fabric through a
  flapping ingress link (:func:`~repro.faults.plan.link_flap`): requests
  in flight during an outage are tail-dropped at the dead link, time out,
  and retransmit; the result reports the time from the final link-up to
  the first completed request (time-to-recovery).

Fault draws come only from ``random.Random(plan.seed)`` inside the
injector and scenario-level placement from ``random.Random(seed)``, so
every result is bit-identical under the serial and multi-worker campaign
executors.
"""

from __future__ import annotations

import math
import random

from repro.campaign.registry import Param, scenario as campaign_scenario
from repro.faults.plan import FaultPlan, NodeCrash, PacketLoss, link_flap
from repro.portals.matching import MatchEntry
from repro.sim.drivers import OpenLoopDriver, dedup_channel
from repro.sim.metrics import Metrics
from repro.sim.session import ClusterSpec, Session
from repro.usecases.ftbcast import FaultTolerantBroadcast, binomial_graph_peers

__all__ = ["FAULT_TAG", "pick_crash_ranks"]

FAULT_TAG = 47


def pick_crash_ranks(nprocs: int, failures: int, placement: str,
                     seed: int, root: int = 0) -> list[int]:
    """Deterministic crash-set selection for ``ftbcast_faults``.

    ``spread`` samples the crashes uniformly from the non-root ranks (the
    regime the binomial graph is built for); ``adversarial`` concentrates
    them on the peers of one victim rank, the placement that actually
    severs a rank once every one of its ``log``-many peers is dead.
    """
    if not 0 <= failures < nprocs:
        raise ValueError(f"failures {failures} outside [0, {nprocs})")
    candidates = [r for r in range(nprocs) if r != root]
    if placement == "spread":
        return sorted(random.Random(seed).sample(candidates, failures))
    if placement != "adversarial":
        raise ValueError(f"unknown placement {placement!r}")
    # To sever a victim, every one of its peers must die — and the root
    # cannot, so the victim must not be a direct peer of the root.  (On
    # tiny groups the binomial graph is complete and no such rank exists;
    # any non-root victim then works, and isolation is simply impossible.)
    root_reach = set(binomial_graph_peers(root, nprocs)) | {root}
    isolatable = [r for r in candidates if r not in root_reach]
    victim = isolatable[0] if isolatable else candidates[-1]
    ranks = [p for p in binomial_graph_peers(victim, nprocs) if p != root]
    ranks += [r for r in candidates if r != victim and r not in ranks]
    return sorted(ranks[:failures])


@campaign_scenario(
    "ftbcast_faults",
    params=[
        Param("nprocs", int, default=8, help="broadcast group size"),
        Param("failures", int, default=2, help="ranks to fail-stop"),
        Param("placement", str, default="spread",
              choices=("spread", "adversarial"),
              help="crash-set shape: uniform or concentrated on one victim"),
        Param("crash_ns", float, default=0.0,
              help="when the crashes land (simulated ns)"),
        Param("config", str, default="int", choices=("int", "dis")),
        Param("seed", int, default=1),
    ],
    description="fault-tolerant broadcast vs. k fail-stop crashes "
                "(delivery holds while k < log2(P))",
    tiny={"nprocs": 8, "failures": 1},
    sweep={"failures": (0, 1, 2, 5), "placement": ("spread", "adversarial")},
    tags=("faults", "usecase"),
)
def _ftbcast_faults(nprocs: int, failures: int, placement: str,
                    crash_ns: float, config: str, seed: int) -> dict:
    crash_ranks = pick_crash_ranks(nprocs, failures, placement, seed)
    ftb = FaultTolerantBroadcast(nprocs=nprocs, config=config)
    try:
        injector = ftb.session.attach_faults(FaultPlan(
            faults=tuple(NodeCrash(rank=r, at_ns=crash_ns)
                         for r in crash_ranks),
            seed=seed,
        ))
        delivered = ftb.run_broadcast(root=0, bcast_id=1)
        # The injector crashes through Cluster.crash; fold its record into
        # the broadcast's own view so the delivery check sees both paths.
        ftb.crashed.update(injector.crashed)
        live = ftb.live_ranks()
        return {
            "nprocs": nprocs,
            "failures": len(injector.crashed),
            "tolerance": int(math.log2(nprocs)),
            "placement": placement,
            "live_ranks": len(live),
            "delivered_live": len(delivered & live),
            "all_live_delivered": ftb.delivered_to_all_live(1),
            "duplicates_dropped": ftb.duplicates_dropped,
            "forwards": ftb.forwards,
            "rx_reaped": sum(injector.crash_reaped.values()),
        }
    finally:
        ftb.session.close()


@campaign_scenario(
    "lossy_pingpong",
    params=[
        Param("loss", float, default=0.1,
              help="per-packet drop probability on the fabric"),
        Param("count", int, default=64, help="requests offered"),
        Param("size", int, default=2048, help="request size in bytes"),
        Param("rate_mmps", float, default=1.0, help="offered rate"),
        Param("timeout_ns", float, default=20000.0,
              help="per-request retransmission timeout"),
        Param("retries", int, default=6, help="retransmission budget"),
        Param("config", str, default="int", choices=("int", "dis")),
        Param("seed", int, default=1),
    ],
    description="goodput / retransmit curves vs. packet-loss rate "
                "(timeout + retransmit + dedup at the target)",
    tiny={"count": 16, "loss": 0.2},
    sweep={"loss": (0.0, 0.05, 0.1, 0.2, 0.4)},
    tags=("faults", "reliability"),
)
def _lossy_pingpong(loss: float, count: int, size: int, rate_mmps: float,
                    timeout_ns: float, retries: int, config: str,
                    seed: int) -> dict:
    with Session.pair(config) as sess:
        faults = (PacketLoss(probability=loss),) if loss > 0.0 else ()
        sess.attach_faults(FaultPlan(faults=faults, seed=seed * 31 + 7))
        channel = dedup_channel(sess, 1, match_bits=FAULT_TAG)
        metrics = Metrics()
        driver = OpenLoopDriver(
            sess, source=0, target=1, rate_mmps=rate_mmps, count=count,
            size=size, match_bits=FAULT_TAG, seed=seed, metrics=metrics,
            timeout_ns=timeout_ns, retries=retries,
        )
        driver.start()
        sess.drain()
        driver.finalize()
        metrics.observe_fabric(sess.cluster.fabric, elapsed_ps=sess.env.now)
        summary = metrics.summary(elapsed_ps=sess.env.now)
        duplicates = channel.entry.spin.hpu_memory.vars.get("dups", 0)
    return {
        "loss": loss,
        "offered": count,
        "completed": summary["completed"],
        "lost": summary["dropped"],
        "timeouts": summary["timeouts"],
        "retransmits": summary["retransmits"],
        "goodput_mmps": round(summary.get("goodput_mmps", 0.0), 3),
        "packets_lost": int(summary.get("fault_packets_lost", 0)),
        "duplicates_dropped": duplicates,
        "p99_ns": summary.get("p99_ns", 0.0),
    }


@campaign_scenario(
    "link_flap_recovery",
    params=[
        Param("fanin", int, default=4, help="concurrent senders"),
        Param("count", int, default=24, help="requests per sender"),
        Param("size", int, default=4096, help="request size in bytes"),
        Param("rate_mmps", float, default=1.0, help="offered rate/sender"),
        Param("depth", int, default=64, help="per-link queue depth"),
        Param("first_down_ns", float, default=4000.0,
              help="first outage start"),
        Param("down_ns", float, default=6000.0, help="outage duration"),
        Param("up_ns", float, default=4000.0, help="gap between outages"),
        Param("cycles", int, default=2, help="down/up cycles"),
        Param("timeout_ns", float, default=6000.0,
              help="per-request retransmission timeout"),
        Param("retries", int, default=8, help="retransmission budget"),
        Param("config", str, default="int", choices=("int", "dis")),
        Param("seed", int, default=1),
    ],
    description="incast through a flapping ingress link: tail-drops, "
                "retransmits, and time-to-recovery after the last flap",
    tiny={"fanin": 2, "count": 8, "cycles": 1},
    sweep={"down_ns": (2000.0, 6000.0, 12000.0)},
    tags=("faults", "congestion", "reliability"),
)
def _link_flap_recovery(fanin: int, count: int, size: int, rate_mmps: float,
                        depth: int, first_down_ns: float, down_ns: float,
                        up_ns: float, cycles: int, timeout_ns: float,
                        retries: int, config: str, seed: int) -> dict:
    target = fanin
    spec = ClusterSpec(nodes=fanin + 1, config=config, fabric="congestion",
                       link_queue_depth=depth)
    with Session(spec) as sess:
        # Flap the victim's ingress link ("xbar0->host<target>"): every
        # packet admitted during an outage window is dropped at the link.
        injector = sess.attach_faults(FaultPlan(
            faults=link_flap(f"->host{target}", first_down_ns=first_down_ns,
                             down_ns=down_ns, up_ns=up_ns, cycles=cycles),
            seed=seed,
        ))
        sess.install(target, MatchEntry(match_bits=FAULT_TAG, length=1 << 30))
        metrics = Metrics()
        metrics.completion_log = []
        drivers = [
            OpenLoopDriver(
                sess, source=source, target=target, rate_mmps=rate_mmps,
                count=count, size=size, match_bits=FAULT_TAG,
                seed=seed * 6151 + source, metrics=metrics, stream="incast",
                timeout_ns=timeout_ns, retries=retries,
            )
            for source in range(fanin)
        ]
        for driver in drivers:
            driver.start()
        sess.drain()
        for driver in drivers:
            driver.finalize()
        fabric = sess.cluster.fabric
        metrics.observe_fabric(fabric, elapsed_ps=sess.env.now)
        summary = metrics.summary(elapsed_ps=sess.env.now)
        clear_ps = injector.last_link_clear_ps
        first_after = metrics.first_completion_after(clear_ps)
        fault_drops = fabric.total_fault_link_drops()
    return {
        "offered": fanin * count,
        "completed": summary["completed"],
        "lost": summary["dropped"],
        "timeouts": summary["timeouts"],
        "retransmits": summary["retransmits"],
        "fault_link_drops": fault_drops,
        "link_down_events": int(summary.get("fabric_links_down", 0)),
        "last_clear_ns": clear_ps / 1000.0,
        # -1.0 = nothing ever completed after the final link-up (no
        # recovery within the run); finite otherwise.
        "recovery_ns": (-1.0 if first_after is None
                        else (first_after - clear_ps) / 1000.0),
        "goodput_mmps": round(summary.get("goodput_mmps", 0.0), 3),
        "p99_ns": summary.get("p99_ns", 0.0),
    }
