"""Arms a :class:`~repro.faults.plan.FaultPlan` against a live session.

The injector is the only piece of the fault subsystem that touches a
simulation, and it does so exclusively through narrow hooks the normal
path already pays for (or pays nothing for):

* **packet loss / corruption** — wraps the fabric instance's
  ``_dispatch`` / ``_deliver`` attributes; with no plan the class methods
  run unwrapped, so the default path is bit-for-bit untouched;
* **link down / degraded bandwidth** — flips per-:class:`Link` fault
  fields through :meth:`CongestionFabric.fault_link_down` /
  :meth:`fault_link_degrade` at scheduled times;
* **node crash** — :meth:`Cluster.crash`: fabric detach + dead-source
  marking + stalled-RX reap;
* **handler failure** — installs the NIC's ``_handler_fault`` hook,
  consulted (one ``is not None`` test) per handler invocation.

All randomness comes from ``random.Random(plan.seed)`` owned here; draws
occur in kernel-event order, so identical plans replay identically on
every event-queue and fast-path flavour.  Arming a plan makes the
session unpoolable — fault state must never leak into a reused cluster.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.handlers import ReturnCode
from repro.faults.plan import (
    FaultPlan,
    HandlerFault,
    LinkDegrade,
    LinkDown,
    NodeCrash,
    PacketCorrupt,
    PacketLoss,
    _ps,
)

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules one plan's faults on one session; owns the fault RNG."""

    def __init__(self, session, plan: FaultPlan):
        self.session = session
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.cluster = session.cluster
        self.fabric = self.cluster.fabric
        self.env = session.env
        #: Ranks crashed so far, in crash order.
        self.crashed: list[int] = []
        #: Stalled receive states reaped at crash time, keyed by rank.
        self.crash_reaped: dict[int, int] = {}
        #: Handler invocations whose return code this plan replaced.
        self.handler_faults_injected = 0
        #: In-flight corrupted packets: id(pkt) → pkt (identity-checked at
        #: delivery; keeping the object alive pins the id).
        self._corrupted: dict[int, object] = {}
        # A faulted cluster must never re-enter the session reuse pool:
        # link flags, dispatch wrappers, and dead-source marks would leak
        # into the next tenant.
        session._pool_key = None
        self._arm()

    # -- introspection ------------------------------------------------------
    @property
    def last_link_clear_ps(self) -> Optional[int]:
        """When the final link-outage window ends (recovery-time anchor)."""
        downs = self.plan.of_type(LinkDown)
        if not downs:
            return None
        return max(_ps(f.at_ns + f.duration_ns) for f in downs)

    def summary(self) -> dict:
        """JSON-ready fault accounting for scenario results."""
        out = {
            "crashes": len(self.crashed),
            "handler_faults": self.handler_faults_injected,
            "fault_packets_lost": self.fabric.fault_packets_lost,
            "fault_packets_corrupted": self.fabric.fault_packets_corrupted,
        }
        if hasattr(self.fabric, "fault_link_down_events"):
            out["link_down_events"] = self.fabric.fault_link_down_events
        return out

    # -- arming -------------------------------------------------------------
    def _at(self, at_ps: int, fn) -> None:
        delay = at_ps - self.env._now
        self.env.schedule_fn(delay if delay > 0 else 0, fn)

    def _arm(self) -> None:
        plan = self.plan
        link_faults = plan.of_type(LinkDown, LinkDegrade)
        if link_faults and not hasattr(self.fabric, "fault_link_down"):
            raise ValueError(
                "link faults need the congestion fabric "
                "(ClusterSpec(fabric='congestion'))"
            )
        for fault in link_faults:
            self._arm_link(fault)
        for fault in plan.of_type(NodeCrash):
            self._at(_ps(fault.at_ns), lambda rank=fault.rank: self._crash(rank))
        packet_faults = plan.of_type(PacketLoss, PacketCorrupt)
        if packet_faults:
            self._arm_packet_faults(packet_faults)
        handler_faults = plan.of_type(HandlerFault)
        if handler_faults:
            self._arm_handler_faults(handler_faults)

    def _arm_link(self, fault) -> None:
        fabric = self.fabric
        start, stop = _ps(fault.at_ns), _ps(fault.at_ns + fault.duration_ns)
        if isinstance(fault, LinkDown):
            self._at(start, lambda p=fault.pattern: fabric.fault_link_down(p, True))
            self._at(stop, lambda p=fault.pattern: fabric.fault_link_down(p, False))
        else:
            scale = fault.tx_scale
            self._at(start, lambda p=fault.pattern:
                     fabric.fault_link_degrade(p, scale))
            self._at(stop, lambda p=fault.pattern:
                     fabric.fault_link_degrade(p, 1, undo=scale))

    def _crash(self, rank: int) -> None:
        if rank in self.crashed:
            return
        reaped = self.cluster.crash(rank)
        self.crashed.append(rank)
        self.crash_reaped[rank] = reaped

    def _arm_packet_faults(self, faults) -> None:
        fabric = self.fabric
        env = self.env
        rng = self.rng
        corrupted = self._corrupted
        windows = tuple(
            (_ps(f.start_ns),
             None if f.stop_ns is None else _ps(f.stop_ns),
             f.probability,
             isinstance(f, PacketCorrupt))
            for f in faults
        )
        # Wrap the *instance* attributes: the class methods stay pristine,
        # so un-faulted fabrics (and the golden traces) never see this code.
        original_dispatch = fabric._dispatch
        original_deliver = fabric._deliver

        def dispatch(pkt, latency) -> None:
            now = env._now
            for start, stop, p, corrupt in windows:
                if now >= start and (stop is None or now < stop):
                    if rng.random() < p:
                        if corrupt:
                            # Corrupted packets still traverse (and
                            # congest) the fabric; the receiver's CRC
                            # discards them on arrival.
                            corrupted[id(pkt)] = pkt
                            break
                        fabric.fault_packets_lost += 1
                        return
            original_dispatch(pkt, latency)

        def deliver(pkt) -> None:
            if corrupted and corrupted.get(id(pkt)) is pkt:
                del corrupted[id(pkt)]
                fabric.fault_packets_corrupted += 1
                return
            original_deliver(pkt)

        fabric._dispatch = dispatch
        fabric._deliver = deliver

        # A corrupted packet the congestion fabric tail-drops (or drops in
        # an outage window) never reaches _deliver; purge its mark at the
        # drop site, or the id-keyed dict grows for the rest of the run
        # (and pins the packet alive, inviting id reuse).  The loggp
        # fabric has no _enter and never drops.
        original_enter = getattr(fabric, "_enter", None)
        if original_enter is not None:

            def enter(pkt, route, hop) -> None:
                before = fabric.packets_dropped_links
                original_enter(pkt, route, hop)
                if (fabric.packets_dropped_links != before and corrupted
                        and corrupted.get(id(pkt)) is pkt):
                    del corrupted[id(pkt)]

            fabric._enter = enter

    def _arm_handler_faults(self, faults) -> None:
        by_rank: dict[int, list] = {}
        for f in faults:
            by_rank.setdefault(f.rank, []).append((
                _ps(f.start_ns),
                None if f.stop_ns is None else _ps(f.stop_ns),
                f.probability,
                ReturnCode.SEGV if f.segv else ReturnCode.FAIL,
            ))
        for rank, specs in by_rank.items():
            nic = self.cluster[rank].nic
            if not hasattr(nic, "_run_handler"):
                raise ValueError(
                    f"handler faults need a spin NIC on rank {rank}"
                )
            nic._handler_fault = self._make_handler_hook(tuple(specs))

    def _make_handler_hook(self, specs):
        env = self.env
        rng = self.rng

        def hook(label: str, code: ReturnCode) -> ReturnCode:
            now = env._now
            for start, stop, p, fault_code in specs:
                if now >= start and (stop is None or now < stop):
                    if p >= 1.0 or rng.random() < p:
                        self.handler_faults_injected += 1
                        return fault_code
            return code

        return hook
