"""The paper's handler codes (Appendix C.3), translated to the Python API.

Each handler set mirrors the corresponding C code; per-byte cycle charges
encode the instruction counts of the C loops on the in-order HPU
(cross-validated against the mini-ISA interpreter in
:mod:`repro.hpu_isa.programs`):

============  =====================================================  ===========
handler set   inner loop                                             cycles/byte
============  =====================================================  ===========
pingpong      none (pure forwarding)                                 0
accumulate    complex multiply: 4 mul + 2 add + 4 ld/st per 8 B      1.5
bcast         none (pure forwarding)                                 0
ddtvec        per-block offset arithmetic (≈20 instr per block)      —
raid (xor)    word XOR: ld + ld + xor + st per 4 B                   1.0
============  =====================================================  ===========

Notes on intentional deviations from the appendix listings (documented per
DESIGN.md's substitution rules):

* ``bcast``: the listing forwards packets but never writes them to host
  memory; we add a non-blocking deposit so every rank actually receives the
  data (the deposit overlaps forwarding and does not change the critical
  path shape).
* ``raid primary``: the listing DMA-writes the XOR *diff* over the stored
  block; a storage node must store the **new** data, so we write ``data``
  and send the diff to the parity node — the traffic and timing are
  identical.
* complex multiply: the listing's imaginary part has a sign typo; we use
  the correct complex product (verified against numpy).
"""

from __future__ import annotations

import numpy as np

from repro.core.handlers import ReturnCode

__all__ = [
    "ACCUMULATE_CYCLES_PER_BYTE",
    "XOR_CYCLES_PER_BYTE",
    "COPY_CYCLES_PER_BYTE",
    "DDT_BLOCK_CYCLES",
    "PARITY_TAG",
    "make_accumulate_handlers",
    "make_bcast_handlers",
    "make_ddtvec_handlers",
    "make_pingpong_handlers",
    "make_raid_parity_handlers",
    "make_raid_primary_handlers",
]

#: Complex multiply-accumulate: ~12 instructions per 8-byte complex pair.
ACCUMULATE_CYCLES_PER_BYTE = 1.5
#: Word-wise XOR: ld, ld, xor, st per 32-bit word.
XOR_CYCLES_PER_BYTE = 1.0
#: Word-wise copy into HPU memory: ld + st per 32-bit word.
COPY_CYCLES_PER_BYTE = 0.5
#: Per-block bookkeeping in the vector-datatype handler.
DDT_BLOCK_CYCLES = 20

PARITY_TAG = 53
PONG_TAG = 10


# --------------------------------------------------------------------------
# C.3.1 Ping-pong
# --------------------------------------------------------------------------
def make_pingpong_handlers(streaming: bool = True, pong_match_bits: int = PONG_TAG):
    """Handlers for the sPIN ping-pong (C.3.1).

    *streaming* mirrors the ``STREAMING`` compile-time flag: when True,
    single-/multi-packet messages are answered per packet from the device;
    when False (store mode), single-packet messages are buffered in HPU
    memory and answered from the device by the completion handler, larger
    messages take the default deposit path and are answered with a put from
    host memory.
    """

    def header_handler(ctx, h):
        ctx.charge(6)  # compare + two stores
        info = ctx.state.vars
        info["source"] = h.source
        info["length"] = h.length
        mtu = ctx.nic.machine.ni.limits.max_payload_size
        if streaming:
            info["stream"] = True
            return ReturnCode.PROCESS_DATA  # payload handler replies per packet
        info["stream"] = False
        if h.length <= mtu:
            # Store mode, single packet: buffer in HPU memory, reply from
            # device after the message completed.
            return ReturnCode.PROCESS_DATA
        return ReturnCode.PROCEED  # deposit to host; completion replies

    def payload_handler(ctx, p):
        info = ctx.state.vars
        if info["stream"]:
            yield from ctx.put_from_device(
                p.payload,
                target=info["source"],
                match_bits=pong_match_bits,
                nbytes=p.payload_len,
            )
            return ReturnCode.SUCCESS
        # Store mode (single packet): copy into HPU memory.
        ctx.charge_per_byte(p.payload_len, COPY_CYCLES_PER_BYTE)
        if p.payload is not None:
            ctx.state.write(64, p.payload)
        info["stored_len"] = p.payload_len
        return ReturnCode.SUCCESS

    def completion_handler(ctx, dropped_bytes, flow_control_triggered):
        info = ctx.state.vars
        ctx.charge(4)
        if info["stream"]:
            return ReturnCode.SUCCESS
        mtu = ctx.nic.machine.ni.limits.max_payload_size
        if info["length"] <= mtu:
            data = (
                ctx.state.read(64, info["stored_len"])
                if "stored_len" in info and ctx.state.size >= 64
                else None
            )
            yield from ctx.put_from_device(
                data,
                target=info["source"],
                match_bits=pong_match_bits,
                nbytes=info["length"],
            )
        else:
            yield from ctx.put_from_host(
                0, info["length"], target=info["source"],
                match_bits=pong_match_bits,
            )
        return ReturnCode.SUCCESS

    return header_handler, payload_handler, completion_handler


# --------------------------------------------------------------------------
# C.3.2 Accumulate
# --------------------------------------------------------------------------
def complex_multiply_bytes(dest: np.ndarray, incoming: np.ndarray) -> np.ndarray:
    """dest ⊙ incoming as complex64 pairs over raw bytes (the HPU kernel)."""
    n = min(dest.size, incoming.size) // 8 * 8
    if n == 0:
        return dest[:0]
    a = dest[:n].view(np.complex64)
    b = incoming[:n].view(np.complex64)
    return (a * b).view(np.uint8)


def make_accumulate_handlers(pong: bool = False, pong_match_bits: int = PONG_TAG):
    """Handlers for the remote accumulate (C.3.2).

    Each payload handler fetches the destination slice from host memory,
    multiplies element-wise (complex pairs), writes the product back, and —
    in ping-pong mode — returns the slice from the device.
    """

    def header_handler(ctx, h):
        ctx.charge(4)
        if pong:
            ctx.state.vars["source"] = h.source
        return ReturnCode.PROCESS_DATA

    def payload_handler(ctx, p):
        buf = yield from ctx.dma_from_host_b(p.payload_offset, p.payload_len)
        ctx.charge_per_byte(p.payload_len, ACCUMULATE_CYCLES_PER_BYTE)
        if buf is not None and p.payload is not None:
            result = complex_multiply_bytes(buf, np.asarray(p.payload))
            out = buf.copy()
            out[: result.size] = result
        else:
            out = None
        yield from ctx.dma_to_host_b(out, p.payload_offset, nbytes=p.payload_len)
        if pong:
            yield from ctx.put_from_device(
                out,
                target=ctx.state.vars["source"],
                match_bits=pong_match_bits,
                nbytes=p.payload_len,
            )
        return ReturnCode.SUCCESS

    return header_handler, payload_handler, None


# --------------------------------------------------------------------------
# C.3.3 Broadcast (binomial tree)
# --------------------------------------------------------------------------
def binomial_children(my_rank: int, nprocs: int) -> list[int]:
    """Forwarding targets of ``my_rank`` in the paper's binomial loop.

    ``for half = p/2; half >= 1; half /= 2: if rank % (2*half) == 0 →
    send to rank+half`` — bounds-checked for non-power-of-two P.
    """
    children = []
    half = 1
    while half < nprocs:
        half <<= 1
    half >>= 1
    while half >= 1:
        if my_rank % (2 * half) == 0 and my_rank + half < nprocs:
            children.append(my_rank + half)
        half >>= 1
    return children


def make_bcast_handlers(my_rank: int, nprocs: int, streaming: bool = True,
                        match_bits: int = PONG_TAG):
    """Handlers for the sPIN broadcast (C.3.3): forward, then deposit."""

    def header_handler(ctx, h):
        ctx.charge(6)
        info = ctx.state.vars
        info["length"] = h.length
        mtu = ctx.nic.machine.ni.limits.max_payload_size
        if not streaming and h.length > mtu:
            info["stream"] = False
            return ReturnCode.PROCEED  # deposit; completion forwards from host
        info["stream"] = True
        return ReturnCode.PROCESS_DATA

    def payload_handler(ctx, p):
        # Forward this packet down the binomial tree, from the device.
        for child in binomial_children(my_rank, nprocs):
            ctx.charge(4)  # loop + modulo test
            yield from ctx.put_from_device(
                p.payload, target=child, match_bits=match_bits,
                nbytes=p.payload_len,
            )
        # Deposit locally (overlaps further forwarding).
        yield from ctx.dma_to_host_nb(p.payload, p.payload_offset,
                                      nbytes=p.payload_len)
        return ReturnCode.SUCCESS

    def completion_handler(ctx, dropped_bytes, flow_control_triggered):
        info = ctx.state.vars
        ctx.charge(4)
        if not info["stream"]:
            for child in binomial_children(my_rank, nprocs):
                ctx.charge(4)
                yield from ctx.put_from_host(
                    0, info["length"], target=child, match_bits=match_bits
                )
        return ReturnCode.SUCCESS

    return header_handler, payload_handler, completion_handler


# --------------------------------------------------------------------------
# C.3.4 Strided (vector) datatype
# --------------------------------------------------------------------------
def make_ddtvec_handlers(blocksize: int, stride: int, start: int = 0):
    """Payload handler depositing a vector datatype (C.3.4).

    ``blocksize`` bytes of every ``stride``-byte period are real data
    (MPI vector semantics: stride = distance between block starts).  Each
    payload handler computes, for every block its packet covers, the target
    host offset and issues one DMA write (Fig. 6).
    """
    if blocksize <= 0 or stride < blocksize:
        raise ValueError("need blocksize > 0 and stride >= blocksize")

    def payload_handler(ctx, p):
        first_seg = p.payload_offset // blocksize
        last_seg = (p.payload_offset + p.payload_len - 1) // blocksize
        offset_in_packet = 0
        for seg in range(first_seg, last_seg + 1):
            ctx.charge(DDT_BLOCK_CYCLES)
            offset_in_block = (p.payload_offset + offset_in_packet) % blocksize
            host_offset = start + seg * stride + offset_in_block
            size = min(
                blocksize - offset_in_block, p.payload_len - offset_in_packet
            )
            chunk = (
                np.asarray(p.payload)[offset_in_packet : offset_in_packet + size]
                if p.payload is not None
                else None
            )
            yield from ctx.dma_to_host_b(chunk, host_offset, nbytes=size)
            offset_in_packet += size
        return ReturnCode.SUCCESS

    return None, payload_handler, None


def unpack_vector_reference(
    packed: np.ndarray, blocksize: int, stride: int, out_size: int
) -> np.ndarray:
    """Reference (numpy) unpack of a vector datatype, for verification."""
    out = np.zeros(out_size, dtype=np.uint8)
    nblocks = packed.size // blocksize
    for j in range(nblocks):
        out[j * stride : j * stride + blocksize] = packed[
            j * blocksize : (j + 1) * blocksize
        ]
    rest = packed.size - nblocks * blocksize
    if rest:
        out[nblocks * stride : nblocks * stride + rest] = packed[nblocks * blocksize :]
    return out


# --------------------------------------------------------------------------
# C.3.5 Reed-Solomon / RAID-5
# --------------------------------------------------------------------------
def xor_bytes(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    n = min(a.size, b.size)
    return np.bitwise_xor(a[:n], b[:n])


def make_raid_primary_handlers(parity_node: int, ack_match_bits: int = 30):
    """Data-server handlers (C.3.5): apply the write, forward the diff."""

    def header_handler(ctx, h):
        ctx.charge(4)
        ctx.state.vars["source"] = h.source
        ctx.state.vars["client"] = h.hdr_data
        return ReturnCode.PROCESS_DATA

    def payload_handler(ctx, p):
        old = yield from ctx.dma_from_host_b(p.payload_offset, p.payload_len)
        ctx.charge_per_byte(p.payload_len, XOR_CYCLES_PER_BYTE)
        if old is not None and p.payload is not None:
            new = np.asarray(p.payload)
            diff = xor_bytes(old, new)
        else:
            new = None
            diff = None
        # Store the *new* data locally (see module docstring).
        yield from ctx.dma_to_host_b(new, p.payload_offset, nbytes=p.payload_len)
        # Send the diff to the parity node, tagged with the message offset so
        # the parity node applies it at the same block position.
        yield from ctx.put_from_device(
            diff,
            target=parity_node,
            match_bits=PARITY_TAG,
            nbytes=p.payload_len,
            hdr_data=ctx.state.vars["client"],
            user_hdr={"block_offset": ctx.message.offset + p.payload_offset},
        )
        return ReturnCode.SUCCESS

    return header_handler, payload_handler, None


def make_raid_parity_handlers(ack_match_bits: int = 30):
    """Parity-server handlers (C.3.5): fold the diff, ACK from the device."""

    def header_handler(ctx, h):
        ctx.charge(6)
        ctx.state.vars["source"] = h.source
        ctx.state.vars["client"] = h.hdr_data
        user = h.user_hdr or {}
        ctx.state.vars["block_offset"] = user.get("block_offset", h.offset)
        return ReturnCode.PROCESS_DATA

    def payload_handler(ctx, p):
        base = ctx.state.vars["block_offset"]
        old = yield from ctx.dma_from_host_b(base + p.payload_offset, p.payload_len)
        ctx.charge_per_byte(p.payload_len, XOR_CYCLES_PER_BYTE)
        if old is not None and p.payload is not None:
            folded = xor_bytes(old, np.asarray(p.payload))
        else:
            folded = None
        yield from ctx.dma_to_host_b(folded, base + p.payload_offset,
                                     nbytes=p.payload_len)
        return ReturnCode.SUCCESS

    def completion_handler(ctx, dropped_bytes, flow_control_triggered):
        ctx.charge(4)
        # ACK straight from the NIC to the data server's client session.
        yield from ctx.put_from_device(
            None, target=ctx.state.vars["source"],
            match_bits=ack_match_bits, nbytes=1,
            hdr_data=ctx.state.vars["client"],
        )
        return ReturnCode.SUCCESS

    return header_handler, payload_handler, completion_handler
