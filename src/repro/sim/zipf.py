"""Deterministic rejection-free Zipf key sampling for skewed workloads.

Serving workloads are not uniform: a KV tier in front of a million
clients sees a hot head (a few keys take most of the traffic) and a cold
tail.  :class:`ZipfSampler` draws ranks ``0..n-1`` with
``P(rank i) ∝ 1/(i+1)**theta`` using the Gray et al. transform
popularised by YCSB: O(n) precompute of the generalised harmonic number
``zetan`` (cached per ``(n, theta)``, so a million-key sampler is built
once per process), then **O(1) per draw with no rejection loop** — every
call consumes exactly one uniform variate, which keeps the draw count
(and therefore the DES event schedule) a pure function of the seed.

Ranks 0 and 1 are exact (``P(0) = 1/zetan``, ``P(1) = 0.5**theta /
zetan``); the remaining ranks use the continuous approximation of the
discrete CDF, accurate to a few percent — the standard YCSB trade for
rejection-free draws.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Optional

__all__ = ["ZipfSampler"]


@lru_cache(maxsize=32)
def _zetan(n: int, theta: float) -> float:
    """Generalised harmonic number ``sum_{i=1..n} i**-theta``."""
    return sum(pow(i, -theta) for i in range(1, n + 1))


class ZipfSampler:
    """Seeded Zipf(``theta``) rank sampler over ``n`` keys.

    ``theta`` in ``[0, 1)``: 0 is uniform, 0.99 is the YCSB default
    (heavily skewed).  Draws come from the sampler's own seeded
    ``random.Random`` unless an explicit ``rng`` is passed to
    :meth:`sample` — the form a driver ``make_request`` hook uses, so
    key choice rides on the driver's deterministic request RNG::

        zipf = ZipfSampler(1_000_000, theta=0.99)

        def make_request(rng, index):
            key = zipf.sample(rng)
            ...
    """

    def __init__(self, n: int, theta: float = 0.99, seed: int = 1):
        if n < 1:
            raise ValueError("need at least one key")
        if not 0.0 <= theta < 1.0:
            raise ValueError(
                f"theta {theta} outside [0, 1) (the rejection-free "
                "transform needs alpha = 1/(1-theta) finite)"
            )
        self.n = n
        self.theta = theta
        self.zetan = _zetan(n, theta)
        self._rng = random.Random(seed)
        if n > 2:
            self._alpha = 1.0 / (1.0 - theta)
            zeta2 = 1.0 + pow(0.5, theta)
            self._eta = ((1.0 - pow(2.0 / n, 1.0 - theta))
                         / (1.0 - zeta2 / self.zetan))
            self._half_pow = pow(0.5, theta)

    def probability(self, rank: int) -> float:
        """Analytic ``P(rank)`` — the reference the sampler approximates."""
        if not 0 <= rank < self.n:
            raise ValueError(f"rank {rank} outside [0, {self.n})")
        return pow(rank + 1, -self.theta) / self.zetan

    def sample(self, rng: Optional[random.Random] = None) -> int:
        """One rank draw; exactly one uniform variate, no rejection."""
        u = (rng or self._rng).random()
        if self.n == 1:
            return 0
        if self.n == 2:
            # The eta transform degenerates at n=2 (its denominator is
            # zero); the two-point distribution is drawn directly.
            return 0 if u * self.zetan < 1.0 else 1
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + self._half_pow:
            return 1
        rank = int(self.n * pow(self._eta * u - self._eta + 1.0, self._alpha))
        return min(rank, self.n - 1)
