"""Fixed-memory streaming quantiles: the shared ``repro.sim`` primitive.

:class:`QuantileSketch` started life inside the traffic layer's windowed
metrics; million-client populations made it load-bearing everywhere a
latency distribution is accumulated, so it lives here as a first-class
``repro.sim`` primitive.  Both consumers build on it:

* :class:`repro.sim.metrics.LatencyStats` (``streaming=True``) — one
  sketch per stream instead of an unbounded sample list, so a
  million-request run costs the same memory as a hundred-request one;
* :class:`repro.sim.metrics.WindowedMetrics` — one sketch per time
  window, so time-resolved SLO curves stay fixed-memory per bin.

Determinism contract: the compaction schedule depends only on the
insertion sequence (and, for :meth:`QuantileSketch.merge`, the merge
order), never on wall time, object identity, or the global RNG —
identical streams produce identical sketches on every host and worker.
Below ``capacity`` samples the sketch is **exact**: nothing has
compacted, so percentiles equal the nearest-rank answer over the sorted
samples bit-for-bit (the property that keeps small-scenario outputs
unchanged when a stream flips to streaming mode).
"""

from __future__ import annotations

import math
from typing import Optional

__all__ = ["QuantileSketch"]


class QuantileSketch:
    """Deterministic bounded-memory streaming quantile sketch.

    A KLL-style compactor chain: level ``i`` holds samples of weight
    ``2**i``; when level 0 fills to ``capacity`` it is sorted and every
    other element (alternating parity per compaction, so no systematic
    rank bias) is promoted one level up.  Memory is bounded by
    ``capacity`` items per level times ``log2(n / capacity)`` levels —
    a few KiB regardless of stream length — and the compaction schedule
    depends only on the insertion sequence, so identical streams produce
    identical sketches on every host and worker.

    While fewer than ``capacity`` samples have been added the sketch is
    **exact** (nothing has compacted yet): small windows pay no
    approximation at all.
    """

    __slots__ = ("capacity", "count", "min", "max", "_levels", "_parity")

    def __init__(self, capacity: int = 128):
        if capacity < 4:
            raise ValueError(f"sketch capacity {capacity} too small (< 4)")
        self.capacity = capacity
        self.count = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self._levels: list[list[int]] = [[]]
        self._parity = 0

    def add(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"negative sample {value}")
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        level0 = self._levels[0]
        level0.append(value)
        if len(level0) >= self.capacity:
            self._compact(0)

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into this sketch (``other`` is left untouched).

        Level buffers concatenate level-by-level — a level-``i`` sample
        carries weight ``2**i`` in either sketch, so rank estimates
        compose — and any level that overflows compacts exactly as if
        the samples had arrived by :meth:`add`.  The result depends only
        on both sketches' states and this sketch's capacity, so merge
        order is deterministic; merging exact (uncompacted) sketches
        whose total stays below capacity is itself exact.
        """
        self.count += other.count
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        for level, buf in enumerate(other._levels):
            if not buf:
                continue
            while level >= len(self._levels):
                self._levels.append([])
            mine = self._levels[level]
            mine.extend(buf)
            if len(mine) >= self.capacity:
                self._compact(level)

    def _compact(self, level: int) -> None:
        buf = self._levels[level]
        buf.sort()
        keep = buf[self._parity::2]
        self._parity ^= 1
        self._levels[level] = []
        if level + 1 == len(self._levels):
            self._levels.append([])
        nxt = self._levels[level + 1]
        nxt.extend(keep)
        if len(nxt) >= self.capacity:
            self._compact(level + 1)

    def percentile(self, q: float) -> int:
        """Nearest-rank percentile over the weighted retained samples."""
        if not self.count:
            raise ValueError("percentile of an empty sketch")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        # The extremes are tracked exactly; compaction may have evicted
        # them from the retained set, so answer them directly.
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        weighted = sorted(
            (value, 1 << level)
            for level, buf in enumerate(self._levels)
            for value in buf
        )
        total = sum(w for _, w in weighted)
        target = max(1, math.ceil(q * total))
        cum = 0
        for value, weight in weighted:
            cum += weight
            if cum >= target:
                return value
        return weighted[-1][0]  # pragma: no cover - target <= total

    def retained(self) -> int:
        """Samples physically held (the memory bound, for tests)."""
        return sum(len(buf) for buf in self._levels)
