"""Shared measurement/reliability core for workload drivers.

:class:`DriverCore` is the engine every load shape builds on — open
loop, closed loop, and aggregated population (see
:mod:`repro.sim.drivers`).  It owns the parts that must behave
identically no matter how arrivals are generated:

* acked puts with per-request latency measured issue → Portals ACK
  (fresh MD/EQ per attempt, first-ACK-wins);
* the opt-in reliability layer: per-request timers, retransmission with
  exponential backoff, sequence tags for :func:`~repro.sim.drivers.
  dedup_channel` targets;
* metrics plumbing: per-stream :class:`~repro.sim.metrics.LatencyStats`,
  the completion log, and the windowed sink;
* end-of-run reconciliation (:meth:`DriverCore.finalize`) of requests
  whose ACK never arrived.

Per-request state (:class:`PendingRequest`) exists only while the
request is in flight — the property that lets a million-client
:class:`~repro.sim.drivers.PopulationDriver` run in fixed memory: the
population is a *rate*, and only the handful of in-flight requests are
objects.

Determinism: every random draw in a driver comes from ``random.Random``
instances seeded from the driver's ``seed`` parameter — never the
process-global RNG — so a driver run is reproducible regardless of
executor seeding, worker count, or interleaving with other drivers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import partial
from typing import Callable, Generator, Optional, Sequence, Union

from repro.des.engine import Event
from repro.portals.events import EventQueue
from repro.portals.ni import MemoryDescriptor
from repro.sim.metrics import Metrics

__all__ = ["DriverCore", "PendingRequest", "SizeMix"]

#: 1 million messages/second expressed as a picosecond interarrival.
_PS_PER_MMPS = 1_000_000


@dataclass(frozen=True)
class SizeMix:
    """A weighted message-size distribution sampled per request."""

    sizes: tuple[int, ...]
    weights: Optional[tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ValueError("empty size mix")
        if any(s < 0 for s in self.sizes):
            raise ValueError("negative message size")
        if self.weights is not None and len(self.weights) != len(self.sizes):
            raise ValueError("weights/sizes length mismatch")

    @classmethod
    def fixed(cls, nbytes: int) -> "SizeMix":
        return cls(sizes=(nbytes,))

    def sample(self, rng: random.Random) -> int:
        if len(self.sizes) == 1:
            return self.sizes[0]
        return rng.choices(self.sizes, weights=self.weights)[0]


def _coerce_mix(size: Union[int, SizeMix, Sequence[int]]) -> SizeMix:
    if isinstance(size, SizeMix):
        return size
    if isinstance(size, int):
        return SizeMix.fixed(size)
    return SizeMix(sizes=tuple(size))


class PendingRequest:
    """One in-flight logical request: attempts, timer, completion gate."""

    __slots__ = ("machine", "stream", "request", "target", "nbytes",
                 "gate", "start", "seq", "md_ids", "timer", "timeout_ps",
                 "attempt", "done")

    def __init__(self, machine, stream, request, target, nbytes,
                 gate, start, seq, timeout_ps):
        self.machine = machine
        self.stream = stream
        self.request = request
        self.target = target
        self.nbytes = nbytes
        self.gate = gate
        self.start = start
        self.seq = seq
        self.md_ids: list[int] = []
        self.timer = None
        self.timeout_ps = timeout_ps
        self.attempt = 0
        self.done = False


class DriverCore:
    """Shared request plumbing: acked puts with per-request latency."""

    def __init__(
        self,
        session,
        *,
        target: int,
        size: Union[int, SizeMix, Sequence[int]] = 64,
        match_bits: int = 0,
        pt_index: int = 0,
        seed: int = 1,
        metrics: Optional[Metrics] = None,
        stream: str = "load",
        make_request: Optional[Callable[[random.Random, int], dict]] = None,
        timeout_ns: Optional[float] = None,
        retries: int = 0,
        backoff: float = 2.0,
    ):
        if timeout_ns is not None and timeout_ns <= 0:
            raise ValueError("timeout_ns must be positive (or None)")
        if retries < 0:
            raise ValueError("retries cannot be negative")
        if retries and timeout_ns is None:
            raise ValueError("retries need a timeout_ns to trigger on")
        if backoff < 1.0:
            raise ValueError("backoff must be >= 1 (exponential growth)")
        self.session = session
        self.target = target
        self.size_mix = _coerce_mix(size)
        self.match_bits = match_bits
        self.pt_index = pt_index
        self.seed = seed
        self.metrics = metrics if metrics is not None else Metrics()
        self.stream = stream
        self._make_request = make_request
        self.timeout_ps = None if timeout_ns is None else round(timeout_ns * 1000.0)
        self.retries = retries
        self.backoff = backoff
        #: In-flight bookkeeping: request serial → record until the ACK
        #: lands (or the timer expires), reconciled by :meth:`finalize`
        #: after the sim drains.
        self._pending: dict[int, PendingRequest] = {}
        self._seq = 0

    def request_kwargs(self, rng: random.Random, index: int) -> dict:
        """The put for request ``index``; override via ``make_request``."""
        if self._make_request is not None:
            return self._make_request(rng, index)
        return {
            "target": self.target,
            "nbytes": self.size_mix.sample(rng),
            "match_bits": self.match_bits,
            "pt_index": self.pt_index,
        }

    def _tracked_put(self, machine, stream: str,
                     request: dict) -> Generator[object, object, Event]:
        """Post one acked put; returns a gate firing when the ACK lands.

        The latency clock starts when the request is issued (before the
        client core is acquired) and stops when the Portals ACK event
        reaches the initiator-side MD — one full offloaded round trip.
        With ``timeout_ns`` set the gate also fires at (final) timer
        expiry, the request recorded as a drop; with ``retries`` the
        timer retransmits first, backing off exponentially.
        """
        env = machine.env
        stats = self.metrics.stream(stream)
        # Copy before popping: a make_request hook may return a shared or
        # constant dict, and mutating it here would corrupt the caller's
        # request (every put after the first losing target/nbytes).
        request = dict(request)
        target = request.pop("target")
        nbytes = request.pop("nbytes")
        seq = self._seq
        self._seq = seq + 1
        if self.retries:
            # Sequence-tag the request so a dedup_channel target can
            # recognise retransmitted copies (at-least-once delivery).
            # Uniqueness spans this driver; co-targeting drivers must use
            # distinct seeds (as the scenarios do).
            request.setdefault(
                "hdr_data",
                ((self.seed & 0xFFFF) << 40) | ((machine.rank & 0xFF) << 32) | seq,
            )
        pend = PendingRequest(machine, stream, request, target, nbytes,
                              env.event(), env.now, seq, self.timeout_ps)
        stats.start()
        self._pending[seq] = pend
        yield from self._issue_attempt(pend)
        return pend.gate

    def _issue_attempt(self, pend: PendingRequest) -> Generator:
        """One transmission attempt: fresh MD/EQ, ACK callback, timer."""
        machine = pend.machine
        env = machine.env
        eq = EventQueue(capacity=4, name=f"drv[{machine.rank}]")
        md = machine.bind_md(MemoryDescriptor(event_queue=eq))
        pend.md_ids.append(md.md_id)
        eq.on_next(partial(self._on_ack, pend))
        if pend.timeout_ps is not None:
            pend.timer = env.schedule_callback(
                pend.timeout_ps, partial(self._expire, pend))
        yield from machine.host_put(pend.target, pend.nbytes, ack=True,
                                    md=md, **pend.request)

    def _on_ack(self, pend: PendingRequest, _event) -> None:
        """First ACK wins; late duplicates (other attempts) are no-ops."""
        if pend.done:
            return
        pend.done = True
        env = pend.machine.env
        if pend.timer is not None:
            pend.timer.cancel()
            pend.timer = None
        latency = env.now - pend.start
        self.metrics.stream(pend.stream).record(latency, pend.nbytes)
        self._retire(pend)
        log = self.metrics.completion_log
        if log is not None:
            log.append(env.now)
        windowed = self.metrics.windowed
        if windowed is not None:
            windowed.observe_completion(env.now, latency, pend.nbytes,
                                        stream=pend.stream)
        pend.gate.succeed(env.now)

    def _expire(self, pend: PendingRequest) -> None:
        """Per-request timer fired: retransmit, or record the drop."""
        if pend.done:
            return
        env = pend.machine.env
        stats = self.metrics.stream(pend.stream)
        stats.timeouts += 1
        if pend.attempt < self.retries:
            pend.attempt += 1
            stats.retransmits += 1
            pend.timeout_ps = round(pend.timeout_ps * self.backoff)
            env.process(self._issue_attempt(pend),
                        name=f"rexmit[{pend.stream}#{pend.seq}]")
            return
        pend.done = True
        pend.timer = None
        stats.drop()
        self._retire(pend)
        self.metrics.bump("lost_requests", 1)
        windowed = self.metrics.windowed
        if windowed is not None:
            windowed.observe_drop(env.now, stream=pend.stream)
        pend.gate.succeed(env.now)

    def _retire(self, pend: PendingRequest) -> None:
        mds = pend.machine.ni.mds
        for md_id in pend.md_ids:
            mds.pop(md_id, None)  # keep the MD table bounded
        self._pending.pop(pend.seq, None)

    def finalize(self) -> int:
        """Reconcile requests whose ACK never arrived; call after draining.

        A message dropped at the target (no match, flow control) is never
        ACKed — like real Portals, the initiator sees nothing.  Once the
        DES has quiesced that silence is definitive, so every still-pending
        request is recorded as a drop, its MD is unbound, and (closed
        loop) its client is known to be permanently stalled.  Returns the
        number of lost requests.  With ``timeout_ns`` set the per-request
        timers already converted silence into drops *during* the run, so
        there is nothing left to reconcile here.
        """
        lost = 0
        windowed = self.metrics.windowed
        for pend in list(self._pending.values()):
            if pend.done:
                continue
            pend.done = True
            if pend.timer is not None:
                pend.timer.cancel()
                pend.timer = None
            self._retire(pend)
            self.metrics.stream(pend.stream).drop()
            if windowed is not None:
                windowed.observe_drop(pend.machine.env.now,
                                      stream=pend.stream)
            lost += 1
        self._pending.clear()
        if lost:
            self.metrics.bump("lost_requests", lost)
        return lost
