"""The unified session API: declarative simulations, workload, metrics.

The paper's pitch is a *programming model* — write three small handlers
and the NIC does the rest.  This package is that model's front door for
the reproduction:

``session``    :class:`ClusterSpec` + :class:`Session` — declarative
               cluster construction, validated channel/ME installation,
               run control, teardown
``drivers``    :class:`OpenLoopDriver` / :class:`ClosedLoopDriver` /
               :class:`PopulationDriver` — composable load generators
               over any installed channel (the population driver scales
               a closed loop to millions of clients as rate, not
               objects)
``metrics``    :class:`Metrics` / :class:`LatencyStats` — per-stream
               throughput, completion counts, drops, latency
               percentiles; fixed-memory via the shared
               :class:`QuantileSketch` (``streaming=True``)
``zipf``       :class:`ZipfSampler` — seeded rejection-free skewed key
               sampling for serving workloads
``scenarios``  the load-scenario family registered with the campaign
               (``pingpong_open_load``, ``kvstore_load``,
               ``mixed_tenants``; serving scale lives in
               :mod:`repro.sim.serving`)

Quick start::

    from repro.sim import Session

    with Session.pair("int") as sess:
        channel = sess.connect(1, payload_handler=my_handler)
        proc = sess.process(my_client())
        sess.run(until=proc)
        sess.drain()
"""

from repro.sim.drivers import (
    ClosedLoopDriver,
    OpenLoopDriver,
    PopulationDriver,
    SizeMix,
)
from repro.sim.metrics import (
    LatencyStats,
    Metrics,
    QuantileSketch,
    WindowedMetrics,
    percentile_ps,
)
from repro.sim.session import ClusterSpec, Session
from repro.sim.zipf import ZipfSampler

__all__ = [
    "ClosedLoopDriver",
    "ClusterSpec",
    "LatencyStats",
    "Metrics",
    "OpenLoopDriver",
    "PopulationDriver",
    "QuantileSketch",
    "Session",
    "SizeMix",
    "WindowedMetrics",
    "ZipfSampler",
    "percentile_ps",
]
