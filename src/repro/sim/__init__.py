"""The unified session API: declarative simulations, workload, metrics.

The paper's pitch is a *programming model* — write three small handlers
and the NIC does the rest.  This package is that model's front door for
the reproduction:

``session``    :class:`ClusterSpec` + :class:`Session` — declarative
               cluster construction, validated channel/ME installation,
               run control, teardown
``drivers``    :class:`OpenLoopDriver` / :class:`ClosedLoopDriver` —
               composable load generators over any installed channel
``metrics``    :class:`Metrics` / :class:`LatencyStats` — per-stream
               throughput, completion counts, drops, latency percentiles
``scenarios``  the load-scenario family registered with the campaign
               (``pingpong_open_load``, ``kvstore_load``,
               ``mixed_tenants``)

Quick start::

    from repro.sim import Session

    with Session.pair("int") as sess:
        channel = sess.connect(1, payload_handler=my_handler)
        proc = sess.process(my_client())
        sess.run(until=proc)
        sess.drain()
"""

from repro.sim.drivers import ClosedLoopDriver, OpenLoopDriver, SizeMix
from repro.sim.metrics import (
    LatencyStats,
    Metrics,
    QuantileSketch,
    WindowedMetrics,
    percentile_ps,
)
from repro.sim.session import ClusterSpec, Session

__all__ = [
    "ClosedLoopDriver",
    "ClusterSpec",
    "LatencyStats",
    "Metrics",
    "OpenLoopDriver",
    "QuantileSketch",
    "Session",
    "SizeMix",
    "WindowedMetrics",
    "percentile_ps",
]
