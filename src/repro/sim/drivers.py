"""Composable workload drivers: open-loop and closed-loop load generators.

A driver turns an installed channel (or any matching entry) into *load*:

* :class:`OpenLoopDriver` — an arrival process posts puts at a configured
  offered rate (Poisson-style interarrivals drawn from its own seeded RNG),
  independent of completions — the canonical way to find saturation;
* :class:`ClosedLoopDriver` — N concurrent clients, each issuing the next
  request only after the previous one completed, with optional think time
  — the canonical way to model a population of users.

Both measure **request latency** from the moment the request is issued
(client CPU queueing included) to the arrival of the Portals ACK back at
the initiator, and feed a :class:`~repro.sim.metrics.Metrics` sink.
Determinism: every random draw comes from ``random.Random`` instances
seeded from the driver's ``seed`` parameter — never the process-global RNG
— so a driver run is reproducible regardless of executor seeding, worker
count, or interleaving with other drivers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional, Sequence, Union

from repro.des.engine import Event, Process
from repro.portals.events import EventQueue
from repro.portals.ni import MemoryDescriptor
from repro.sim.metrics import Metrics

__all__ = ["ClosedLoopDriver", "OpenLoopDriver", "SizeMix"]

#: 1 million messages/second expressed as a picosecond interarrival.
_PS_PER_MMPS = 1_000_000


@dataclass(frozen=True)
class SizeMix:
    """A weighted message-size distribution sampled per request."""

    sizes: tuple[int, ...]
    weights: Optional[tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ValueError("empty size mix")
        if any(s < 0 for s in self.sizes):
            raise ValueError("negative message size")
        if self.weights is not None and len(self.weights) != len(self.sizes):
            raise ValueError("weights/sizes length mismatch")

    @classmethod
    def fixed(cls, nbytes: int) -> "SizeMix":
        return cls(sizes=(nbytes,))

    def sample(self, rng: random.Random) -> int:
        if len(self.sizes) == 1:
            return self.sizes[0]
        return rng.choices(self.sizes, weights=self.weights)[0]


def _coerce_mix(size: Union[int, SizeMix, Sequence[int]]) -> SizeMix:
    if isinstance(size, SizeMix):
        return size
    if isinstance(size, int):
        return SizeMix.fixed(size)
    return SizeMix(sizes=tuple(size))


class _DriverBase:
    """Shared request plumbing: acked puts with per-request latency."""

    def __init__(
        self,
        session,
        *,
        target: int,
        size: Union[int, SizeMix, Sequence[int]] = 64,
        match_bits: int = 0,
        pt_index: int = 0,
        seed: int = 1,
        metrics: Optional[Metrics] = None,
        stream: str = "load",
        make_request: Optional[Callable[[random.Random, int], dict]] = None,
    ):
        self.session = session
        self.target = target
        self.size_mix = _coerce_mix(size)
        self.match_bits = match_bits
        self.pt_index = pt_index
        self.seed = seed
        self.metrics = metrics if metrics is not None else Metrics()
        self.stream = stream
        self._make_request = make_request
        #: In-flight bookkeeping: md_id → (machine, stream) until the ACK
        #: lands, reconciled by :meth:`finalize` after the sim drains.
        self._pending: dict[int, tuple[Any, str]] = {}

    def request_kwargs(self, rng: random.Random, index: int) -> dict:
        """The put for request ``index``; override via ``make_request``."""
        if self._make_request is not None:
            return self._make_request(rng, index)
        return {
            "target": self.target,
            "nbytes": self.size_mix.sample(rng),
            "match_bits": self.match_bits,
            "pt_index": self.pt_index,
        }

    def _tracked_put(self, machine, stream: str,
                     request: dict) -> Generator[object, object, Event]:
        """Post one acked put; returns a gate firing when the ACK lands.

        The latency clock starts when the request is issued (before the
        client core is acquired) and stops when the Portals ACK event
        reaches the initiator-side MD — one full offloaded round trip.
        """
        env = machine.env
        stats = self.metrics.stream(stream)
        # Copy before popping: a make_request hook may return a shared or
        # constant dict, and mutating it here would corrupt the caller's
        # request (every put after the first losing target/nbytes).
        request = dict(request)
        target = request.pop("target")
        nbytes = request.pop("nbytes")
        eq = EventQueue(capacity=4, name=f"drv[{machine.rank}]")
        md = machine.bind_md(MemoryDescriptor(event_queue=eq))
        gate = env.event()
        start = env.now
        stats.start()
        self._pending[md.md_id] = (machine, stream)

        def on_ack(_event) -> None:
            stats.record(env.now - start, nbytes)
            machine.ni.mds.pop(md.md_id, None)  # keep the MD table bounded
            self._pending.pop(md.md_id, None)
            gate.succeed(env.now)

        eq.on_next(on_ack)
        yield from machine.host_put(target, nbytes, ack=True, md=md, **request)
        return gate

    def finalize(self) -> int:
        """Reconcile requests whose ACK never arrived; call after draining.

        A message dropped at the target (no match, flow control) is never
        ACKed — like real Portals, the initiator sees nothing.  Once the
        DES has quiesced that silence is definitive, so every still-pending
        request is recorded as a drop, its MD is unbound, and (closed
        loop) its client is known to be permanently stalled.  Returns the
        number of lost requests.
        """
        lost = len(self._pending)
        for md_id, (machine, stream) in self._pending.items():
            machine.ni.mds.pop(md_id, None)
            self.metrics.stream(stream).drop()
        self._pending.clear()
        if lost:
            self.metrics.bump("lost_requests", lost)
        return lost


class OpenLoopDriver(_DriverBase):
    """Offered-load generator: puts at ``rate_mmps`` regardless of replies.

    The arrival process draws exponential interarrivals (mean
    ``1/rate_mmps`` microseconds) from its seeded RNG — or fixed gaps with
    ``poisson=False`` — and hands each request to its own client process,
    so posting overhead ``o`` contends for host cores exactly as concurrent
    senders would.  Latency percentiles under increasing ``rate_mmps``
    trace the saturation curve.
    """

    def __init__(self, session, *, source: int, rate_mmps: float,
                 count: int, poisson: bool = True, **kwargs: Any):
        super().__init__(session, **kwargs)
        if rate_mmps <= 0:
            raise ValueError("offered rate must be positive")
        if count < 1:
            raise ValueError("need at least one request")
        self.source = source
        self.rate_mmps = rate_mmps
        self.count = count
        self.poisson = poisson

    def start(self) -> Process:
        """Launch the arrival process; returns it (fires when all posted)."""
        return self.session.process(self._arrivals(), name=f"open[{self.stream}]")

    def _arrivals(self) -> Generator:
        env = self.session.env
        machine = self.session[self.source]
        rng = random.Random(self.seed)
        mean_gap_ps = _PS_PER_MMPS / self.rate_mmps
        # Arrival i sits at round(exact offset i), not at a sum of
        # per-gap roundings: rounding each gap independently accumulates
        # a systematic rate drift whenever the mean gap is not an integer
        # (e.g. 3 Mmps = 333333.3 ps), so N fixed-gap requests would span
        # N*round(mean) instead of N*mean.  Carrying the fractional error
        # keeps every arrival within 0.5 ps of the exact schedule.
        exact_ps = 0.0
        elapsed_ps = 0
        for index in range(self.count):
            exact_ps += (rng.expovariate(1.0) * mean_gap_ps if self.poisson
                         else mean_gap_ps)
            gap = round(exact_ps) - elapsed_ps
            if gap:
                yield env.timeout(gap)
                elapsed_ps += gap
            request = self.request_kwargs(rng, index)
            env.process(self._one(machine, request), name=f"req[{index}]")

    def _one(self, machine, request: dict) -> Generator:
        yield from self._tracked_put(machine, self.stream, request)
        # The gate resolves on ACK; open-loop clients never wait for it.


class ClosedLoopDriver(_DriverBase):
    """N concurrent clients, each one request in flight, optional think time.

    Clients are assigned round-robin over ``sources`` (one simulated host
    can run several client loops — its cores are the shared resource).
    Each client thinks for an exponential ``think_ns`` (0 disables), posts
    an acked put, waits for the ACK, records the latency, and repeats
    ``requests_per_client`` times.

    A request dropped at the target is never ACKed, so its client blocks
    forever — the honest closed-loop outcome.  Call :meth:`finalize` after
    draining to turn that silence into recorded drops (and a
    ``lost_requests`` note) instead of silently deflated load.
    """

    def __init__(self, session, *, sources: Sequence[int], clients: int,
                 requests_per_client: int, think_ns: float = 0.0,
                 per_client_streams: bool = False, **kwargs: Any):
        super().__init__(session, **kwargs)
        if not sources:
            raise ValueError("need at least one source rank")
        if clients < 1 or requests_per_client < 1:
            raise ValueError("need at least one client and one request")
        self.sources = tuple(sources)
        self.clients = clients
        self.requests_per_client = requests_per_client
        self.think_ns = think_ns
        self.per_client_streams = per_client_streams

    def start(self) -> list[Process]:
        """Launch every client loop; returns their processes."""
        return [
            self.session.process(self._client(c), name=f"client[{c}]")
            for c in range(self.clients)
        ]

    def _client(self, client_index: int) -> Generator:
        env = self.session.env
        machine = self.session[self.sources[client_index % len(self.sources)]]
        rng = random.Random(self.seed * 1_000_003 + client_index)
        stream = (f"{self.stream}.c{client_index}" if self.per_client_streams
                  else self.stream)
        think_ps = self.think_ns * 1000.0
        for index in range(self.requests_per_client):
            if think_ps:
                yield env.timeout(round(rng.expovariate(1.0) * think_ps))
            request = self.request_kwargs(rng, index)
            gate = yield from self._tracked_put(machine, stream, request)
            yield gate
