"""Composable workload drivers: open-loop and closed-loop load generators.

A driver turns an installed channel (or any matching entry) into *load*:

* :class:`OpenLoopDriver` — an arrival process posts puts at a configured
  offered rate (Poisson-style interarrivals drawn from its own seeded RNG),
  independent of completions — the canonical way to find saturation;
* :class:`ClosedLoopDriver` — N concurrent clients, each issuing the next
  request only after the previous one completed, with optional think time
  — the canonical way to model a population of users.

Both measure **request latency** from the moment the request is issued
(client CPU queueing included) to the arrival of the Portals ACK back at
the initiator, and feed a :class:`~repro.sim.metrics.Metrics` sink.
Determinism: every random draw comes from ``random.Random`` instances
seeded from the driver's ``seed`` parameter — never the process-global RNG
— so a driver run is reproducible regardless of executor seeding, worker
count, or interleaving with other drivers.

Reliability (opt-in)
--------------------
On a lossy fabric (fault injection, congestion tail-drop) an un-ACKed
request is silent — the initiator sees nothing, ever.  ``timeout_ns``
arms a per-request timer: at expiry the request is recorded as a drop
(and, closed loop, its client moves on instead of hanging until drain).
``retries`` upgrades expiry into retransmission with exponential backoff
(``timeout × backoff`` per attempt): each logical request carries a
unique sequence tag in ``hdr_data``, so a :func:`dedup_channel` target
delivers at-least-once while dropping duplicates on the NIC.  Every
timer expiry / retransmit lands in the stream's ``timeouts`` /
``retransmits`` counters; ``completed`` stays *unique* completions, so
``goodput_mmps`` is throughput net of retransmits.  With the defaults
(no timeout) nothing here schedules — the pre-reliability event stream
is preserved bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Generator, Optional, Sequence, Union

from repro.des.engine import Event, Process
from repro.portals.events import EventQueue
from repro.portals.ni import MemoryDescriptor
from repro.sim.metrics import Metrics

__all__ = ["ClosedLoopDriver", "OpenLoopDriver", "SizeMix", "dedup_channel"]

#: 1 million messages/second expressed as a picosecond interarrival.
_PS_PER_MMPS = 1_000_000


@dataclass(frozen=True)
class SizeMix:
    """A weighted message-size distribution sampled per request."""

    sizes: tuple[int, ...]
    weights: Optional[tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ValueError("empty size mix")
        if any(s < 0 for s in self.sizes):
            raise ValueError("negative message size")
        if self.weights is not None and len(self.weights) != len(self.sizes):
            raise ValueError("weights/sizes length mismatch")

    @classmethod
    def fixed(cls, nbytes: int) -> "SizeMix":
        return cls(sizes=(nbytes,))

    def sample(self, rng: random.Random) -> int:
        if len(self.sizes) == 1:
            return self.sizes[0]
        return rng.choices(self.sizes, weights=self.weights)[0]


def _coerce_mix(size: Union[int, SizeMix, Sequence[int]]) -> SizeMix:
    if isinstance(size, SizeMix):
        return size
    if isinstance(size, int):
        return SizeMix.fixed(size)
    return SizeMix(sizes=tuple(size))


class _PendingRequest:
    """One in-flight logical request: attempts, timer, completion gate."""

    __slots__ = ("machine", "stream", "request", "target", "nbytes",
                 "gate", "start", "seq", "md_ids", "timer", "timeout_ps",
                 "attempt", "done")

    def __init__(self, machine, stream, request, target, nbytes,
                 gate, start, seq, timeout_ps):
        self.machine = machine
        self.stream = stream
        self.request = request
        self.target = target
        self.nbytes = nbytes
        self.gate = gate
        self.start = start
        self.seq = seq
        self.md_ids: list[int] = []
        self.timer = None
        self.timeout_ps = timeout_ps
        self.attempt = 0
        self.done = False


class _DriverBase:
    """Shared request plumbing: acked puts with per-request latency."""

    def __init__(
        self,
        session,
        *,
        target: int,
        size: Union[int, SizeMix, Sequence[int]] = 64,
        match_bits: int = 0,
        pt_index: int = 0,
        seed: int = 1,
        metrics: Optional[Metrics] = None,
        stream: str = "load",
        make_request: Optional[Callable[[random.Random, int], dict]] = None,
        timeout_ns: Optional[float] = None,
        retries: int = 0,
        backoff: float = 2.0,
    ):
        if timeout_ns is not None and timeout_ns <= 0:
            raise ValueError("timeout_ns must be positive (or None)")
        if retries < 0:
            raise ValueError("retries cannot be negative")
        if retries and timeout_ns is None:
            raise ValueError("retries need a timeout_ns to trigger on")
        if backoff < 1.0:
            raise ValueError("backoff must be >= 1 (exponential growth)")
        self.session = session
        self.target = target
        self.size_mix = _coerce_mix(size)
        self.match_bits = match_bits
        self.pt_index = pt_index
        self.seed = seed
        self.metrics = metrics if metrics is not None else Metrics()
        self.stream = stream
        self._make_request = make_request
        self.timeout_ps = None if timeout_ns is None else round(timeout_ns * 1000.0)
        self.retries = retries
        self.backoff = backoff
        #: In-flight bookkeeping: request serial → record until the ACK
        #: lands (or the timer expires), reconciled by :meth:`finalize`
        #: after the sim drains.
        self._pending: dict[int, _PendingRequest] = {}
        self._seq = 0

    def request_kwargs(self, rng: random.Random, index: int) -> dict:
        """The put for request ``index``; override via ``make_request``."""
        if self._make_request is not None:
            return self._make_request(rng, index)
        return {
            "target": self.target,
            "nbytes": self.size_mix.sample(rng),
            "match_bits": self.match_bits,
            "pt_index": self.pt_index,
        }

    def _tracked_put(self, machine, stream: str,
                     request: dict) -> Generator[object, object, Event]:
        """Post one acked put; returns a gate firing when the ACK lands.

        The latency clock starts when the request is issued (before the
        client core is acquired) and stops when the Portals ACK event
        reaches the initiator-side MD — one full offloaded round trip.
        With ``timeout_ns`` set the gate also fires at (final) timer
        expiry, the request recorded as a drop; with ``retries`` the
        timer retransmits first, backing off exponentially.
        """
        env = machine.env
        stats = self.metrics.stream(stream)
        # Copy before popping: a make_request hook may return a shared or
        # constant dict, and mutating it here would corrupt the caller's
        # request (every put after the first losing target/nbytes).
        request = dict(request)
        target = request.pop("target")
        nbytes = request.pop("nbytes")
        seq = self._seq
        self._seq = seq + 1
        if self.retries:
            # Sequence-tag the request so a dedup_channel target can
            # recognise retransmitted copies (at-least-once delivery).
            # Uniqueness spans this driver; co-targeting drivers must use
            # distinct seeds (as the scenarios do).
            request.setdefault(
                "hdr_data",
                ((self.seed & 0xFFFF) << 40) | ((machine.rank & 0xFF) << 32) | seq,
            )
        pend = _PendingRequest(machine, stream, request, target, nbytes,
                               env.event(), env.now, seq, self.timeout_ps)
        stats.start()
        self._pending[seq] = pend
        yield from self._issue_attempt(pend)
        return pend.gate

    def _issue_attempt(self, pend: _PendingRequest) -> Generator:
        """One transmission attempt: fresh MD/EQ, ACK callback, timer."""
        machine = pend.machine
        env = machine.env
        eq = EventQueue(capacity=4, name=f"drv[{machine.rank}]")
        md = machine.bind_md(MemoryDescriptor(event_queue=eq))
        pend.md_ids.append(md.md_id)
        eq.on_next(partial(self._on_ack, pend))
        if pend.timeout_ps is not None:
            pend.timer = env.schedule_callback(
                pend.timeout_ps, partial(self._expire, pend))
        yield from machine.host_put(pend.target, pend.nbytes, ack=True,
                                    md=md, **pend.request)

    def _on_ack(self, pend: _PendingRequest, _event) -> None:
        """First ACK wins; late duplicates (other attempts) are no-ops."""
        if pend.done:
            return
        pend.done = True
        env = pend.machine.env
        if pend.timer is not None:
            pend.timer.cancel()
            pend.timer = None
        latency = env.now - pend.start
        self.metrics.stream(pend.stream).record(latency, pend.nbytes)
        self._retire(pend)
        log = self.metrics.completion_log
        if log is not None:
            log.append(env.now)
        windowed = self.metrics.windowed
        if windowed is not None:
            windowed.observe_completion(env.now, latency, pend.nbytes,
                                        stream=pend.stream)
        pend.gate.succeed(env.now)

    def _expire(self, pend: _PendingRequest) -> None:
        """Per-request timer fired: retransmit, or record the drop."""
        if pend.done:
            return
        env = pend.machine.env
        stats = self.metrics.stream(pend.stream)
        stats.timeouts += 1
        if pend.attempt < self.retries:
            pend.attempt += 1
            stats.retransmits += 1
            pend.timeout_ps = round(pend.timeout_ps * self.backoff)
            env.process(self._issue_attempt(pend),
                        name=f"rexmit[{pend.stream}#{pend.seq}]")
            return
        pend.done = True
        pend.timer = None
        stats.drop()
        self._retire(pend)
        self.metrics.bump("lost_requests", 1)
        windowed = self.metrics.windowed
        if windowed is not None:
            windowed.observe_drop(env.now, stream=pend.stream)
        pend.gate.succeed(env.now)

    def _retire(self, pend: _PendingRequest) -> None:
        mds = pend.machine.ni.mds
        for md_id in pend.md_ids:
            mds.pop(md_id, None)  # keep the MD table bounded
        self._pending.pop(pend.seq, None)

    def finalize(self) -> int:
        """Reconcile requests whose ACK never arrived; call after draining.

        A message dropped at the target (no match, flow control) is never
        ACKed — like real Portals, the initiator sees nothing.  Once the
        DES has quiesced that silence is definitive, so every still-pending
        request is recorded as a drop, its MD is unbound, and (closed
        loop) its client is known to be permanently stalled.  Returns the
        number of lost requests.  With ``timeout_ns`` set the per-request
        timers already converted silence into drops *during* the run, so
        there is nothing left to reconcile here.
        """
        lost = 0
        windowed = self.metrics.windowed
        for pend in list(self._pending.values()):
            if pend.done:
                continue
            pend.done = True
            if pend.timer is not None:
                pend.timer.cancel()
                pend.timer = None
            self._retire(pend)
            self.metrics.stream(pend.stream).drop()
            if windowed is not None:
                windowed.observe_drop(pend.machine.env.now,
                                      stream=pend.stream)
            lost += 1
        self._pending.clear()
        if lost:
            self.metrics.bump("lost_requests", lost)
        return lost


class OpenLoopDriver(_DriverBase):
    """Offered-load generator: puts at ``rate_mmps`` regardless of replies.

    The arrival process draws exponential interarrivals (mean
    ``1/rate_mmps`` microseconds) from its seeded RNG — or fixed gaps with
    ``poisson=False`` — and hands each request to its own client process,
    so posting overhead ``o`` contends for host cores exactly as concurrent
    senders would.  Latency percentiles under increasing ``rate_mmps``
    trace the saturation curve.
    """

    def __init__(self, session, *, source: int, rate_mmps: float,
                 count: int, poisson: bool = True, **kwargs: Any):
        super().__init__(session, **kwargs)
        if rate_mmps <= 0:
            raise ValueError("offered rate must be positive")
        if count < 1:
            raise ValueError("need at least one request")
        self.source = source
        self.rate_mmps = rate_mmps
        self.count = count
        self.poisson = poisson

    def start(self) -> Process:
        """Launch the arrival process; returns it (fires when all posted)."""
        return self.session.process(self._arrivals(), name=f"open[{self.stream}]")

    def _arrivals(self) -> Generator:
        env = self.session.env
        machine = self.session[self.source]
        rng = random.Random(self.seed)
        mean_gap_ps = _PS_PER_MMPS / self.rate_mmps
        # Arrival i sits at round(exact offset i), not at a sum of
        # per-gap roundings: rounding each gap independently accumulates
        # a systematic rate drift whenever the mean gap is not an integer
        # (e.g. 3 Mmps = 333333.3 ps), so N fixed-gap requests would span
        # N*round(mean) instead of N*mean.  Carrying the fractional error
        # keeps every arrival within 0.5 ps of the exact schedule.
        exact_ps = 0.0
        elapsed_ps = 0
        for index in range(self.count):
            exact_ps += (rng.expovariate(1.0) * mean_gap_ps if self.poisson
                         else mean_gap_ps)
            gap = round(exact_ps) - elapsed_ps
            if gap:
                yield env.timeout(gap)
                elapsed_ps += gap
            request = self.request_kwargs(rng, index)
            env.process(self._one(machine, request), name=f"req[{index}]")

    def _one(self, machine, request: dict) -> Generator:
        yield from self._tracked_put(machine, self.stream, request)
        # The gate resolves on ACK; open-loop clients never wait for it.


class ClosedLoopDriver(_DriverBase):
    """N concurrent clients, each one request in flight, optional think time.

    Clients are assigned round-robin over ``sources`` (one simulated host
    can run several client loops — its cores are the shared resource).
    Each client thinks for an exponential ``think_ns`` (0 disables), posts
    an acked put, waits for the ACK, records the latency, and repeats
    ``requests_per_client`` times.

    A request dropped at the target is never ACKed, so its client blocks
    forever — the honest closed-loop outcome.  Call :meth:`finalize` after
    draining to turn that silence into recorded drops (and a
    ``lost_requests`` note) instead of silently deflated load.
    """

    def __init__(self, session, *, sources: Sequence[int], clients: int,
                 requests_per_client: int, think_ns: float = 0.0,
                 per_client_streams: bool = False, **kwargs: Any):
        super().__init__(session, **kwargs)
        if not sources:
            raise ValueError("need at least one source rank")
        if clients < 1 or requests_per_client < 1:
            raise ValueError("need at least one client and one request")
        self.sources = tuple(sources)
        self.clients = clients
        self.requests_per_client = requests_per_client
        self.think_ns = think_ns
        self.per_client_streams = per_client_streams

    def start(self) -> list[Process]:
        """Launch every client loop; returns their processes."""
        return [
            self.session.process(self._client(c), name=f"client[{c}]")
            for c in range(self.clients)
        ]

    def _client(self, client_index: int) -> Generator:
        env = self.session.env
        machine = self.session[self.sources[client_index % len(self.sources)]]
        rng = random.Random(self.seed * 1_000_003 + client_index)
        stream = (f"{self.stream}.c{client_index}" if self.per_client_streams
                  else self.stream)
        think_ps = self.think_ns * 1000.0
        for index in range(self.requests_per_client):
            if think_ps:
                yield env.timeout(round(rng.expovariate(1.0) * think_ps))
            request = self.request_kwargs(rng, index)
            gate = yield from self._tracked_put(machine, stream, request)
            yield gate


def dedup_channel(session, rank: int, *, match_bits: int,
                  length: int = 1 << 30, hpu_mem_bytes: int = 1 << 15,
                  **kwargs: Any):
    """Install an at-least-once target channel for retransmitting drivers.

    The header handler drops any message whose sequence tag
    (``hdr_data``, stamped by a driver with ``retries > 0``) was already
    *fully delivered*; the completion handler marks the tag as seen only
    once every payload byte arrived.  Marking at completion — not at the
    header — matters on a lossy fabric: an attempt whose payload was lost
    stalls forever, and had its header already claimed the tag, the
    retransmitted copy would be deduplicated into oblivion.  Duplicates
    are dropped on the NIC but still complete (and ACK), so an initiator
    whose *ACK* was lost stops retransmitting.  HPU state keys:
    ``seen`` (delivered tags), ``dups`` (duplicates dropped).
    """
    from repro.core.handlers import ReturnCode

    def dedup_header(ctx, h):
        ctx.charge(8)
        seen = ctx.state.vars.setdefault("seen", set())
        if h.hdr_data in seen:
            ctx.state.vars["dups"] = ctx.state.vars.get("dups", 0) + 1
            return ReturnCode.DROP
        return ReturnCode.PROCEED

    def dedup_completion(ctx, dropped_bytes, flow_ctl):
        ctx.charge(4)
        if not dropped_bytes and not flow_ctl:
            ctx.state.vars.setdefault("seen", set()).add(ctx.message.hdr_data)
        return ReturnCode.SUCCESS

    return session.connect(rank, match_bits=match_bits, length=length,
                           header_handler=dedup_header,
                           completion_handler=dedup_completion,
                           hpu_mem_bytes=hpu_mem_bytes, **kwargs)
