"""Composable workload drivers: open-loop, closed-loop, and population load.

A driver turns an installed channel (or any matching entry) into *load*:

* :class:`OpenLoopDriver` — an arrival process posts puts at a configured
  offered rate (Poisson-style interarrivals drawn from its own seeded RNG),
  independent of completions — the canonical way to find saturation;
* :class:`ClosedLoopDriver` — N concurrent clients, each issuing the next
  request only after the previous one completed, with optional think time
  — the canonical way to model a population of users;
* :class:`PopulationDriver` — the same closed-loop *population* expressed
  as a rate instead of objects: one aggregated arrival process whose rate
  is (idle clients × load profile) / think time, spawning per-request
  state only while a request is in flight — the way to model millions of
  users without millions of Python objects.

All of them share :class:`~repro.sim.driver_core.DriverCore`: request
latency measured from the moment the request is issued (client CPU
queueing included) to the arrival of the Portals ACK back at the
initiator, fed into a :class:`~repro.sim.metrics.Metrics` sink.
Determinism: every random draw comes from ``random.Random`` instances
seeded from the driver's ``seed`` parameter — never the process-global RNG
— so a driver run is reproducible regardless of executor seeding, worker
count, or interleaving with other drivers.

Reliability (opt-in)
--------------------
On a lossy fabric (fault injection, congestion tail-drop) an un-ACKed
request is silent — the initiator sees nothing, ever.  ``timeout_ns``
arms a per-request timer: at expiry the request is recorded as a drop
(and, closed loop, its client moves on instead of hanging until drain).
``retries`` upgrades expiry into retransmission with exponential backoff
(``timeout × backoff`` per attempt): each logical request carries a
unique sequence tag in ``hdr_data``, so a :func:`dedup_channel` target
delivers at-least-once while dropping duplicates on the NIC.  Every
timer expiry / retransmit lands in the stream's ``timeouts`` /
``retransmits`` counters; ``completed`` stays *unique* completions, so
``goodput_mmps`` is throughput net of retransmits.  With the defaults
(no timeout) nothing here schedules — the pre-reliability event stream
is preserved bit-for-bit.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Generator, Optional, Sequence

from repro.des.engine import Process
from repro.sim.driver_core import (_PS_PER_MMPS, DriverCore, PendingRequest,
                                   SizeMix)

__all__ = [
    "ClosedLoopDriver",
    "OpenLoopDriver",
    "PopulationDriver",
    "SizeMix",
    "dedup_channel",
]

# Pre-split names: the measurement/reliability core lived in this module
# as ``_DriverBase``; downstream code (traffic layer, user scenarios)
# still imports it from here.
_DriverBase = DriverCore
_PendingRequest = PendingRequest


class OpenLoopDriver(DriverCore):
    """Offered-load generator: puts at ``rate_mmps`` regardless of replies.

    The arrival process draws exponential interarrivals (mean
    ``1/rate_mmps`` microseconds) from its seeded RNG — or fixed gaps with
    ``poisson=False`` — and hands each request to its own client process,
    so posting overhead ``o`` contends for host cores exactly as concurrent
    senders would.  Latency percentiles under increasing ``rate_mmps``
    trace the saturation curve.
    """

    def __init__(self, session, *, source: int, rate_mmps: float,
                 count: int, poisson: bool = True, **kwargs: Any):
        super().__init__(session, **kwargs)
        if rate_mmps <= 0:
            raise ValueError("offered rate must be positive")
        if count < 1:
            raise ValueError("need at least one request")
        self.source = source
        self.rate_mmps = rate_mmps
        self.count = count
        self.poisson = poisson

    def start(self) -> Process:
        """Launch the arrival process; returns it (fires when all posted)."""
        return self.session.process(self._arrivals(), name=f"open[{self.stream}]")

    def _arrivals(self) -> Generator:
        env = self.session.env
        machine = self.session[self.source]
        rng = random.Random(self.seed)
        mean_gap_ps = _PS_PER_MMPS / self.rate_mmps
        # Arrival i sits at round(exact offset i), not at a sum of
        # per-gap roundings: rounding each gap independently accumulates
        # a systematic rate drift whenever the mean gap is not an integer
        # (e.g. 3 Mmps = 333333.3 ps), so N fixed-gap requests would span
        # N*round(mean) instead of N*mean.  Carrying the fractional error
        # keeps every arrival within 0.5 ps of the exact schedule.
        exact_ps = 0.0
        elapsed_ps = 0
        for index in range(self.count):
            exact_ps += (rng.expovariate(1.0) * mean_gap_ps if self.poisson
                         else mean_gap_ps)
            gap = round(exact_ps) - elapsed_ps
            if gap:
                yield env.timeout(gap)
                elapsed_ps += gap
            request = self.request_kwargs(rng, index)
            env.process(self._one(machine, request), name=f"req[{index}]")

    def _one(self, machine, request: dict) -> Generator:
        yield from self._tracked_put(machine, self.stream, request)
        # The gate resolves on ACK; open-loop clients never wait for it.


class ClosedLoopDriver(DriverCore):
    """N concurrent clients, each one request in flight, optional think time.

    Clients are assigned round-robin over ``sources`` (one simulated host
    can run several client loops — its cores are the shared resource).
    Each client thinks for an exponential ``think_ns`` (0 disables), posts
    an acked put, waits for the ACK, records the latency, and repeats
    ``requests_per_client`` times.

    A request dropped at the target is never ACKed, so its client blocks
    forever — the honest closed-loop outcome.  Call :meth:`finalize` after
    draining to turn that silence into recorded drops (and a
    ``lost_requests`` note) instead of silently deflated load.
    """

    def __init__(self, session, *, sources: Sequence[int], clients: int,
                 requests_per_client: int, think_ns: float = 0.0,
                 per_client_streams: bool = False, **kwargs: Any):
        super().__init__(session, **kwargs)
        if not sources:
            raise ValueError("need at least one source rank")
        if clients < 1 or requests_per_client < 1:
            raise ValueError("need at least one client and one request")
        self.sources = tuple(sources)
        self.clients = clients
        self.requests_per_client = requests_per_client
        self.think_ns = think_ns
        self.per_client_streams = per_client_streams

    def start(self) -> list[Process]:
        """Launch every client loop; returns their processes."""
        return [
            self.session.process(self._client(c), name=f"client[{c}]")
            for c in range(self.clients)
        ]

    def _client(self, client_index: int) -> Generator:
        env = self.session.env
        machine = self.session[self.sources[client_index % len(self.sources)]]
        rng = random.Random(self.seed * 1_000_003 + client_index)
        stream = (f"{self.stream}.c{client_index}" if self.per_client_streams
                  else self.stream)
        think_ps = self.think_ns * 1000.0
        for index in range(self.requests_per_client):
            if think_ps:
                yield env.timeout(round(rng.expovariate(1.0) * think_ps))
            request = self.request_kwargs(rng, index)
            gate = yield from self._tracked_put(machine, stream, request)
            yield gate


class PopulationDriver(DriverCore):
    """A closed-loop population represented as rate + distribution.

    Models ``population`` clients in the machine-repairman form: each
    client thinks for an exponential ``think_ns``, issues one request,
    waits for its completion, and thinks again — but no per-client object
    ever exists.  With ``idle`` clients thinking, the time to the next
    arrival is exponential with rate ``idle × load_profile(t) / think``
    (the minimum of ``idle`` i.i.d. exponential residuals), so the whole
    population collapses to one aggregated arrival process whose state is
    two integers.  By memorylessness, resampling the next-arrival gap
    from the *current* rate after every state change (arrival issued,
    completion landed) is statistically exact, not an approximation —
    which is why the think-time distribution is fixed as exponential.

    Per-request state exists only while the request is in flight
    (``peak_in_flight`` reports the high-water mark), so memory is
    O(concurrency), not O(population): a million-client population costs
    the same as a hundred-client one.

    ``fluid=False`` drops back to today's per-client simulation — it
    delegates to :class:`ClosedLoopDriver` with ``clients=population``
    (``requests`` must divide evenly), byte-identical to constructing
    that driver directly.  Small fluid populations match the per-client
    driver's summary statistics; the fluid form exists for populations
    where per-client objects are the bottleneck.

    ``load_profile`` (optional) maps absolute sim time in ns to a
    non-negative rate multiplier — diurnal swings, ramps, overload
    pulses.  It must be a pure deterministic function; it is evaluated
    at state changes and frozen between them (exact for profiles that
    vary slowly against the arrival scale).  ``max_in_flight`` caps
    concurrent in-flight requests below the population — the knob that
    keeps bounded memory *guaranteed* even when the target saturates and
    a raw closed loop would pile up ~population pending requests.
    """

    def __init__(self, session, *, sources: Sequence[int], population: int,
                 requests: int, think_ns: float, fluid: bool = True,
                 load_profile: Optional[Callable[[float], float]] = None,
                 max_in_flight: Optional[int] = None, **kwargs: Any):
        super().__init__(session, **kwargs)
        if not sources:
            raise ValueError("need at least one source rank")
        if population < 1:
            raise ValueError("need at least one client in the population")
        if requests < 1:
            raise ValueError("need at least one request")
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError("max_in_flight must be positive (or None)")
        self.sources = tuple(sources)
        self.population = population
        self.requests = requests
        self.think_ns = think_ns
        self.fluid = fluid
        self.load_profile = load_profile
        self.max_in_flight = max_in_flight
        #: High-water mark of concurrent in-flight requests — the actual
        #: memory footprint of the population (asserted bounded in tests).
        self.peak_in_flight = 0
        self._delegate: Optional[ClosedLoopDriver] = None
        if fluid:
            if think_ns <= 0:
                raise ValueError(
                    "fluid mode needs think_ns > 0 (the aggregate arrival "
                    "rate is population/think; use ClosedLoopDriver or "
                    "fluid=False for think-free load)"
                )
            self._think_ps = think_ns * 1000.0
            self._rng = random.Random(self.seed)
            self._issued = 0
            self._in_flight = 0
            self._arrival_timer = None
        else:
            if load_profile is not None:
                raise ValueError(
                    "load_profile requires fluid=True (per-client loops "
                    "have no aggregate rate to modulate)"
                )
            if requests % population:
                raise ValueError(
                    f"requests ({requests}) must divide evenly over the "
                    f"population ({population}) in per-client mode"
                )
            delegate_kwargs = dict(kwargs)
            delegate_kwargs["metrics"] = self.metrics
            self._delegate = ClosedLoopDriver(
                session, sources=self.sources, clients=population,
                requests_per_client=requests // population,
                think_ns=think_ns, **delegate_kwargs,
            )

    def start(self):
        """Launch the load; returns the arrival process (or client list)."""
        if self._delegate is not None:
            return self._delegate.start()
        return self.session.process(self._prime(),
                                    name=f"population[{self.stream}]")

    def finalize(self) -> int:
        if self._delegate is not None:
            return self._delegate.finalize()
        if self._arrival_timer is not None:
            self._arrival_timer.cancel()
            self._arrival_timer = None
        return super().finalize()

    # -- fluid arrival engine ---------------------------------------------
    def _prime(self) -> Generator:
        # A generator so session.process can host it; the real work is
        # callback-driven (schedule_callback), which survives a million
        # arrivals without a million live generator frames.
        self._schedule_next()
        return
        yield  # pragma: no cover - makes this a generator

    def _rate_per_ps(self) -> float:
        """Current aggregate arrival rate (arrivals per picosecond)."""
        idle = self.population - self._in_flight
        if idle <= 0:
            return 0.0
        scale = 1.0
        if self.load_profile is not None:
            env = self.session.env
            scale = self.load_profile(env.now / 1000.0)
            if scale < 0:
                raise ValueError(f"load_profile returned {scale} < 0")
            # Floor at a tiny rate: with nothing in flight there is no
            # completion to re-arm the timer, so a profile trough of
            # exactly zero would otherwise strand the remaining requests
            # forever.  The floor turns "off" into "very rare polls".
            scale = max(scale, 1e-6)
        return idle * scale / self._think_ps

    def _schedule_next(self) -> None:
        """(Re)arm the next-arrival timer from the current rate.

        Called after every state change; cancelling the stale timer and
        drawing a fresh gap from the new rate is exact for exponential
        think times (memorylessness), and keeps exactly one timer live.
        """
        if self._arrival_timer is not None:
            self._arrival_timer.cancel()
            self._arrival_timer = None
        if self._issued >= self.requests:
            return
        if (self.max_in_flight is not None
                and self._in_flight >= self.max_in_flight):
            return  # a completion will re-arm
        rate = self._rate_per_ps()
        if rate <= 0.0:
            return  # all clients busy (or profile at zero): completion re-arms
        gap = max(1, round(self._rng.expovariate(rate)))
        env = self.session.env
        self._arrival_timer = env.schedule_callback(gap, self._arrival_fired)

    def _arrival_fired(self) -> None:
        self._arrival_timer = None
        env = self.session.env
        index = self._issued
        machine = self.session[self.sources[index % len(self.sources)]]
        request = self.request_kwargs(self._rng, index)
        self._issued += 1
        self._in_flight += 1
        if self._in_flight > self.peak_in_flight:
            self.peak_in_flight = self._in_flight
        env.process(self._one(machine, request),
                    name=f"pop[{self.stream}#{index}]")
        self._schedule_next()

    def _one(self, machine, request: dict) -> Generator:
        gate = yield from self._tracked_put(machine, self.stream, request)
        yield gate
        # ACK (or timeout-drop) landed: one client returns to thinking.
        self._in_flight -= 1
        self._schedule_next()


def dedup_channel(session, rank: int, *, match_bits: int,
                  length: int = 1 << 30, hpu_mem_bytes: int = 1 << 15,
                  **kwargs: Any):
    """Install an at-least-once target channel for retransmitting drivers.

    The header handler drops any message whose sequence tag
    (``hdr_data``, stamped by a driver with ``retries > 0``) was already
    *fully delivered*; the completion handler marks the tag as seen only
    once every payload byte arrived.  Marking at completion — not at the
    header — matters on a lossy fabric: an attempt whose payload was lost
    stalls forever, and had its header already claimed the tag, the
    retransmitted copy would be deduplicated into oblivion.  Duplicates
    are dropped on the NIC but still complete (and ACK), so an initiator
    whose *ACK* was lost stops retransmitting.  HPU state keys:
    ``seen`` (delivered tags), ``dups`` (duplicates dropped).
    """
    from repro.core.handlers import ReturnCode

    def dedup_header(ctx, h):
        ctx.charge(8)
        seen = ctx.state.vars.setdefault("seen", set())
        if h.hdr_data in seen:
            ctx.state.vars["dups"] = ctx.state.vars.get("dups", 0) + 1
            return ReturnCode.DROP
        return ReturnCode.PROCEED

    def dedup_completion(ctx, dropped_bytes, flow_ctl):
        ctx.charge(4)
        if not dropped_bytes and not flow_ctl:
            ctx.state.vars.setdefault("seen", set()).add(ctx.message.hdr_data)
        return ReturnCode.SUCCESS

    return session.connect(rank, match_bits=match_bits, length=length,
                           header_handler=dedup_header,
                           completion_handler=dedup_completion,
                           hpu_mem_bytes=hpu_mem_bytes, **kwargs)
