"""First-class load metrics: latency distributions, throughput, drops.

Workload drivers feed per-request samples into a :class:`Metrics` sink,
one stream per channel/client/tenant; :meth:`Metrics.summary` folds every
stream into JSON-serialisable scalars (the campaign contract), including
nearest-rank latency percentiles computed from simulation timestamps.

All arithmetic is integer-picosecond until the final report, so summaries
are bit-identical across runs, worker processes, and hosts.

Windowed (time-resolved) mode
-----------------------------
End-of-run scalars hide transients — burst absorption, incast collapse,
post-fault recovery all vanish into one p99.  :class:`WindowedMetrics`
bins completions, latency, drops, and fabric queue depth into fixed-width
time windows (integer-picosecond bin edges, so window membership is exact
arithmetic with no float drift) and reports a JSON-serialisable
:meth:`~WindowedMetrics.timeseries`.  Per-bin latency lives in
:class:`QuantileSketch` — a deterministic streaming sketch with bounded
memory — so a million-request window costs the same as a ten-request one.
Attach a sink via :attr:`Metrics.windowed` and the drivers feed it
automatically; detached (the default), nothing here runs and summaries
are byte-identical to the pre-windowed code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.sim.sketch import QuantileSketch

__all__ = [
    "LatencyStats",
    "Metrics",
    "QuantileSketch",
    "WindowedMetrics",
    "percentile_ps",
]


def percentile_ps(sorted_samples: list[int], q: float) -> int:
    """Nearest-rank percentile of pre-sorted integer samples (q in [0, 1])."""
    if not sorted_samples:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q} outside [0, 1]")
    rank = max(1, math.ceil(q * len(sorted_samples)))
    return sorted_samples[rank - 1]


@dataclass
class LatencyStats:
    """Accumulates request latencies (integer picoseconds) for one stream.

    Two storage modes share one interface:

    * list mode (default) keeps every sample in ``samples_ps`` and
      reports exact nearest-rank percentiles — bit-identical to the
      pre-streaming code;
    * ``streaming=True`` routes samples into a :class:`QuantileSketch`
      plus an exact running sum, so memory stays fixed no matter how
      many requests complete.  Below ``sketch_capacity`` samples the
      sketch is exact, so small streaming runs report the same
      percentiles the list mode would.  Streaming summaries add a
      ``p999_ns`` key (the tail a million-client SLO curve is about).
    """

    samples_ps: list[int] = field(default_factory=list)
    bytes_total: int = 0
    started: int = 0
    completed: int = 0
    dropped: int = 0
    #: Reliability-layer accounting (see :mod:`repro.sim.drivers`): timer
    #: expiries and retransmitted attempts.  ``completed`` counts unique
    #: logical requests, so goodput is throughput net of retransmits.
    timeouts: int = 0
    retransmits: int = 0
    #: Fixed-memory mode: samples feed ``sketch``/``sum_ps`` instead of
    #: ``samples_ps``.  Immutable after construction — flipping it on a
    #: stream that already holds list samples would silently drop them.
    streaming: bool = False
    sketch_capacity: int = 512
    #: Exact running latency sum (streaming mode only) — the mean stays
    #: exact even when the percentiles come from the sketch.
    sum_ps: int = 0
    sketch: Optional[QuantileSketch] = field(default=None, repr=False,
                                             compare=False)
    #: Cached sorted view of ``samples_ps`` — every percentile/summary
    #: call used to re-sort the whole sample list; the cache is built on
    #: first use and invalidated by :meth:`record`.  (The length check in
    #: :meth:`_ordered` also heals direct ``samples_ps`` appends, which
    #: :meth:`Metrics.total` does when merging streams.)
    _sorted: Optional[list[int]] = field(default=None, repr=False,
                                         compare=False)

    def __post_init__(self) -> None:
        if self.streaming and self.sketch is None:
            self.sketch = QuantileSketch(self.sketch_capacity)

    def start(self) -> None:
        self.started += 1

    def record(self, latency_ps: int, nbytes: int = 0) -> None:
        if latency_ps < 0:
            raise ValueError(f"negative latency {latency_ps}")
        if self.streaming:
            self.sketch.add(latency_ps)
            self.sum_ps += latency_ps
        else:
            self.samples_ps.append(latency_ps)
            self._sorted = None
        self.completed += 1
        self.bytes_total += nbytes

    def drop(self) -> None:
        self.dropped += 1

    @property
    def in_flight(self) -> int:
        return self.started - self.completed - self.dropped

    @property
    def sample_count(self) -> int:
        """Recorded latency samples, whichever mode holds them."""
        return self.sketch.count if self.streaming else len(self.samples_ps)

    def _ordered(self) -> list[int]:
        if self._sorted is None or len(self._sorted) != len(self.samples_ps):
            self._sorted = sorted(self.samples_ps)
        return self._sorted

    def percentile_ns(self, q: float) -> float:
        if self.streaming:
            return self.sketch.percentile(q) / 1000.0
        return percentile_ps(self._ordered(), q) / 1000.0

    def summary(self, elapsed_ps: Optional[int] = None) -> dict:
        """Scalars for this stream (latencies in ns, rates per second)."""
        out: dict = {
            "started": self.started,
            "completed": self.completed,
            "dropped": self.dropped,
            "bytes": self.bytes_total,
            "timeouts": self.timeouts,
            "retransmits": self.retransmits,
        }
        if self.streaming:
            if self.sketch.count:
                out.update(
                    p50_ns=self.sketch.percentile(0.50) / 1000.0,
                    p99_ns=self.sketch.percentile(0.99) / 1000.0,
                    p999_ns=self.sketch.percentile(0.999) / 1000.0,
                    max_ns=self.sketch.max / 1000.0,
                    mean_ns=self.sum_ps / self.sketch.count / 1000.0,
                )
        elif self.samples_ps:
            ordered = self._ordered()
            out.update(
                p50_ns=percentile_ps(ordered, 0.50) / 1000.0,
                p99_ns=percentile_ps(ordered, 0.99) / 1000.0,
                max_ns=ordered[-1] / 1000.0,
                mean_ns=sum(ordered) / len(ordered) / 1000.0,
            )
        if elapsed_ps is not None:
            # A legitimate zero-elapsed run (nothing ever scheduled) still
            # reports its throughput fields — as zero, not by omission.
            seconds = elapsed_ps * 1e-12
            out["throughput_rps"] = self.completed / seconds if seconds else 0.0
            out["gib_s"] = (self.bytes_total / seconds / (1 << 30)
                            if seconds else 0.0)
            # Unique completions per µs: under retransmission, what the
            # application actually got through the lossy fabric.
            out["goodput_mmps"] = (self.completed / seconds / 1e6
                                   if seconds else 0.0)
        return out


class Metrics:
    """A collection of named latency/throughput streams.

    Streams are created on first use; :meth:`summary` reports each stream
    under its own key plus a ``total`` roll-up.  ``note`` counters hold
    scenario-specific tallies (NIC inserts, host fallbacks, drops observed
    at a portal table) that ride along into the same result dict.
    """

    def __init__(self, *, streaming: bool = False,
                 sketch_capacity: int = 512) -> None:
        #: Default storage mode for streams created by :meth:`stream` —
        #: ``streaming=True`` gives every stream a fixed-memory
        #: :class:`QuantileSketch` instead of an unbounded sample list
        #: (the population-scenario default; see :class:`LatencyStats`).
        self.streaming = streaming
        self.sketch_capacity = sketch_capacity
        self.streams: dict[str, LatencyStats] = {}
        self.notes: dict[str, float] = {}
        #: Opt-in completion-timestamp log (integer ps, append order):
        #: set to ``[]`` before driving load and the reliability layer
        #: records every unique completion — the raw material for
        #: time-to-recovery after a fault clears.  ``None`` (default)
        #: records nothing.
        self.completion_log: Optional[list[int]] = None
        #: Opt-in windowed sink: attach a :class:`WindowedMetrics` and the
        #: drivers feed it every completion/drop alongside the scalar
        #: streams.  ``None`` (default) keeps the pre-windowed behaviour
        #: bit-for-bit.
        self.windowed: Optional["WindowedMetrics"] = None

    def stream(self, name: str) -> LatencyStats:
        try:
            return self.streams[name]
        except KeyError:
            stats = self.streams[name] = LatencyStats(
                streaming=self.streaming,
                sketch_capacity=self.sketch_capacity,
            )
            return stats

    def note(self, name: str, value: float) -> None:
        """Record (or overwrite) a scenario-specific scalar."""
        self.notes[name] = value

    def bump(self, name: str, delta: float = 1) -> None:
        self.notes[name] = self.notes.get(name, 0) + delta

    def observe_pt_drops(self, machine, pt_index: int = 0,
                         prefix: str = "pt") -> None:
        """Snapshot a portal-table entry's drop accounting into notes.

        The keys are always present — zero when the portal index was
        never allocated on this machine (e.g. a pure-sender node in a
        heterogeneous cluster) — following the same present-but-zero
        convention :meth:`observe_fabric` uses, so result schemas never
        change shape with the node's role.
        """
        from repro.portals.types import PortalsError
        try:
            pt = machine.ni.pt(pt_index)
        except PortalsError:
            dropped_messages = dropped_bytes = 0
        else:
            dropped_messages = pt.dropped_messages
            dropped_bytes = pt.dropped_bytes
        self.bump(f"{prefix}_dropped_messages", dropped_messages)
        self.bump(f"{prefix}_dropped_bytes", dropped_bytes)

    def observe_fabric(self, fabric, prefix: str = "fabric",
                       elapsed_ps: Optional[int] = None) -> None:
        """Snapshot a fabric's loss/occupancy accounting into notes.

        Works on any :class:`~repro.network.fabric.Fabric` (delivery and
        detached-destination drop counters); a congestion fabric
        additionally reports per-port aggregates — total tail-drops, the
        deepest link queue observed, and the peak link utilization.
        """
        self.note(f"{prefix}_packets_delivered", fabric.packets_delivered)
        self.note(f"{prefix}_packets_dropped", fabric.packets_dropped)
        # Receiver-side fallout of in-network loss: payload packets whose
        # header was dropped (orphans) and matched messages whose payload
        # never finished arriving (stalled receive states).
        self.note(f"{prefix}_rx_orphan_packets", fabric.rx_orphan_packets())
        self.note(f"{prefix}_rx_stalled_messages", fabric.rx_stalled_messages())
        # Fault-injection fallout (zero on un-faulted runs; the keys stay
        # present so result schemas are stable across a loss-rate sweep).
        self.note("fault_packets_lost", fabric.fault_packets_lost)
        self.note("fault_packets_corrupted", fabric.fault_packets_corrupted)
        # Link occupancy keys are present-but-zero on the contention-free
        # LogGP pipe (same contract the fault keys above follow), so a
        # result schema never changes shape with the fabric flavour.
        if hasattr(fabric, "links"):  # congestion flavour
            self.note(f"{prefix}_link_drops", fabric.total_link_drops())
            self.note(f"{prefix}_max_link_queue", fabric.max_link_queue())
            self.note(
                f"{prefix}_max_link_utilization",
                round(fabric.max_link_utilization(elapsed_ps), 4),
            )
            self.note(f"{prefix}_links_down", fabric.fault_link_down_events)
        else:
            self.note(f"{prefix}_link_drops", 0)
            self.note(f"{prefix}_max_link_queue", 0)
            self.note(f"{prefix}_max_link_utilization", 0.0)
            self.note(f"{prefix}_links_down", 0)

    def observe_occupancy(self, occupancy, elapsed_ps: int) -> None:
        """Fold an observer's occupancy accounting into ``occ_*`` notes.

        ``occupancy`` is a :class:`repro.obs.occupancy.OccupancyAccumulator`
        (duck-typed: anything with ``category_busy_fracs``).  Every
        category key is always present — zero when the run recorded no
        span of that category — so summaries keep one shape whether or
        not handlers/DMA/host work ran.
        """
        for key, value in occupancy.category_busy_fracs(elapsed_ps).items():
            self.note(key, value)

    def first_completion_after(self, t_ps: int) -> Optional[int]:
        """Earliest logged completion at or after ``t_ps`` (recovery time).

        Requires :attr:`completion_log` to have been enabled before the
        run; returns ``None`` when nothing completed after ``t_ps``.
        """
        if self.completion_log is None:
            raise ValueError(
                "completion_log was never enabled (set metrics.completion_log"
                " = [] before driving load)"
            )
        after = [t for t in self.completion_log if t >= t_ps]
        return min(after) if after else None

    def total(self) -> LatencyStats:
        """Merged view across every stream (fresh object, order-stable).

        If any stream is streaming the roll-up is too: streaming streams
        sketch-merge, list streams feed their samples in append order.
        Merge order is the sorted stream names, so the roll-up is
        deterministic regardless of stream creation order.
        """
        streaming = any(s.streaming for s in self.streams.values())
        if streaming:
            capacity = max(s.sketch_capacity for s in self.streams.values()
                           if s.streaming)
            merged = LatencyStats(streaming=True, sketch_capacity=capacity)
        else:
            merged = LatencyStats()
        for name in sorted(self.streams):
            s = self.streams[name]
            if streaming:
                if s.streaming:
                    merged.sketch.merge(s.sketch)
                    merged.sum_ps += s.sum_ps
                else:
                    for value in s.samples_ps:
                        merged.sketch.add(value)
                        merged.sum_ps += value
            else:
                merged.samples_ps.extend(s.samples_ps)
            merged.bytes_total += s.bytes_total
            merged.started += s.started
            merged.completed += s.completed
            merged.dropped += s.dropped
            merged.timeouts += s.timeouts
            merged.retransmits += s.retransmits
        return merged

    def summary(self, elapsed_ps: Optional[int] = None,
                per_stream: bool = True) -> dict:
        """Flat, JSON-serialisable scalars: totals + per-stream breakdown."""
        out: dict = {}
        total = self.total()
        for key, value in total.summary(elapsed_ps).items():
            out[key] = value
        if elapsed_ps is not None:
            out["elapsed_ns"] = elapsed_ps / 1000.0
        # Any named stream gets its breakdown — a single-stream workload
        # previously lost its per-stream keys entirely (the breakdown only
        # appeared with two or more streams), so downstream consumers keyed
        # on "<stream>.completed" saw the keys vanish when a sweep point
        # happened to exercise one stream.  (Cache records are keyed by the
        # source digest, so stale summaries age out automatically.)
        if per_stream and self.streams:
            for name in sorted(self.streams):
                for key, value in self.streams[name].summary(elapsed_ps).items():
                    out[f"{name}.{key}"] = value
        for name, value in self.notes.items():
            # A note named like a roll-up or stream key ("completed",
            # "load.p99_ns") would silently corrupt the summary it rides
            # along in; refuse instead of clobbering.
            if name in out:
                raise ValueError(
                    f"note {name!r} collides with a summary key; "
                    f"prefix the note (e.g. 'note_{name}')"
                )
            out[name] = value
        return out


class _WindowBin:
    """Accounting for one fixed-width time window of one series."""

    __slots__ = ("completed", "dropped", "bytes", "sketch", "queue_max",
                 "queue_samples")

    def __init__(self, sketch_capacity: int):
        self.completed = 0
        self.dropped = 0
        self.bytes = 0
        self.sketch = QuantileSketch(sketch_capacity)
        self.queue_max = 0
        self.queue_samples = 0


class WindowedMetrics:
    """Bins completions/latency/drops/queue depth into time windows.

    Bin edges are exact integer arithmetic: window ``i`` covers
    picoseconds ``[i * window_ps, (i + 1) * window_ps)`` with
    ``window_ps = round(window_ns * 1000)``, so membership never drifts
    with float accumulation.  Memory is fixed per bin (counters plus a
    :class:`QuantileSketch`); bins materialise lazily on first
    observation, and :meth:`timeseries` fills the gaps with explicit
    empty bins so consumers see a dense series.

    Streams: every observation lands in the roll-up series; pass
    ``stream=`` to also bin it under that name (per-tenant / per-edge
    time series).  Queue-depth samples are roll-up only.
    """

    def __init__(self, window_ns: float, *, sketch_capacity: int = 128):
        window_ps = round(window_ns * 1000.0)
        if window_ps < 1:
            raise ValueError(
                f"window_ns {window_ns} rounds to zero picoseconds")
        self.window_ps = window_ps
        self.sketch_capacity = sketch_capacity
        self._series: dict[Optional[str], dict[int, _WindowBin]] = {None: {}}
        #: Per-resource busy picoseconds per window (resource → bin → ps),
        #: fed by :meth:`observe_busy` (the observability layer's
        #: time-resolved occupancy).  Exact integer arithmetic: a span is
        #: split across the windows it overlaps, never sampled.
        self._occ: dict[str, dict[int, int]] = {}

    # -- observation -------------------------------------------------------
    def bin_index(self, t_ps: int) -> int:
        if t_ps < 0:
            raise ValueError(f"negative timestamp {t_ps}")
        return t_ps // self.window_ps

    def _bin(self, series: Optional[str], t_ps: int) -> _WindowBin:
        bins = self._series.setdefault(series, {})
        idx = self.bin_index(t_ps)
        try:
            return bins[idx]
        except KeyError:
            b = bins[idx] = _WindowBin(self.sketch_capacity)
            return b

    def observe_completion(self, t_ps: int, latency_ps: int, nbytes: int = 0,
                           stream: Optional[str] = None) -> None:
        targets = (None,) if stream is None else (None, stream)
        for series in targets:
            b = self._bin(series, t_ps)
            b.completed += 1
            b.bytes += nbytes
            b.sketch.add(latency_ps)

    def observe_drop(self, t_ps: int, stream: Optional[str] = None) -> None:
        targets = (None,) if stream is None else (None, stream)
        for series in targets:
            self._bin(series, t_ps).dropped += 1

    def observe_queue_depth(self, t_ps: int, depth: int) -> None:
        b = self._bin(None, t_ps)
        b.queue_samples += 1
        if depth > b.queue_max:
            b.queue_max = depth

    def observe_busy(self, resource: str, start_ps: int, end_ps: int) -> None:
        """Credit a busy interval ``[start_ps, end_ps)`` to ``resource``.

        The span is split exactly across every window it overlaps (a
        span longer than a window credits each full window its whole
        width), so per-window busy fractions are exact integer
        accounting, not samples.
        """
        if start_ps < 0 or end_ps < start_ps:
            raise ValueError(
                f"bad busy interval [{start_ps}, {end_ps}) for {resource!r}")
        occ = self._occ.setdefault(resource, {})
        w = self.window_ps
        idx = start_ps // w
        while start_ps < end_ps:
            edge = (idx + 1) * w
            occ[idx] = occ.get(idx, 0) + (min(end_ps, edge) - start_ps)
            start_ps = edge
            idx += 1

    # -- reporting ---------------------------------------------------------
    def streams(self) -> tuple[str, ...]:
        return tuple(sorted(s for s in self._series if s is not None))

    def occupancy_resources(self) -> tuple[str, ...]:
        """Resources with busy-time observations, sorted."""
        return tuple(sorted(self._occ))

    def occupancy_series(self, resource: str) -> list[float]:
        """Per-window busy fraction for one resource (dense from t=0).

        The series extends through the resource's last busy window;
        windows with no busy time report 0.0.
        """
        bins = self._occ.get(resource, {})
        n = (max(bins) + 1) if bins else 0
        w = self.window_ps
        return [bins.get(i, 0) / w for i in range(n)]

    def num_bins(self, stream: Optional[str] = None) -> int:
        bins = self._series.get(stream, {})
        return (max(bins) + 1) if bins else 0

    def timeseries(self, stream: Optional[str] = None) -> dict:
        """Dense JSON-serialisable time series for one stream (or the
        roll-up).

        One entry per window from t=0 through the last observed window,
        empty windows included (zero counts, ``None`` percentiles — a
        window with no completions has no latency, and reporting 0.0
        would fake a perfect one).
        """
        bins = self._series.get(stream, {})
        out = []
        for idx in range(self.num_bins(stream)):
            b = bins.get(idx)
            entry: dict = {
                "t_ns": idx * self.window_ps / 1000.0,
                "completed": 0 if b is None else b.completed,
                "dropped": 0 if b is None else b.dropped,
                "bytes": 0 if b is None else b.bytes,
                "queue_max": 0 if b is None else b.queue_max,
                "p50_ns": None,
                "p99_ns": None,
                "max_ns": None,
            }
            if b is not None and b.sketch.count:
                entry["p50_ns"] = b.sketch.percentile(0.50) / 1000.0
                entry["p99_ns"] = b.sketch.percentile(0.99) / 1000.0
                entry["max_ns"] = b.sketch.max / 1000.0
            seconds = self.window_ps * 1e-12
            entry["throughput_rps"] = entry["completed"] / seconds
            out.append(entry)
        return {
            "window_ns": self.window_ps / 1000.0,
            "stream": stream,
            "bins": out,
        }

    def series(self, key: str, stream: Optional[str] = None,
               default: float = 0.0) -> list:
        """One column of :meth:`timeseries` as a flat list (figures/tests).

        ``None`` cells (empty-window percentiles) are replaced by
        ``default`` so the list is JSON- and table-friendly.
        """
        ts = self.timeseries(stream)
        return [default if b[key] is None else b[key] for b in ts["bins"]]
