"""First-class load metrics: latency distributions, throughput, drops.

Workload drivers feed per-request samples into a :class:`Metrics` sink,
one stream per channel/client/tenant; :meth:`Metrics.summary` folds every
stream into JSON-serialisable scalars (the campaign contract), including
nearest-rank latency percentiles computed from simulation timestamps.

All arithmetic is integer-picosecond until the final report, so summaries
are bit-identical across runs, worker processes, and hosts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["LatencyStats", "Metrics", "percentile_ps"]


def percentile_ps(sorted_samples: list[int], q: float) -> int:
    """Nearest-rank percentile of pre-sorted integer samples (q in [0, 1])."""
    if not sorted_samples:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q} outside [0, 1]")
    rank = max(1, math.ceil(q * len(sorted_samples)))
    return sorted_samples[rank - 1]


@dataclass
class LatencyStats:
    """Accumulates request latencies (integer picoseconds) for one stream."""

    samples_ps: list[int] = field(default_factory=list)
    bytes_total: int = 0
    started: int = 0
    completed: int = 0
    dropped: int = 0
    #: Reliability-layer accounting (see :mod:`repro.sim.drivers`): timer
    #: expiries and retransmitted attempts.  ``completed`` counts unique
    #: logical requests, so goodput is throughput net of retransmits.
    timeouts: int = 0
    retransmits: int = 0

    def start(self) -> None:
        self.started += 1

    def record(self, latency_ps: int, nbytes: int = 0) -> None:
        if latency_ps < 0:
            raise ValueError(f"negative latency {latency_ps}")
        self.samples_ps.append(latency_ps)
        self.completed += 1
        self.bytes_total += nbytes

    def drop(self) -> None:
        self.dropped += 1

    @property
    def in_flight(self) -> int:
        return self.started - self.completed - self.dropped

    def percentile_ns(self, q: float) -> float:
        return percentile_ps(sorted(self.samples_ps), q) / 1000.0

    def summary(self, elapsed_ps: Optional[int] = None) -> dict:
        """Scalars for this stream (latencies in ns, rates per second)."""
        out: dict = {
            "started": self.started,
            "completed": self.completed,
            "dropped": self.dropped,
            "bytes": self.bytes_total,
            "timeouts": self.timeouts,
            "retransmits": self.retransmits,
        }
        if self.samples_ps:
            ordered = sorted(self.samples_ps)
            out.update(
                p50_ns=percentile_ps(ordered, 0.50) / 1000.0,
                p99_ns=percentile_ps(ordered, 0.99) / 1000.0,
                max_ns=ordered[-1] / 1000.0,
                mean_ns=sum(ordered) / len(ordered) / 1000.0,
            )
        if elapsed_ps is not None:
            # A legitimate zero-elapsed run (nothing ever scheduled) still
            # reports its throughput fields — as zero, not by omission.
            seconds = elapsed_ps * 1e-12
            out["throughput_rps"] = self.completed / seconds if seconds else 0.0
            out["gib_s"] = (self.bytes_total / seconds / (1 << 30)
                            if seconds else 0.0)
            # Unique completions per µs: under retransmission, what the
            # application actually got through the lossy fabric.
            out["goodput_mmps"] = (self.completed / seconds / 1e6
                                   if seconds else 0.0)
        return out


class Metrics:
    """A collection of named latency/throughput streams.

    Streams are created on first use; :meth:`summary` reports each stream
    under its own key plus a ``total`` roll-up.  ``note`` counters hold
    scenario-specific tallies (NIC inserts, host fallbacks, drops observed
    at a portal table) that ride along into the same result dict.
    """

    def __init__(self) -> None:
        self.streams: dict[str, LatencyStats] = {}
        self.notes: dict[str, float] = {}
        #: Opt-in completion-timestamp log (integer ps, append order):
        #: set to ``[]`` before driving load and the reliability layer
        #: records every unique completion — the raw material for
        #: time-to-recovery after a fault clears.  ``None`` (default)
        #: records nothing.
        self.completion_log: Optional[list[int]] = None

    def stream(self, name: str) -> LatencyStats:
        try:
            return self.streams[name]
        except KeyError:
            stats = self.streams[name] = LatencyStats()
            return stats

    def note(self, name: str, value: float) -> None:
        """Record (or overwrite) a scenario-specific scalar."""
        self.notes[name] = value

    def bump(self, name: str, delta: float = 1) -> None:
        self.notes[name] = self.notes.get(name, 0) + delta

    def observe_pt_drops(self, machine, pt_index: int = 0,
                         prefix: str = "pt") -> None:
        """Snapshot a portal-table entry's drop accounting into notes."""
        pt = machine.ni.pt(pt_index)
        self.bump(f"{prefix}_dropped_messages", pt.dropped_messages)
        self.bump(f"{prefix}_dropped_bytes", pt.dropped_bytes)

    def observe_fabric(self, fabric, prefix: str = "fabric",
                       elapsed_ps: Optional[int] = None) -> None:
        """Snapshot a fabric's loss/occupancy accounting into notes.

        Works on any :class:`~repro.network.fabric.Fabric` (delivery and
        detached-destination drop counters); a congestion fabric
        additionally reports per-port aggregates — total tail-drops, the
        deepest link queue observed, and the peak link utilization.
        """
        self.note(f"{prefix}_packets_delivered", fabric.packets_delivered)
        self.note(f"{prefix}_packets_dropped", fabric.packets_dropped)
        # Receiver-side fallout of in-network loss: payload packets whose
        # header was dropped (orphans) and matched messages whose payload
        # never finished arriving (stalled receive states).
        self.note(f"{prefix}_rx_orphan_packets", fabric.rx_orphan_packets())
        self.note(f"{prefix}_rx_stalled_messages", fabric.rx_stalled_messages())
        # Fault-injection fallout (zero on un-faulted runs; the keys stay
        # present so result schemas are stable across a loss-rate sweep).
        self.note("fault_packets_lost", fabric.fault_packets_lost)
        self.note("fault_packets_corrupted", fabric.fault_packets_corrupted)
        if hasattr(fabric, "links"):  # congestion flavour
            self.note(f"{prefix}_link_drops", fabric.total_link_drops())
            self.note(f"{prefix}_max_link_queue", fabric.max_link_queue())
            self.note(
                f"{prefix}_max_link_utilization",
                round(fabric.max_link_utilization(elapsed_ps), 4),
            )
            self.note(f"{prefix}_links_down", fabric.fault_link_down_events)

    def first_completion_after(self, t_ps: int) -> Optional[int]:
        """Earliest logged completion at or after ``t_ps`` (recovery time).

        Requires :attr:`completion_log` to have been enabled before the
        run; returns ``None`` when nothing completed after ``t_ps``.
        """
        if self.completion_log is None:
            raise ValueError(
                "completion_log was never enabled (set metrics.completion_log"
                " = [] before driving load)"
            )
        after = [t for t in self.completion_log if t >= t_ps]
        return min(after) if after else None

    def total(self) -> LatencyStats:
        """Merged view across every stream (fresh object, order-stable)."""
        merged = LatencyStats()
        for name in sorted(self.streams):
            s = self.streams[name]
            merged.samples_ps.extend(s.samples_ps)
            merged.bytes_total += s.bytes_total
            merged.started += s.started
            merged.completed += s.completed
            merged.dropped += s.dropped
            merged.timeouts += s.timeouts
            merged.retransmits += s.retransmits
        return merged

    def summary(self, elapsed_ps: Optional[int] = None,
                per_stream: bool = True) -> dict:
        """Flat, JSON-serialisable scalars: totals + per-stream breakdown."""
        out: dict = {}
        total = self.total()
        for key, value in total.summary(elapsed_ps).items():
            out[key] = value
        if elapsed_ps is not None:
            out["elapsed_ns"] = elapsed_ps / 1000.0
        # Any named stream gets its breakdown — a single-stream workload
        # previously lost its per-stream keys entirely (the breakdown only
        # appeared with two or more streams), so downstream consumers keyed
        # on "<stream>.completed" saw the keys vanish when a sweep point
        # happened to exercise one stream.  (Cache records are keyed by the
        # source digest, so stale summaries age out automatically.)
        if per_stream and self.streams:
            for name in sorted(self.streams):
                for key, value in self.streams[name].summary(elapsed_ps).items():
                    out[f"{name}.{key}"] = value
        for name, value in self.notes.items():
            # A note named like a roll-up or stream key ("completed",
            # "load.p99_ns") would silently corrupt the summary it rides
            # along in; refuse instead of clobbering.
            if name in out:
                raise ValueError(
                    f"note {name!r} collides with a summary key; "
                    f"prefix the note (e.g. 'note_{name}')"
                )
            out[name] = value
        return out
