"""Serving-at-scale scenarios: million-client populations, SLO curves.

The north star is "heavy traffic from millions of users" (sPIN's target
regime); these scenarios are where the aggregated
:class:`~repro.sim.drivers.PopulationDriver` + streaming metrics stack
earns its keep:

* ``kv_serving`` — a sharded KV tier (the §5.4 bounded-chain-walk insert
  handler) serving a **million-client** closed-loop population with
  Zipf-skewed keys.  Latencies land in fixed-memory streaming sinks and
  a :class:`~repro.sim.metrics.WindowedMetrics` time series, so the
  report includes a time-resolved SLO curve (windows meeting the p99
  target), not just end-of-run scalars.
* ``tenant_overload`` — per-tenant populations sharing one target NIC,
  one tenant driven into overload while every tenant's ``load_profile``
  swings diurnally.  Per-tenant windowed percentiles show whether the
  victim tenants keep their SLO while the aggressor saturates.

Memory contract: the population is a rate, in-flight requests are the
only per-request objects, and every latency sink is a bounded sketch —
so the million-client runs fit a fixed RSS budget (asserted in CI via
``examples/million_clients.py``).  Determinism contract: all randomness
flows from ``random.Random(seed)`` / :class:`~repro.sim.zipf.
ZipfSampler`; byte-identical ``Timeline.canonical_bytes()`` across the
calendar/heap × fast/slow flavour matrix is pinned by the test suite.
"""

from __future__ import annotations

import math
import random

from repro.campaign.registry import Param, scenario as campaign_scenario
from repro.core.handlers import ReturnCode
from repro.sim.drivers import PopulationDriver
from repro.sim.metrics import Metrics, WindowedMetrics
from repro.sim.scenarios import KV_WALK_BUDGET, LOAD_TAG, _kv_hash, _round2
from repro.sim.session import Session
from repro.sim.zipf import ZipfSampler

__all__ = ["diurnal_profile"]


def diurnal_profile(period_ns: float, *, floor: float = 0.25,
                    peak: float = 1.75, phase: float = 0.0):
    """A smooth day/night load multiplier for ``PopulationDriver``.

    Returns a pure function of absolute sim time (ns) oscillating
    between ``floor`` and ``peak`` with the given period — mean 1.0 for
    the defaults, so the configured think time stays the *average* load.
    ``phase`` (in periods) staggers tenants so their peaks don't align.
    """
    if period_ns <= 0:
        raise ValueError("period_ns must be positive")
    if not 0 <= floor <= peak:
        raise ValueError(f"need 0 <= floor <= peak, got [{floor}, {peak}]")
    mid = (peak + floor) / 2.0
    amp = (peak - floor) / 2.0

    def profile(t_ns: float) -> float:
        return mid + amp * math.sin(2.0 * math.pi * (t_ns / period_ns + phase))

    return profile


def _slo_curve(windowed: WindowedMetrics, slo_ns: float,
               stream=None) -> dict:
    """Time-resolved SLO attainment: windows whose p99 met the target."""
    p99 = windowed.timeseries(stream)["bins"]
    active = [b["p99_ns"] for b in p99 if b["p99_ns"] is not None]
    met = sum(1 for v in active if v <= slo_ns)
    return {
        "windows": len(p99),
        "windows_active": len(active),
        "windows_met_p99": met,
        "slo_attainment": _round2(met / len(active)) if active else 1.0,
    }


# ---------------------------------------------------------------------------
# kv_serving
# ---------------------------------------------------------------------------

@campaign_scenario(
    "kv_serving",
    params=[
        Param("population", int, default=1_000_000,
              help="simulated closed-loop clients (a rate, not objects)"),
        Param("requests", int, default=8000,
              help="total requests issued by the population"),
        Param("nservers", int, default=4, help="KV shard servers"),
        Param("nclients", int, default=2, help="client host machines"),
        Param("think_ns", float, default=2.5e8,
              help="mean exponential client think time (population/think "
                   "sets the offered rate: 1M clients at 250 ms think "
                   "offer 4 Mmps)"),
        Param("nkeys", int, default=1_000_000, help="key space size"),
        Param("theta", float, default=0.99,
              help="Zipf skew (0 uniform, 0.99 YCSB-hot)"),
        Param("value_bytes", int, default=64),
        Param("nbuckets", int, default=256, help="hash buckets per server"),
        Param("slo_ns", float, default=4000.0, help="p99 latency SLO target"),
        Param("window_ns", float, default=200_000.0,
              help="SLO-curve window width"),
        Param("max_in_flight", int, default=4096,
              help="hard cap on concurrent in-flight requests (the memory "
                   "guarantee under saturation)"),
        Param("config", str, default="int", choices=("int", "dis")),
        Param("seed", int, default=1),
    ],
    description="KV tier serving a million-client Zipf population with "
                "time-resolved SLO curves",
    tiny={"requests": 1200, "window_ns": 50_000.0},
    sweep={"theta": (0.0, 0.99), "nservers": (2, 4, 8)},
    tags=("load", "kvstore", "serving", "usecase"),
)
def _kv_serving(population: int, requests: int, nservers: int, nclients: int,
                think_ns: float, nkeys: int, theta: float, value_bytes: int,
                nbuckets: int, slo_ns: float, window_ns: float,
                max_in_flight: int, config: str, seed: int) -> dict:
    nodes = nclients + nservers
    counters = {"nic_inserts": 0, "host_fallback": 0}
    tables = [{b: [] for b in range(nbuckets)} for _ in range(nservers)]
    zipf = ZipfSampler(nkeys, theta=theta, seed=seed)

    with Session.pair(config, nodes=nodes) as sess:
        def make_insert_handler(server_index: int):
            def insert_header_handler(ctx, h):
                user = h.user_hdr
                chain = tables[server_index][user["bucket"]]
                steps = min(len(chain), KV_WALK_BUDGET)
                ctx.charge(12 + 8 * steps)
                if len(chain) >= KV_WALK_BUDGET:
                    counters["host_fallback"] += 1
                    machine = ctx.nic.machine

                    def host_side(chain=chain, user=user, machine=machine):
                        yield from machine.cpu.run(
                            machine.config.host.dram_latency_ps
                            * (KV_WALK_BUDGET + 1),
                            "kv-host-insert",
                        )
                        chain.append(user["key"])

                    ctx.env.process(host_side())
                    return ReturnCode.DROP
                chain.append(user["key"])
                counters["nic_inserts"] += 1
                return ReturnCode.DROP

            return insert_header_handler

        for idx in range(nservers):
            sess.connect(nclients + idx, match_bits=LOAD_TAG,
                         header_handler=make_insert_handler(idx),
                         hpu_mem_bytes=256)

        def make_request(rng: random.Random, index: int) -> dict:
            rank = zipf.sample(rng)
            key = b"k%d" % rank
            node = _kv_hash(key, nservers)
            bucket = _kv_hash(key, nbuckets, salt=b"bucket2")
            return {
                "target": nclients + node,
                "nbytes": len(key) + value_bytes,
                "match_bits": LOAD_TAG,
                "user_hdr": {"bucket": bucket, "key": key},
            }

        metrics = Metrics(streaming=True)
        metrics.windowed = WindowedMetrics(window_ns=window_ns)
        driver = PopulationDriver(
            sess, sources=tuple(range(nclients)), population=population,
            requests=requests, think_ns=think_ns,
            max_in_flight=max_in_flight, target=-1,
            make_request=make_request, seed=seed, metrics=metrics,
            stream="serve",
        )
        driver.start()
        sess.drain()
        driver.finalize()
        # Server 0 has a portal table; the pure-sender client ranks keep
        # the keys present-but-zero (the observe_pt_drops convention).
        metrics.observe_pt_drops(sess[nclients])
        metrics.observe_pt_drops(sess[0], prefix="client_pt")
        summary = metrics.summary(elapsed_ps=sess.env.now)
        slo = _slo_curve(metrics.windowed, slo_ns)
    stored = sum(len(c) for table in tables for c in table.values())
    return {
        "population": population,
        "completed": summary["completed"],
        "lost": summary["dropped"],
        "offered_mmps": _round2(1000.0 * population / think_ns),
        "achieved_mmps": _round2(summary.get("throughput_rps", 0.0) / 1e6),
        "p50_ns": summary.get("p50_ns", 0.0),
        "p99_ns": summary.get("p99_ns", 0.0),
        "p999_ns": summary.get("p999_ns", 0.0),
        "peak_in_flight": driver.peak_in_flight,
        "nic_inserts": counters["nic_inserts"],
        "host_fallback": counters["host_fallback"],
        "stored": stored,
        "pt_dropped_messages": summary.get("pt_dropped_messages", 0),
        **slo,
    }


# ---------------------------------------------------------------------------
# tenant_overload
# ---------------------------------------------------------------------------

@campaign_scenario(
    "tenant_overload",
    params=[
        Param("tenants", int, default=3,
              help="per-tenant populations sharing one target NIC"),
        Param("population", int, default=100_000,
              help="clients per well-behaved tenant"),
        Param("requests", int, default=1800, help="requests per tenant"),
        Param("think_ns", float, default=5.0e7,
              help="mean think per well-behaved tenant (100k clients at "
                   "50 ms think offer 2 Mmps each)"),
        Param("overload", float, default=8.0,
              help="tenant 0's offered-rate multiplier (its think time is "
                   "divided by this)"),
        Param("period_ns", float, default=300_000.0,
              help="diurnal swing period for every tenant's load profile"),
        Param("slo_ns", float, default=6000.0, help="per-tenant p99 SLO"),
        Param("window_ns", float, default=75_000.0,
              help="SLO-curve window width"),
        Param("config", str, default="int", choices=("int", "dis")),
        Param("seed", int, default=1),
    ],
    description="tenant SLO isolation under one overloading tenant with "
                "diurnal load swings",
    tiny={"tenants": 2, "population": 50_000, "requests": 500,
          "window_ns": 40_000.0},
    sweep={"overload": (1.0, 4.0, 16.0), "tenants": (2, 4)},
    tags=("load", "serving", "multitenancy"),
)
def _tenant_overload(tenants: int, population: int, requests: int,
                     think_ns: float, overload: float, period_ns: float,
                     slo_ns: float, window_ns: float, config: str,
                     seed: int) -> dict:
    if overload < 1.0:
        raise ValueError("overload multiplier must be >= 1")
    target = 0
    with Session.pair(config, nodes=tenants + 1) as sess:
        metrics = Metrics(streaming=True)
        metrics.windowed = WindowedMetrics(window_ns=window_ns)
        drivers = []
        for tenant in range(tenants):
            match_bits = 100 + tenant

            def make_count_handler():
                def count_header_handler(ctx, h):
                    ctx.charge(10)
                    ctx.state.vars["n"] = ctx.state.vars.get("n", 0) + 1
                    return ReturnCode.DROP

                return count_header_handler

            sess.connect(target, match_bits=match_bits, length=1 << 30,
                         header_handler=make_count_handler(),
                         hpu_mem_bytes=256)
            drivers.append(PopulationDriver(
                sess, sources=(tenant + 1,), population=population,
                requests=requests,
                think_ns=think_ns / (overload if tenant == 0 else 1.0),
                load_profile=diurnal_profile(period_ns,
                                             phase=tenant / tenants),
                target=target, size=256, match_bits=match_bits,
                seed=seed * 7919 + tenant, metrics=metrics,
                stream=f"t{tenant}",
            ))
        for driver in drivers:
            driver.start()
        sess.drain()
        for driver in drivers:
            driver.finalize()
        metrics.observe_pt_drops(sess[target])
        summary = metrics.summary(elapsed_ps=sess.env.now)
        windowed = metrics.windowed
        out = {
            "tenants": tenants,
            "overload": overload,
            "completed": summary["completed"],
            "lost": summary["dropped"],
            "p50_ns": summary.get("p50_ns", 0.0),
            "p99_ns": summary.get("p99_ns", 0.0),
            "throughput_mmps": _round2(
                summary.get("throughput_rps", 0.0) / 1e6),
            "pt_dropped_messages": summary.get("pt_dropped_messages", 0),
        }
        victims_met = []
        for tenant in range(tenants):
            stream = f"t{tenant}"
            stats = metrics.streams[stream]
            out[f"{stream}_p99_ns"] = (stats.percentile_ns(0.99)
                                       if stats.sample_count else 0.0)
            slo = _slo_curve(windowed, slo_ns, stream=stream)
            out[f"{stream}_slo_attainment"] = slo["slo_attainment"]
            if tenant > 0:
                victims_met.append(slo["slo_attainment"])
        # The isolation headline: how well the non-aggressor tenants hold
        # their SLO while tenant 0 floods the shared NIC.
        out["victim_slo_attainment"] = (
            _round2(sum(victims_met) / len(victims_met))
            if victims_met else 1.0)
    return out
