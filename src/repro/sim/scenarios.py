"""Load-testing scenarios built on the session API.

These are the scenarios the ``repro.sim`` redesign makes cheap: a few
declarative lines each, all registered with the campaign so they sweep,
cache, and parallelise like every other scenario.

* ``pingpong_open_load`` — open-loop offered-rate sweep against one
  server: latency percentiles vs. offered load, to saturation;
* ``kvstore_load`` — closed-loop client population against a sharded
  KV-insert service (the §5.4 bounded-chain-walk handler) with think time;
* ``mixed_tenants`` — heterogeneous handler channels (count / scan /
  echo tenants) sharing one target NIC, each under its own open-loop
  driver, reported per tenant.

The congestion-fabric family (``fabric="congestion"``: routed paths,
per-link queues, tail-drop — :mod:`repro.network.congestion`) exercises
regimes the LogGP pipe cannot:

* ``incast_load`` — N→1 fan-in onto one ingress port: p99 latency and
  queue occupancy vs. fan-in degree;
* ``permutation_traffic`` — all-to-all shift patterns on a small fat
  tree: ECMP hash collisions vs. d-mod-k determinism on the core links;
* ``congested_tenants`` — the mixed-tenant channels with every tenant's
  traffic squeezed through one shared core link (d-mod-k pins all flows
  toward one destination to the same core).

Every scenario draws randomness only from ``random.Random(seed)`` handed
to the drivers, so results are bit-identical under the serial and
multi-worker campaign executors.
"""

from __future__ import annotations

import hashlib
import random

from repro.campaign.registry import Param, scenario as campaign_scenario
from repro.core.handlers import ReturnCode
from repro.machine.config import config_by_name
from repro.network.loggp import ROUTING_POLICIES
from repro.portals.matching import MatchEntry
from repro.sim.drivers import ClosedLoopDriver, OpenLoopDriver, SizeMix
from repro.sim.metrics import Metrics
from repro.sim.session import ClusterSpec, Session

__all__ = ["LOAD_TAG", "ECHO_TAG"]

LOAD_TAG = 40
ECHO_TAG = 41
#: Handler-side walk budget for the KV insert service (mirrors §5.4).
KV_WALK_BUDGET = 4


def _round2(value: float) -> float:
    return round(value, 2)


# ---------------------------------------------------------------------------
# pingpong_open_load
# ---------------------------------------------------------------------------

@campaign_scenario(
    "pingpong_open_load",
    params=[
        Param("rate_mmps", float, default=1.0,
              help="offered load, million messages/second"),
        Param("count", int, default=64, help="messages offered"),
        Param("size", int, default=16384, help="message size in bytes"),
        Param("mode", str, default="spin", choices=("rdma", "spin")),
        Param("config", str, default="int", choices=("int", "dis")),
        Param("seed", int, default=1),
    ],
    description="open-loop offered-rate sweep to saturation (session API)",
    tiny={"count": 16, "rate_mmps": 0.5, "size": 2048},
    # The 50 GB/s wire saturates ~3 Mmps at 16 KiB: the grid brackets the
    # knee so the latency blow-up is visible in one default sweep.
    sweep={"rate_mmps": (0.5, 1.0, 2.0, 4.0), "mode": ("rdma", "spin")},
    tags=("load", "latency"),
)
def _pingpong_open_load(rate_mmps: float, count: int, size: int, mode: str,
                        config: str, seed: int) -> dict:
    with Session.pair(config) as sess:
        if mode == "spin":
            def count_header_handler(ctx, h):
                ctx.charge(16)
                ctx.state.vars["served"] = ctx.state.vars.get("served", 0) + 1
                return ReturnCode.PROCEED

            sess.connect(1, match_bits=LOAD_TAG, length=1 << 30,
                         header_handler=count_header_handler,
                         hpu_mem_bytes=256)
        else:
            sess.install(1, MatchEntry(match_bits=LOAD_TAG, length=1 << 30))
        metrics = Metrics()
        driver = OpenLoopDriver(
            sess, source=0, target=1, rate_mmps=rate_mmps, count=count,
            size=size, match_bits=LOAD_TAG, seed=seed, metrics=metrics,
        )
        driver.start()
        sess.drain()
        driver.finalize()
        metrics.observe_pt_drops(sess[1])
        summary = metrics.summary(elapsed_ps=sess.env.now)
    return {
        "offered_mmps": rate_mmps,
        "achieved_mmps": _round2(summary.get("throughput_rps", 0.0) / 1e6),
        "completed": summary["completed"],
        "lost": summary["dropped"],
        "p50_ns": summary.get("p50_ns", 0.0),
        "p99_ns": summary.get("p99_ns", 0.0),
        "max_ns": summary.get("max_ns", 0.0),
        "dropped_messages": summary.get("pt_dropped_messages", 0),
    }


# ---------------------------------------------------------------------------
# kvstore_load
# ---------------------------------------------------------------------------

def _kv_hash(key: bytes, buckets: int, salt: bytes = b"") -> int:
    digest = hashlib.blake2b(key, digest_size=8, salt=salt).digest()
    return int.from_bytes(digest, "little") % buckets


@campaign_scenario(
    "kvstore_load",
    params=[
        Param("nservers", int, default=2),
        Param("nclients", int, default=2, help="client host machines"),
        Param("clients", int, default=4, help="concurrent client loops"),
        Param("requests", int, default=16, help="inserts per client loop"),
        Param("value_bytes", int, default=64),
        Param("nbuckets", int, default=64),
        Param("think_ns", float, default=500.0,
              help="mean exponential think time per client"),
        Param("config", str, default="int", choices=("int", "dis")),
        Param("seed", int, default=1),
    ],
    description="closed-loop client population vs. KV-insert server count",
    tiny={"clients": 2, "requests": 4},
    sweep={"nservers": (1, 2, 4), "clients": (2, 8)},
    tags=("load", "kvstore", "usecase"),
)
def _kvstore_load(nservers: int, nclients: int, clients: int, requests: int,
                  value_bytes: int, nbuckets: int, think_ns: float,
                  config: str, seed: int) -> dict:
    nodes = nclients + nservers
    counters = {"nic_inserts": 0, "host_fallback": 0}
    tables = [{b: [] for b in range(nbuckets)} for _ in range(nservers)]

    with Session.pair(config, nodes=nodes) as sess:
        def make_insert_handler(server_index: int):
            def insert_header_handler(ctx, h):
                user = h.user_hdr
                chain = tables[server_index][user["bucket"]]
                steps = min(len(chain), KV_WALK_BUDGET)
                ctx.charge(12 + 8 * steps)
                if len(chain) >= KV_WALK_BUDGET:
                    counters["host_fallback"] += 1
                    machine = ctx.nic.machine

                    def host_side(chain=chain, user=user, machine=machine):
                        yield from machine.cpu.run(
                            machine.config.host.dram_latency_ps * (len(chain) + 1),
                            "kv-host-insert",
                        )
                        chain.append((user["key"], user["value"]))

                    ctx.env.process(host_side())
                    return ReturnCode.DROP
                chain.append((user["key"], user["value"]))
                counters["nic_inserts"] += 1
                return ReturnCode.DROP

            return insert_header_handler

        for idx in range(nservers):
            sess.connect(nclients + idx, match_bits=LOAD_TAG,
                         header_handler=make_insert_handler(idx),
                         hpu_mem_bytes=256)

        def make_request(rng: random.Random, index: int) -> dict:
            key = f"key{rng.randrange(16 * nbuckets)}".encode()
            node = _kv_hash(key, nservers)
            bucket = _kv_hash(key, nbuckets, salt=b"bucket2")
            return {
                "target": nclients + node,
                "nbytes": len(key) + value_bytes,
                "match_bits": LOAD_TAG,
                "user_hdr": {"bucket": bucket, "key": key,
                             "value": b"v" * value_bytes},
            }

        metrics = Metrics()
        driver = ClosedLoopDriver(
            sess, sources=tuple(range(nclients)), clients=clients,
            requests_per_client=requests, think_ns=think_ns,
            target=-1, make_request=make_request, seed=seed,
            metrics=metrics, stream="insert",
        )
        driver.start()
        sess.drain()
        driver.finalize()
        summary = metrics.summary(elapsed_ps=sess.env.now)
    stored = sum(len(c) for table in tables for c in table.values())
    return {
        "completed": summary["completed"],
        "lost": summary["dropped"],
        "p50_ns": summary.get("p50_ns", 0.0),
        "p99_ns": summary.get("p99_ns", 0.0),
        "throughput_mmps": _round2(summary.get("throughput_rps", 0.0) / 1e6),
        "nic_inserts": counters["nic_inserts"],
        "host_fallback": counters["host_fallback"],
        "stored": stored,
    }


# ---------------------------------------------------------------------------
# mixed_tenants
# ---------------------------------------------------------------------------

#: Tenant handler profiles, cycled over tenant index: heterogeneous work on
#: one shared target NIC.
TENANT_PROFILES = ("count", "scan", "echo")


def _tenant_channel(sess: Session, target: int, tenant: int, profile: str,
                    match_bits: int) -> None:
    if profile == "count":
        def count_header_handler(ctx, h):
            ctx.charge(10)
            ctx.state.vars["n"] = ctx.state.vars.get("n", 0) + 1
            return ReturnCode.DROP

        sess.connect(target, match_bits=match_bits, length=1 << 30,
                     header_handler=count_header_handler, hpu_mem_bytes=256)
    elif profile == "scan":
        def scan_header_handler(ctx, h):
            # Per-byte predicate work, then the default deposit path.
            ctx.charge(10)
            ctx.charge_per_byte(h.length, 0.5)
            return ReturnCode.PROCEED

        sess.connect(target, match_bits=match_bits, length=1 << 30,
                     header_handler=scan_header_handler, hpu_mem_bytes=512)
    elif profile == "echo":
        def echo_payload_handler(ctx, p):
            yield from ctx.put_from_device(
                p.payload, target=ctx.message.source, match_bits=ECHO_TAG,
                nbytes=p.payload_len,
            )
            return ReturnCode.SUCCESS

        sess.connect(target, match_bits=match_bits, length=1 << 30,
                     payload_handler=echo_payload_handler, hpu_mem_bytes=4096)
    else:  # pragma: no cover - profile list is closed
        raise ValueError(f"unknown tenant profile {profile!r}")


@campaign_scenario(
    "mixed_tenants",
    params=[
        Param("tenants", int, default=3,
              help="channels with heterogeneous handlers on one target"),
        Param("count", int, default=32, help="messages per tenant"),
        Param("rate_mmps", float, default=0.5, help="offered rate per tenant"),
        Param("config", str, default="int", choices=("int", "dis")),
        Param("seed", int, default=1),
    ],
    description="heterogeneous handler channels sharing one target NIC",
    tiny={"tenants": 2, "count": 8},
    sweep={"tenants": (2, 4, 6), "rate_mmps": (0.25, 1.0)},
    tags=("load", "multitenancy"),
)
def _mixed_tenants(tenants: int, count: int, rate_mmps: float, config: str,
                   seed: int) -> dict:
    target = 0
    with Session.pair(config, nodes=tenants + 1) as sess:
        metrics = Metrics()
        drivers = []
        for tenant in range(tenants):
            profile = TENANT_PROFILES[tenant % len(TENANT_PROFILES)]
            match_bits = 100 + tenant
            _tenant_channel(sess, target, tenant, profile, match_bits)
            client_rank = tenant + 1
            if profile == "echo":
                # Echoed packets land in a sink ME on the client.
                sess.install(client_rank, MatchEntry(match_bits=ECHO_TAG,
                                                     length=1 << 30))
            drivers.append(OpenLoopDriver(
                sess, source=client_rank, target=target,
                rate_mmps=rate_mmps, count=count,
                size=SizeMix(sizes=(256, 2048), weights=(3.0, 1.0)),
                match_bits=match_bits, seed=seed * 7919 + tenant,
                metrics=metrics, stream=f"t{tenant}_{profile}",
            ))
        for driver in drivers:
            driver.start()
        sess.drain()
        for driver in drivers:
            driver.finalize()
        metrics.observe_pt_drops(sess[target])
        summary = metrics.summary(elapsed_ps=sess.env.now)
    out = {
        "completed": summary["completed"],
        "lost": summary["dropped"],
        "p50_ns": summary.get("p50_ns", 0.0),
        "p99_ns": summary.get("p99_ns", 0.0),
        "throughput_mmps": _round2(summary.get("throughput_rps", 0.0) / 1e6),
        "dropped_messages": summary.get("pt_dropped_messages", 0),
    }
    for name in sorted(metrics.streams):
        stats = metrics.streams[name]
        # 0.0 = tenant completed nothing (starved/blackholed) — never
        # report another tenant's latency in its place.
        out[f"{name}_p99_ns"] = (stats.percentile_ns(0.99)
                                 if stats.sample_count else 0.0)
    return out


# ---------------------------------------------------------------------------
# congestion-fabric scenarios
# ---------------------------------------------------------------------------

def _fabric_notes(summary: dict) -> dict:
    """The link-accounting scalars ``Metrics.observe_fabric`` contributed."""
    return {
        "link_drops": int(summary.get("fabric_link_drops", 0)),
        "max_link_queue": int(summary.get("fabric_max_link_queue", 0)),
        "max_link_utilization": summary.get("fabric_max_link_utilization", 0.0),
        # Receiver-side fallout of tail-drops: payload packets that lost
        # their header, and matched messages that can never complete.
        "rx_orphan_packets": int(summary.get("fabric_rx_orphan_packets", 0)),
        "rx_stalled_messages": int(
            summary.get("fabric_rx_stalled_messages", 0)),
    }


def _core_link_stats(fabric) -> dict:
    """Occupancy aggregates over the fat tree's core-level links."""
    max_queue = drops = used = 0
    for (u, v), link in fabric.links.items():
        if u[0] != "core" and v[0] != "core":
            continue
        used += 1
        drops += link.drops
        if link.max_queue > max_queue:
            max_queue = link.max_queue
    return {"core_links_used": used, "core_max_queue": max_queue,
            "core_drops": drops}


@campaign_scenario(
    "incast_load",
    params=[
        Param("fanin", int, default=8, help="number of concurrent senders"),
        Param("count", int, default=32, help="messages per sender"),
        Param("size", int, default=4096, help="message size in bytes"),
        Param("rate_mmps", float, default=4.0,
              help="offered rate per sender, million messages/second"),
        Param("depth", int, default=64,
              help="per-link queue depth before tail-drop (packets)"),
        Param("config", str, default="int", choices=("int", "dis")),
        Param("seed", int, default=1),
    ],
    description="N-to-1 fan-in on the congestion fabric: p99 vs fan-in degree",
    tiny={"fanin": 2, "count": 6},
    sweep={"fanin": (2, 4, 8, 16)},
    tags=("load", "congestion"),
)
def _incast_load(fanin: int, count: int, size: int, rate_mmps: float,
                 depth: int, config: str, seed: int) -> dict:
    target = fanin
    spec = ClusterSpec(nodes=fanin + 1, config=config, fabric="congestion",
                       link_queue_depth=depth)
    with Session(spec) as sess:
        sess.install(target, MatchEntry(match_bits=LOAD_TAG, length=1 << 30))
        metrics = Metrics()
        drivers = [
            OpenLoopDriver(
                sess, source=source, target=target, rate_mmps=rate_mmps,
                count=count, size=size, match_bits=LOAD_TAG,
                seed=seed * 6151 + source, metrics=metrics, stream="incast",
            )
            for source in range(fanin)
        ]
        for driver in drivers:
            driver.start()
        sess.drain()
        for driver in drivers:
            driver.finalize()
        metrics.observe_fabric(sess.cluster.fabric, elapsed_ps=sess.env.now)
        summary = metrics.summary(elapsed_ps=sess.env.now)
    return {
        "fanin": fanin,
        "completed": summary["completed"],
        "lost": summary["dropped"],
        "achieved_mmps": _round2(summary.get("throughput_rps", 0.0) / 1e6),
        "p50_ns": summary.get("p50_ns", 0.0),
        "p99_ns": summary.get("p99_ns", 0.0),
        "max_ns": summary.get("max_ns", 0.0),
        **_fabric_notes(summary),
    }


@campaign_scenario(
    "permutation_traffic",
    params=[
        Param("nhosts", int, default=16, help="hosts on the fat tree"),
        Param("shift", int, default=4,
              help="host i sends to (i+shift) mod nhosts"),
        Param("count", int, default=16, help="messages per host"),
        Param("size", int, default=16384),
        Param("rate_mmps", float, default=1.0, help="offered rate per host"),
        Param("routing", str, default="ecmp", choices=ROUTING_POLICIES),
        Param("radix", int, default=4, help="fat-tree switch radix"),
        Param("config", str, default="int", choices=("int", "dis")),
        Param("seed", int, default=1),
    ],
    description="all-to-all shift pattern vs. ECMP collisions on a fat tree",
    tiny={"nhosts": 8, "count": 4},
    sweep={"shift": (1, 4), "routing": ("ecmp", "dmodk")},
    tags=("load", "congestion"),
)
def _permutation_traffic(nhosts: int, shift: int, count: int, size: int,
                         rate_mmps: float, routing: str, radix: int,
                         config: str, seed: int) -> dict:
    machine_config = config_by_name(config).with_network(switch_radix=radix)
    spec = ClusterSpec(nodes=nhosts, config=machine_config, topology="fattree",
                       fabric="congestion", routing=routing)
    with Session(spec) as sess:
        metrics = Metrics()
        drivers = []
        for host in range(nhosts):
            sess.install(host, MatchEntry(match_bits=LOAD_TAG, length=1 << 30))
        for host in range(nhosts):
            drivers.append(OpenLoopDriver(
                sess, source=host, target=(host + shift) % nhosts,
                rate_mmps=rate_mmps, count=count, size=size,
                match_bits=LOAD_TAG, seed=seed * 6151 + host,
                metrics=metrics, stream="perm",
            ))
        for driver in drivers:
            driver.start()
        sess.drain()
        for driver in drivers:
            driver.finalize()
        metrics.observe_fabric(sess.cluster.fabric, elapsed_ps=sess.env.now)
        summary = metrics.summary(elapsed_ps=sess.env.now)
        core = _core_link_stats(sess.cluster.fabric)
    return {
        "shift": shift,
        "routing": routing,
        "completed": summary["completed"],
        "lost": summary["dropped"],
        "p50_ns": summary.get("p50_ns", 0.0),
        "p99_ns": summary.get("p99_ns", 0.0),
        "throughput_mmps": _round2(summary.get("throughput_rps", 0.0) / 1e6),
        **core,
        **_fabric_notes(summary),
    }


@campaign_scenario(
    "congested_tenants",
    params=[
        Param("tenants", int, default=3,
              help="handler channels on one cross-pod target"),
        Param("count", int, default=24, help="messages per tenant"),
        Param("rate_mmps", float, default=1.5, help="offered rate per tenant"),
        Param("depth", int, default=64,
              help="per-link queue depth before tail-drop (packets)"),
        Param("config", str, default="int", choices=("int", "dis")),
        Param("seed", int, default=1),
    ],
    description="mixed tenants squeezed through one shared fat-tree core link",
    tiny={"tenants": 2, "count": 6},
    sweep={"tenants": (2, 4, 6), "rate_mmps": (0.5, 1.5)},
    tags=("load", "congestion", "multitenancy"),
)
def _congested_tenants(tenants: int, count: int, rate_mmps: float, depth: int,
                       config: str, seed: int) -> dict:
    # Radix-4 tree: 4 hosts per pod.  The target sits in pod 0; every
    # tenant's client lives in another pod, and d-mod-k routing pins all
    # traffic toward the target to a single core switch — the shared link.
    radix = 4
    hosts_per_pod = (radix // 2) ** 2
    target = 0
    machine_config = config_by_name(config).with_network(switch_radix=radix)
    spec = ClusterSpec(nodes=hosts_per_pod + tenants, config=machine_config,
                       topology="fattree", fabric="congestion",
                       routing="dmodk", link_queue_depth=depth)
    with Session(spec) as sess:
        metrics = Metrics()
        drivers = []
        for tenant in range(tenants):
            profile = TENANT_PROFILES[tenant % len(TENANT_PROFILES)]
            match_bits = 100 + tenant
            _tenant_channel(sess, target, tenant, profile, match_bits)
            client_rank = hosts_per_pod + tenant
            if profile == "echo":
                sess.install(client_rank, MatchEntry(match_bits=ECHO_TAG,
                                                     length=1 << 30))
            drivers.append(OpenLoopDriver(
                sess, source=client_rank, target=target,
                rate_mmps=rate_mmps, count=count,
                size=SizeMix(sizes=(4096, 16384), weights=(1.0, 1.0)),
                match_bits=match_bits, seed=seed * 7919 + tenant,
                metrics=metrics, stream=f"t{tenant}_{profile}",
            ))
        for driver in drivers:
            driver.start()
        sess.drain()
        for driver in drivers:
            driver.finalize()
        metrics.observe_pt_drops(sess[target])
        metrics.observe_fabric(sess.cluster.fabric, elapsed_ps=sess.env.now)
        summary = metrics.summary(elapsed_ps=sess.env.now)
        core = _core_link_stats(sess.cluster.fabric)
    out = {
        "completed": summary["completed"],
        "lost": summary["dropped"],
        "p50_ns": summary.get("p50_ns", 0.0),
        "p99_ns": summary.get("p99_ns", 0.0),
        "throughput_mmps": _round2(summary.get("throughput_rps", 0.0) / 1e6),
        **core,
        **_fabric_notes(summary),
    }
    for name in sorted(metrics.streams):
        stats = metrics.streams[name]
        out[f"{name}_p99_ns"] = (stats.percentile_ns(0.99)
                                 if stats.sample_count else 0.0)
    return out
