"""Load-testing scenarios built on the session API.

These are the scenarios the ``repro.sim`` redesign makes cheap: a few
declarative lines each, all registered with the campaign so they sweep,
cache, and parallelise like every other scenario.

* ``pingpong_open_load`` — open-loop offered-rate sweep against one
  server: latency percentiles vs. offered load, to saturation;
* ``kvstore_load`` — closed-loop client population against a sharded
  KV-insert service (the §5.4 bounded-chain-walk handler) with think time;
* ``mixed_tenants`` — heterogeneous handler channels (count / scan /
  echo tenants) sharing one target NIC, each under its own open-loop
  driver, reported per tenant.

Every scenario draws randomness only from ``random.Random(seed)`` handed
to the drivers, so results are bit-identical under the serial and
multi-worker campaign executors.
"""

from __future__ import annotations

import hashlib
import random

from repro.campaign.registry import Param, scenario as campaign_scenario
from repro.core.handlers import ReturnCode
from repro.portals.matching import MatchEntry
from repro.sim.drivers import ClosedLoopDriver, OpenLoopDriver, SizeMix
from repro.sim.metrics import Metrics
from repro.sim.session import Session

__all__ = ["LOAD_TAG", "ECHO_TAG"]

LOAD_TAG = 40
ECHO_TAG = 41
#: Handler-side walk budget for the KV insert service (mirrors §5.4).
KV_WALK_BUDGET = 4


def _round2(value: float) -> float:
    return round(value, 2)


# ---------------------------------------------------------------------------
# pingpong_open_load
# ---------------------------------------------------------------------------

@campaign_scenario(
    "pingpong_open_load",
    params=[
        Param("rate_mmps", float, default=1.0,
              help="offered load, million messages/second"),
        Param("count", int, default=64, help="messages offered"),
        Param("size", int, default=16384, help="message size in bytes"),
        Param("mode", str, default="spin", choices=("rdma", "spin")),
        Param("config", str, default="int", choices=("int", "dis")),
        Param("seed", int, default=1),
    ],
    description="open-loop offered-rate sweep to saturation (session API)",
    tiny={"count": 16, "rate_mmps": 0.5, "size": 2048},
    # The 50 GB/s wire saturates ~3 Mmps at 16 KiB: the grid brackets the
    # knee so the latency blow-up is visible in one default sweep.
    sweep={"rate_mmps": (0.5, 1.0, 2.0, 4.0), "mode": ("rdma", "spin")},
    tags=("load", "latency"),
)
def _pingpong_open_load(rate_mmps: float, count: int, size: int, mode: str,
                        config: str, seed: int) -> dict:
    with Session.pair(config) as sess:
        if mode == "spin":
            def count_header_handler(ctx, h):
                ctx.charge(16)
                ctx.state.vars["served"] = ctx.state.vars.get("served", 0) + 1
                return ReturnCode.PROCEED

            sess.connect(1, match_bits=LOAD_TAG, length=1 << 30,
                         header_handler=count_header_handler,
                         hpu_mem_bytes=256)
        else:
            sess.install(1, MatchEntry(match_bits=LOAD_TAG, length=1 << 30))
        metrics = Metrics()
        driver = OpenLoopDriver(
            sess, source=0, target=1, rate_mmps=rate_mmps, count=count,
            size=size, match_bits=LOAD_TAG, seed=seed, metrics=metrics,
        )
        driver.start()
        sess.drain()
        driver.finalize()
        metrics.observe_pt_drops(sess[1])
        summary = metrics.summary(elapsed_ps=sess.env.now)
    return {
        "offered_mmps": rate_mmps,
        "achieved_mmps": _round2(summary.get("throughput_rps", 0.0) / 1e6),
        "completed": summary["completed"],
        "lost": summary["dropped"],
        "p50_ns": summary.get("p50_ns", 0.0),
        "p99_ns": summary.get("p99_ns", 0.0),
        "max_ns": summary.get("max_ns", 0.0),
        "dropped_messages": summary.get("pt_dropped_messages", 0),
    }


# ---------------------------------------------------------------------------
# kvstore_load
# ---------------------------------------------------------------------------

def _kv_hash(key: bytes, buckets: int, salt: bytes = b"") -> int:
    digest = hashlib.blake2b(key, digest_size=8, salt=salt).digest()
    return int.from_bytes(digest, "little") % buckets


@campaign_scenario(
    "kvstore_load",
    params=[
        Param("nservers", int, default=2),
        Param("nclients", int, default=2, help="client host machines"),
        Param("clients", int, default=4, help="concurrent client loops"),
        Param("requests", int, default=16, help="inserts per client loop"),
        Param("value_bytes", int, default=64),
        Param("nbuckets", int, default=64),
        Param("think_ns", float, default=500.0,
              help="mean exponential think time per client"),
        Param("config", str, default="int", choices=("int", "dis")),
        Param("seed", int, default=1),
    ],
    description="closed-loop client population vs. KV-insert server count",
    tiny={"clients": 2, "requests": 4},
    sweep={"nservers": (1, 2, 4), "clients": (2, 8)},
    tags=("load", "kvstore", "usecase"),
)
def _kvstore_load(nservers: int, nclients: int, clients: int, requests: int,
                  value_bytes: int, nbuckets: int, think_ns: float,
                  config: str, seed: int) -> dict:
    nodes = nclients + nservers
    counters = {"nic_inserts": 0, "host_fallback": 0}
    tables = [{b: [] for b in range(nbuckets)} for _ in range(nservers)]

    with Session.pair(config, nodes=nodes) as sess:
        def make_insert_handler(server_index: int):
            def insert_header_handler(ctx, h):
                user = h.user_hdr
                chain = tables[server_index][user["bucket"]]
                steps = min(len(chain), KV_WALK_BUDGET)
                ctx.charge(12 + 8 * steps)
                if len(chain) >= KV_WALK_BUDGET:
                    counters["host_fallback"] += 1
                    machine = ctx.nic.machine

                    def host_side(chain=chain, user=user, machine=machine):
                        yield from machine.cpu.run(
                            machine.config.host.dram_latency_ps * (len(chain) + 1),
                            "kv-host-insert",
                        )
                        chain.append((user["key"], user["value"]))

                    ctx.env.process(host_side())
                    return ReturnCode.DROP
                chain.append((user["key"], user["value"]))
                counters["nic_inserts"] += 1
                return ReturnCode.DROP

            return insert_header_handler

        for idx in range(nservers):
            sess.connect(nclients + idx, match_bits=LOAD_TAG,
                         header_handler=make_insert_handler(idx),
                         hpu_mem_bytes=256)

        def make_request(rng: random.Random, index: int) -> dict:
            key = f"key{rng.randrange(16 * nbuckets)}".encode()
            node = _kv_hash(key, nservers)
            bucket = _kv_hash(key, nbuckets, salt=b"bucket2")
            return {
                "target": nclients + node,
                "nbytes": len(key) + value_bytes,
                "match_bits": LOAD_TAG,
                "user_hdr": {"bucket": bucket, "key": key,
                             "value": b"v" * value_bytes},
            }

        metrics = Metrics()
        driver = ClosedLoopDriver(
            sess, sources=tuple(range(nclients)), clients=clients,
            requests_per_client=requests, think_ns=think_ns,
            target=-1, make_request=make_request, seed=seed,
            metrics=metrics, stream="insert",
        )
        driver.start()
        sess.drain()
        driver.finalize()
        summary = metrics.summary(elapsed_ps=sess.env.now)
    stored = sum(len(c) for table in tables for c in table.values())
    return {
        "completed": summary["completed"],
        "lost": summary["dropped"],
        "p50_ns": summary.get("p50_ns", 0.0),
        "p99_ns": summary.get("p99_ns", 0.0),
        "throughput_mmps": _round2(summary.get("throughput_rps", 0.0) / 1e6),
        "nic_inserts": counters["nic_inserts"],
        "host_fallback": counters["host_fallback"],
        "stored": stored,
    }


# ---------------------------------------------------------------------------
# mixed_tenants
# ---------------------------------------------------------------------------

#: Tenant handler profiles, cycled over tenant index: heterogeneous work on
#: one shared target NIC.
TENANT_PROFILES = ("count", "scan", "echo")


def _tenant_channel(sess: Session, target: int, tenant: int, profile: str,
                    match_bits: int) -> None:
    if profile == "count":
        def count_header_handler(ctx, h):
            ctx.charge(10)
            ctx.state.vars["n"] = ctx.state.vars.get("n", 0) + 1
            return ReturnCode.DROP

        sess.connect(target, match_bits=match_bits, length=1 << 30,
                     header_handler=count_header_handler, hpu_mem_bytes=256)
    elif profile == "scan":
        def scan_header_handler(ctx, h):
            # Per-byte predicate work, then the default deposit path.
            ctx.charge(10)
            ctx.charge_per_byte(h.length, 0.5)
            return ReturnCode.PROCEED

        sess.connect(target, match_bits=match_bits, length=1 << 30,
                     header_handler=scan_header_handler, hpu_mem_bytes=512)
    elif profile == "echo":
        def echo_payload_handler(ctx, p):
            yield from ctx.put_from_device(
                p.payload, target=ctx.message.source, match_bits=ECHO_TAG,
                nbytes=p.payload_len,
            )
            return ReturnCode.SUCCESS

        sess.connect(target, match_bits=match_bits, length=1 << 30,
                     payload_handler=echo_payload_handler, hpu_mem_bytes=4096)
    else:  # pragma: no cover - profile list is closed
        raise ValueError(f"unknown tenant profile {profile!r}")


@campaign_scenario(
    "mixed_tenants",
    params=[
        Param("tenants", int, default=3,
              help="channels with heterogeneous handlers on one target"),
        Param("count", int, default=32, help="messages per tenant"),
        Param("rate_mmps", float, default=0.5, help="offered rate per tenant"),
        Param("config", str, default="int", choices=("int", "dis")),
        Param("seed", int, default=1),
    ],
    description="heterogeneous handler channels sharing one target NIC",
    tiny={"tenants": 2, "count": 8},
    sweep={"tenants": (2, 4, 6), "rate_mmps": (0.25, 1.0)},
    tags=("load", "multitenancy"),
)
def _mixed_tenants(tenants: int, count: int, rate_mmps: float, config: str,
                   seed: int) -> dict:
    target = 0
    with Session.pair(config, nodes=tenants + 1) as sess:
        metrics = Metrics()
        drivers = []
        for tenant in range(tenants):
            profile = TENANT_PROFILES[tenant % len(TENANT_PROFILES)]
            match_bits = 100 + tenant
            _tenant_channel(sess, target, tenant, profile, match_bits)
            client_rank = tenant + 1
            if profile == "echo":
                # Echoed packets land in a sink ME on the client.
                sess.install(client_rank, MatchEntry(match_bits=ECHO_TAG,
                                                     length=1 << 30))
            drivers.append(OpenLoopDriver(
                sess, source=client_rank, target=target,
                rate_mmps=rate_mmps, count=count,
                size=SizeMix(sizes=(256, 2048), weights=(3.0, 1.0)),
                match_bits=match_bits, seed=seed * 7919 + tenant,
                metrics=metrics, stream=f"t{tenant}_{profile}",
            ))
        for driver in drivers:
            driver.start()
        sess.drain()
        for driver in drivers:
            driver.finalize()
        metrics.observe_pt_drops(sess[target])
        summary = metrics.summary(elapsed_ps=sess.env.now)
    out = {
        "completed": summary["completed"],
        "lost": summary["dropped"],
        "p50_ns": summary.get("p50_ns", 0.0),
        "p99_ns": summary.get("p99_ns", 0.0),
        "throughput_mmps": _round2(summary.get("throughput_rps", 0.0) / 1e6),
        "dropped_messages": summary.get("pt_dropped_messages", 0),
    }
    for name in sorted(metrics.streams):
        stats = metrics.streams[name]
        # 0.0 = tenant completed nothing (starved/blackholed) — never
        # report another tenant's latency in its place.
        out[f"{name}_p99_ns"] = (stats.percentile_ns(0.99)
                                 if stats.samples_ps else 0.0)
    return out
