"""The unified session API: declarative cluster specs + a run façade.

Every scenario in this repository used to hand-wire ``Cluster`` +
``spin_me``/``post_me`` + ``env.process(...)`` + ``env.run(...)``; a
:class:`Session` owns that lifecycle behind the paper's three-line
programming model:

* a :class:`ClusterSpec` says *what* to simulate (node count, machine
  config, topology, NIC flavour, tracing) — no imperative assembly;
* :meth:`Session.connect` / :meth:`Session.install` install handler
  channels and matching entries with **install-time validation** (limits,
  oversized initial state, use-after-free HPU memory);
* :meth:`Session.run` / :meth:`Session.drain` drive the DES, and the
  session tears down installed channels on :meth:`close`.

The façade adds no simulation events of its own: a session-built scenario
pushes exactly the kernel events the hand-wired equivalent pushed, so the
golden-trace digests and fast-path equivalence contracts are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Generator, Optional, Union

from repro.core.channel import Channel, connect as _connect
from repro.core.nic import SpinNIC
from repro.des.engine import Environment, Event, Process
from repro.des.trace import Timeline
from repro.machine.cluster import Cluster, Machine
from repro.machine.config import (
    CROSS_POD_LATENCY_PS,
    MachineConfig,
    config_by_name,
)
from repro.machine.nic import BaselineNIC
from repro.network.topology import FatTree, UniformLatency
from repro.portals.matching import MatchEntry
from repro.portals.types import PortalsError

__all__ = ["ClusterSpec", "Session"]

#: NIC model registry for the declarative spec.
_NIC_FACTORIES: dict[str, Callable] = {
    "spin": SpinNIC,
    "baseline": BaselineNIC,
}


@dataclass(frozen=True)
class ClusterSpec:
    """Declarative description of one simulated system.

    ``topology`` selects how endpoints are wired:

    * ``"pair"`` — every endpoint pair sits cross-pod (worst-case uniform
      latency; what the microbenchmarks use);
    * ``"fattree"`` — the §4.2 36-port fat tree sized to ``nodes``;
    * any topology object with a ``latency(src, dst)`` method is used
      verbatim.

    ``fabric`` selects the transport model: ``"loggp"`` (default — the
    paper's contention-free pipe; all golden traces run here) or
    ``"congestion"`` (routed paths + per-link queues, see
    :mod:`repro.network.congestion`).  ``link_queue_depth`` and ``routing``
    override the matching :class:`~repro.network.loggp.NetworkParams`
    fields without hand-building a :class:`MachineConfig`; both only
    matter on the congestion fabric.
    """

    nodes: int = 2
    config: Union[MachineConfig, str] = "int"
    nic: str = "spin"
    topology: Any = "pair"
    latency_ps: Optional[int] = None
    trace: bool = False
    with_memory: bool = False
    noise: Any = None
    fabric: str = "loggp"
    link_queue_depth: Optional[int] = None
    routing: Optional[str] = None

    def resolve_config(self) -> MachineConfig:
        config = (config_by_name(self.config) if isinstance(self.config, str)
                  else self.config)
        overrides = {}
        if self.link_queue_depth is not None:
            overrides["link_queue_depth"] = self.link_queue_depth
        if self.routing is not None:
            overrides["routing"] = self.routing
        return config.with_network(**overrides) if overrides else config

    def build_topology(self, config: MachineConfig) -> Any:
        if self.topology == "pair":
            return UniformLatency(
                latency=CROSS_POD_LATENCY_PS if self.latency_ps is None
                else self.latency_ps
            )
        if self.topology == "fattree":
            return FatTree(params=config.network, nhosts=max(self.nodes, 2))
        return self.topology

    def build(self) -> Cluster:
        """Materialise the spec into a live :class:`Cluster`."""
        config = self.resolve_config()
        try:
            nic_factory = _NIC_FACTORIES[self.nic]
        except KeyError:
            raise ValueError(
                f"unknown NIC flavour {self.nic!r} "
                f"(use {sorted(_NIC_FACTORIES)})"
            ) from None
        return Cluster(
            self.nodes,
            config=config,
            nic_factory=nic_factory,
            topology=self.build_topology(config),
            noise=self.noise,
            trace=self.trace,
            with_memory=self.with_memory,
            fabric=self.fabric,
        )


class Session:
    """A running simulation: cluster + channels + run control.

    Use as a context manager for deterministic teardown, or call
    :meth:`close` explicitly.  All helpers delegate to the underlying
    primitives one-to-one — the session never schedules kernel events of
    its own.
    """

    def __init__(self, spec: Optional[ClusterSpec] = None, **overrides: Any):
        if spec is None:
            spec = ClusterSpec(**overrides)
        elif overrides:
            spec = replace(spec, **overrides)
        self.spec = spec
        self.cluster: Cluster = spec.build()
        self.channels: list[Channel] = []
        #: Receive states reaped at :meth:`close` because their payload
        #: was lost in the network (congestion tail-drop) — keyed by rank.
        self.stalled_rx: dict[int, int] = {}
        self._closed = False

    # -- convenience constructors -----------------------------------------
    @classmethod
    def pair(cls, config: Union[MachineConfig, str] = "int", nodes: int = 2,
             **overrides: Any) -> "Session":
        """A small all-cross-pod cluster (the microbenchmark scaffold)."""
        return cls(ClusterSpec(nodes=nodes, config=config, **overrides))

    @classmethod
    def fattree(cls, nodes: int, config: Union[MachineConfig, str] = "dis",
                **overrides: Any) -> "Session":
        """An N-endpoint fat-tree cluster (the collective scaffold)."""
        return cls(ClusterSpec(nodes=nodes, config=config,
                               topology="fattree", **overrides))

    # -- structure ---------------------------------------------------------
    @property
    def env(self) -> Environment:
        return self.cluster.env

    @property
    def timeline(self) -> Timeline:
        return self.cluster.timeline

    @property
    def config(self) -> MachineConfig:
        return self.cluster.config

    @property
    def now_ns(self) -> float:
        return self.cluster.now_ns

    def __len__(self) -> int:
        return len(self.cluster)

    def __getitem__(self, rank: int) -> Machine:
        return self.cluster[rank]

    def machines(self) -> list[Machine]:
        return list(self.cluster.machines)

    # -- installation (validated) -----------------------------------------
    def install(self, rank: int, entry: MatchEntry, pt_index: int = 0,
                overflow: bool = False) -> MatchEntry:
        """Append a matching entry, validating handler resources first.

        ``PtlMEAppend`` runs the same validation, but only after
        ``post_me`` has already allocated the portal-table index — the
        session validates before any side effect, so a rejected entry
        (oversized initial state, freed
        :class:`~repro.core.handlers.HPUMemory`) leaves the NI untouched.
        """
        machine = self.cluster[rank]
        if entry.spin is not None:
            entry.spin.validate(machine.ni.limits)
        return machine.post_me(pt_index, entry, overflow=overflow)

    def connect(self, rank: int, **kwargs: Any) -> Channel:
        """Install a handler channel on ``rank`` (the §1 ``connect()``).

        Keyword arguments are those of :func:`repro.core.channel.connect`.
        The channel is tracked and uninstalled by :meth:`close`.
        """
        channel = _connect(self.cluster[rank], **kwargs)
        self.channels.append(channel)
        return channel

    # -- run control -------------------------------------------------------
    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Register a generator as a simulated process."""
        return self.env.process(generator, name)

    def run(self, until: Optional[Union[int, Event]] = None) -> Any:
        """Run the DES (to quiescence, to a time, or to an event)."""
        return self.env.run(until=until)

    def drain(self) -> None:
        """Run every remaining event (post-measurement cleanup traffic)."""
        self.env.run()

    # -- teardown ----------------------------------------------------------
    def close(self) -> None:
        """Uninstall session-tracked channels and reap stalled receives.

        Idempotent.  Messages whose payload the congestion fabric
        tail-dropped can never complete, so their receiver-side state
        would otherwise leak; the per-rank reap counts land in
        :attr:`stalled_rx` for scenario accounting.
        """
        if self._closed:
            return
        self._closed = True
        for machine in self.cluster.machines:
            reaped = machine.nic.reap_stalled()
            if reaped:
                self.stalled_rx[machine.rank] = reaped
        for channel in self.channels:
            try:
                channel.close()
            except PortalsError:
                pass  # already unlinked by scenario code
        self.channels.clear()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
