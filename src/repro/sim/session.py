"""The unified session API: declarative cluster specs + a run façade.

Every scenario in this repository used to hand-wire ``Cluster`` +
``spin_me``/``post_me`` + ``env.process(...)`` + ``env.run(...)``; a
:class:`Session` owns that lifecycle behind the paper's three-line
programming model:

* a :class:`ClusterSpec` says *what* to simulate (node count, machine
  config, topology, NIC flavour, tracing) — no imperative assembly;
* :meth:`Session.connect` / :meth:`Session.install` install handler
  channels and matching entries with **install-time validation** (limits,
  oversized initial state, use-after-free HPU memory);
* :meth:`Session.run` / :meth:`Session.drain` drive the DES, and the
  session tears down installed channels on :meth:`close`.

The façade adds no simulation events of its own: a session-built scenario
pushes exactly the kernel events the hand-wired equivalent pushed, so the
golden-trace digests and fast-path equivalence contracts are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Generator, Optional, Union

from repro.core.channel import Channel, connect as _connect
from repro.core.nic import SpinNIC
from repro.des import engine as _engine
from repro.des.engine import Environment, Event, Process, SimulationError, env_flag
from repro.des.trace import Timeline
from repro.machine.cluster import Cluster, Machine
from repro.machine.config import (
    CROSS_POD_LATENCY_PS,
    MachineConfig,
    config_by_name,
)
from repro.machine.nic import BaselineNIC
from repro.network.packets import reset_msg_ids
from repro.network.topology import FatTree, UniformLatency
from repro.portals.matching import MatchEntry
from repro.portals.types import PortalsError

__all__ = ["ClusterSpec", "Session"]

#: NIC model registry for the declarative spec.
_NIC_FACTORIES: dict[str, Callable] = {
    "spin": SpinNIC,
    "baseline": BaselineNIC,
}

#: Reusable drained sessions, keyed by :meth:`ClusterSpec.pool_key`.
#: Microbenchmark sweeps build the same two-node cluster thousands of
#: times; :meth:`Session.checkout` / :meth:`Session.release` amortize that
#: construction by rewinding a finished session to its just-built state
#: (the reset-equivalence tests pin reuse == fresh, trace-digest included).
#: ``REPRO_SESSION_POOL=0`` disables pooling entirely.
_POOL: dict[tuple, list["Session"]] = {}

#: Sessions kept per key — sweeps are serial, so one is typically enough;
#: a little headroom covers nested scenarios.
_POOL_DEPTH = 4


def _pool_enabled() -> bool:
    return env_flag("REPRO_SESSION_POOL")


#: Ambient observability capture (see :mod:`repro.obs.capture`): while a
#: :class:`~repro.obs.capture.ObsCapture` is active it installs itself
#: here and every :class:`Session` constructed routes through its
#: ``prepare(spec)`` (pre-build: force tracing on) and ``attach(session)``
#: (post-build: arm an observer) — the same global-hook pattern as
#: ``repro.des.engine._METER``.  ``None`` (the default) adds nothing to
#: session construction.
_OBS_HOOK = None


def _pool_clear() -> None:
    """Drop every pooled session (test isolation)."""
    _POOL.clear()


@dataclass(frozen=True)
class ClusterSpec:
    """Declarative description of one simulated system.

    ``topology`` selects how endpoints are wired:

    * ``"pair"`` — every endpoint pair sits cross-pod (worst-case uniform
      latency; what the microbenchmarks use);
    * ``"fattree"`` — the §4.2 36-port fat tree sized to ``nodes``;
    * any topology object with a ``latency(src, dst)`` method is used
      verbatim.

    ``fabric`` selects the transport model: ``"loggp"`` (default — the
    paper's contention-free pipe; all golden traces run here) or
    ``"congestion"`` (routed paths + per-link queues, see
    :mod:`repro.network.congestion`).  ``link_queue_depth``, ``routing``
    and ``switch_radix`` override the matching
    :class:`~repro.network.loggp.NetworkParams` fields without
    hand-building a :class:`MachineConfig`; the first two only matter on
    the congestion fabric, ``switch_radix`` sizes the ``"fattree"``
    topology (smaller radix → more pods for the same node count — the
    multi-pod serving clusters use radix 4–8 trees).
    """

    nodes: int = 2
    config: Union[MachineConfig, str] = "int"
    nic: str = "spin"
    topology: Any = "pair"
    latency_ps: Optional[int] = None
    trace: bool = False
    with_memory: bool = False
    noise: Any = None
    fabric: str = "loggp"
    link_queue_depth: Optional[int] = None
    routing: Optional[str] = None
    switch_radix: Optional[int] = None

    def pool_key(self) -> Optional[tuple]:
        """Hashable reuse-pool key, or ``None`` when the spec is unpoolable.

        Only the construction-pure slice of the spec space is pooled: no
        tracing (a reused timeline must stay byte-identical anyway, but
        trace runs are rare and cheap to build), no noise model, no host
        memory arena (a fresh arena guarantees zeroed bytes; a reused one
        cannot), the contention-free LogGP fabric, and the ``"pair"``
        topology — topology *objects* are passed verbatim and may carry
        caller state.  Within that slice a session's identity is exactly
        ``(nodes, config, nic, latency_ps)``.
        """
        if (
            self.trace
            or self.noise is not None
            or self.with_memory
            or self.fabric != "loggp"
            or self.topology != "pair"
            or self.link_queue_depth is not None
            or self.routing is not None
            or self.switch_radix is not None
        ):
            return None
        return (self.nodes, self.config, self.nic, self.latency_ps)

    def resolve_config(self) -> MachineConfig:
        config = (config_by_name(self.config) if isinstance(self.config, str)
                  else self.config)
        overrides = {}
        if self.link_queue_depth is not None:
            overrides["link_queue_depth"] = self.link_queue_depth
        if self.routing is not None:
            overrides["routing"] = self.routing
        if self.switch_radix is not None:
            overrides["switch_radix"] = self.switch_radix
        return config.with_network(**overrides) if overrides else config

    def build_topology(self, config: MachineConfig) -> Any:
        if self.topology == "pair":
            return UniformLatency(
                latency=CROSS_POD_LATENCY_PS if self.latency_ps is None
                else self.latency_ps
            )
        if self.topology == "fattree":
            return FatTree(params=config.network, nhosts=max(self.nodes, 2))
        return self.topology

    def build(self) -> Cluster:
        """Materialise the spec into a live :class:`Cluster`."""
        config = self.resolve_config()
        try:
            nic_factory = _NIC_FACTORIES[self.nic]
        except KeyError:
            raise ValueError(
                f"unknown NIC flavour {self.nic!r} "
                f"(use {sorted(_NIC_FACTORIES)})"
            ) from None
        return Cluster(
            self.nodes,
            config=config,
            nic_factory=nic_factory,
            topology=self.build_topology(config),
            noise=self.noise,
            trace=self.trace,
            with_memory=self.with_memory,
            fabric=self.fabric,
        )


class Session:
    """A running simulation: cluster + channels + run control.

    Use as a context manager for deterministic teardown, or call
    :meth:`close` explicitly.  All helpers delegate to the underlying
    primitives one-to-one — the session never schedules kernel events of
    its own.
    """

    def __init__(self, spec: Optional[ClusterSpec] = None, **overrides: Any):
        if spec is None:
            spec = ClusterSpec(**overrides)
        elif overrides:
            spec = replace(spec, **overrides)
        hook = _OBS_HOOK
        if hook is not None:
            spec = hook.prepare(spec)
        self.spec = spec
        self.cluster: Cluster = spec.build()
        self.channels: list[Channel] = []
        #: Receive states reaped at :meth:`close` because their payload
        #: was lost in the network (congestion tail-drop) — keyed by rank.
        self.stalled_rx: dict[int, int] = {}
        self._closed = False
        self._pool_key: Optional[tuple] = None
        #: The attached observer, if any (see :meth:`attach_observer`).
        self.observer = None
        if hook is not None:
            hook.attach(self)

    # -- convenience constructors -----------------------------------------
    @classmethod
    def checkout(cls, spec: ClusterSpec) -> "Session":
        """A session for ``spec`` — pooled when possible, else freshly built.

        A pooled session was rewound by :meth:`release` to exactly its
        just-built state; the only process-global touch-up needed here is
        the message-id space, which an unrelated cluster constructed in the
        meantime may have advanced (construction restarts it too, so reuse
        and fresh build agree).
        """
        # An ambient capture must see every session built under it; the
        # pool hands back clusters without running __init__, so bypass it.
        key = (spec.pool_key()
               if _pool_enabled() and _OBS_HOOK is None else None)
        if key is not None:
            stack = _POOL.get(key)
            if stack:
                sess = stack.pop()
                sess._pool_key = key  # re-armed (cleared while pooled)
                reset_msg_ids()
                if _engine._METER is not None:
                    # A fresh build would register at Environment.__init__;
                    # reused environments must be visible to the meter too.
                    _engine._METER.register(sess.env)
                return sess
        sess = cls(spec)
        sess._pool_key = key
        return sess
    @classmethod
    def pair(cls, config: Union[MachineConfig, str] = "int", nodes: int = 2,
             **overrides: Any) -> "Session":
        """A small all-cross-pod cluster (the microbenchmark scaffold)."""
        return cls(ClusterSpec(nodes=nodes, config=config, **overrides))

    @classmethod
    def fattree(cls, nodes: int, config: Union[MachineConfig, str] = "dis",
                **overrides: Any) -> "Session":
        """An N-endpoint fat-tree cluster (the collective scaffold)."""
        return cls(ClusterSpec(nodes=nodes, config=config,
                               topology="fattree", **overrides))

    # -- structure ---------------------------------------------------------
    @property
    def env(self) -> Environment:
        return self.cluster.env

    @property
    def timeline(self) -> Timeline:
        return self.cluster.timeline

    @property
    def config(self) -> MachineConfig:
        return self.cluster.config

    @property
    def now_ns(self) -> float:
        return self.cluster.now_ns

    def __len__(self) -> int:
        return len(self.cluster)

    def __getitem__(self, rank: int) -> Machine:
        return self.cluster[rank]

    def machines(self) -> list[Machine]:
        return list(self.cluster.machines)

    # -- installation (validated) -----------------------------------------
    def install(self, rank: int, entry: MatchEntry, pt_index: int = 0,
                overflow: bool = False) -> MatchEntry:
        """Append a matching entry, validating handler resources first.

        ``PtlMEAppend`` runs the same validation, but only after
        ``post_me`` has already allocated the portal-table index — the
        session validates before any side effect, so a rejected entry
        (oversized initial state, freed
        :class:`~repro.core.handlers.HPUMemory`) leaves the NI untouched.
        """
        machine = self.cluster[rank]
        if entry.spin is not None:
            entry.spin.validate(machine.ni.limits)
        return machine.post_me(pt_index, entry, overflow=overflow)

    def connect(self, rank: int, **kwargs: Any) -> Channel:
        """Install a handler channel on ``rank`` (the §1 ``connect()``).

        Keyword arguments are those of :func:`repro.core.channel.connect`.
        The channel is tracked and uninstalled by :meth:`close`.
        """
        channel = _connect(self.cluster[rank], **kwargs)
        self.channels.append(channel)
        return channel

    # -- fault injection ----------------------------------------------------
    def attach_faults(self, plan):
        """Arm a :class:`~repro.faults.plan.FaultPlan` on this session.

        Returns the live :class:`~repro.faults.injector.FaultInjector`
        (fault accounting, crash list).  Arming makes the session
        unpoolable: fault state must never leak into a reused cluster.
        With no plan attached nothing here runs — the default path
        schedules zero fault events and golden traces stay byte-identical.
        """
        from repro.faults.injector import FaultInjector  # avoid cycle
        return FaultInjector(self, plan)

    # -- observability ------------------------------------------------------
    def attach_observer(self, config: Any = None):
        """Arm an observability :class:`~repro.obs.observer.Observer`.

        Requires a traced session (``ClusterSpec(trace=True)``) — the
        observer is a pure reader of the span stream and the probe
        points, so without a timeline there is nothing to observe.
        Returns the live observer (occupancy accounting, Perfetto
        export, report building).  With no observer attached, every
        probe slot stays at its class-level ``None`` and the default
        path schedules exactly the pre-observability kernel events —
        golden traces stay byte-identical.
        """
        from repro.obs.observer import Observer  # avoid cycle
        observer = Observer(self, config)
        self.observer = observer
        return observer

    # -- run control -------------------------------------------------------
    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Register a generator as a simulated process."""
        return self.env.process(generator, name)

    def run(self, until: Optional[Union[int, Event]] = None) -> Any:
        """Run the DES (to quiescence, to a time, or to an event)."""
        return self.env.run(until=until)

    def drain(self) -> None:
        """Run every remaining event (post-measurement cleanup traffic)."""
        self.env.run()

    # -- teardown ----------------------------------------------------------
    def close(self) -> None:
        """Uninstall session-tracked channels and reap stalled receives.

        Idempotent.  Messages whose payload the congestion fabric
        tail-dropped can never complete, so their receiver-side state
        would otherwise leak; the per-rank reap counts land in
        :attr:`stalled_rx` for scenario accounting.
        """
        if self._closed:
            return
        self._closed = True
        for machine in self.cluster.machines:
            reaped = machine.nic.reap_stalled()
            if reaped:
                self.stalled_rx[machine.rank] = reaped
        for channel in self.channels:
            try:
                channel.close()
            except PortalsError:
                pass  # already unlinked by scenario code
        self.channels.clear()

    def release(self) -> None:
        """Hand the session back to the reuse pool (or just close it).

        Pool entry requires a drained kernel and a clean cluster rewind;
        anything else — unpoolable spec, pending events, a full pool —
        degrades to a plain :meth:`close`, so scenarios can call this
        unconditionally at the end of a measurement.
        """
        key = self._pool_key
        self.close()
        if key is None:
            return
        stack = _POOL.setdefault(key, [])
        if len(stack) >= _POOL_DEPTH or self.env.peek() is not None:
            return
        try:
            self.cluster.reset()
        except (SimulationError, ValueError):
            return
        self._closed = False
        self.stalled_rx = {}
        # Disarm until the next checkout: a stray second release() must
        # not enter the same object into the pool twice (two tenants
        # would alias one cluster).
        self._pool_key = None
        stack.append(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
