"""System-noise injection for host CPUs.

The paper's toolchain supports injecting OS noise into the simulated hosts
(§4.2, refs [21, 22]): periodic events (daemons, timer ticks) preempt the
CPU, delaying any work in flight.  This matters for the evaluation narrative
because CPU-progressed protocols (RDMA ping-pong, CPU matching) absorb noise
while NIC-offloaded ones (Portals 4 triggered ops, sPIN handlers) do not.

The model here is the classic fixed-frequency noise trace: every ``period``
the CPU is unavailable for ``duration``.  Given a work interval we compute
the inflated completion time analytically (no events needed).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FixedFrequencyNoise", "NoNoise"]


@dataclass(frozen=True)
class NoNoise:
    """Noise-free CPU: completion = start + work."""

    def finish(self, start_ps: int, work_ps: int) -> int:
        if work_ps < 0:
            raise ValueError("negative work")
        return start_ps + work_ps

    def overhead(self, start_ps: int, work_ps: int) -> int:
        return 0


@dataclass(frozen=True)
class FixedFrequencyNoise:
    """Periodic preemption: busy for ``duration_ps`` every ``period_ps``.

    The noise window [k·period + phase, k·period + phase + duration) blocks
    progress.  ``finish`` walks the windows overlapping the work interval —
    O(number of windows hit), exact, and deterministic.
    """

    period_ps: int
    duration_ps: int
    phase_ps: int = 0

    def __post_init__(self) -> None:
        if self.period_ps <= 0:
            raise ValueError("noise period must be positive")
        if not 0 <= self.duration_ps < self.period_ps:
            raise ValueError("noise duration must be in [0, period)")

    def _window_start(self, k: int) -> int:
        return k * self.period_ps + self.phase_ps

    def finish(self, start_ps: int, work_ps: int) -> int:
        """Completion time of ``work_ps`` of CPU work starting at start_ps."""
        if work_ps < 0:
            raise ValueError("negative work")
        if work_ps == 0:
            return start_ps  # no work, no delay — even inside a window
        t = start_ps
        remaining = work_ps
        # Index of the first noise window that could affect us.
        k = (t - self.phase_ps) // self.period_ps
        while True:
            w_start = self._window_start(k)
            w_end = w_start + self.duration_ps
            if t < w_start:
                # Progress until the window opens (or we finish first).
                step = min(remaining, w_start - t)
                t += step
                remaining -= step
                if remaining == 0:
                    return t
            if w_start <= t < w_end:
                t = w_end  # preempted: wait out the window
            if remaining == 0:
                return t
            k += 1

    def overhead(self, start_ps: int, work_ps: int) -> int:
        """Extra time added by noise to this work interval."""
        return self.finish(start_ps, work_ps) - start_ps - work_ps

    @property
    def intensity(self) -> float:
        """Long-run fraction of CPU time stolen."""
        return self.duration_ps / self.period_ps
