"""Network substrate: the LogGOPSim stand-in.

Implements the paper's network model (§4.2):

* LogGOPS parameters — o = 65 ns injection overhead, g = 6.7 ns inter-message
  gap (150 M msgs/s), 400 Gbit/s line rate (G = 20 ps/Byte; see DESIGN.md for
  the per-bit/per-Byte note), MTU 4 KiB;
* a fat-tree topology built from 36-port switches with 50 ns switch traversal
  and 10 m wires (33.4 ns);
* packet-level message transmission with per-NIC injection serialization;
* optional system-noise injection for host CPUs.
"""

from repro.network.loggp import LogGPParams, NetworkParams
from repro.network.packets import Message, Packet, packetize, reassemble
from repro.network.topology import FatTree, UniformLatency
from repro.network.fabric import Fabric
from repro.network.congestion import CongestionFabric, Link
from repro.network.noise import FixedFrequencyNoise, NoNoise

__all__ = [
    "CongestionFabric",
    "Fabric",
    "FatTree",
    "FixedFrequencyNoise",
    "Link",
    "LogGPParams",
    "Message",
    "NetworkParams",
    "NoNoise",
    "Packet",
    "UniformLatency",
    "packetize",
    "reassemble",
]
