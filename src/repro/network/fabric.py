"""Packet-level message transport between NICs.

The fabric models the LogGOPS injection pipeline at each source NIC plus the
topology-derived wire latency:

* message starts at one NIC are spaced by ``g`` (message-rate limit);
* each packet serializes onto the wire for ``G × bytes``;
* each packet arrives at the destination ``L(src, dst)`` after it finished
  serializing, where L comes from the fat tree (switch + wire delays).

The fabric performs no congestion modelling inside the switches — the paper
assumes a full-bisection fat tree and LogGP likewise concentrates contention
at the endpoints.  Receiver-side costs (matching, DMA, handlers) belong to
the NIC models, not the fabric.

Fast path
---------
Simulating millions of per-packet events makes TX serialization the kernel's
hottest pipeline, so messages are transmitted by a callback-driven chain
(:class:`_TxChain`) instead of a generator process.  The chain is
**push-structure preserving**: it schedules exactly the kernel events the
generator path would — the same wire-request grant events (real FIFO
``Request``s on the wire server, so any number of concurrent messages at one
NIC interleave packet-by-packet precisely as queued generators would), and
fire-and-forget callbacks at the positions of the generator's timeouts.
Traces are byte-for-byte identical (same ``Timeline.canonical_bytes()``,
same interleaving under timestamp ties) — the golden-trace and
chain-vs-generator equivalence tests enforce this.  What the chain
eliminates is the per-packet cost: generator resumption, Event/Timeout
allocation, and process bookkeeping.

Set ``fast_path=False`` (or ``REPRO_FABRIC_FAST_PATH=0``) to force the
generator path everywhere.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Optional

from repro.des.engine import PRIORITY_URGENT, Environment, Event, env_flag
from repro.des.resources import RateLimiter, Server
from repro.des.trace import Timeline
from repro.network.loggp import NetworkParams
from repro.network.packets import Message, Packet, packetize

__all__ = ["Fabric"]


def _fast_path_default() -> bool:
    return env_flag("REPRO_FABRIC_FAST_PATH")


class _TxChain:
    """Callback-driven TX pipeline for one message.

    Stage chain, each stage mirroring one kernel event of the generator
    path (noted in brackets):

    ``_start`` [process initialize] → ``_turn`` [wait_turn timeout] →
    per packet: wire request → ``_granted`` [request grant] →
    ``_serve_done`` [serve timeout] → delivery callback; the last boundary
    triggers the done event [process-end event].
    """

    __slots__ = ("fabric", "message", "packets", "idx", "latency", "src",
                 "req", "done", "wire", "loggp", "pkt_start", "cur_dur")

    def __init__(self, fabric: "Fabric", message: Message):
        self.fabric = fabric
        self.message = message
        self.loggp = fabric.params.loggp
        self.packets = packetize(message, self.loggp.mtu)
        self.idx = 0
        self.latency = 0
        self.src = message.source
        self.req = None
        self.done = Event(fabric.env)
        self.wire = fabric._wire[message.source]
        self.pkt_start = 0
        self.cur_dur = 0

    def _start(self) -> None:
        """At inject time (URGENT): claim the g slot, like the process body."""
        fabric = self.fabric
        env = fabric.env
        fabric.messages_injected += 1
        grant_at = fabric._msg_limiter[self.src].claim()
        self.latency = fabric.topology.latency_ps(self.src, self.message.target)
        env.schedule_fn(grant_at - env._now, self._turn)

    def _turn(self) -> None:
        """g slot reached: join the wire FIFO for the first packet."""
        self._request()

    def _request(self) -> None:
        """Issue the wire request for packet ``idx`` (span includes wait)."""
        self.pkt_start = self.fabric.env._now
        self.cur_dur = self.loggp.serialization_ps(self.packets[self.idx].wire_bytes)
        self.req = req = self.wire.request()
        if req.callbacks is None:
            self._granted(req)
        else:
            req.callbacks.append(self._granted)

    def _granted(self, _event: Event) -> None:
        self.fabric.env.schedule_fn(self.cur_dur, self._serve_done)

    def _serve_done(self) -> None:
        """One packet finished serializing (mirrors the serve timeout)."""
        fabric = self.fabric
        env = fabric.env
        now = env._now
        wire = self.wire
        idx = self.idx
        pkt = self.packets[idx]
        # Accounting before release, span/delivery after, next request last
        # — exactly the order Server.serve and the generator interleave
        # them, so queued contenders are granted at identical positions.
        wire.busy_time += self.cur_dur
        wire.jobs_served += 1
        wire.release(self.req)
        self.req = None
        timeline = fabric.timeline
        if timeline.enabled:
            timeline.record(
                self.src, "NIC-tx", self.pkt_start, now,
                f"m{self.message.msg_id}p{pkt.seq}",
            )
        fabric._dispatch(pkt, self.latency)
        self.idx = idx = idx + 1
        if idx == len(self.packets):
            self.done.succeed(now)
        else:
            self._request()


class Fabric:
    """Connects attached NICs; delivers packets with LogGP timing."""

    def __init__(
        self,
        env: Environment,
        topology,
        params: Optional[NetworkParams] = None,
        timeline: Optional[Timeline] = None,
        fast_path: Optional[bool] = None,
    ):
        self.env = env
        self.topology = topology
        self.params = params or NetworkParams()
        self.timeline = timeline or Timeline(enabled=False)
        self.fast_path = _fast_path_default() if fast_path is None else fast_path
        self._rx: dict[int, Callable[[Packet], None]] = {}
        self._msg_limiter: dict[int, RateLimiter] = {}
        self._wire: dict[int, Server] = {}
        self.packets_delivered = 0
        self.messages_injected = 0
        #: Packets that reached a destination with no attached rx entry
        #: point (the node was detached mid-flight, e.g. failure injection).
        self.packets_dropped = 0
        #: Fault-injection accounting (see :mod:`repro.faults`): packets a
        #: plan dropped at dispatch, packets that traversed but failed the
        #: receiver CRC, and messages a crashed node tried to send.
        self.fault_packets_lost = 0
        self.fault_packets_corrupted = 0
        self.messages_from_dead = 0
        #: Crashed sources (see :meth:`mark_dead`): their sends vanish
        #: instead of raising "not attached".
        self._dead_sources: set[int] = set()

    # -- attachment ----------------------------------------------------------
    def attach(self, nid: int, rx_callback: Callable[[Packet], None]) -> None:
        """Register node ``nid``'s receive entry point."""
        if nid in self._rx:
            raise ValueError(f"node {nid} already attached")
        self._rx[nid] = rx_callback
        self._msg_limiter[nid] = RateLimiter(self.env, self.params.loggp.g_ps)
        self._wire[nid] = Server(self.env, name=f"wire[{nid}]")

    def detach(self, nid: int) -> None:
        """Remove a node (used by failure injection).

        Drops *all* of the node's fabric state — rx entry point, message
        rate limiter, wire server — so repeated attach/detach cycles cannot
        leak resources.
        """
        self._rx.pop(nid, None)
        self._msg_limiter.pop(nid, None)
        self._wire.pop(nid, None)

    def mark_dead(self, nid: int) -> None:
        """Mark a (detached) node fail-stopped: its own sends vanish.

        A crashed node's HPUs may still be mid-handler when the crash
        lands; without this, their forwarding puts would raise "source
        not attached" instead of silently disappearing the way a dead
        NIC's traffic does.
        """
        self._dead_sources.add(nid)

    def reset(self) -> None:
        """Restore construction state, keeping attachments (cluster reuse).

        Per-node rate limiters and wire servers are rewound so the next
        tenant's first message sees a fresh ``g`` window and clean
        accounting; the rx entry points stay attached — the machines are
        being reused too.
        """
        for limiter in self._msg_limiter.values():
            limiter.reset()
        for wire in self._wire.values():
            wire.reset()
        self.packets_delivered = 0
        self.messages_injected = 0
        self.packets_dropped = 0
        self.fault_packets_lost = 0
        self.fault_packets_corrupted = 0
        self.messages_from_dead = 0
        self._dead_sources.clear()

    # -- transmission ----------------------------------------------------------
    def inject(self, message: Message) -> Event:
        """Hand a message to the source NIC's TX pipeline.

        Returns an event that fires when the *last packet has finished
        serializing at the source* (i.e. the TX side is free again).  The
        receive side learns about the message through its rx callback,
        packet by packet.
        """
        src = message.source
        if src not in self._msg_limiter:
            if src in self._dead_sources:
                # A crashed node "sending": nothing serializes, nothing
                # arrives.  The returned event still fires so any caller
                # mid-generator (a handler that crashed under it) unwinds.
                self.messages_from_dead += 1
                done = Event(self.env)
                done.succeed(self.env._now)
                return done
            raise ValueError(f"source node {src} not attached")
        if self.fast_path:
            chain = _TxChain(self, message)
            # Start synchronously: the g-slot claim happens in inject order
            # either way, and _turn's timestamp is unchanged — the URGENT
            # 0-delay hop this used to take bought only a queue round-trip.
            chain._start()
            return chain.done
        return self.env.process(
            self._send_proc(message), name=f"tx[{src}->{message.target}]"
        )

    def _send_proc(self, message: Message):
        loggp = self.params.loggp
        src = message.source
        packets = packetize(message, loggp.mtu)
        self.messages_injected += 1
        # g: minimum spacing between message starts at this NIC.
        yield self._msg_limiter[src].wait_turn()
        latency = self.topology.latency_ps(src, message.target)
        env = self.env
        wire = self._wire[src]
        timeline = self.timeline
        for pkt in packets:
            start = env._now
            yield from wire.serve(loggp.serialization_ps(pkt.wire_bytes))
            if timeline.enabled:
                timeline.record(
                    src, "NIC-tx", start, env._now,
                    f"m{message.msg_id}p{pkt.seq}",
                )
            self._dispatch(pkt, latency)
        return env.now

    def _dispatch(self, pkt: Packet, latency: int) -> None:
        """Forward one serialized packet toward its destination.

        The LogGP model teleports it across the topology latency; the
        congestion fabric overrides this with a routed per-link walk.
        """
        self.env.schedule_fn(latency, partial(self._deliver, pkt))

    def _deliver(self, pkt: Packet) -> None:
        rx = self._rx.get(pkt.message.target)
        if rx is None:
            self.packets_dropped += 1
            return  # destination detached (failed node): packet lost
        self.packets_delivered += 1
        rx(pkt)

    # -- introspection ---------------------------------------------------------
    def attached_nics(self) -> list:
        """The NIC objects behind the attached rx callbacks.

        Attachment registers a bound ``nic.on_packet``; anything else
        (test fixtures attach bare functions) is skipped.  This is how
        fabric-level accounting reaches receiver-side counters such as
        ``rx_stalled_messages``.
        """
        nics = []
        for callback in self._rx.values():
            owner = getattr(callback, "__self__", None)
            if owner is not None and hasattr(owner, "rx_stalled_messages"):
                nics.append(owner)
        return nics

    def rx_stalled_messages(self) -> int:
        """Receiver messages stalled forever by in-network payload loss."""
        return sum(nic.rx_stalled_messages for nic in self.attached_nics())

    def rx_orphan_packets(self) -> int:
        """Payload packets that arrived after their header was lost."""
        return sum(nic.rx_orphan_packets for nic in self.attached_nics())

    def tx_busy_ps(self, nid: int) -> int:
        """Total serialization time spent by node ``nid``'s wire."""
        return self._wire[nid].busy_time if nid in self._wire else 0

    def wire_stats(self, elapsed_ps: Optional[int] = None) -> dict[str, dict]:
        """Per-node egress-wire accounting, keyed by ``"wire[nid]"``.

        The LogGP pipe has no interior links; its only contention points
        are the per-node injection wires.  The schema mirrors the subset
        of :meth:`~repro.network.congestion.Link.stats` that is
        meaningful here (no queueing or drops on a contention-free pipe),
        so telemetry reports keep one link-table shape across fabric
        flavours.
        """
        elapsed = self.env.now if elapsed_ps is None else elapsed_ps
        out = {}
        for nid in sorted(self._wire):
            wire = self._wire[nid]
            out[f"wire[{nid}]"] = {
                "packets": wire.jobs_served,
                "drops": 0,
                "max_queue": 0,
                "wait_ns": 0.0,
                "busy_ns": wire.busy_time / 1000.0,
                "utilization": round(wire.busy_time / elapsed, 4)
                if elapsed else 0.0,
            }
        return out

    def latency_ps(self, a: int, b: int) -> int:
        return self.topology.latency_ps(a, b)
