"""Packet-level message transport between NICs.

The fabric models the LogGOPS injection pipeline at each source NIC plus the
topology-derived wire latency:

* message starts at one NIC are spaced by ``g`` (message-rate limit);
* each packet serializes onto the wire for ``G × bytes``;
* each packet arrives at the destination ``L(src, dst)`` after it finished
  serializing, where L comes from the fat tree (switch + wire delays).

The fabric performs no congestion modelling inside the switches — the paper
assumes a full-bisection fat tree and LogGP likewise concentrates contention
at the endpoints.  Receiver-side costs (matching, DMA, handlers) belong to
the NIC models, not the fabric.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.des.engine import Environment, Event
from repro.des.resources import RateLimiter, Server
from repro.des.trace import Timeline
from repro.network.loggp import NetworkParams
from repro.network.packets import Message, Packet, packetize

__all__ = ["Fabric"]


class Fabric:
    """Connects attached NICs; delivers packets with LogGP timing."""

    def __init__(
        self,
        env: Environment,
        topology,
        params: Optional[NetworkParams] = None,
        timeline: Optional[Timeline] = None,
    ):
        self.env = env
        self.topology = topology
        self.params = params or NetworkParams()
        self.timeline = timeline or Timeline(enabled=False)
        self._rx: dict[int, Callable[[Packet], None]] = {}
        self._msg_limiter: dict[int, RateLimiter] = {}
        self._wire: dict[int, Server] = {}
        self.packets_delivered = 0
        self.messages_injected = 0

    # -- attachment ----------------------------------------------------------
    def attach(self, nid: int, rx_callback: Callable[[Packet], None]) -> None:
        """Register node ``nid``'s receive entry point."""
        if nid in self._rx:
            raise ValueError(f"node {nid} already attached")
        self._rx[nid] = rx_callback
        self._msg_limiter[nid] = RateLimiter(self.env, self.params.loggp.g_ps)
        self._wire[nid] = Server(self.env, name=f"wire[{nid}]")

    def detach(self, nid: int) -> None:
        """Remove a node (used by failure injection)."""
        self._rx.pop(nid, None)

    # -- transmission ----------------------------------------------------------
    def inject(self, message: Message) -> Event:
        """Hand a message to the source NIC's TX pipeline.

        Returns an event that fires when the *last packet has finished
        serializing at the source* (i.e. the TX side is free again).  The
        receive side learns about the message through its rx callback,
        packet by packet.
        """
        if message.source not in self._msg_limiter:
            raise ValueError(f"source node {message.source} not attached")
        return self.env.process(
            self._send_proc(message), name=f"tx[{message.source}->{message.target}]"
        )

    def _send_proc(self, message: Message):
        loggp = self.params.loggp
        src, dst = message.source, message.target
        packets = packetize(message, loggp.mtu)
        self.messages_injected += 1
        # g: minimum spacing between message starts at this NIC.
        yield self._msg_limiter[src].wait_turn()
        latency = self.topology.latency_ps(src, dst)
        wire = self._wire[src]
        for pkt in packets:
            start = self.env.now
            yield from wire.serve(loggp.serialization_ps(pkt.wire_bytes))
            self.timeline.record(
                src, "NIC-tx", start, self.env.now, f"m{message.msg_id}p{pkt.seq}"
            )
            self._schedule_delivery(pkt, latency)
        return self.env.now

    def _schedule_delivery(self, pkt: Packet, latency: int) -> None:
        arrival = self.env.timeout(latency)

        def deliver(_event: Event, pkt: Packet = pkt) -> None:
            rx = self._rx.get(pkt.message.target)
            if rx is None:
                return  # destination detached (failed node): packet lost
            self.packets_delivered += 1
            rx(pkt)

        arrival.callbacks.append(deliver)

    # -- introspection ---------------------------------------------------------
    def tx_busy_ps(self, nid: int) -> int:
        """Total serialization time spent by node ``nid``'s wire."""
        return self._wire[nid].busy_time if nid in self._wire else 0

    def latency_ps(self, a: int, b: int) -> int:
        return self.topology.latency_ps(a, b)
