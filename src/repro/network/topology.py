"""Fat-tree topology and per-pair latency computation.

The paper constructs "a fat tree network from 36-port switches" (§4.2).  We
implement the standard 3-level k-ary fat tree [Leiserson'85 / Al-Fares'08]:

* k pods; each pod has k/2 edge switches and k/2 aggregation switches;
* each edge switch connects k/2 hosts;
* (k/2)^2 core switches;
* capacity: k^3/4 hosts (11,664 for k = 36).

Minimal paths traverse 1 switch (same edge switch), 3 switches (same pod) or
5 switches (cross-pod).  Latency per pair follows
:meth:`repro.network.loggp.NetworkParams.latency_for_hops`.

The hop count comes from pod arithmetic (O(1)); :meth:`FatTree.build_graph`
materializes the same topology as a :mod:`networkx` graph so tests can
cross-validate the arithmetic against real shortest paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import networkx as nx

from repro.network.loggp import NetworkParams

__all__ = ["FatTree", "UniformLatency"]


@dataclass
class FatTree:
    """A 3-level k-ary fat tree holding ``nhosts`` endpoints.

    Hosts are numbered 0..nhosts-1 and filled edge switch by edge switch,
    pod by pod — the standard linear placement LogGOPSim uses.
    """

    params: NetworkParams = field(default_factory=NetworkParams)
    nhosts: int = 2

    def __post_init__(self) -> None:
        k = self.params.switch_radix
        if self.nhosts < 1:
            raise ValueError("need at least one host")
        if self.nhosts > self.capacity:
            raise ValueError(
                f"{self.nhosts} hosts exceed fat-tree capacity {self.capacity} "
                f"for radix {k}"
            )

    # -- structure ---------------------------------------------------------
    @property
    def radix(self) -> int:
        return self.params.switch_radix

    @property
    def hosts_per_edge(self) -> int:
        return self.radix // 2

    @property
    def hosts_per_pod(self) -> int:
        return (self.radix // 2) ** 2

    @property
    def capacity(self) -> int:
        return self.radix**3 // 4

    @property
    def num_pods(self) -> int:
        """Pods actually populated by the linear host placement."""
        return -(-self.nhosts // self.hosts_per_pod)

    @property
    def num_edge_switches(self) -> int:
        """Edge switches actually populated by the linear host placement."""
        return -(-self.nhosts // self.hosts_per_edge)

    @property
    def num_core_switches(self) -> int:
        return (self.radix // 2) ** 2

    @classmethod
    def for_hosts(cls, nhosts: int,
                  params: Optional[NetworkParams] = None) -> "FatTree":
        """The smallest fat tree (by switch radix) holding ``nhosts``.

        Picks the minimum even radix whose ``k³/4`` capacity covers the
        host count — radix 4 carries 16 hosts, radix 8 carries 128,
        radix 36 (the paper's switches) carries 11,664 — and rebuilds
        ``params`` with that radix, so multi-pod clusters of hundreds to
        thousands of hosts are one call instead of radix arithmetic.
        """
        if nhosts < 1:
            raise ValueError("need at least one host")
        params = params if params is not None else NetworkParams()
        radix = 2
        while radix**3 // 4 < nhosts:
            radix += 2
        if radix != params.switch_radix:
            params = replace(params, switch_radix=radix)
        return cls(params=params, nhosts=nhosts)

    def edge_switch_of(self, host: int) -> int:
        self._check_host(host)
        return host // self.hosts_per_edge

    def pod_of(self, host: int) -> int:
        self._check_host(host)
        return host // self.hosts_per_pod

    def _check_host(self, host: int) -> None:
        if not 0 <= host < self.nhosts:
            raise ValueError(f"host {host} out of range [0, {self.nhosts})")

    # -- path metrics --------------------------------------------------------
    def switch_hops(self, a: int, b: int) -> int:
        """Number of switches on a minimal path between hosts a and b."""
        self._check_host(a)
        self._check_host(b)
        if a == b:
            return 0
        if self.edge_switch_of(a) == self.edge_switch_of(b):
            return 1
        if self.pod_of(a) == self.pod_of(b):
            return 3
        return 5

    def latency_ps(self, a: int, b: int) -> int:
        """End-to-end L between two hosts (0 for loopback)."""
        return self.params.latency_for_hops(self.switch_hops(a, b))

    def max_latency_ps(self) -> int:
        """The cross-pod (diameter) latency."""
        return self.params.latency_for_hops(5)

    # -- networkx cross-validation ------------------------------------------
    def build_graph(self) -> nx.Graph:
        """Materialize hosts+switches as a graph (for tests/inspection).

        Nodes: ``("host", i)``, ``("edge", e)``, ``("agg", pod, i)``,
        ``("core", i)``.  Edges follow the k-ary fat-tree wiring.
        """
        k = self.radix
        g = nx.Graph()
        needed_edges = -(-self.nhosts // self.hosts_per_edge)
        for host in range(self.nhosts):
            g.add_edge(("host", host), ("edge", self.edge_switch_of(host)))
        needed_pods = -(-needed_edges // (k // 2))
        for pod in range(needed_pods):
            for e in range(k // 2):
                edge_id = pod * (k // 2) + e
                if edge_id >= needed_edges and e > 0:
                    continue
                for a in range(k // 2):
                    g.add_edge(("edge", edge_id), ("agg", pod, a))
        for pod in range(needed_pods):
            for a in range(k // 2):
                for c in range(k // 2):
                    g.add_edge(("agg", pod, a), ("core", a * (k // 2) + c))
        return g

    def graph_switch_hops(self, a: int, b: int) -> int:
        """Switch count on a networkx shortest path (slow; tests only)."""
        g = self.build_graph()
        path = nx.shortest_path(g, ("host", a), ("host", b))
        return sum(1 for node in path if node[0] != "host")


@dataclass(frozen=True)
class UniformLatency:
    """A degenerate 'topology': every distinct pair has the same latency.

    Useful for controlled experiments and unit tests where the fat-tree
    placement would add irrelevant variance.
    """

    latency: int
    nhosts: int = 1 << 30

    def latency_ps(self, a: int, b: int) -> int:
        if a == b:
            return 0
        return self.latency

    def switch_hops(self, a: int, b: int) -> int:
        return 0 if a == b else 1

    def max_latency_ps(self) -> int:
        return self.latency


def cross_pod_pair(tree: FatTree) -> Optional[tuple[int, int]]:
    """A (a, b) host pair in different pods, or None if the tree is too small."""
    if tree.nhosts > tree.hosts_per_pod:
        return (0, tree.hosts_per_pod)
    return None
