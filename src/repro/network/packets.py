"""Messages and packetization.

sPIN's central concept (§2): network devices split messages into packets; the
first packet of a message is the *header packet* carrying all information
needed to identify/steer the message, and the programmer's handlers run per
packet.  This module implements messages, the MTU split, and reassembly.

Payloads are numpy ``uint8`` arrays so handlers transform *real bytes* (XOR
parity, complex multiplies, strided deposits are all checked for
correctness).  For application-scale simulations where content is
irrelevant, ``payload=None`` keeps a length-only "modelled" message.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

__all__ = ["Message", "Packet", "packetize", "reassemble", "reset_msg_ids"]

_msg_ids = itertools.count()


def reset_msg_ids() -> None:
    """Restart the message-id sequence.

    Message ids are simulation bookkeeping (trace labels, NIC reassembly
    keys); the counter is process-global, so without a reset a second
    simulation in the same process would label its messages differently
    and break byte-for-byte trace reproducibility.
    :class:`~repro.machine.cluster.Cluster` calls this at construction.

    Invariant: one *active* cluster per process.  Constructing cluster B
    rewinds the counter, so driving a previously built cluster A
    afterwards would reuse ids still live inside A (NIC rx state is keyed
    by msg_id).  Every experiment/scenario builds one cluster and drains
    it before the next exists; keep it that way, or move the counter into
    the cluster and thread it through every ``Message(...)`` site.
    """
    global _msg_ids
    _msg_ids = itertools.count()


@dataclass(slots=True)
class Message:
    """A network transaction (put/get/atomic/ack/...).

    Attributes mirror ``ptl_header_t`` (Appendix B.3) plus simulation
    bookkeeping.  ``payload`` is either a numpy uint8 array of ``length``
    bytes or None (modelled-only message).
    """

    source: int
    target: int
    length: int
    kind: str = "put"
    match_bits: int = 0
    offset: int = 0
    hdr_data: int = 0
    user_hdr: Any = None
    payload: Optional[np.ndarray] = None
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError(f"negative message length {self.length}")
        if self.payload is not None:
            self.payload = np.asarray(self.payload, dtype=np.uint8).ravel()
            if self.payload.size != self.length:
                raise ValueError(
                    f"payload size {self.payload.size} != declared length {self.length}"
                )

    @classmethod
    def from_bytes(cls, source: int, target: int, data: bytes | np.ndarray, **kw) -> "Message":
        arr = np.frombuffer(bytes(data), dtype=np.uint8).copy() if isinstance(
            data, (bytes, bytearray)
        ) else np.asarray(data, dtype=np.uint8).ravel()
        return cls(source=source, target=target, length=int(arr.size), payload=arr, **kw)


@dataclass(slots=True)
class Packet:
    """One MTU-sized piece of a message.

    ``seq`` numbers packets within the message; packet 0 is the header
    packet.  ``payload_offset`` is the byte offset of this packet's payload
    within the message payload — handlers use it to compute deposit
    locations (packets may be processed out of order, §2).
    """

    message: Message
    seq: int
    payload_offset: int
    payload_len: int
    is_header: bool

    @property
    def payload(self) -> Optional[np.ndarray]:
        """View of this packet's bytes within the message payload."""
        if self.message.payload is None:
            return None
        return self.message.payload[
            self.payload_offset : self.payload_offset + self.payload_len
        ]

    @property
    def wire_bytes(self) -> int:
        """Bytes occupying the wire.

        Like LogGOPSim we charge only payload bytes at G; per-packet framing
        overhead is folded into the latency/matching constants.  Header-only
        packets (zero-byte messages) still occupy one minimal slot.
        """
        return max(self.payload_len, 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "hdr" if self.is_header else "pay"
        return (
            f"<Packet msg={self.message.msg_id} seq={self.seq} {tag} "
            f"off={self.payload_offset} len={self.payload_len}>"
        )


def packetize(message: Message, mtu: int) -> list[Packet]:
    """Split a message into MTU-sized packets; packet 0 is the header packet.

    A zero-length message still produces a single header packet (pure
    control messages such as ACKs or rendezvous RTS).
    """
    if mtu <= 0:
        raise ValueError(f"mtu must be positive, got {mtu}")
    packets: list[Packet] = []
    if message.length == 0:
        return [Packet(message, seq=0, payload_offset=0, payload_len=0, is_header=True)]
    offset = 0
    for seq in range(-(-message.length // mtu)):
        chunk = min(mtu, message.length - offset)
        packets.append(
            Packet(
                message,
                seq=seq,
                payload_offset=offset,
                payload_len=chunk,
                is_header=(seq == 0),
            )
        )
        offset += chunk
    return packets


def reassemble(packets: list[Packet]) -> np.ndarray:
    """Reassemble packet payloads into the full message byte array.

    Packets may arrive in any order; coverage must be exact (no holes, no
    overlap) — violations raise ``ValueError``.
    """
    if not packets:
        raise ValueError("cannot reassemble an empty packet list")
    message = packets[0].message
    if any(p.message is not message for p in packets):
        raise ValueError("packets from different messages")
    if message.payload is None:
        raise ValueError("cannot reassemble a modelled (payload-free) message")
    out = np.zeros(message.length, dtype=np.uint8)
    seen = np.zeros(message.length, dtype=bool)
    for p in sorted(packets, key=lambda p: p.payload_offset):
        lo, hi = p.payload_offset, p.payload_offset + p.payload_len
        if hi > message.length:
            raise ValueError(f"packet overruns message: {p!r}")
        if seen[lo:hi].any():
            raise ValueError(f"overlapping packet coverage at [{lo}, {hi})")
        out[lo:hi] = p.payload
        seen[lo:hi] = True
    if not seen.all():
        raise ValueError("packet coverage has holes")
    return out
