"""LogGP / LogGOPS network parameters.

The paper parametrizes a future InfiniBand system (§4.2):

* ``o`` = 65 ns injection overhead (not parallelizable, charged on the CPU);
* ``g`` = 6.7 ns inter-message gap (~150 million messages per second,
  Mellanox ConnectX-4 class);
* 400 Gbit/s line rate.  The paper prints "G = 2.5 ps (inter-Byte gap)" but
  every derived number (g/G = 335 B, 8·G·4096 B = 650 ns, 50 GiB/s deposit
  rate) requires G = 20 ps/Byte, i.e. 2.5 ps is per *bit*.  We use 20 ps/Byte.
* ``L`` is not a scalar here: it is computed per node pair from the fat-tree
  topology (see :mod:`repro.network.topology`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.des.engine import ns

__all__ = ["LogGPParams", "NetworkParams", "ROUTING_POLICIES"]

#: Deterministic path-selection policies the congestion fabric supports
#: (see :mod:`repro.network.routing`): ``"ecmp"`` hashes (src, dst,
#: msg_id); ``"dmodk"`` is destination-deterministic.
ROUTING_POLICIES = ("ecmp", "dmodk")


@dataclass(frozen=True)
class LogGPParams:
    """The LogGP injection-side parameters, in picoseconds.

    Attributes
    ----------
    o_ps:
        Per-message CPU injection overhead (the LogP *o*).
    g_ps:
        Minimum gap between consecutive message injections at one NIC
        (the LogP *g*, the reciprocal of the message rate).
    G_ps_per_byte:
        Serialization time per byte (the LogGP *G*, the reciprocal of the
        line rate).
    mtu:
        Maximum transmission unit in bytes; messages larger than this are
        split into packets (sPIN's central packetization concept).
    """

    o_ps: int = ns(65)
    g_ps: int = ns(6.7)
    G_ps_per_byte: int = 20
    mtu: int = 4096

    def __post_init__(self) -> None:
        if self.mtu <= 0:
            raise ValueError(f"mtu must be positive, got {self.mtu}")
        if min(self.o_ps, self.g_ps, self.G_ps_per_byte) < 0:
            raise ValueError("LogGP parameters must be non-negative")

    # -- derived quantities -------------------------------------------------
    def serialization_ps(self, nbytes: int) -> int:
        """Wire occupancy of ``nbytes`` at line rate."""
        return nbytes * self.G_ps_per_byte

    @property
    def bandwidth_gbytes(self) -> float:
        """Line rate in GB/s (1e9 bytes per second)."""
        return 1_000.0 / self.G_ps_per_byte

    @property
    def message_rate_mmps(self) -> float:
        """Peak message rate in million messages per second (1/g)."""
        return 1e6 / self.g_ps

    def packets_in(self, length: int) -> int:
        """Number of packets an ``length``-byte message splits into."""
        if length <= 0:
            return 1  # zero-byte messages still send a header packet
        return -(-length // self.mtu)

    def arrival_rate_pps(self, packet_size: int) -> float:
        """Expected packet arrival rate Δ = min{1/g, 1/(G·s)} in packets/ps.

        This is the quantity in §4.4.2's Little's-law analysis: small packets
        are message-rate (g) bound; packets larger than g/G bytes are
        bandwidth (G) bound.
        """
        if packet_size <= 0:
            raise ValueError("packet_size must be positive")
        return min(1.0 / self.g_ps, 1.0 / (self.G_ps_per_byte * packet_size))

    @property
    def g_over_G_bytes(self) -> float:
        """Packet size where bandwidth replaces message rate as bottleneck.

        For the paper's parameters: 6.7 ns / 20 ps/B = 335 B.
        """
        return self.g_ps / self.G_ps_per_byte


@dataclass(frozen=True)
class NetworkParams:
    """Full network model parameters: LogGP plus the switched-fabric pieces.

    The latency model is a packet-switched network: each traversed switch
    costs ``switch_delay_ps`` and each wire (hop count + 1 wires between two
    hosts) costs ``wire_delay_ps`` (10 m of cable, 33.4 ns).

    ``link_queue_depth`` and ``routing`` only matter on the congestion
    fabric (:class:`repro.network.congestion.CongestionFabric`): the number
    of packets a directional link port buffers before tail-dropping, and
    the deterministic path-selection policy over the fat tree (``"ecmp"``
    hashes (src, dst, msg_id); ``"dmodk"`` is destination-deterministic).
    The default LogGP fabric ignores both.
    """

    loggp: LogGPParams = LogGPParams()
    switch_delay_ps: int = ns(50)
    wire_delay_ps: int = ns(33.4)
    switch_radix: int = 36
    link_queue_depth: int = 64
    routing: str = "ecmp"

    def __post_init__(self) -> None:
        if self.switch_radix < 2 or self.switch_radix % 2:
            raise ValueError("switch radix must be an even integer >= 2")
        if self.link_queue_depth < 1:
            raise ValueError(
                f"link_queue_depth must be >= 1, got {self.link_queue_depth}"
            )
        if self.routing not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {self.routing!r} "
                f"(use {ROUTING_POLICIES})"
            )

    def latency_for_hops(self, nswitches: int) -> int:
        """End-to-end wire+switch latency for a path through n switches."""
        if nswitches < 0:
            raise ValueError("switch count cannot be negative")
        if nswitches == 0:
            return 0  # loopback
        return nswitches * self.switch_delay_ps + (nswitches + 1) * self.wire_delay_ps

    def with_loggp(self, **kwargs) -> "NetworkParams":
        """Return a copy with some LogGP fields replaced."""
        return replace(self, loggp=replace(self.loggp, **kwargs))
