"""Deterministic routed paths over the simulated topologies.

The congestion fabric needs an explicit *path* — the sequence of switches a
packet traverses — where the LogGP fabric only needs the end-to-end latency.
This module computes those paths:

* :func:`fattree_path` walks the 3-level k-ary fat tree of
  :class:`~repro.network.topology.FatTree`, choosing among the redundant
  upward paths either by a deterministic hash of ``(src, dst, msg_id)``
  (``"ecmp"`` — per-message multipath, the common datacenter default) or by
  destination arithmetic (``"dmodk"`` — every flow toward one destination
  takes the same core, which keeps permutation traffic collision-free but
  concentrates incast);
* :func:`crossbar_path` models any latency-only topology
  (:class:`~repro.network.topology.UniformLatency`, custom objects) as a
  non-blocking crossbar with one egress port per source and one ingress
  port per destination — the ingress port is where incast contention lives.

Paths are lists of hashable graph nodes in the same vocabulary as
:meth:`FatTree.build_graph` — ``("host", i)``, ``("edge", e)``,
``("agg", pod, a)``, ``("core", c)`` — plus ``("xbar", 0)`` for the
crossbar, so tests can validate every consecutive pair against the
networkx edge set.

All selection is pure arithmetic on the inputs (no RNG, no process state):
the same ``(src, dst, msg_id)`` yields the same path in every run, every
worker process, and every host — the property the campaign determinism
contract relies on.
"""

from __future__ import annotations

from repro.network.loggp import ROUTING_POLICIES
from repro.network.topology import FatTree

__all__ = ["ROUTING_POLICIES", "crossbar_path", "fattree_path", "hash_choice"]

_MASK64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: a strong, portable 64-bit integer mixer."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def hash_choice(nchoices: int, src: int, dst: int, msg_id: int,
                salt: int = 0) -> int:
    """Deterministic ECMP selector: hash ``(src, dst, msg_id)`` to a choice.

    Pure arithmetic — identical across runs, processes, and hosts (unlike
    Python's builtin ``hash``, which is salted per process).
    """
    if nchoices <= 1:
        return 0
    key = (src * 0x9E3779B97F4A7C15
           + dst * 0xC2B2AE3D27D4EB4F
           + msg_id * 0xD6E8FEB86659FD93
           + salt * 0xA5A5A5A5A5A5A5A5)
    return _mix64(key) % nchoices


def fattree_path(tree: FatTree, src: int, dst: int, msg_id: int,
                 routing: str = "ecmp") -> list[tuple]:
    """Switch-level path from host ``src`` to host ``dst``.

    Returns the node sequence ``[("host", src), ..., ("host", dst)]``
    (empty for loopback).  The switch count always matches
    :meth:`FatTree.switch_hops`; only the *choice* among equal-cost paths
    depends on ``routing``:

    * ``"ecmp"`` — hash of ``(src, dst, msg_id)`` picks the aggregation
      (same-pod) or core (cross-pod) switch per message;
    * ``"dmodk"`` — destination arithmetic picks it (``dst mod`` the
      choice count), so all traffic toward one host shares one up-path.
    """
    if routing not in ROUTING_POLICIES:
        raise ValueError(
            f"unknown routing policy {routing!r} (use {ROUTING_POLICIES})"
        )
    if src == dst:
        return []
    half_k = tree.radix // 2
    edge_s = tree.edge_switch_of(src)
    edge_d = tree.edge_switch_of(dst)
    if edge_s == edge_d:
        return [("host", src), ("edge", edge_s), ("host", dst)]
    pod_s = tree.pod_of(src)
    pod_d = tree.pod_of(dst)
    if pod_s == pod_d:
        if routing == "ecmp":
            agg = hash_choice(half_k, src, dst, msg_id)
        else:
            agg = dst % half_k
        return [
            ("host", src), ("edge", edge_s), ("agg", pod_s, agg),
            ("edge", edge_d), ("host", dst),
        ]
    # Cross-pod: the core switch determines the aggregation level in both
    # pods (core a*(k/2)+c attaches to agg index a of every pod — the same
    # wiring build_graph materializes).
    ncores = half_k * half_k
    if routing == "ecmp":
        core = hash_choice(ncores, src, dst, msg_id)
    else:
        core = dst % ncores
    agg = core // half_k
    return [
        ("host", src), ("edge", edge_s), ("agg", pod_s, agg), ("core", core),
        ("agg", pod_d, agg), ("edge", edge_d), ("host", dst),
    ]


def crossbar_path(src: int, dst: int) -> list[tuple]:
    """Path through the abstract crossbar for latency-only topologies.

    Two directional links — source egress into the crossbar, crossbar into
    destination ingress — so N-to-1 traffic still contends on the one
    ingress port even when the topology models no switch structure.
    """
    if src == dst:
        return []
    return [("host", src), ("xbar", 0), ("host", dst)]
