"""Congestion-aware packet fabric: routed links with per-port queues.

The LogGP :class:`~repro.network.fabric.Fabric` serializes packets at the
*source* wire and then teleports them across a fixed per-pair latency — a
contention-free pipe, faithful to the paper's full-bisection assumption but
blind to incast, shared-link interference, and routing collisions.  This
module models the network's interior:

* every packet follows an explicit routed path (:mod:`repro.network.routing`)
  — deterministic ECMP or d-mod-k over the fat tree, a crossbar with
  per-endpoint ingress/egress ports for latency-only topologies;
* each **directional link** on the path is a finite-bandwidth cut-through
  port: a packet's tail departs no earlier than it arrived and no earlier
  than one serialization time (``G × wire_bytes``) after the previous
  tail — the standard virtual-cut-through recurrence
  ``depart = max(arrival, prev_depart + tx)``.  A flow already paced to
  line rate by the source wire flows through untouched; merging flows
  (incast, ECMP collisions) serialize and queue;
* each link buffers at most ``NetworkParams.link_queue_depth`` waiting
  packets (departures still pending) — arrivals beyond that are
  **tail-dropped** with per-link accounting (drops, occupancy high-water
  mark, queueing delay).

Uncontended, the model reduces *exactly* to LogGP for any single-flow
workload — mixed message sizes included: the source wire already spaces
tails by at least their own serialization time, so ``prev_depart + tx``
never exceeds the arrival time and every hop adds only the same
wire/switch latency the topology charges.  The property tests pin this
equivalence down byte-for-byte against the base fabric.

Fast path
---------
Like the base fabric's :class:`~repro.network.fabric._TxChain`, the hop
walk exists twice: a generator reference path (``_hop_proc``) and a
callback chain.  The admission arithmetic (drop check, departure-time
computation, accounting) runs synchronously at hop entry in **both**
flavours — so FIFO order, drop decisions, and statistics cannot diverge —
and the departure event is created at the same push position: the
generator yields a pre-built ``Timeout`` where the chain schedules a
callback, both landing at identical ``(time, priority)`` heap keys, so
delivery interleavings match even on timestamp ties.  The
chain-vs-generator equivalence tests enforce this under randomized
contention.  ``fast_path=False`` / ``REPRO_FABRIC_FAST_PATH=0`` forces the
generator path, exactly as on the base fabric.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import Generator, Optional

from repro.des.engine import Environment, Timeout
from repro.des.trace import Timeline
from repro.network.fabric import Fabric
from repro.network.loggp import NetworkParams
from repro.network.packets import Message, Packet
from repro.network.routing import crossbar_path, fattree_path
from repro.network.topology import FatTree

__all__ = ["CongestionFabric", "Link"]


def _node_name(node: tuple) -> str:
    """Compact printable name for a routing-graph node tuple."""
    return node[0] + ".".join(str(part) for part in node[1:])


class Link:
    """One directional cut-through link port with a finite buffer.

    State is a virtual clock (``last_depart``) plus the deque of still
    pending departure times — the packets currently buffered.  Service
    order is arrival order (FIFO): the departure recurrence is monotone,
    so tails leave in the order they arrived.
    """

    __slots__ = ("name", "last_depart", "_departs", "packets", "drops",
                 "wait_ps", "max_queue", "busy_ps", "down", "tx_scale",
                 "fault_drops")

    def __init__(self, name: str):
        self.name = name
        self.last_depart = 0    # departure-time floor (virtual clock)
        self._departs: deque[int] = deque()  # pending departure times
        self.packets = 0        # packets carried
        self.drops = 0          # tail-dropped at entry (buffer full)
        self.wait_ps = 0        # total queueing delay experienced
        self.max_queue = 0      # high-water mark of buffered packets
        self.busy_ps = 0        # total serialization time carried
        # Fault-injection state (see repro.faults): refcount of active
        # outage windows and the product of active bandwidth-degradation
        # scales.  Both neutral by default — admit() behaves identically
        # to the pre-fault model until a plan flips them.
        self.down = 0           # >0: outage — every arrival is dropped
        self.tx_scale = 1       # serialization-time multiplier
        self.fault_drops = 0    # drops attributable to outage windows

    def backlog(self, now: int) -> int:
        """Packets still buffered (departure strictly in the future)."""
        departs = self._departs
        while departs and departs[0] <= now:
            departs.popleft()
        return len(departs)

    def admit(self, now: int, tx: int, depth: int) -> int:
        """Try to accept a packet whose tail arrived ``now``.

        Returns the queueing delay in ps (0 for a conforming flow), or -1
        when the buffer already holds ``depth`` packets (tail-drop).  All
        accounting happens here, synchronously — both walk flavours share
        this single decision point.
        """
        if self.down:
            self.drops += 1
            self.fault_drops += 1
            return -1
        backlog = self.backlog(now)
        if backlog >= depth:
            self.drops += 1
            return -1
        if self.tx_scale != 1:
            tx *= self.tx_scale
        depart = self.last_depart + tx
        if depart < now:
            depart = now
        wait = depart - now
        if wait:
            self.wait_ps += wait
            occupancy = backlog + 1  # the packets it waits behind, plus itself
            if occupancy > self.max_queue:
                self.max_queue = occupancy
        self.last_depart = depart
        self._departs.append(depart)
        self.packets += 1
        self.busy_ps += tx
        return wait

    def utilization(self, elapsed_ps: Optional[int] = None,
                    now: Optional[int] = None) -> float:
        elapsed = elapsed_ps if elapsed_ps is not None else now
        if not elapsed:
            return 0.0
        return self.busy_ps / elapsed

    def stats(self, elapsed_ps: Optional[int] = None) -> dict:
        """JSON-ready accounting snapshot for this link."""
        return {
            "packets": self.packets,
            "drops": self.drops,
            "max_queue": self.max_queue,
            "wait_ns": self.wait_ps / 1000.0,
            "busy_ns": self.busy_ps / 1000.0,
            "utilization": round(self.utilization(elapsed_ps), 4),
        }


class CongestionFabric(Fabric):
    """A fabric whose interior links can actually fill.

    Drop-in alternative to :class:`Fabric` (same attach/inject surface,
    same source-side LogGOPS injection pipeline); selected through
    ``Cluster(..., fabric="congestion")`` /
    ``ClusterSpec(fabric="congestion")``.  Knobs live on
    :class:`~repro.network.loggp.NetworkParams`: ``link_queue_depth``
    (packets buffered per port) and ``routing`` (``"ecmp"``/``"dmodk"``).
    """

    #: Observer probe slot (see :mod:`repro.obs`): an attached observer
    #: sets an *instance* attribute ``(link, now_ps, wait_ps, pkt) ->
    #: None`` called synchronously after every link admission decision
    #: (``wait_ps < 0`` means the packet was tail-dropped).  Admission
    #: runs at identical positions in both walk flavours, so the probe
    #: stream is flavour-identical; the class-level ``None`` keeps the
    #: default path to one identity test.
    _link_probe = None

    def __init__(
        self,
        env: Environment,
        topology,
        params: Optional[NetworkParams] = None,
        timeline: Optional[Timeline] = None,
        fast_path: Optional[bool] = None,
    ):
        super().__init__(env, topology, params, timeline=timeline,
                         fast_path=fast_path)
        #: Directional links, created lazily: (src_node, dst_node) → Link.
        self.links: dict[tuple, Link] = {}
        #: Packets tail-dropped at a full link buffer (sum of link drops).
        self.packets_dropped_links = 0
        self._G = self.params.loggp.G_ps_per_byte
        self._depth = self.params.link_queue_depth
        self._routing = self.params.routing
        self._fattree = isinstance(topology, FatTree)
        #: In-flight route cache: msg_id → route; dropped with the message's
        #: last packet (packets of one message always dispatch in order).
        self._routes: dict[int, tuple] = {}
        #: Active fault state per link-name pattern, folded into links at
        #: creation time (links are lazy — a flap can precede first use).
        self._link_faults: dict[str, list] = {}  # pattern → [down, tx_scale]
        #: Link-outage windows applied so far (one per LinkDown firing).
        self.fault_link_down_events = 0

    def reset(self) -> None:
        """Restore construction state (cluster reuse).

        Links are created lazily, so dropping them wholesale restores the
        just-built shape; the route cache only ever holds in-flight
        messages and must be empty by now anyway.
        """
        super().reset()
        self.links.clear()
        self.packets_dropped_links = 0
        self._routes.clear()
        self._link_faults.clear()
        self.fault_link_down_events = 0
        # Drop any instance-level observer probe back to the class default.
        self.__dict__.pop("_link_probe", None)

    # -- routing -----------------------------------------------------------
    def _link(self, u: tuple, v: tuple) -> Link:
        key = (u, v)
        link = self.links.get(key)
        if link is None:
            link = self.links[key] = Link(f"{_node_name(u)}->{_node_name(v)}")
            if self._link_faults:
                # Fold currently active fault windows into the new link:
                # lazy creation must not let a packet slip through an
                # outage just because it is the first to route this way.
                for pattern, (down, tx_scale) in self._link_faults.items():
                    if pattern in link.name:
                        link.down += down
                        link.tx_scale *= tx_scale
        return link

    # -- fault injection (repro.faults) ------------------------------------
    def fault_link_down(self, pattern: str, on: bool) -> int:
        """Enter (``on=True``) or leave an outage on links matching
        ``pattern`` (substring of the ``"src->dst"`` link name).  Windows
        refcount, so overlapping outages compose.  Returns the number of
        existing links affected (new links inherit the state lazily).
        """
        state = self._link_faults.setdefault(pattern, [0, 1])
        delta = 1 if on else -1
        state[0] += delta
        if on:
            self.fault_link_down_events += 1
        matched = 0
        for link in self.links.values():
            if pattern in link.name:
                link.down += delta
                matched += 1
        self._prune_fault(pattern, state)
        return matched

    def fault_link_degrade(self, pattern: str, tx_scale: int,
                           undo: int = 1) -> int:
        """Scale serialization time on matching links by ``tx_scale``
        (and divide out ``undo`` — the window-exit call passes its entry
        scale).  Scales compose multiplicatively across windows.
        """
        state = self._link_faults.setdefault(pattern, [0, 1])
        state[1] = state[1] * tx_scale // undo
        matched = 0
        for link in self.links.values():
            if pattern in link.name:
                link.tx_scale = link.tx_scale * tx_scale // undo
                matched += 1
        self._prune_fault(pattern, state)
        return matched

    def _prune_fault(self, pattern: str, state: list) -> None:
        if state[0] == 0 and state[1] == 1:
            del self._link_faults[pattern]

    def links_down(self) -> int:
        """Links currently inside an outage window."""
        return sum(1 for link in self.links.values() if link.down)

    def total_fault_link_drops(self) -> int:
        """Packets dropped by link-outage windows (subset of link drops)."""
        return sum(link.fault_drops for link in self.links.values())

    def _build_route(self, msg: Message) -> tuple:
        """The (link, head_delay_ps) sequence for one message.

        Per-hop head delays sum to exactly ``topology.latency_ps(src, dst)``
        — each wire costs ``wire_delay_ps`` and entering a switch costs
        ``switch_delay_ps`` on the fat tree; latency-only topologies charge
        their full pair latency on the egress hop.
        """
        src, dst = msg.source, msg.target
        if self._fattree:
            nodes = fattree_path(self.topology, src, dst, msg.msg_id,
                                 self._routing)
            wire = self.params.wire_delay_ps
            switch = self.params.switch_delay_ps
            return tuple(
                (self._link(nodes[i], nodes[i + 1]),
                 wire + (switch if nodes[i + 1][0] != "host" else 0))
                for i in range(len(nodes) - 1)
            )
        nodes = crossbar_path(src, dst)
        if not nodes:
            return ()
        return (
            (self._link(nodes[0], nodes[1]), self.topology.latency_ps(src, dst)),
            (self._link(nodes[1], nodes[2]), 0),
        )

    def _route_for(self, pkt: Packet) -> tuple:
        msg = pkt.message
        route = self._routes.get(msg.msg_id)
        if route is None:
            route = self._routes[msg.msg_id] = self._build_route(msg)
        if pkt.payload_offset + pkt.payload_len >= msg.length:
            del self._routes[msg.msg_id]  # last packet: route no longer needed
        return route

    def route_nodes(self, src: int, dst: int, msg_id: int) -> list[tuple]:
        """The node path a message with ``msg_id`` takes (introspection)."""
        if self._fattree:
            return fattree_path(self.topology, src, dst, msg_id, self._routing)
        return crossbar_path(src, dst)

    # -- the per-link walk -------------------------------------------------
    def _dispatch(self, pkt: Packet, latency: int) -> None:
        route = self._route_for(pkt)
        if not route:  # loopback: same zero-latency delivery as LogGP
            self.env.schedule_fn(latency, partial(self._deliver, pkt))
            return
        self._enter(pkt, route, 0)

    def _enter(self, pkt: Packet, route: tuple, hop: int) -> None:
        """Packet tail reaches hop ``hop``: admit (or tail-drop), then wait
        out the queueing delay and forward the head.

        Admission runs synchronously here for both walk flavours, so drop
        decisions and FIFO order are identical; only the *waiting* differs
        in mechanism — a pre-built Timeout yielded by the reference
        generator, or a scheduled callback — at the same heap position.
        """
        link, _delay = route[hop]
        env = self.env
        wait = link.admit(env._now, pkt.wire_bytes * self._G, self._depth)
        if self._link_probe is not None:
            self._link_probe(link, env._now, wait, pkt)
        if wait < 0:
            self.packets_dropped_links += 1
            return
        if self.fast_path:
            env.schedule_fn(wait, partial(self._departed, pkt, route, hop))
        else:
            gate = Timeout(env, wait)
            env.process(self._hop_proc(gate, pkt, route, hop),
                        name=f"hop[{link.name}]")

    def _departed(self, pkt: Packet, route: tuple, hop: int) -> None:
        """Tail left hop ``hop``: propagate the head onward."""
        link, delay = route[hop]
        nxt = hop + 1
        if nxt == len(route):
            self.env.schedule_fn(delay, partial(self._deliver, pkt))
        else:
            self.env.schedule_fn(delay, partial(self._enter, pkt, route, nxt))

    def _hop_proc(self, gate: Timeout, pkt: Packet, route: tuple,
                  hop: int) -> Generator:
        """Generator reference path for one admitted (packet, hop)."""
        yield gate
        self._departed(pkt, route, hop)

    # -- introspection -----------------------------------------------------
    def link_stats(self, elapsed_ps: Optional[int] = None) -> dict[str, dict]:
        """Per-link accounting, keyed by ``"srcnode->dstnode"`` name."""
        elapsed = self.env.now if elapsed_ps is None else elapsed_ps
        return {
            link.name: link.stats(elapsed)
            for _key, link in sorted(self.links.items())
        }

    def total_link_drops(self) -> int:
        return self.packets_dropped_links

    def max_link_queue(self) -> int:
        """Deepest buffer occupancy observed on any link (packets)."""
        return max((l.max_queue for l in self.links.values()), default=0)

    def max_link_utilization(self, elapsed_ps: Optional[int] = None) -> float:
        elapsed = self.env.now if elapsed_ps is None else elapsed_ps
        return max((l.utilization(elapsed) for l in self.links.values()),
                   default=0.0)
