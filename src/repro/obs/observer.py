"""The observer: arms probe slots on one session and collects streams.

Attachment follows the fault-injector pattern (:mod:`repro.faults`):
every probe is a class-level ``None`` slot on the observed component,
set here as an *instance* attribute — detaching pops the attribute and
the component falls back to the neutral class default.  The observer is
a pure reader: it schedules no kernel events and records no spans, so
an observed run's ``Timeline.canonical_bytes()`` is byte-identical to
an unobserved one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.occupancy import OccupancyAccumulator
from repro.sim.metrics import WindowedMetrics

__all__ = ["ObsConfig", "Observer"]


@dataclass(frozen=True)
class ObsConfig:
    """What an :class:`Observer` collects.

    The defaults collect everything the Perfetto exporter and the report
    builder consume; ``window_ns`` additionally bins busy time into a
    :class:`~repro.sim.metrics.WindowedMetrics` occupancy series
    (time-resolved utilisation, exact integer split across windows).
    """

    #: Bin busy spans into fixed-width windows of this many ns (None:
    #: no windowed occupancy series).
    window_ns: Optional[float] = None
    #: Collect per-link queue-depth counter samples (congestion fabric).
    link_counters: bool = True
    #: Collect HPU input-queue depth counter samples (sPIN NICs).
    hpu_counters: bool = True
    #: Collect message-completion instant marks.
    message_marks: bool = True
    #: Rows in the report's hottest-handlers / hottest-links tables.
    top_k: int = 5


class Observer:
    """Collects observability streams from one running session.

    Create via :meth:`repro.sim.session.Session.attach_observer` (or
    ambiently through :class:`~repro.obs.capture.ObsCapture`).  Spans
    already on the timeline at attach time are replayed into the
    accumulator, so occupancy totals always equal the timeline's —
    attaching mid-run loses nothing.
    """

    def __init__(self, session, config: Optional[ObsConfig] = None):
        if config is None:
            config = ObsConfig()
        timeline = session.timeline
        if not timeline.enabled:
            raise ValueError(
                "observer requires a traced session — build it with "
                "ClusterSpec(trace=True) / Session.pair(..., trace=True)"
            )
        self.session = session
        self.config = config
        self.timeline = timeline
        self.occupancy = OccupancyAccumulator()
        self.windowed: Optional[WindowedMetrics] = (
            WindowedMetrics(config.window_ns)
            if config.window_ns is not None else None
        )
        #: Link admission samples, probe order:
        #: (link_name, t_ps, backlog_packets, wait_ps) — ``wait_ps < 0``
        #: is a tail-drop.
        self.link_samples: list[tuple[str, int, int, int]] = []
        #: HPU input-queue samples, probe order: (rank, t_ps, waiting).
        self.hpu_queue_samples: list[tuple[int, int, int]] = []
        #: Message completions, probe order: (rank, t_ps, msg_id).
        self.message_marks: list[tuple[int, int, int]] = []
        self._attached = False
        self._arm()
        for s in timeline.spans:
            self._on_span(s.rank, s.lane, s.start, s.end, s.label)

    # -- probe wiring ------------------------------------------------------
    def _arm(self) -> None:
        self.timeline._probe = self._on_span
        cluster = self.session.cluster
        fabric = cluster.fabric
        if self.config.link_counters and hasattr(fabric, "links"):
            fabric._link_probe = self._on_link
        for machine in cluster.machines:
            nic = machine.nic
            if self.config.message_marks:
                nic._obs_msg_probe = self._on_message
            if self.config.hpu_counters:
                nic._obs_hpu_probe = self._on_hpu_queue
        self._attached = True

    def detach(self) -> None:
        """Pop every armed probe back to its neutral class default."""
        if not self._attached:
            return
        self._attached = False
        self.timeline.__dict__.pop("_probe", None)
        cluster = self.session.cluster
        cluster.fabric.__dict__.pop("_link_probe", None)
        for machine in cluster.machines:
            machine.nic.__dict__.pop("_obs_msg_probe", None)
            machine.nic.__dict__.pop("_obs_hpu_probe", None)

    # -- probe callbacks (pure readers) ------------------------------------
    def _on_span(self, rank: int, lane: str, start: int, end: int,
                 label: str) -> None:
        self.occupancy.observe(rank, lane, start, end, label)
        if self.windowed is not None:
            self.windowed.observe_busy(f"node{rank}/{lane}", start, end)

    def _on_link(self, link, now: int, wait: int, pkt) -> None:
        self.link_samples.append((link.name, now, link.backlog(now), wait))

    def _on_message(self, rank: int, now: int, msg) -> None:
        self.message_marks.append((rank, now, msg.msg_id))

    def _on_hpu_queue(self, rank: int, now: int, waiting: int) -> None:
        self.hpu_queue_samples.append((rank, now, waiting))

    # -- derived views -----------------------------------------------------
    @property
    def elapsed_ps(self) -> int:
        return self.session.env.now

    def occ_notes(self, elapsed_ps: Optional[int] = None) -> dict:
        """The ``occ_*`` scalars for :meth:`Metrics.observe_occupancy`."""
        elapsed = self.elapsed_ps if elapsed_ps is None else elapsed_ps
        return self.occupancy.category_busy_fracs(elapsed)

    # -- exports -----------------------------------------------------------
    def export_trace(self, path=None) -> str:
        """Perfetto trace JSON for this session; written to ``path`` if
        given, returned either way."""
        from repro.obs.perfetto import trace_events, trace_json
        text = trace_json(trace_events([self]))
        if path is not None:
            from pathlib import Path
            Path(path).write_text(text + "\n")
        return text

    def build_report(self, **kwargs) -> dict:
        """The structured telemetry report for this session."""
        from repro.obs.report import build_report
        return build_report(self, **kwargs)
