"""Opt-in observability: Perfetto export, occupancy probes, telemetry.

The paper's central claims are about *where time goes inside the NIC* —
HPU occupancy, handler latency, DMA/wire overlap (§6) — and end-of-run
scalars cannot show a single run's interior.  This package turns the
existing :class:`~repro.des.trace.Timeline` span stream plus a handful of
probe points (link admissions, HPU queue depth, message completions) into
three artefacts:

* a **Perfetto/Chrome trace** (:mod:`repro.obs.perfetto`) — open the
  exported JSON in https://ui.perfetto.dev and see handler executions,
  packet walks, and queue buildup as nested spans and counter tracks;
* **resource-occupancy accounting** (:mod:`repro.obs.occupancy`) —
  per-HPU/DMA/CPU/link busy fractions and span-duration histograms,
  computed incrementally (O(1) per span, no sample lists) and foldable
  into :meth:`repro.sim.metrics.Metrics.summary` as ``occ_*`` keys;
* a **structured run report** (:mod:`repro.obs.report`) with a stable
  schema — counters, occupancy table, top-k hottest handlers and links,
  kernel-event stats — pretty-printed by ``python -m repro.obs view``.

Zero-overhead invariant
-----------------------
Attachment follows the fault-injector pattern: every probe is a
class-level ``None`` slot armed as an *instance* attribute, so a run
without an observer pays exactly one ``is not None`` test per probe
site and schedules zero extra kernel events.  The observer itself is a
pure reader — it never records spans or schedules events — so an
attached run's ``Timeline.canonical_bytes()`` is byte-identical to a
detached one, and the exporter is deterministic: identical seed ⇒
byte-identical trace JSON across both event cores and both fast-path
flavours.

Quickstart::

    from repro.sim import Session
    with Session.pair("int", trace=True) as sess:
        obs = sess.attach_observer()
        ...  # drive the workload
        obs.export_trace("run.perfetto.json")
        report = obs.build_report()

or ambiently, from the campaign CLI::

    python -m repro.campaign run incast_load --tiny \\
        --trace-out run.perfetto.json --report report.json
    python -m repro.obs view report.json
"""

from repro.obs.capture import ObsCapture
from repro.obs.observer import ObsConfig, Observer
from repro.obs.occupancy import OccupancyAccumulator
from repro.obs.perfetto import trace_events, trace_json
from repro.obs.report import REPORT_SCHEMA, build_report, format_report

__all__ = [
    "ObsCapture",
    "ObsConfig",
    "Observer",
    "OccupancyAccumulator",
    "REPORT_SCHEMA",
    "build_report",
    "format_report",
    "trace_events",
    "trace_json",
]
