"""Perfetto / Chrome ``trace_event`` JSON export.

Renders an observer's span stream and probe samples in the Trace Event
Format (the JSON flavour both chrome://tracing and https://ui.perfetto.dev
open): every simulated node becomes a *process* whose *threads* are the
timeline lanes (host CPU, match unit, TX wire, DMA engine, each HPU),
handler executions and packet serialisations are complete-duration
``"X"`` events, link queue depth and HPU input-queue depth are counter
(``"C"``) tracks, and message completions are instant marks.

Determinism: events are built from integer-picosecond streams that are
flavour-identical (both event cores, both fast paths — the golden-trace
and probe-order contracts), sorted on integer keys before the float
conversion, and serialised with fixed separators and sorted keys — so an
identical seed produces byte-identical trace JSON everywhere.

Timestamps are microseconds (the trace_event unit): ``ts = ps / 1e6``.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.des.trace import span_category

__all__ = ["trace_events", "trace_json"]

#: Well-known lane → thread-id mapping; HPU ``i`` maps to ``10 + i`` and
#: unknown lanes are assigned from 100 upward in sorted-name order.
_LANE_TIDS = {"CPU": 0, "NIC": 1, "NIC-tx": 2, "DMA": 3}
_HPU_TID_BASE = 10
_OTHER_TID_BASE = 100

#: pid block reserved per observed session; the fabric's pseudo-process
#: takes the block's last pid.
PID_STRIDE = 1000


def _lane_tid(lane: str, others: dict[str, int]) -> int:
    tid = _LANE_TIDS.get(lane)
    if tid is not None:
        return tid
    if lane.startswith("HPU"):
        try:
            return _HPU_TID_BASE + int(lane[3:])
        except ValueError:
            pass
    tid = others.get(lane)
    if tid is None:
        tid = others[lane] = _OTHER_TID_BASE + len(others)
    return tid


def trace_events(observers: Sequence, pid_stride: int = PID_STRIDE) -> list[dict]:
    """Build the ``traceEvents`` list for one or more observers.

    Each observer (one session) gets a ``pid_stride``-wide pid block:
    node ``r`` of session ``i`` is pid ``i * pid_stride + r`` and the
    session's fabric tracks take the block's last pid.  Event order is
    deterministic: metadata first, then spans sorted per track by start
    time (recording order breaks ties), then counters, then instants.
    """
    meta: list[tuple] = []     # (pid, tid_or_-1, event)
    spans: list[tuple] = []    # (pid, tid, start_ps, idx, event)
    counters: list[tuple] = [] # (pid, name, t_ps, idx, event)
    instants: list[tuple] = [] # (pid, t_ps, idx, event)
    many = len(observers) > 1

    for si, obs in enumerate(observers):
        base = si * pid_stride
        fabric_pid = base + pid_stride - 1
        if len(obs.session) >= pid_stride - 1:
            raise ValueError(
                f"session has {len(obs.session)} nodes; raise pid_stride "
                f"(currently {pid_stride})")
        prefix = f"s{si} " if many else ""
        seen_pids: dict[int, str] = {}
        seen_tids: dict[tuple[int, int], str] = {}
        others_by_rank: dict[int, dict[str, int]] = {}

        for idx, s in enumerate(obs.timeline.spans):
            pid = base + s.rank
            others = others_by_rank.setdefault(s.rank, {})
            tid = _lane_tid(s.lane, others)
            seen_pids.setdefault(pid, f"{prefix}node {s.rank}")
            seen_tids.setdefault((pid, tid), s.lane)
            spans.append((pid, tid, s.start, idx, {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": s.start / 1e6,
                "dur": (s.end - s.start) / 1e6,
                "name": s.label or s.lane,
                "cat": span_category(s.lane),
            }))

        for idx, (link, t, depth, wait) in enumerate(obs.link_samples):
            seen_pids.setdefault(fabric_pid, f"{prefix}fabric")
            name = f"queue {link}"
            counters.append((fabric_pid, name, t, idx, {
                "ph": "C",
                "pid": fabric_pid,
                "tid": 0,
                "ts": t / 1e6,
                "name": name,
                "args": {"packets": depth,
                         "dropped": 1 if wait < 0 else 0},
            }))

        for idx, (rank, t, waiting) in enumerate(obs.hpu_queue_samples):
            pid = base + rank
            seen_pids.setdefault(pid, f"{prefix}node {rank}")
            counters.append((pid, "hpu-queue", t, idx, {
                "ph": "C",
                "pid": pid,
                "tid": 0,
                "ts": t / 1e6,
                "name": "hpu-queue",
                "args": {"waiting": waiting},
            }))

        for idx, (rank, t, msg_id) in enumerate(obs.message_marks):
            pid = base + rank
            tid = _LANE_TIDS["NIC"]
            seen_pids.setdefault(pid, f"{prefix}node {rank}")
            seen_tids.setdefault((pid, tid), "NIC")
            instants.append((pid, t, idx, {
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": tid,
                "ts": t / 1e6,
                "name": f"msg m{msg_id}",
            }))

        for pid in sorted(seen_pids):
            meta.append((pid, -1, {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": seen_pids[pid]},
            }))
        for pid, tid in sorted(seen_tids):
            meta.append((pid, tid, {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": seen_tids[(pid, tid)]},
            }))

    meta.sort(key=lambda entry: entry[:2])
    spans.sort(key=lambda entry: entry[:4])
    counters.sort(key=lambda entry: entry[:4])
    instants.sort(key=lambda entry: entry[:3])
    return ([event for *_key, event in meta]
            + [event for *_key, event in spans]
            + [event for *_key, event in counters]
            + [event for *_key, event in instants])


def trace_json(events: list[dict]) -> str:
    """Serialise events as a trace_event JSON object, byte-stable."""
    return json.dumps(
        {"displayTimeUnit": "ns", "traceEvents": events},
        sort_keys=True, separators=(",", ":"),
    )
