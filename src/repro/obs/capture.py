"""Ambient observation: observe every session built inside a block.

Scenario runners build their own sessions internally, so caller code
never holds a :class:`~repro.sim.session.Session` to call
``attach_observer`` on.  :class:`ObsCapture` closes that gap with the
same ambient-hook pattern as :class:`~repro.perf.meter.KernelMeter`:
while the context is active, every ``Session`` constructed anywhere in
the process is forced to trace and gets an observer attached, collected
on the capture for export afterwards::

    from repro.obs import ObsCapture
    from repro.sim.scenarios import get_scenario

    with ObsCapture() as cap:
        result = get_scenario("incast_load").run({"fanin": 2, "count": 6})
    cap.export_trace("run.perfetto.json")
    report = cap.build_report(scenario="incast_load")

Forcing ``trace=True`` disqualifies the spec from the session pool, so
captured runs never collide with pooled, untraced ones; the simulated
behaviour is still byte-identical (the golden-trace contract pins the
span stream regardless of whether anyone records it).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.obs.observer import ObsConfig, Observer

__all__ = ["ObsCapture"]


class ObsCapture:
    """Context manager installing the session-construction hook."""

    def __init__(self, config: Optional[ObsConfig] = None):
        self.config = config or ObsConfig()
        #: One observer per session built under the context, build order.
        self.observers: list[Observer] = []
        self._active = False

    # -- context protocol --------------------------------------------------
    def __enter__(self) -> "ObsCapture":
        from repro.sim import session as session_mod
        if session_mod._OBS_HOOK is not None:
            raise RuntimeError("an ObsCapture is already active")
        session_mod._OBS_HOOK = self
        self._active = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        from repro.sim import session as session_mod
        if session_mod._OBS_HOOK is self:
            session_mod._OBS_HOOK = None
        self._active = False

    # -- Session construction hook (see repro.sim.session._OBS_HOOK) -------
    def prepare(self, spec):
        """Pre-build: force the spec to trace (observers need spans)."""
        if getattr(spec, "trace", False):
            return spec
        return replace(spec, trace=True)

    def attach(self, session) -> None:
        """Post-build: arm an observer on the new session and keep it."""
        self.observers.append(session.attach_observer(self.config))

    # -- exports -----------------------------------------------------------
    def export_trace(self, path=None) -> str:
        """Perfetto trace JSON over every captured session."""
        if not self.observers:
            raise ValueError("no sessions were built under this capture")
        from repro.obs.perfetto import trace_events, trace_json
        text = trace_json(trace_events(self.observers))
        if path is not None:
            from pathlib import Path
            Path(path).write_text(text + "\n")
        return text

    def build_report(self, **kwargs) -> dict:
        """Telemetry report over every captured session."""
        if not self.observers:
            raise ValueError("no sessions were built under this capture")
        from repro.obs.report import build_report
        return build_report(self.observers, **kwargs)
