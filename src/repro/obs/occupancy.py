"""Incremental resource-occupancy accounting.

Fed one span at a time by an :class:`~repro.obs.observer.Observer`, the
accumulator maintains per-(rank, lane) busy totals, span counts, and
power-of-two span-duration histograms — all O(1) per span, no sample
lists — so a million-span trace costs the same per-resource memory as a
ten-span one.  Busy totals are the *same integers* the timeline tallies
(every recorded span flows through both), so a report's busy fraction
matches :meth:`repro.des.trace.Timeline.busy_time` divided by the
elapsed time exactly.
"""

from __future__ import annotations

from typing import Optional

from repro.des.trace import span_category

__all__ = ["OccupancyAccumulator"]

#: Category keys always present in ``occ_*`` notes, in report order.
CATEGORIES = ("hpu", "cpu", "dma", "tx", "rx")


class _ResourceOcc:
    """Accounting for one (rank, lane) resource."""

    __slots__ = ("busy_ps", "spans", "hist")

    def __init__(self) -> None:
        self.busy_ps = 0
        self.spans = 0
        #: Span-duration histogram: bucket ``b`` counts durations with
        #: ``duration.bit_length() == b`` (i.e. in ``[2**(b-1), 2**b)``
        #: picoseconds; bucket 0 is zero-duration spans).
        self.hist: dict[int, int] = {}

    def add(self, duration_ps: int) -> None:
        self.busy_ps += duration_ps
        self.spans += 1
        bucket = duration_ps.bit_length()
        self.hist[bucket] = self.hist.get(bucket, 0) + 1


class OccupancyAccumulator:
    """Per-resource busy accounting over a span stream."""

    def __init__(self) -> None:
        #: (rank, lane) → accounting.
        self._res: dict[tuple[int, str], _ResourceOcc] = {}
        #: (label, rank) → [busy_ps, runs] for HPU-category spans — the
        #: raw material for the report's top-k hottest handlers.
        self._handlers: dict[tuple[str, int], list[int]] = {}

    # -- observation -------------------------------------------------------
    def observe(self, rank: int, lane: str, start: int, end: int,
                label: str = "") -> None:
        key = (rank, lane)
        res = self._res.get(key)
        if res is None:
            res = self._res[key] = _ResourceOcc()
        duration = end - start
        res.add(duration)
        if lane.startswith("HPU"):
            agg = self._handlers.get((label, rank))
            if agg is None:
                self._handlers[(label, rank)] = [duration, 1]
            else:
                agg[0] += duration
                agg[1] += 1

    # -- queries -----------------------------------------------------------
    def resources(self) -> list[tuple[int, str]]:
        """Observed (rank, lane) pairs, sorted."""
        return sorted(self._res)

    def busy_ps(self, rank: int, lane: str) -> int:
        res = self._res.get((rank, lane))
        return res.busy_ps if res is not None else 0

    def span_count(self, rank: int, lane: str) -> int:
        res = self._res.get((rank, lane))
        return res.spans if res is not None else 0

    def busy_frac(self, rank: int, lane: str, elapsed_ps: int) -> float:
        if elapsed_ps <= 0:
            return 0.0
        return self.busy_ps(rank, lane) / elapsed_ps

    def histogram(self, rank: int, lane: str) -> dict[int, int]:
        """Span-duration histogram (log2-ps bucket → count)."""
        res = self._res.get((rank, lane))
        return dict(res.hist) if res is not None else {}

    # -- roll-ups ----------------------------------------------------------
    def category_busy_fracs(self, elapsed_ps: int) -> dict[str, float]:
        """The ``occ_*`` summary notes: per-category busy fractions.

        ``occ_<cat>_busy_frac`` is the mean busy fraction over the
        category's *observed* lanes (an HPU lane only materialises once a
        handler ran on it); ``occ_<cat>_max_busy_frac`` is the busiest
        single lane.  Every category key is always present — zero when
        the run recorded no such span — so summary schemas keep one
        shape across workloads.
        """
        totals: dict[str, list[int]] = {cat: [] for cat in CATEGORIES}
        for (_rank, lane), res in self._res.items():
            cat = span_category(lane)
            if cat in totals:
                totals[cat].append(res.busy_ps)
        out: dict[str, float] = {}
        for cat in CATEGORIES:
            busy = totals[cat]
            if busy and elapsed_ps > 0:
                out[f"occ_{cat}_busy_frac"] = (
                    sum(busy) / (elapsed_ps * len(busy)))
                out[f"occ_{cat}_max_busy_frac"] = max(busy) / elapsed_ps
            else:
                out[f"occ_{cat}_busy_frac"] = 0.0
                out[f"occ_{cat}_max_busy_frac"] = 0.0
        return out

    def table(self, elapsed_ps: int,
              prefix: str = "") -> dict[str, dict]:
        """The report's occupancy table: one row per observed resource.

        Keys are ``"<prefix>node<rank>/<lane>"``; histogram buckets are
        stringified for JSON round-tripping.
        """
        out = {}
        for (rank, lane) in sorted(self._res):
            res = self._res[(rank, lane)]
            out[f"{prefix}node{rank}/{lane}"] = {
                "category": span_category(lane),
                "busy_ns": res.busy_ps / 1000.0,
                "busy_frac": (res.busy_ps / elapsed_ps
                              if elapsed_ps > 0 else 0.0),
                "spans": res.spans,
                "hist_log2_ps": {str(b): res.hist[b]
                                 for b in sorted(res.hist)},
            }
        return out

    def top_handlers(self, k: int = 5, rank: Optional[int] = None,
                     prefix: str = "") -> list[dict]:
        """The ``k`` hottest handler labels by HPU busy time."""
        rows = [
            {"label": label, "rank": r, "busy_ns": busy / 1000.0,
             "runs": runs}
            for (label, r), (busy, runs) in self._handlers.items()
            if rank is None or r == rank
        ]
        rows.sort(key=lambda row: (-row["busy_ns"], row["label"],
                                   row["rank"]))
        if prefix:
            for row in rows:
                row["label"] = f"{prefix}{row['label']}"
        return rows[:k]
