"""CLI for inspecting observability artefacts.

Usage::

    python -m repro.obs view report.json            # pretty-print a report
    python -m repro.obs view report.json --json     # re-emit normalised JSON
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.report import format_report, load_report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect repro observability artefacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    view = sub.add_parser("view", help="pretty-print a run-telemetry report")
    view.add_argument("report", help="path to a report JSON file")
    view.add_argument("--json", action="store_true",
                      help="emit normalised JSON instead of text")
    args = parser.parse_args(argv)

    try:
        doc = load_report(args.report)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.json:
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            print(format_report(doc))
    except BrokenPipeError:  # |head closed the pipe; not an error
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
