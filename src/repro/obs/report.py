"""Structured run-telemetry reports.

One JSON document per run with a stable, versioned schema: run counters,
the per-resource occupancy table, the ``occ_*`` roll-up, the top-k
hottest handlers and links, kernel-meter stats, and (if the observer
binned them) per-window occupancy series.  Built from pure-reader
observer state plus component ``stats()`` snapshots, so generating a
report perturbs nothing.

``python -m repro.obs view report.json`` pretty-prints one.
"""

from __future__ import annotations

import json
from typing import Optional, Sequence

from repro.des.trace import span_category
from repro.obs.occupancy import CATEGORIES

__all__ = ["REPORT_SCHEMA", "build_report", "format_report"]

#: Bump the trailing version on any breaking change to the report shape.
REPORT_SCHEMA = "repro.obs/report/v1"

_COUNTER_KEYS = (
    "messages_sent", "messages_received", "handlers_run",
    "flow_control_trips", "packets_delivered", "packets_dropped",
    "link_drops", "dma_bytes_read", "dma_bytes_written",
)


def _session_counters(session, elapsed_ps: int) -> tuple[dict, float]:
    counters = dict.fromkeys(_COUNTER_KEYS, 0)
    cpu_busy_ns = 0.0
    for machine in session.cluster.machines:
        nic = machine.nic
        counters["messages_sent"] += nic.messages_sent
        counters["messages_received"] += nic.messages_received
        counters["flow_control_trips"] += getattr(nic, "flow_control_trips", 0)
        hpus = getattr(nic, "_hpus", None)
        if hpus is not None:
            counters["handlers_run"] += hpus.handlers_run
        dma = machine.dma.stats()
        counters["dma_bytes_read"] += dma["bytes_read"]
        counters["dma_bytes_written"] += dma["bytes_written"]
        cpu_busy_ns += machine.cpu.stats(elapsed_ps)["busy_ns"]
    fabric = session.cluster.fabric
    counters["packets_delivered"] += fabric.packets_delivered
    counters["packets_dropped"] += fabric.packets_dropped
    counters["link_drops"] += getattr(fabric, "packets_dropped_links", 0)
    return counters, cpu_busy_ns


def _link_rows(session, elapsed_ps: int, prefix: str) -> list[dict]:
    fabric = session.cluster.fabric
    if hasattr(fabric, "link_stats"):
        stats = fabric.link_stats(elapsed_ps)
    else:
        stats = fabric.wire_stats(elapsed_ps)
    return [{"link": f"{prefix}{name}", **row} for name, row in stats.items()]


def _merged_occ_summary(observers, elapseds) -> dict[str, float]:
    # Single session: exactly the accumulator's own roll-up (bit-identical
    # to Timeline-derived busy fractions).  Several sessions: mean/max of
    # per-lane fractions across all of them.
    if len(observers) == 1:
        return observers[0].occupancy.category_busy_fracs(elapseds[0])
    fracs: dict[str, list[float]] = {cat: [] for cat in CATEGORIES}
    for obs, elapsed in zip(observers, elapseds):
        occ = obs.occupancy
        for rank, lane in occ.resources():
            cat = span_category(lane)
            if cat in fracs:
                fracs[cat].append(occ.busy_frac(rank, lane, elapsed))
    out: dict[str, float] = {}
    for cat in CATEGORIES:
        values = fracs[cat]
        out[f"occ_{cat}_busy_frac"] = (
            sum(values) / len(values) if values else 0.0)
        out[f"occ_{cat}_max_busy_frac"] = max(values, default=0.0)
    return out


def build_report(
    observers,
    *,
    meter=None,
    scenario: Optional[str] = None,
    params: Optional[dict] = None,
    seed: Optional[int] = None,
    elapsed_ps: Optional[int] = None,
) -> dict:
    """Assemble the telemetry document for one or more observed sessions.

    ``observers`` is a single :class:`~repro.obs.observer.Observer` or a
    sequence of them (one per session — e.g. an :class:`ObsCapture` over
    a multi-session scenario).  With several, resource and link keys get
    an ``s<i>/`` prefix and counters are summed.  ``meter`` is an
    optional :class:`~repro.perf.meter.KernelMeter` whose stats land
    under ``"kernel"``.
    """
    if not isinstance(observers, Sequence):
        observers = [observers]
    if not observers:
        raise ValueError("build_report needs at least one observer")
    many = len(observers) > 1
    elapseds = [obs.elapsed_ps if elapsed_ps is None else elapsed_ps
                for obs in observers]
    top_k = observers[0].config.top_k

    counters = dict.fromkeys(_COUNTER_KEYS, 0)
    cpu_busy_ns = 0.0
    occupancy: dict[str, dict] = {}
    handlers: list[dict] = []
    links: list[dict] = []
    windows: dict[str, dict] = {}
    probe_samples = {"spans": 0, "link": 0, "hpu_queue": 0, "messages": 0}
    for si, (obs, elapsed) in enumerate(zip(observers, elapseds)):
        prefix = f"s{si}/" if many else ""
        session_counters, busy_ns = _session_counters(obs.session, elapsed)
        for key, value in session_counters.items():
            counters[key] += value
        cpu_busy_ns += busy_ns
        occupancy.update(obs.occupancy.table(elapsed, prefix=prefix))
        handlers.extend(obs.occupancy.top_handlers(top_k, prefix=prefix))
        links.extend(_link_rows(obs.session, elapsed, prefix))
        probe_samples["spans"] += len(obs.timeline.spans)
        probe_samples["link"] += len(obs.link_samples)
        probe_samples["hpu_queue"] += len(obs.hpu_queue_samples)
        probe_samples["messages"] += len(obs.message_marks)
        if obs.windowed is not None:
            for resource in obs.windowed.occupancy_resources():
                windows[f"{prefix}{resource}"] = {
                    "window_ns": obs.windowed.window_ps / 1000.0,
                    "busy_frac": obs.windowed.occupancy_series(resource),
                }

    handlers.sort(key=lambda row: (-row["busy_ns"], row["label"], row["rank"]))
    links.sort(key=lambda row: (-row["busy_ns"], row["link"]))
    counters["host_cpu_busy_ns"] = cpu_busy_ns
    return {
        "schema": REPORT_SCHEMA,
        "scenario": scenario,
        "params": params,
        "seed": seed,
        "sessions": len(observers),
        "elapsed_ns": max(elapseds) / 1000.0,
        "counters": counters,
        "occ_summary": _merged_occ_summary(observers, elapseds),
        "occupancy": occupancy,
        "top_handlers": handlers[:top_k],
        "top_links": links[:top_k],
        "probe_samples": probe_samples,
        "kernel": meter.stats() if meter is not None else None,
        "windows": windows or None,
    }


def _fmt_frac(x: float) -> str:
    return f"{100.0 * x:6.2f}%"


def format_report(doc: dict) -> str:
    """Human-readable rendering of a report document (``view`` command)."""
    lines = []
    header = doc.get("scenario") or "run"
    if doc.get("seed") is not None:
        header += f" seed={doc['seed']}"
    lines.append(f"{header}  [{doc.get('schema', '?')}]")
    lines.append(f"  simulated time: {doc.get('elapsed_ns', 0.0):.1f} ns"
                 f"  sessions: {doc.get('sessions', 1)}")

    counters = doc.get("counters", {})
    if counters:
        lines.append("counters:")
        for key in sorted(counters):
            lines.append(f"  {key:<22} {counters[key]}")

    occ = doc.get("occ_summary", {})
    if occ:
        lines.append("occupancy (mean / max busy fraction):")
        for cat in CATEGORIES:
            mean = occ.get(f"occ_{cat}_busy_frac", 0.0)
            peak = occ.get(f"occ_{cat}_max_busy_frac", 0.0)
            lines.append(f"  {cat:<5} {_fmt_frac(mean)} / {_fmt_frac(peak)}")

    table = doc.get("occupancy", {})
    if table:
        busiest = sorted(table.items(),
                         key=lambda kv: (-kv[1]["busy_ns"], kv[0]))[:10]
        lines.append("busiest resources:")
        for name, row in busiest:
            lines.append(
                f"  {name:<24} {_fmt_frac(row['busy_frac'])}"
                f"  {row['busy_ns']:12.1f} ns  {row['spans']:6d} spans")

    handlers = doc.get("top_handlers") or []
    if handlers:
        lines.append("hottest handlers:")
        for row in handlers:
            lines.append(
                f"  {row['label']:<24} rank {row['rank']:<3}"
                f" {row['busy_ns']:12.1f} ns  {row['runs']:6d} runs")

    links = doc.get("top_links") or []
    if links:
        lines.append("hottest links:")
        for row in links:
            lines.append(
                f"  {row['link']:<24} util {row['utilization']:<7}"
                f" {row['packets']:6d} pkts  {row['drops']:4d} drops"
                f"  max queue {row['max_queue']}")

    kernel = doc.get("kernel")
    if kernel:
        lines.append(
            f"kernel: {kernel['events']} events / {kernel['environments']}"
            f" envs in {kernel['wall_s']} s"
            f" ({kernel['events_per_sec']:.0f} ev/s)")
    return "\n".join(lines)


def load_report(path) -> dict:
    """Read a report JSON file, checking the schema marker."""
    with open(path) as fh:
        doc = json.load(fh)
    schema = doc.get("schema", "")
    if not schema.startswith("repro.obs/report/"):
        raise ValueError(f"{path}: not a repro.obs report (schema={schema!r})")
    return doc
