"""The ``connect()`` channel API from §1's code sample.

A channel installs the three handlers for messages from one peer, with
handler-shared HPU memory, and returns a channel id — a single process can
install different handlers per connection.  This is syntactic sugar over
:func:`repro.core.api.spin_me` + ``PtlMEAppend``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.api import PtlHPUAllocMem, spin_me
from repro.portals.matching import MatchEntry
from repro.portals.types import ANY_SOURCE

__all__ = ["Channel", "connect"]

_channel_ids = itertools.count(1)


@dataclass
class Channel:
    """An installed handler channel (channel_id_t)."""

    channel_id: int
    machine: object
    entry: MatchEntry

    @property
    def hpu_memory(self):
        return self.entry.spin.hpu_memory if self.entry.spin else None

    def close(self) -> None:
        """Uninstall the channel's matching entry."""
        self.machine.ni.me_unlink(self.entry_pt_index, self.entry)

    entry_pt_index: int = 0


def connect(
    machine,
    peer: int = ANY_SOURCE,
    header_handler: Optional[Callable] = None,
    payload_handler: Optional[Callable] = None,
    completion_handler: Optional[Callable] = None,
    hpu_mem_bytes: int = 4096,
    match_bits: int = 0,
    ignore_bits: int = 0,
    pt_index: int = 0,
    start: int = 0,
    length: int = 0,
    event_queue=None,
    counter=None,
    params: Optional[dict] = None,
) -> Channel:
    """Install handlers for messages from ``peer`` (the §1 code sample).

    Allocates the shared HPU memory, builds the handler-extended ME,
    validates the handler resources at install time, and appends it to the
    portal table.
    """
    hpu_memory = PtlHPUAllocMem(machine, hpu_mem_bytes)
    entry = spin_me(
        match_bits=match_bits,
        ignore_bits=ignore_bits,
        source=peer,
        start=start,
        length=length,
        counter=counter,
        event_queue=event_queue,
        header_handler=header_handler,
        payload_handler=payload_handler,
        completion_handler=completion_handler,
        hpu_memory=hpu_memory,
        params=params,
    )
    if entry.spin is not None:
        # Append validates too, but only after post_me may have allocated
        # the portal index; rejecting here leaves the NI untouched.
        entry.spin.validate(machine.ni.limits)
    machine.post_me(pt_index, entry)
    channel = Channel(
        channel_id=next(_channel_ids), machine=machine, entry=entry,
        entry_pt_index=pt_index,
    )
    return channel
