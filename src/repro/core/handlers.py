"""Handler model: return codes, HPU memory, and the handler binding.

Handlers are Python callables standing in for the paper's C handler code:

* ``header_handler(ctx, header)`` — called exactly once per message, before
  any other handler; ``header`` is the message (``ptl_header_t`` fields).
* ``payload_handler(ctx, payload)`` — called for every packet carrying
  payload, potentially in parallel on multiple HPUs; ``payload`` is a
  :class:`~repro.network.packets.Packet` (``ptl_payload_t``: base/length/
  offset).
* ``completion_handler(ctx, dropped_bytes, flow_control_triggered)`` —
  called once after all payload handlers finished and the whole message
  arrived, before the completion event is delivered to the host.

A handler may be a plain function (compute only — charge cycles via
``ctx.charge``) or a generator function (uses blocking actions:
``yield from ctx.dma_from_host_b(...)`` etc.).  Both return a
:class:`ReturnCode`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Optional

import numpy as np

from repro.portals.limits import NILimits
from repro.portals.types import PortalsError

__all__ = ["HPUMemory", "HandlerError", "HandlerSet", "ReturnCode"]


class ReturnCode(Enum):
    """Handler return codes (Appendix B.3–B.5)."""

    # Header handler codes.
    DROP = "DROP"
    DROP_PENDING = "DROP_PENDING"
    PROCESS_DATA = "PROCESS_DATA"
    PROCESS_DATA_PENDING = "PROCESS_DATA_PENDING"
    PROCEED = "PROCEED"
    PROCEED_PENDING = "PROCEED_PENDING"
    # Payload / completion handler codes.
    SUCCESS = "SUCCESS"
    SUCCESS_PENDING = "SUCCESS_PENDING"
    # Errors (raise an event in the ME's event queue).
    FAIL = "FAIL"
    SEGV = "SEGV"

    @property
    def is_error(self) -> bool:
        return self in (ReturnCode.FAIL, ReturnCode.SEGV)

    @property
    def is_pending(self) -> bool:
        """PENDING variants suppress ME completion (§B.2: rendezvous)."""
        return self in (
            ReturnCode.DROP_PENDING,
            ReturnCode.PROCESS_DATA_PENDING,
            ReturnCode.PROCEED_PENDING,
            ReturnCode.SUCCESS_PENDING,
        )

    @property
    def drops_message(self) -> bool:
        return self in (ReturnCode.DROP, ReturnCode.DROP_PENDING)

    @property
    def proceeds(self) -> bool:
        return self in (ReturnCode.PROCEED, ReturnCode.PROCEED_PENDING)

    @property
    def processes_data(self) -> bool:
        return self in (ReturnCode.PROCESS_DATA, ReturnCode.PROCESS_DATA_PENDING)


class HandlerError(Exception):
    """Raised for handler-model misuse (bad return code, OOB HPU memory)."""


class HPUMemory:
    """Fast NIC-local memory shared by the handlers of one binding.

    Linear physical addressing, no protection between handlers sharing it
    (§2).  ``raw`` is the honest byte arena (single-cycle scratchpad in the
    cost model); ``vars`` is a Python-dict convenience view for handler
    state that the mini-ISA programs keep in ``raw`` instead — both are
    persistent across the lifetime of messages on the same binding.
    """

    def __init__(self, size: int):
        if size < 0:
            raise HandlerError("negative HPU memory size")
        self.size = size
        self.raw = np.zeros(size, dtype=np.uint8)
        self.vars: dict[str, Any] = {}
        self.freed = False

    def _check(self, offset: int, nbytes: int) -> None:
        if self.freed:
            raise HandlerError("use of freed HPU memory")
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise HandlerError(
                f"HPU memory access [{offset}, {offset + nbytes}) outside "
                f"[0, {self.size})"
            )

    def write(self, offset: int, data) -> None:
        data = np.asarray(data, dtype=np.uint8).ravel()
        self._check(offset, data.size)
        self.raw[offset : offset + data.size] = data

    def read(self, offset: int, nbytes: int) -> np.ndarray:
        self._check(offset, nbytes)
        return self.raw[offset : offset + nbytes].copy()

    def view(self, offset: int, nbytes: int) -> np.ndarray:
        self._check(offset, nbytes)
        return self.raw[offset : offset + nbytes]

    # -- 64-bit accessors (for HPU atomics) ------------------------------
    def load_u64(self, offset: int) -> int:
        self._check(offset, 8)
        return int.from_bytes(self.raw[offset : offset + 8].tobytes(), "little")

    def store_u64(self, offset: int, value: int) -> None:
        self._check(offset, 8)
        self.raw[offset : offset + 8] = np.frombuffer(
            (value & ((1 << 64) - 1)).to_bytes(8, "little"), dtype=np.uint8
        )


@dataclass
class HandlerSet:
    """The P4sPIN extension of ``ptl_me_t`` (Appendix B.1).

    Attached to :attr:`repro.portals.matching.MatchEntry.spin`; any handler
    may be None (not invoked).  ``initial_state`` is copied into HPU memory
    when the first message matches the entry (host-initialized state,
    §B.2); ``host_mem_start/length`` delimit the optional second host
    region handlers may address (HANDLER_HOST_MEM).
    """

    header_handler: Optional[Callable] = None
    payload_handler: Optional[Callable] = None
    completion_handler: Optional[Callable] = None
    hpu_memory: Optional[HPUMemory] = None
    initial_state: Optional[bytes] = None
    host_mem_start: int = 0
    host_mem_length: int = 0
    user_hdr_size: int = 0
    #: Arbitrary host-provided parameters visible to handlers via
    #: ``ctx.params`` (models values baked into initial HPU state).
    params: dict = field(default_factory=dict)
    _state_initialized: bool = False

    def validate(self, limits: NILimits) -> None:
        """Installation-time checks (the system may reject oversized setups)."""
        limits.validate_user_header(self.user_hdr_size)
        if self.hpu_memory is not None:
            if self.hpu_memory.freed:
                raise PortalsError(
                    "handler set references freed HPU memory (use-after-free)"
                )
            limits.validate_hpu_alloc(self.hpu_memory.size)
        if self.initial_state is not None:
            limits.validate_initial_state(len(self.initial_state))
            if self.hpu_memory is None:
                raise PortalsError("initial state requires HPU memory")
            if len(self.initial_state) > self.hpu_memory.size:
                raise PortalsError("initial state larger than HPU memory")

    def ensure_state(self) -> None:
        """Copy the host-provided initial state into HPU memory once."""
        if self._state_initialized:
            return
        self._state_initialized = True
        if self.initial_state is not None and self.hpu_memory is not None:
            self.hpu_memory.write(
                0, np.frombuffer(self.initial_state, dtype=np.uint8)
            )
