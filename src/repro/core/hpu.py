"""Handler processing units (HPUs) and their scheduling pool.

The simulated NIC has ``hpu_count`` identical in-order cores (§4.2: four
2.5 GHz ARM Cortex-A15-class units).  Packets waiting for a free HPU queue
FIFO; the queue depth is the flow-control trigger — if more packets are
pending than the NIC can buffer, the portal table entry is disabled and
packets are dropped (§3.2).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.des.engine import Environment
from repro.des.resources import Store
from repro.des.trace import Timeline

__all__ = ["HPUPool"]


class HPUPool:
    """FIFO pool of HPU execution contexts, identified by index."""

    def __init__(
        self,
        env: Environment,
        count: int,
        rank: int = 0,
        timeline: Optional[Timeline] = None,
    ):
        if count < 1:
            raise ValueError("need at least one HPU")
        self.env = env
        self.count = count
        self.rank = rank
        self.timeline = timeline or Timeline(enabled=False)
        self._free = Store(env)
        for i in range(count):
            self._free.put(i)
        self._waiting = 0
        self.handlers_run = 0
        self.busy_ps = 0

    @property
    def waiting(self) -> int:
        """Packets currently queued for an HPU (flow-control signal)."""
        return self._waiting

    @property
    def idle(self) -> int:
        return len(self._free)

    def acquire(self) -> Generator[object, object, int]:
        """Wait for a free HPU; returns its index.

        NOTE: ``SpinNIC._run_handler`` inlines this body (hot path, one
        call per handler invocation) — keep the two in sync.
        """
        self._waiting += 1
        try:
            hpu_id = yield self._free.get()
        finally:
            self._waiting -= 1
        return hpu_id

    def release(self, hpu_id: int) -> None:
        if not 0 <= hpu_id < self.count:
            raise ValueError(f"bad HPU id {hpu_id}")
        self._free.put(hpu_id)

    def record(self, hpu_id: int, start: int, end: int, label: str) -> None:
        """Account one handler execution on the timeline."""
        self.handlers_run += 1
        self.busy_ps += end - start
        self.timeline.record(self.rank, f"HPU{hpu_id}", start, end, label)

    def utilization(self, elapsed: Optional[int] = None) -> float:
        elapsed = self.env.now if elapsed is None else elapsed
        if elapsed <= 0:
            return 0.0
        return self.busy_ps / (elapsed * self.count)
