"""Handler processing units (HPUs) and their scheduling pool.

The simulated NIC has ``hpu_count`` identical in-order cores (§4.2: four
2.5 GHz ARM Cortex-A15-class units).  Packets waiting for a free HPU queue
FIFO; the queue depth is the flow-control trigger — if more packets are
pending than the NIC can buffer, the portal table entry is disabled and
packets are dropped (§3.2).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.des.engine import Environment
from repro.des.resources import Store
from repro.des.trace import Timeline

__all__ = ["HPUPool"]


class _CheckedOutStore(Store):
    """Free-id queue that records which ids have been handed out.

    Both handoff paths mark the id as checked out: a ``get`` served from
    the queue, and a ``put`` handed straight to a waiting getter.  This is
    the tracking :meth:`HPUPool.release` validates against, and it works
    for the inlined ``_free.get()`` on the ``SpinNIC`` hot path too —
    the bookkeeping lives at the store boundary, not in ``acquire``.
    """

    def __init__(self, env: Environment, checked_out: set):
        super().__init__(env)
        self._checked_out = checked_out

    def put(self, item: Any) -> None:
        if self._getters:
            self._checked_out.add(item)
        super().put(item)

    def get(self):
        if self._items:
            self._checked_out.add(self._items[0])
        return super().get()


class HPUPool:
    """FIFO pool of HPU execution contexts, identified by index."""

    def __init__(
        self,
        env: Environment,
        count: int,
        rank: int = 0,
        timeline: Optional[Timeline] = None,
    ):
        if count < 1:
            raise ValueError("need at least one HPU")
        self.env = env
        self.count = count
        self.rank = rank
        self.timeline = timeline or Timeline(enabled=False)
        #: Ids currently held by a handler (acquired, not yet released).
        self._checked_out: set[int] = set()
        self._free = _CheckedOutStore(env, self._checked_out)
        for i in range(count):
            self._free.put(i)
        self._waiting = 0
        self.handlers_run = 0
        self.busy_ps = 0

    def reset(self) -> None:
        """Restore construction state (cluster reuse; see Session pooling).

        Only legal once every handler has finished: a checked-out id or a
        packet still waiting for an HPU means the pool is mid-flight and a
        fresh tenant must not inherit it.
        """
        if self._checked_out or self._free._getters or self._waiting:
            raise ValueError("cannot reset an HPU pool with handlers "
                             "in flight")
        self._free._items.clear()
        for i in range(self.count):
            self._free.put(i)
        self.handlers_run = 0
        self.busy_ps = 0

    @property
    def waiting(self) -> int:
        """Packets currently queued for an HPU (flow-control signal)."""
        return self._waiting

    @property
    def idle(self) -> int:
        return len(self._free)

    @property
    def outstanding(self) -> frozenset[int]:
        """Ids currently checked out to a running handler."""
        return frozenset(self._checked_out)

    def acquire(self) -> Generator[object, object, int]:
        """Wait for a free HPU; returns its index.

        NOTE: ``SpinNIC._run_handler`` inlines this body (hot path, one
        call per handler invocation) — keep the two in sync.
        """
        self._waiting += 1
        try:
            hpu_id = yield self._free.get()
        finally:
            self._waiting -= 1
        return hpu_id

    def release(self, hpu_id: int) -> None:
        if not 0 <= hpu_id < self.count:
            raise ValueError(f"bad HPU id {hpu_id}")
        if hpu_id not in self._checked_out:
            # A double release would put a duplicate id in the free queue:
            # two handlers "running" on one HPU, utilization above 1.0.
            raise ValueError(f"HPU {hpu_id} is not checked out "
                             f"(double release?)")
        # Discard before put: a put handed straight to a waiter checks the
        # id right back out.
        self._checked_out.discard(hpu_id)
        self._free.put(hpu_id)

    def record(self, hpu_id: int, start: int, end: int, label: str) -> None:
        """Account one handler execution on the timeline."""
        self.handlers_run += 1
        self.busy_ps += end - start
        self.timeline.record(self.rank, f"HPU{hpu_id}", start, end, label)

    def utilization(self, elapsed: Optional[int] = None) -> float:
        elapsed = self.env.now if elapsed is None else elapsed
        if elapsed <= 0:
            return 0.0
        return self.busy_ps / (elapsed * self.count)
