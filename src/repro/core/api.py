"""The P4sPIN user-facing API (Appendix B.1/B.2).

* :func:`PtlHPUAllocMem` / :func:`PtlHPUFreeMem` — explicit HPU memory
  management from the host (HPU memory may be shared by several MEs and
  stays valid until freed);
* :func:`spin_me` — builds a :class:`~repro.portals.matching.MatchEntry`
  with the handler extension fields of the extended ``ptl_me_t``.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.handlers import HandlerSet, HPUMemory
from repro.portals.limits import NILimits
from repro.portals.matching import MatchEntry
from repro.portals.types import ANY_SOURCE, ME_OP_PUT

__all__ = ["PtlHPUAllocMem", "PtlHPUFreeMem", "spin_me"]


def PtlHPUAllocMem(machine_or_limits, length: int) -> HPUMemory:
    """Allocate ``length`` bytes of HPU memory on a device.

    Accepts a :class:`~repro.machine.cluster.Machine` (validates against its
    NI limits) or a bare :class:`~repro.portals.limits.NILimits`.
    """
    limits = (
        machine_or_limits
        if isinstance(machine_or_limits, NILimits)
        else machine_or_limits.ni.limits
    )
    limits.validate_hpu_alloc(length)
    return HPUMemory(length)


def PtlHPUFreeMem(mem: HPUMemory) -> None:
    """Release HPU memory; later accesses raise (use-after-free guard)."""
    mem.freed = True


def spin_me(
    match_bits: int = 0,
    ignore_bits: int = 0,
    source: int = ANY_SOURCE,
    options: int = ME_OP_PUT,
    start: int = 0,
    length: int = 0,
    counter=None,
    event_queue=None,
    user_ptr=None,
    header_handler: Optional[Callable] = None,
    payload_handler: Optional[Callable] = None,
    completion_handler: Optional[Callable] = None,
    hpu_memory: Optional[HPUMemory] = None,
    initial_state: Optional[bytes] = None,
    host_mem_start: int = 0,
    host_mem_length: int = 0,
    user_hdr_size: int = 0,
    params: Optional[dict] = None,
) -> MatchEntry:
    """Build a handler-extended matching entry (PtlMEAppend's ptl_me_t).

    With no handlers given this degrades to a plain Portals ME — matching
    the spec's note that the handler sub-struct may be NULL.
    """
    handler_set = None
    if any((header_handler, payload_handler, completion_handler, hpu_memory)):
        handler_set = HandlerSet(
            header_handler=header_handler,
            payload_handler=payload_handler,
            completion_handler=completion_handler,
            hpu_memory=hpu_memory,
            initial_state=initial_state,
            host_mem_start=host_mem_start,
            host_mem_length=host_mem_length,
            user_hdr_size=user_hdr_size,
            params=params or {},
        )
    return MatchEntry(
        match_bits=match_bits,
        ignore_bits=ignore_bits,
        source=source,
        options=options,
        start=start,
        length=length,
        counter=counter,
        event_queue=event_queue,
        user_ptr=user_ptr,
        spin=handler_set,
    )
