"""sPIN core: the paper's primary contribution.

Implements streaming Processing in the Network on top of the machine and
Portals substrates:

* the handler programming model — header / payload / completion handlers
  with the Appendix-B return codes and actions (:mod:`repro.core.handlers`,
  :mod:`repro.core.actions`);
* HPU memory and the HPU execution-unit pool (:mod:`repro.core.hpu`);
* the sPIN-capable NIC runtime: packet scheduling onto HPUs, handler
  ordering, flow control and dropped-byte accounting
  (:mod:`repro.core.nic`);
* the P4sPIN user API — ``PtlHPUAllocMem``, handler-extended
  ``PtlMEAppend``, and the ``connect()`` channel sugar from §1
  (:mod:`repro.core.api`, :mod:`repro.core.channel`);
* the handler cycle-cost model standing in for gem5
  (:mod:`repro.core.costmodel`).
"""

from repro.core.costmodel import HandlerCostModel
from repro.core.handlers import HandlerError, HandlerSet, HPUMemory, ReturnCode
from repro.core.hpu import HPUPool
from repro.core.actions import HandlerContext
from repro.core.nic import SpinNIC
from repro.core.api import (
    PtlHPUAllocMem,
    PtlHPUFreeMem,
    spin_me,
)
from repro.core.channel import Channel, connect

__all__ = [
    "Channel",
    "HPUMemory",
    "HPUPool",
    "HandlerContext",
    "HandlerCostModel",
    "HandlerError",
    "HandlerSet",
    "PtlHPUAllocMem",
    "PtlHPUFreeMem",
    "ReturnCode",
    "SpinNIC",
    "connect",
    "spin_me",
]
