"""Handler actions: the ``PtlHandler*`` calls of Appendix B.6.

A :class:`HandlerContext` is created per handler invocation and exposes:

* cycle accounting (``charge`` / ``charge_per_byte``) — the gem5 stand-in;
* messaging: ``put_from_device`` (single-packet, blocks the HPU thread),
  ``put_from_host`` (enqueued as if posted by the host, non-blocking),
  ``get`` (handler-issued get, the rendezvous workhorse);
* host-memory DMA: blocking/non-blocking reads and writes, atomic CAS and
  fetch-add — all charged through the machine's DMA engine and memory port;
* HPU-local atomics (CAS / fetch-add on HPU memory) and ``yield_()``;
* counter manipulation (``ct_inc`` / ``ct_get`` / ``ct_set``).

Blocking actions are generators — handlers using them must themselves be
generator functions and ``yield from`` the action.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from repro.des.engine import Event, Timeout
from repro.network.packets import Message
from repro.portals.counters import Counter
from repro.core.handlers import HandlerError, HPUMemory

__all__ = ["HandlerContext"]

#: options value selecting the ME's host region (PTL_ME_HOST_MEM).
ME_HOST_MEM = "me"
#: options value selecting the handler's own host region (PTL_HANDLER_HOST_MEM).
HANDLER_HOST_MEM = "handler"


class HandlerContext:
    """Execution context for one handler invocation on one HPU."""

    __slots__ = ("nic", "env", "machine", "hs", "rx_state", "hpu_id",
                 "_cycles", "total_cycles", "dma_completions")

    def __init__(self, nic, handler_set, rx_state, hpu_id: int):
        self.nic = nic
        self.env = nic.env
        self.machine = nic.machine
        self.hs = handler_set
        self.rx_state = rx_state
        self.hpu_id = hpu_id
        self._cycles = 0
        self.total_cycles = 0
        self.dma_completions: list[Event] = []

    # -- identity / environment (compile-time constants of §3.2.2) ---------
    @property
    def PTL_NUM_HPUS(self) -> int:
        return self.nic.hpus.count

    @property
    def PTL_MY_HPU(self) -> int:
        return self.hpu_id

    @property
    def state(self) -> HPUMemory:
        """The handler-shared HPU memory (``*state``)."""
        if self.hs.hpu_memory is None:
            raise HandlerError("handler has no HPU memory attached")
        return self.hs.hpu_memory

    @property
    def params(self) -> dict:
        """Host-provided installation parameters (baked into HPU state)."""
        return self.hs.params

    @property
    def message(self) -> Message:
        return self.rx_state.message

    @property
    def me(self):
        return self.rx_state.match.entry

    # -- cycle accounting ---------------------------------------------------
    def charge(self, cycles: float) -> None:
        """Account handler instructions (1 cycle each at 2.5 GHz, IPC=1)."""
        if cycles < 0:
            raise HandlerError("negative cycle charge")
        self._cycles += cycles

    def charge_per_byte(self, nbytes: int, cycles_per_byte: float) -> None:
        """Account a data-dependent loop over ``nbytes``."""
        self.charge(nbytes * cycles_per_byte)

    def elapse(self) -> Generator:
        """Convert accumulated cycles into simulated HPU time."""
        if self._cycles:
            cycles, self._cycles = self._cycles, 0
            self.total_cycles += cycles
            yield Timeout(self.env, self.nic.params.hpu_cycles_to_ps(cycles))

    def _action(self) -> Generator:
        self.charge(self.nic.cost.action_cycles)
        yield from self.elapse()

    # -- host-memory addressing ---------------------------------------------
    def _base(self, options: str) -> int:
        if options == ME_HOST_MEM:
            return self.me.start + self.rx_state.match.deposit_offset
        if options == HANDLER_HOST_MEM:
            return self.hs.host_mem_start
        raise HandlerError(f"unknown host-memory selector {options!r}")

    # -- messaging ----------------------------------------------------------
    def put_from_device(
        self,
        data,
        target: int,
        match_bits: int = 0,
        pt_index: int = 0,
        nbytes: Optional[int] = None,
        hdr_data: int = 0,
        user_hdr: Any = None,
        ack: bool = False,
        md=None,
    ) -> Generator:
        """PtlHandlerPutFromDevice: single-packet put from HPU memory.

        Blocks the HPU thread until the message is injected (the NIC may use
        HPU memory as the outgoing buffer, §2).  ``data`` may be None for a
        modelled (length-only) message, with ``nbytes`` giving the size.
        """
        yield from self._action()
        if nbytes is None:
            nbytes = len(data) if data is not None else 0
        if nbytes > self.nic.machine.ni.limits.max_payload_size:
            raise HandlerError(
                f"put_from_device of {nbytes} B exceeds max_payload_size "
                f"{self.nic.machine.ni.limits.max_payload_size}"
            )
        payload = None
        if data is not None:
            payload = np.asarray(data, dtype=np.uint8).ravel().copy()
        msg = Message(
            source=self.nic.rank,
            target=target,
            length=nbytes,
            kind="put",
            match_bits=match_bits,
            payload=payload,
            hdr_data=hdr_data,
            user_hdr=user_hdr,
            meta={
                "pt_index": pt_index,
                "ack": ack,
                "md_id": md.md_id if md else -1,
            },
        )
        done = self.nic.send(msg, from_host=False)
        yield done  # may block until delivered to the wire

    def put_from_host(
        self,
        offset: int,
        nbytes: int,
        target: int,
        match_bits: int = 0,
        pt_index: int = 0,
        hdr_data: int = 0,
        user_hdr: Any = None,
        ack: bool = False,
        md=None,
        options: str = ME_HOST_MEM,
    ) -> Generator[object, object, Event]:
        """PtlHandlerPutFromHost: enqueue a put of host memory.

        Behaves as if posted by the host (enters the normal send queue,
        pays the source DMA staging) but charges no host ``o``.  Never
        blocks the HPU; returns the injection-done event.
        """
        yield from self._action()
        payload = None
        if self.machine.memory is not None:
            payload = self.machine.memory.read(self._base(options) + offset, nbytes)
        msg = Message(
            source=self.nic.rank,
            target=target,
            length=nbytes,
            kind="put",
            match_bits=match_bits,
            payload=payload,
            hdr_data=hdr_data,
            user_hdr=user_hdr,
            meta={
                "pt_index": pt_index,
                "ack": ack,
                "md_id": md.md_id if md else -1,
            },
        )
        return self.nic.send(msg, from_host=True)

    def get(
        self,
        target: int,
        nbytes: int,
        match_bits: int = 0,
        pt_index: int = 0,
        get_offset: int = 0,
        reply_offset: int = 0,
        md=None,
    ) -> Generator[object, object, Event]:
        """PtlHandlerGet: issue a get; the reply lands in ``md`` at this host.

        This is the key rendezvous primitive (§5.1): the header handler of a
        large message issues a get matching the sender's pre-set-up ME.
        """
        yield from self._action()
        msg = Message(
            source=self.nic.rank,
            target=target,
            length=0,
            kind="get",
            match_bits=match_bits,
            meta={
                "pt_index": pt_index,
                "get_length": nbytes,
                "get_offset": get_offset,
                "reply_offset": reply_offset,
                "md_id": md.md_id if md else -1,
            },
        )
        return self.nic.send(msg, from_host=False)

    # -- DMA ----------------------------------------------------------------
    def dma_from_host_b(
        self, offset: int, nbytes: int, options: str = ME_HOST_MEM
    ) -> Generator[object, object, Optional[np.ndarray]]:
        """Blocking read from host memory (2 DMA latencies + bandwidth)."""
        yield from self._action()
        data = yield from self.machine.dma.read(
            self._base(options) + offset, nbytes, label=f"hpu{self.hpu_id}-r"
        )
        return data

    def dma_from_host_nb(
        self, offset: int, nbytes: int, options: str = ME_HOST_MEM
    ) -> Generator[object, object, Event]:
        """Non-blocking read; returns a handle whose value is the data."""
        yield from self._action()
        handle = self.env.event()

        def reader():
            data = yield from self.machine.dma.read(
                self._base(options) + offset, nbytes, label=f"hpu{self.hpu_id}-r"
            )
            handle.succeed(data)

        self.env.process(reader(), name="dma-nb-read")
        return handle

    def dma_to_host_b(
        self, data, offset: int, nbytes: Optional[int] = None,
        options: str = ME_HOST_MEM,
    ) -> Generator[object, object, Event]:
        """Blocking write: the HPU blocks while initiating (bandwidth term).

        Returns the durability event; the message's completion (and thus
        the host-visible event) waits for it automatically.
        """
        yield from self._action()
        completion = yield from self.machine.dma.write(
            self._base(options) + offset,
            data,
            nbytes=nbytes,
            label=f"hpu{self.hpu_id}-w",
        )
        self.dma_completions.append(completion)
        return completion

    def dma_to_host_nb(
        self, data, offset: int, nbytes: Optional[int] = None,
        options: str = ME_HOST_MEM,
    ) -> Generator[object, object, Event]:
        """Non-blocking write; returns the durability handle."""
        yield from self._action()
        handle = self.env.event()
        base = self._base(options) + offset

        def writer():
            completion = yield from self.machine.dma.write(
                base, data, nbytes=nbytes, label=f"hpu{self.hpu_id}-w"
            )
            completion.callbacks.append(lambda ev: handle.succeed(ev.value))

        self.env.process(writer(), name="dma-nb-write")
        self.dma_completions.append(handle)
        return handle

    def dma_wait(self, handle: Event) -> Generator:
        """PtlHandlerDMAWait: block until a non-blocking DMA completes."""
        if not handle.processed:
            yield handle

    @staticmethod
    def dma_test(handle: Event) -> bool:
        """PtlHandlerDMATest: has the transfer completed?"""
        return handle.processed

    def dma_cas(
        self, offset: int, cmpval: int, swapval: int, options: str = ME_HOST_MEM
    ) -> Generator[object, object, tuple[bool, int]]:
        """Atomic host-memory CAS (expensive over PCIe, §B.6)."""
        yield from self._action()
        result = yield from self.machine.dma.cas(
            self._base(options) + offset, cmpval, swapval
        )
        return result

    def dma_fetch_add(
        self, offset: int, inc: int, options: str = ME_HOST_MEM
    ) -> Generator[object, object, int]:
        """Atomic host-memory fetch-and-add; returns the prior value."""
        yield from self._action()
        before = yield from self.machine.dma.fetch_add(self._base(options) + offset, inc)
        return before

    # -- HPU-local synchronization (hardware instructions, no sim time) ------
    def hpu_cas(self, offset: int, cmpval: int, swapval: int) -> bool:
        """PtlHandlerCAS on HPU memory; True if the swap happened."""
        self.charge(self.nic.cost.hpu_atomic_cycles)
        current = self.state.load_u64(offset)
        if current == cmpval:
            self.state.store_u64(offset, swapval)
            return True
        return False

    def hpu_fadd(self, offset: int, inc: int) -> int:
        """PtlHandlerFAdd on HPU memory; returns the prior value."""
        self.charge(self.nic.cost.hpu_atomic_cycles)
        before = self.state.load_u64(offset)
        self.state.store_u64(offset, before + inc)
        return before

    def yield_(self) -> Generator:
        """PtlHandlerYield: scheduling hint (flushes accumulated cycles)."""
        self.charge(1)
        yield from self.elapse()

    # -- counters ----------------------------------------------------------
    def ct_inc(self, counter: Counter, increment: int = 1, nbytes: int = 0) -> None:
        self.charge(self.nic.cost.hpu_atomic_cycles)
        counter.increment(increment, nbytes=nbytes)

    def ct_get(self, counter: Counter) -> tuple[int, int]:
        self.charge(self.nic.cost.hpu_atomic_cycles)
        return counter.success, counter.failure

    def ct_set(self, counter: Counter, successes: int, failures: int = 0) -> None:
        self.charge(self.nic.cost.hpu_atomic_cycles)
        counter.set(successes, failures)
