"""The sPIN NIC runtime: handler dispatch, HPU scheduling, flow control.

Extends the baseline Portals NIC (Fig. 1's architecture): matched messages
whose ME carries a :class:`~repro.core.handlers.HandlerSet` are processed by
handlers on the HPU pool instead of being deposited blindly:

1. the **header handler** runs exactly once, before anything else;
2. its return code steers the message — PROCEED takes the default deposit
   path, PROCESS_DATA invokes **payload handlers** per packet (parallel
   across HPUs), DROP discards the rest of the message;
3. after all payload handlers finished and the whole message arrived, the
   **completion handler** runs, then (unless a PENDING code was returned)
   the ME completes toward the host (counter, event, ACK).

Flow control (§3.2): when the HPU input queue exceeds the NIC's buffering,
the portal table entry is disabled, further packets are dropped and
accounted in ``dropped_bytes``, and the completion handler sees
``flow_control_triggered=True``.
"""

from __future__ import annotations

from types import GeneratorType
from typing import Generator, Optional

from repro.core.actions import HandlerContext
from repro.core.costmodel import HandlerCostModel
from repro.des.engine import Timeout
from repro.core.handlers import HandlerError, HandlerSet, ReturnCode
from repro.core.hpu import HPUPool
from repro.machine.nic import BaselineNIC, _MessageRx
from repro.network.packets import Packet
from repro.portals.events import PortalsEvent
from repro.portals.types import EventKind

__all__ = ["SpinNIC"]

#: Default cycle-cost model: frozen, so one instance serves every NIC.
_DEFAULT_COST_MODEL = HandlerCostModel()


class SpinNIC(BaselineNIC):
    """A NIC with sPIN handler processing units."""

    def __init__(self, env, machine, cost_model: Optional[HandlerCostModel] = None):
        super().__init__(env, machine)
        # The HPU pool is built on first use: scenarios that never bind a
        # handler (rdma/p4 protocols) skip the pool + store construction
        # entirely.  Building it schedules no kernel events, so laziness
        # cannot perturb traces.
        self._hpus: Optional[HPUPool] = None
        self.cost = cost_model or _DEFAULT_COST_MODEL
        self.handler_errors: list[tuple[str, ReturnCode]] = []
        self.flow_control_trips = 0
        self._ph_name = f"ph[{self.rank}]"

    def reset(self) -> None:
        """Restore construction state (cluster reuse; see Session pooling).

        A built HPU pool is rewound in place (restoring the FIFO id order
        a fresh pool hands out) rather than rebuilt — pooled sessions that
        bind handlers every tenancy would otherwise reconstruct it each
        checkout.  Handler-free tenants still never pay for one.
        """
        super().reset()
        if self._hpus is not None:
            self._hpus.reset()
        self.handler_errors.clear()
        self.flow_control_trips = 0

    @property
    def hpus(self) -> HPUPool:
        pool = self._hpus
        if pool is None:
            pool = self._hpus = HPUPool(
                self.env, self.params.hpu_count, rank=self.rank,
                timeline=self.timeline,
            )
        return pool

    # -- header path -------------------------------------------------------
    def _header_hook(self, state: _MessageRx, pkt: Packet) -> Optional[Generator]:
        match = state.match
        msg = state.message
        if (
            match is None
            or not match.matched
            or match.entry.spin is None
            or msg.kind not in ("put", "atomic")
        ):
            # No handler binding: plain deposit path, nothing timed to run.
            state.extra["mode"] = "baseline"
            return None
        return self._spin_header(state, pkt)

    def _spin_header(self, state: _MessageRx, pkt: Packet) -> Generator:
        msg = state.message
        hs: HandlerSet = state.match.entry.spin
        hs.ensure_state()
        state.extra.update(
            hs=hs,
            mode="undecided",
            flow_ctl=False,
            pending=False,
            handler_events=[],
            error_raised=False,
        )
        header_done = self.env.event()
        state.extra["header_done"] = header_done

        if hs.header_handler is None:
            code = (
                ReturnCode.PROCESS_DATA
                if hs.payload_handler is not None
                else ReturnCode.PROCEED
            )
        else:
            code = yield from self._run_handler(
                state, "hh", hs.header_handler, msg
            )
        state.extra["pending"] = state.extra["pending"] or code.is_pending
        if code.is_error or code.drops_message:
            state.extra["mode"] = "drop"
        elif code.proceeds:
            state.extra["mode"] = "proceed"
        elif code.processes_data:
            state.extra["mode"] = "process"
        else:
            raise HandlerError(f"invalid header-handler return code {code}")
        header_done.succeed(state.extra["mode"])

    # -- per-packet path ---------------------------------------------------
    def _deliver_packet(self, state: _MessageRx, pkt: Packet) -> Generator:
        mode = state.extra.get("mode", "baseline")
        if mode == "baseline":
            yield from super()._deliver_packet(state, pkt)
            return
        if mode == "undecided":
            # The header handler has not finished yet; payload packets wait
            # (no payload handler may start before the header handler ends).
            yield state.extra["header_done"]
            mode = state.extra["mode"]
        if mode == "proceed":
            yield from self._deposit_put_packet(state, pkt)
            return
        if mode == "drop":
            state.dropped_bytes += pkt.payload_len
            return
        self._spin_payload(state, pkt)

    def _spin_payload(self, state: _MessageRx, pkt: Packet) -> None:
        """Dispatch one payload packet to the HPU pool (yield-free).

        Flow-control checks and the handler-process spawn are synchronous,
        which lets the fast RX chain call this inline; the generator path
        reaches it through :meth:`_deliver_packet`.
        """
        # Packets without payload skip payload handlers.
        if pkt.payload_len == 0:
            state.bytes_seen += 0
            return
        pt = self._pt_for(state.message)
        if pt is not None and not pt.enabled:
            state.dropped_bytes += pkt.payload_len
            state.extra["flow_ctl"] = True
            pt.record_drop(pkt.payload_len)
            return
        if self.hpus.waiting >= self.params.max_pending_packets:
            # No HPU execution contexts: trip flow control (§3.2).
            state.dropped_bytes += pkt.payload_len
            state.extra["flow_ctl"] = True
            self.flow_control_trips += 1
            if pt is not None:
                pt.record_drop(pkt.payload_len)
                pt.disable()
            return
        state.bytes_seen += pkt.payload_len
        proc = self.env.process(
            self._payload_proc(state, pkt), name=self._ph_name
        )
        state.extra["handler_events"].append(proc)
        if self._obs_hpu_probe is not None:
            self._obs_hpu_probe(self.rank, self.env.now, self.hpus.waiting)

    def _payload_proc(self, state: _MessageRx, pkt: Packet) -> Generator:
        hs: HandlerSet = state.extra["hs"]
        code = yield from self._run_handler(state, "ph", hs.payload_handler, pkt)
        if code.drops_message or code.is_error:
            # Payload DROP: this packet's bytes are discarded.
            state.bytes_seen -= pkt.payload_len
            state.dropped_bytes += pkt.payload_len

    # -- completion path ----------------------------------------------------
    def _finish_message(self, state: _MessageRx) -> Generator:
        mode = state.extra.get("mode", "baseline")
        if mode == "baseline":
            yield from super()._finish_message(state)
            return
        msg = state.message
        handler_events = state.extra.get("handler_events", [])
        if handler_events:
            yield (handler_events[0] if len(handler_events) == 1
                   else self.env.all_of(handler_events))
        if state.dma_events:
            evs = state.dma_events
            yield evs[0] if len(evs) == 1 else self.env.all_of(evs)
            state.dma_events = []
        self.messages_received += 1
        if self._obs_msg_probe is not None:
            self._obs_msg_probe(self.rank, self.env.now, msg)

        hs: HandlerSet = state.extra["hs"]
        if hs.completion_handler is not None:
            code = yield from self._run_handler(
                state,
                "ch",
                hs.completion_handler,
                state.dropped_bytes,
                state.extra["flow_ctl"],
            )
            state.extra["pending"] = state.extra["pending"] or code.is_pending
        if state.dma_events:
            # Writes issued by the completion handler must land before the
            # host sees the completion event.
            yield self.env.all_of(state.dma_events)
        if not state.extra["pending"]:
            yield from self._complete_put(state)

    # -- handler execution ------------------------------------------------
    def _run_handler(
        self, state: _MessageRx, label: str, fn, *args
    ) -> Generator[object, object, ReturnCode]:
        # Inlined HPUPool.acquire (hot: one per handler invocation) — keep
        # in sync with the helper.
        hpus = self.hpus
        hpus._waiting += 1
        try:
            hpu_id = yield hpus._free.get()
        finally:
            hpus._waiting -= 1
        ctx = HandlerContext(self, state.extra["hs"], state, hpu_id)
        cost = self.cost
        ctx._cycles = cost.invoke_cycles
        start = self.env._now
        try:
            result = fn(ctx, *args)
            if type(result) is GeneratorType or hasattr(result, "send"):
                code = yield from result  # generator handler
            else:
                code = result
            if code is None:
                code = ReturnCode.SUCCESS
            if not isinstance(code, ReturnCode):
                raise HandlerError(
                    f"handler returned {code!r}, expected a ReturnCode"
                )
        except HandlerError:
            code = ReturnCode.SEGV
        if self._handler_fault is not None:
            # Fault injection (repro.faults): a plan may replace the
            # return code with an error — the HPU "crashed" mid-message.
            code = self._handler_fault(label, code)
        ctx.charge(cost.return_cycles)
        # Inlined ctx.elapse().
        cycles, ctx._cycles = ctx._cycles, 0
        if cycles:
            ctx.total_cycles += cycles
            yield Timeout(self.env, self.params.hpu_cycles_to_ps(cycles))

        if self.cost.enforce_cycle_budget and not code.is_error:
            budget = self.cost.budget_for(
                getattr(args[0], "payload_len", 0) if args else 0,
                self.machine.ni.limits.max_cycles_per_byte,
            )
            if ctx.total_cycles > budget:
                # §7: kill over-budget handlers and move into flow control.
                code = ReturnCode.FAIL
                pt = self._pt_for(state.message)
                if pt is not None:
                    pt.disable()
                state.extra["flow_ctl"] = True
                self.flow_control_trips += 1

        self.hpus.record(hpu_id, start, self.env.now, label)
        self.hpus.release(hpu_id)
        state.dma_events.extend(ctx.dma_completions)

        if code.is_error and not state.extra.get("error_raised"):
            # Only the first error is reported in the event queue (§B.3).
            state.extra["error_raised"] = True
            self.handler_errors.append((label, code))
            entry = state.match.entry
            if entry.event_queue is not None:
                entry.event_queue.push(
                    PortalsEvent(
                        kind=EventKind.HANDLER_ERROR,
                        initiator=state.message.source,
                        match_bits=state.message.match_bits,
                        when_ps=self.env.now,
                        meta={"handler": label, "code": code.value},
                    )
                )
        return code
