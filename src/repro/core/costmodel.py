"""Handler cycle-cost model — the gem5 stand-in.

The paper times each handler execution with gem5 on a 2.5 GHz in-order
ARM Cortex-A15 (IPC = 1, single-cycle scratchpad, §4.2) and feeds the
result back into the network simulation.  Handlers are 10–500 simple
instructions, so their execution time is an instruction count divided by
the clock.  This module defines that accounting:

* fixed costs: handler invocation (handlers start "within a cycle after a
  packet arrived", their context is preloaded), handler return, and a fixed
  overhead per Ptl* action (argument marshalling + device command);
* variable costs: handler code charges explicit cycles via
  :meth:`~repro.core.actions.HandlerContext.charge` /
  ``charge_per_byte`` — the per-byte constants for each paper handler are
  documented in :mod:`repro.handlers_library` and cross-validated against
  the mini-ISA interpreter in :mod:`repro.hpu_isa`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HandlerCostModel"]


@dataclass(frozen=True)
class HandlerCostModel:
    """Fixed cycle charges for handler execution on an HPU."""

    #: Cycles to start a handler (context preloaded; §4.1 "handlers require
    #: no initialization, loading, or other boot activities").
    invoke_cycles: int = 2
    #: Cycles for the handler's return/exit path.
    return_cycles: int = 1
    #: Fixed cycles per Ptl* handler action (argument setup + doorbell).
    action_cycles: int = 10
    #: Cycles per HPU-local CAS / fetch-add (hardware instruction, §B.6).
    hpu_atomic_cycles: int = 2
    #: Whether to enforce the NI's max_cycles_per_byte budget (§7: slow
    #: handlers should be killed and flow control tripped).
    enforce_cycle_budget: bool = False

    def budget_for(self, payload_bytes: int, max_cycles_per_byte: int) -> int:
        """Cycle budget for one packet under the NI limits (≥ a fixed floor).

        Even zero-byte packets get a floor so header/completion handlers can
        run a few hundred instructions — the "short handler" regime of §1.
        """
        return max(512, payload_bytes * max_cycles_per_byte)
