"""Benchmark harness: regenerates every table and figure of the evaluation.

``python -m repro.bench <target>`` prints the measured rows next to the
paper's reported values; targets:

=============  ==========================================================
``fig3b``      ping-pong half-RTT, integrated NIC
``fig3c``      ping-pong half-RTT, discrete NIC
``fig3d``      remote accumulate completion time (int + dis)
``fig4``       HPUs needed for line rate (Little's law)
``fig5a``      binomial broadcast latency vs process count
``fig5b``      matching-protocol timelines (cases I–IV)
``tab5c``      full-application matching speedups
``fig7a``      strided-datatype receive bandwidth
``fig7b``      RAID write-protocol timeline
``fig7c``      RAID-5 update completion time
``spc``        SPC trace replay speedups (§5.3)
``traffic``    time-resolved traffic SLO timeline (windowed metrics)
``ablate``     design-choice ablations (HPU count, handler cost, ...)
``all``        everything above
=============  ==========================================================
"""

from repro.bench.figures import (
    ablate_handler_cost,
    ablate_hpus,
    fig3_pingpong,
    fig3d_accumulate,
    fig4_hpus,
    fig5a_broadcast,
    fig5b_timelines,
    fig7a_datatype,
    fig7b_timeline,
    fig7c_raid,
    spc_traces,
    tab5c_apps,
    traffic_slo,
)
from repro.bench.harness import Row, Table

__all__ = [
    "Row",
    "Table",
    "ablate_handler_cost",
    "ablate_hpus",
    "fig3_pingpong",
    "fig3d_accumulate",
    "fig4_hpus",
    "fig5a_broadcast",
    "fig5b_timelines",
    "fig7a_datatype",
    "fig7b_timeline",
    "fig7c_raid",
    "spc_traces",
    "tab5c_apps",
    "traffic_slo",
]
