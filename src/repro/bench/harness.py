"""Table formatting and shape checking for the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

__all__ = ["Row", "Table"]


@dataclass
class Row:
    """One result row: arbitrary cells plus an optional paper reference."""

    cells: dict[str, Any]
    paper: Optional[str] = None


@dataclass
class Table:
    """A printable experiment result table."""

    title: str
    columns: Sequence[str]
    rows: list[Row] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, paper: Optional[str] = None, **cells: Any) -> None:
        self.rows.append(Row(cells=cells, paper=paper))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def _fmt(self, value: Any) -> str:
        if isinstance(value, float):
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            return f"{value:.2f}"
        return str(value)

    def render(self) -> str:
        cols = list(self.columns)
        has_paper = any(r.paper for r in self.rows)
        if has_paper:
            cols = cols + ["paper"]
        widths = {c: len(c) for c in cols}
        body = []
        for row in self.rows:
            cells = {c: self._fmt(row.cells.get(c, "")) for c in self.columns}
            if has_paper:
                cells["paper"] = row.paper or ""
            for c in cols:
                widths[c] = max(widths[c], len(cells[c]))
            body.append(cells)
        sep = "-+-".join("-" * widths[c] for c in cols)
        lines = [
            f"== {self.title} ==",
            " | ".join(f"{c:>{widths[c]}}" for c in cols),
            sep,
        ]
        for cells in body:
            lines.append(" | ".join(f"{cells[c]:>{widths[c]}}" for c in cols))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
