"""CLI: ``python -m repro.bench <target> [--full]`` regenerates figures."""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import figures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the sPIN paper's tables and figures.",
    )
    parser.add_argument("target", nargs="?", default="all",
                        help="fig3a fig3b fig3c fig3d fig4 fig5a fig5b "
                             "tab5c fig7a fig7b fig7c spc traffic ablate all")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale sweeps (slower)")
    parser.add_argument("--workers", type=int, default=1,
                        help="campaign worker processes for the sweeps")
    parser.add_argument("--cache", default=None, metavar="PATH",
                        help="campaign result cache (JSONL) for incremental "
                             "regeneration")
    args = parser.parse_args(argv)

    campaign_kw = {"workers": args.workers, "cache_path": args.cache}
    targets = {
        "fig3a": lambda: print(figures.fig3a_timelines()),
        "fig3b": lambda: print(figures.fig3_pingpong(
            "int", args.full, **campaign_kw).render()),
        "fig3c": lambda: print(figures.fig3_pingpong(
            "dis", args.full, **campaign_kw).render()),
        "fig3d": lambda: print(figures.fig3d_accumulate(
            args.full, **campaign_kw).render()),
        "fig4": lambda: print(figures.fig4_hpus(
            args.full, **campaign_kw).render()),
        "fig5a": lambda: print(figures.fig5a_broadcast(
            "dis", args.full, **campaign_kw).render()),
        "fig5b": lambda: print(figures.fig5b_timelines()),
        "tab5c": lambda: print(figures.tab5c_apps(
            full=args.full, **campaign_kw).render()),
        "fig7a": lambda: print(figures.fig7a_datatype(
            args.full, **campaign_kw).render()),
        "fig7b": lambda: print(figures.fig7b_timeline()),
        "fig7c": lambda: print(figures.fig7c_raid(
            args.full, **campaign_kw).render()),
        "spc": lambda: print(figures.spc_traces(
            args.full, **campaign_kw).render()),
        "traffic": lambda: print(figures.traffic_slo(
            args.full, **campaign_kw).render()),
        "ablate": lambda: (
            print(figures.ablate_hpus(args.full).render()),
            print(),
            print(figures.ablate_handler_cost(args.full).render()),
            print(),
            print(figures.ablate_mtu(args.full).render()),
            print(),
            print(figures.ablate_eager_threshold(args.full).render()),
        ),
    }
    if args.target == "all":
        chosen = list(targets)
    elif args.target in targets:
        chosen = [args.target]
    else:
        parser.error(f"unknown target {args.target!r}")
        return 2
    for name in chosen:
        t0 = time.time()
        targets[name]()
        print(f"[{name}: {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
