"""The paper's reported numbers, for measured-vs-paper comparison.

Values read off the SC'17 figures/tables; where a figure only supports
reading a trend, the entry records the *shape expectation* the measured
data must satisfy (winner, crossover, rough factor).
"""

from __future__ import annotations

__all__ = [
    "FIG3_SMALL_MSG_NS",
    "FIG4_POINTS",
    "FIG7A_GIBS",
    "TAB5C",
    "SPC_IMPROVEMENT_RANGE",
]

#: Fig 3b/3c insets: half round-trip time (ns) for small (~8 B) messages.
FIG3_SMALL_MSG_NS = {
    "int": {"rdma": 800.0, "p4": 750.0, "spin": 650.0},
    "dis": {"rdma": 1400.0, "p4": 1200.0, "spin": 1000.0},
}

#: §4.4.2 derived quantities.
FIG4_POINTS = {
    "g_over_G_bytes": 335.0,
    "hat_Ts_ns_8hpus": 53.0,
    "hat_Tl_ns_4096": 650.0,
    "delta_min_mmps": 12.5,
    "delta_max_mmps": 150.0,
}

#: Fig 7a annotations: sustained unpack bandwidth, GiB/s.
FIG7A_GIBS = {
    "rdma_low": 8.7,
    "rdma_high": 11.44,
    "spin_line_rate": 46.3,
    "spin_knee_blocksize": 256,
}

#: Table 5c: program → (procs, messages, pt2pt overhead %, speedup %).
TAB5C = {
    "MILC": (64, 5_743_212, 5.5, 3.6),
    "POP": (64, 772_063_149, 3.1, 0.7),
    "coMD": (72, 5_337_575, 6.1, 3.7),
    "Cloverleaf": (72, 2_677_705, 5.2, 2.8),
}

#: §5.3: sPIN improves trace processing time between 2.8 % and 43.7 %,
#: with the largest gain on the integrated NIC + financial traces.
SPC_IMPROVEMENT_RANGE = (2.8, 43.7)

#: §4.4.3: integrated-NIC broadcast at 1024 processes: sPIN 7 % faster
#: than RDMA and 5 % faster than Portals 4.
FIG5A_INT_1024 = {"vs_rdma": 0.07, "vs_p4": 0.05}
