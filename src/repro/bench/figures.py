"""Per-figure experiment drivers.

Each function runs the sweep behind one table/figure of the paper and
returns a :class:`~repro.bench.harness.Table` whose rows carry both the
measured values and the paper's reference numbers.  ``full=True`` runs the
paper-scale sweeps (slower); the default keeps every target in seconds.

The grid sweeps go through the campaign layer (:mod:`repro.campaign`):
figures plan their parameter grids, the executor runs them (``workers``
fans out over processes, and a ``cache_path`` makes regeneration
incremental), and the tables are assembled from the returned records.

Every grid figure also accepts ``shard="i/K"`` (or a
:class:`~repro.campaign.shard.ShardSpec`): the sweep then executes only
that deterministic slice of its jobs — the multi-host recipe is one
shard per host into per-shard caches, ``python -m repro.campaign merge``,
then the figure unsharded over the merged cache (which executes nothing).
A sharded call returns a progress stub instead of the figure, since the
table needs every grid point.
"""

from __future__ import annotations

from repro.bench.harness import Table
from repro.bench import paper_data
from repro.campaign import as_shard, run_grid, run_points
from repro.des.trace import render_timeline
from repro.experiments import (
    accumulate_completion_ns,
    max_handler_time_ns,
    pingpong_half_rtt_ns,
)

__all__ = [
    "ablate_eager_threshold",
    "ablate_handler_cost",
    "ablate_hpus",
    "ablate_mtu",
    "traffic_slo",
    "fig3_pingpong",
    "fig3a_timelines",
    "fig3d_accumulate",
    "fig4_hpus",
    "fig5a_broadcast",
    "fig5b_timelines",
    "fig7a_datatype",
    "fig7b_timeline",
    "fig7c_raid",
    "spc_traces",
    "tab5c_apps",
]

_PP_SIZES = (8, 64, 512, 4096, 32_768, 262_144)


def _shard_stub(res, title: str, shard) -> Table:
    """What a sharded figure run returns: progress, not a partial table."""
    table = Table(
        title=f"{title} [shard {as_shard(shard)}]",
        columns=["shard_jobs", "executed", "cached"],
    )
    table.add(shard_jobs=len(res.jobs), executed=res.executed,
              cached=res.cached)
    table.note("sharded sweep: results are cached, not tabulated — run "
               "`campaign merge`, then regenerate the figure unsharded")
    return table


def fig3_pingpong(config: str = "int", full: bool = False,
                  workers: int = 1, cache_path=None, shard=None) -> Table:
    """Fig 3b (int) / 3c (dis): ping-pong half-RTT in microseconds."""
    sizes = _PP_SIZES if not full else tuple(2**k for k in range(2, 19))
    modes = ("rdma", "p4", "spin_store", "spin_stream")
    table = Table(
        title=f"Fig 3{'b' if config == 'int' else 'c'}: ping-pong half-RTT (us), {config} NIC",
        columns=["size_B", "rdma", "p4", "spin_store", "spin_stream"],
    )
    res = run_grid("pingpong", {"size": sizes, "mode": modes},
                   overrides={"config": config},
                   workers=workers, cache_path=cache_path, shard=shard)
    if shard is not None:
        return _shard_stub(res, table.title, shard)
    ref = paper_data.FIG3_SMALL_MSG_NS[config]
    for size in sizes:
        row = {
            mode: res.lookup(size=size, mode=mode)["half_rtt_ns"] / 1000.0
            for mode in modes
        }
        paper = (
            f"~{ref['rdma']/1000:.2f}/{ref['p4']/1000:.2f}/{ref['spin']/1000:.2f}us"
            if size == 8
            else ""
        )
        table.add(size_B=size, paper=paper, **row)
    table.note("paper inset (8B): RDMA > P4 > sPIN; streaming wins large messages")
    return table


def fig3a_timelines() -> str:
    """Fig 3a / Appendix C.3.1: ping-pong timelines per protocol variant.

    Renders the simulated CPU/NIC/DMA/HPU lanes for an 8 KiB ping-pong —
    the reproduction's analogue of the appendix trace diagrams (RDMA's
    host commit vs sPIN streaming's per-packet replies are visible).
    """
    from repro.core.api import PtlHPUAllocMem, spin_me
    from repro.experiments.common import pair_cluster
    from repro.experiments.pingpong import PING_TAG
    from repro.handlers_library import PONG_TAG, make_pingpong_handlers
    from repro.machine.config import integrated_config
    from repro.portals.matching import MatchEntry

    out = []
    for mode, streaming in (("store", False), ("stream", True)):
        cluster = pair_cluster(integrated_config(), with_memory=False, trace=True)
        env = cluster.env
        origin, target = cluster[0], cluster[1]
        pong_eq = origin.new_eq()
        origin.post_me(0, MatchEntry(match_bits=PONG_TAG, length=8192,
                                     event_queue=pong_eq))
        hh, ph, ch = make_pingpong_handlers(streaming=streaming)
        target.post_me(0, spin_me(
            match_bits=PING_TAG, length=8192,
            header_handler=hh, payload_handler=ph, completion_handler=ch,
            hpu_memory=PtlHPUAllocMem(target, 16384),
        ))

        def pinger():
            yield from origin.host_put(1, 8192, match_bits=PING_TAG)

        env.process(pinger())
        cluster.run()
        out.append(f"--- sPIN ({mode}) 8 KiB ping-pong ---")
        out.append(render_timeline(cluster.timeline, width=90))
    return "\n".join(out)


def ablate_mtu(full: bool = False) -> Table:
    """Ablation: streaming ping-pong latency vs MTU (packetization grain)."""
    import dataclasses

    from repro.machine.config import integrated_config
    from repro.network.loggp import LogGPParams

    size = 64 * 1024
    table = Table(
        title="Ablation: 64 KiB sPIN-stream half-RTT (us) vs MTU",
        columns=["mtu_B", "half_rtt_us"],
    )
    for mtu in (1024, 2048, 4096, 8192):
        cfg = integrated_config()
        cfg = dataclasses.replace(
            cfg, network=dataclasses.replace(
                cfg.network, loggp=LogGPParams(mtu=mtu)))
        table.add(mtu_B=mtu,
                  half_rtt_us=pingpong_half_rtt_ns(size, "spin_stream", cfg) / 1000)
    table.note("finer packetization pipelines more but pays per-packet "
               "costs; 4 KiB (the paper's MTU) sits near the optimum")
    return table


def ablate_eager_threshold(full: bool = False) -> Table:
    """Ablation: MILC speedup vs the eager/rendezvous threshold."""
    from repro.apps import matching_speedup, milc_trace

    table = Table(
        title="Ablation: MILC-like offload speedup vs eager threshold",
        columns=["threshold_B", "ovhd_%", "spdup_%"],
    )
    for threshold in (4096, 16384, 65536):
        row = matching_speedup(milc_trace(nprocs=16, iters=3),
                               eager_threshold=threshold)
        table.add(threshold_B=threshold,
                  **{"ovhd_%": row["ovhd_percent"],
                     "spdup_%": row["speedup_percent"]})
    table.note("48 KiB halos: below 64 KiB thresholds they go rendezvous "
               "(handler-issued gets); above, eager copies dominate")
    return table


def fig3d_accumulate(full: bool = False, workers: int = 1,
                     cache_path=None, shard=None) -> Table:
    """Fig 3d: remote accumulate completion time (us), both NIC types."""
    sizes = (8, 512, 4096, 32_768, 262_144) if not full else tuple(
        2**k for k in range(3, 19)
    )
    table = Table(
        title="Fig 3d: remote accumulate completion time (us)",
        columns=["size_B", "rdma_int", "spin_int", "rdma_dis", "spin_dis"],
    )
    res = run_grid("accumulate", {"size": sizes, "mode": ("rdma", "spin"),
                                  "config": ("int", "dis")},
                   workers=workers, cache_path=cache_path, shard=shard)
    if shard is not None:
        return _shard_stub(res, table.title, shard)
    for size in sizes:
        table.add(
            size_B=size,
            **{
                f"{mode}_{cfg}":
                    res.lookup(size=size, mode=mode, config=cfg)["completion_ns"] / 1000
                for mode in ("rdma", "spin") for cfg in ("int", "dis")
            },
            paper="RDMA wins small; sPIN wins large" if size in (8, 262_144) else "",
        )
    table.note("paper: DMA latency penalizes small sPIN accumulates, "
               "pipelined DMA wins large ones")
    return table


def fig4_hpus(full: bool = False, workers: int = 1, cache_path=None,
              shard=None) -> Table:
    """Fig 4: HPUs needed for line rate vs packet size and handler time."""
    sizes = (16, 64, 128, 335, 512, 1024, 2048, 4096)
    table = Table(
        title="Fig 4: HPUs needed for line-rate processing",
        columns=["packet_B", "T=100ns", "T=200ns", "T=500ns", "T=1000ns"],
    )
    res = run_grid("linerate", {"packet_bytes": sizes,
                                "handler_ns": (100.0, 200.0, 500.0, 1000.0)},
                   workers=workers, cache_path=cache_path, shard=shard)
    if shard is not None:
        return _shard_stub(res, table.title, shard)
    for s in sizes:
        table.add(
            packet_B=s,
            **{
                f"T={t}ns":
                    res.lookup(packet_bytes=s, handler_ns=float(t))["hpus"]
                for t in (100, 200, 500, 1000)
            },
        )
    table.note(
        f"T̂s(8 HPUs, g-bound) = {max_handler_time_ns(8, 64):.1f} ns "
        f"(paper {paper_data.FIG4_POINTS['hat_Ts_ns_8hpus']:.0f} ns); "
        f"T̂l(4096 B) = {max_handler_time_ns(8, 4096):.0f} ns "
        f"(paper {paper_data.FIG4_POINTS['hat_Tl_ns_4096']:.0f} ns); "
        f"crossover g/G = 335 B"
    )
    return table


def fig5a_broadcast(config: str = "dis", full: bool = False,
                    workers: int = 1, cache_path=None, shard=None) -> Table:
    """Fig 5a: binomial broadcast latency (us) vs process count."""
    procs = (4, 16, 64, 256) if not full else (4, 16, 64, 256, 1024)
    table = Table(
        title=f"Fig 5a: broadcast latency (us), {config} NIC",
        columns=["procs", "rdma_8B", "p4_8B", "spin_8B",
                 "rdma_64KiB", "p4_64KiB", "spin_64KiB"],
    )
    res = run_grid("broadcast", {"procs": procs, "size": (8, 1 << 16),
                                 "mode": ("rdma", "p4", "spin")},
                   overrides={"config": config},
                   workers=workers, cache_path=cache_path, shard=shard)
    if shard is not None:
        return _shard_stub(res, table.title, shard)
    for p in procs:
        table.add(
            procs=p,
            **{
                f"{mode}_{label}":
                    res.lookup(procs=p, size=size, mode=mode)["latency_ns"] / 1000
                for mode in ("rdma", "p4", "spin")
                for label, size in (("8B", 8), ("64KiB", 1 << 16))
            },
        )
    table.note("paper: sPIN fastest at both sizes; streaming pipelines 64KiB "
               "through the tree")
    return table


def fig5b_timelines() -> str:
    """Fig 5b: matching-protocol schematics as simulated ASCII timelines."""
    from repro.experiments.common import pair_cluster
    from repro.machine.config import integrated_config
    from repro.runtime.msgmatch import MPIEndpoint
    from repro.des import ns

    out = []
    for case, (protocol, preposted, nbytes) in {
        "I   (small, preposted, offloaded)": ("spin", True, 1024),
        "II  (large, preposted, offloaded)": ("spin", True, 1 << 17),
        "III (small, late recv)": ("spin", False, 1024),
        "IV  (large, late recv)": ("spin", False, 1 << 17),
    }.items():
        cluster = pair_cluster(integrated_config(), with_memory=False, trace=True)
        a = MPIEndpoint(cluster[0], protocol)
        b = MPIEndpoint(cluster[1], protocol)
        env = cluster.env

        def sender():
            if preposted:
                yield env.timeout(ns(2000))
            req = yield from a.send(1, nbytes, tag=1)
            yield from a.wait(req)

        def receiver():
            if not preposted:
                yield env.timeout(ns(30000))
            req = yield from b.recv(0, nbytes, tag=1)
            yield from b.wait(req)

        env.process(sender())
        proc = env.process(receiver())
        env.run(until=proc)
        cluster.run()
        out.append(f"--- case {case} ---")
        out.append(render_timeline(cluster.timeline, width=90))
    return "\n".join(out)


def tab5c_apps(nprocs: int = 16, iters: int = 3, full: bool = False,
               workers: int = 1, cache_path=None, shard=None) -> Table:
    """Table 5c: full-application speedups from offloaded matching."""
    from repro.apps import APP_TRACES

    if full:
        nprocs, iters = 64, 6
    table = Table(
        title=f"Table 5c: offloaded matching, {nprocs} procs (paper 64/72)",
        columns=["program", "msgs", "ovhd_%", "spdup_%"],
    )
    res = run_grid("apps_matching", {"app": tuple(APP_TRACES)},
                   overrides={"nprocs": nprocs, "iters": iters},
                   workers=workers, cache_path=cache_path, shard=shard)
    if shard is not None:
        return _shard_stub(res, table.title, shard)
    for name, (gen, p_procs, p_ovhd, p_spd) in APP_TRACES.items():
        row = res.lookup(app=name)
        table.add(
            program=name,
            msgs=row["messages"],
            **{"ovhd_%": row["ovhd_percent"], "spdup_%": row["speedup_percent"]},
            paper=f"{p_ovhd}% / {p_spd}% @ {p_procs}p",
        )
    table.note("synthetic traces calibrated to the paper's comm structure; "
               "message counts are scaled down (see DESIGN.md)")
    return table


def fig7a_datatype(full: bool = False, workers: int = 1,
                   cache_path=None, shard=None) -> Table:
    """Fig 7a: 4 MiB strided receive, completion time and bandwidth."""
    message = 4 << 20
    blocks = (256, 1024, 4096, 32_768, 262_144) if not full else tuple(
        2**k for k in range(4, 19)
    )
    table = Table(
        title="Fig 7a: strided receive of 4 MiB (stride = 2 x blocksize)",
        columns=["blocksize_B", "rdma_us", "rdma_GiBs", "spin_us", "spin_GiBs"],
    )
    res = run_grid("datatype_recv", {"blocksize": blocks,
                                     "mode": ("rdma", "spin")},
                   overrides={"message": message, "config": "int"},
                   workers=workers, cache_path=cache_path, shard=shard)
    if shard is not None:
        return _shard_stub(res, table.title, shard)
    for b in blocks:
        rdma = res.lookup(blocksize=b, mode="rdma")
        spin = res.lookup(blocksize=b, mode="spin")
        table.add(
            blocksize_B=b,
            rdma_us=rdma["completion_ns"] / 1000,
            rdma_GiBs=rdma["gib_s"],
            spin_us=spin["completion_ns"] / 1000,
            spin_GiBs=spin["gib_s"],
            paper=(
                f"RDMA {paper_data.FIG7A_GIBS['rdma_high']} GiB/s, "
                f"sPIN {paper_data.FIG7A_GIBS['spin_line_rate']} GiB/s"
                if b == 4096 else ""
            ),
        )
    table.note("paper: sPIN reaches line rate from ~256 B blocks; RDMA stays "
               "at 8.7-11.4 GiB/s due to the strided CPU copies")
    return table


def fig7b_timeline() -> str:
    """Fig 7b: the RAID write protocol as a simulated ASCII timeline."""
    from repro.storage import RaidCluster

    out = []
    for mode in ("rdma", "spin"):
        raid = RaidCluster(mode, "int", region_bytes=64 * 1024)
        raid.cluster.timeline.enabled = True
        env = raid.env

        def client():
            yield from raid.client_write(16 * 1024)

        proc = env.process(client())
        env.run(until=proc)
        out.append(f"--- RAID-5 write, {mode} protocol ---")
        out.append(render_timeline(raid.cluster.timeline, width=90))
    return "\n".join(out)


def fig7c_raid(full: bool = False, workers: int = 1, cache_path=None,
               shard=None) -> Table:
    """Fig 7c: RAID-5 update completion time (us)."""
    sizes = (64, 4096, 32_768, 262_144) if not full else tuple(
        2**k for k in range(2, 19)
    )
    table = Table(
        title="Fig 7c: RAID-5 update completion time (us)",
        columns=["size_B", "rdma_int", "spin_int", "rdma_dis", "spin_dis"],
    )
    res = run_grid("raid_update", {"size": sizes, "mode": ("rdma", "spin"),
                                   "config": ("int", "dis")},
                   workers=workers, cache_path=cache_path, shard=shard)
    if shard is not None:
        return _shard_stub(res, table.title, shard)
    for size in sizes:
        table.add(
            size_B=size,
            **{
                f"{mode}_{cfg}":
                    res.lookup(size=size, mode=mode, config=cfg)["completion_ns"] / 1000
                for mode in ("rdma", "spin") for cfg in ("int", "dis")
            },
            paper="comparable small / sPIN wins large" if size in (64, 262_144) else "",
        )
    return table


def spc_traces(full: bool = False, workers: int = 1, cache_path=None,
               shard=None) -> Table:
    """§5.3: SPC trace replay — processing-time improvement."""
    nops = 120 if full else 40
    table = Table(
        title="SPC trace replay: RDMA → sPIN processing-time improvement",
        columns=["trace", "config", "rdma_us", "spin_us", "improvement_%"],
    )
    lo, hi = paper_data.SPC_IMPROVEMENT_RANGE
    traces = (
        ("financial-1", "financial", 11),
        ("financial-2", "financial", 12),
        ("websearch-1", "websearch", 21),
        ("websearch-2", "websearch", 22),
        ("websearch-3", "websearch", 23),
    )
    points = [
        {"family": family, "trace_seed": seed, "nops": nops,
         "mode": mode, "config": config}
        for _, family, seed in traces
        for config in ("int", "dis")
        for mode in ("rdma", "spin")
    ]
    res = run_points("spc_replay", points, workers=workers,
                     cache_path=cache_path, shard=shard)
    if shard is not None:
        return _shard_stub(res, table.title, shard)
    for name, family, seed in traces:
        for config in ("int", "dis"):
            rdma = res.lookup(family=family, trace_seed=seed, config=config,
                              mode="rdma")["elapsed_ns"]
            spin = res.lookup(family=family, trace_seed=seed, config=config,
                              mode="spin")["elapsed_ns"]
            table.add(
                trace=name,
                config=config,
                rdma_us=rdma / 1000,
                spin_us=spin / 1000,
                **{"improvement_%": 100 * (rdma - spin) / rdma},
                paper=f"{lo}%..{hi}%, best = int+financial" if config == "int" else "",
            )
    return table


def traffic_slo(full: bool = False, workers: int = 1, cache_path=None,
                shard=None) -> Table:
    """Time-resolved SLO view of the traffic scenarios (not in the paper).

    One row per metrics window: the bursting-load run's fabric queue depth
    and completions next to the incast-transient run's per-window p99 —
    the sawtooth (growth during on phases, drain during off phases) and
    the latency collapse/recovery around the synchronized burst, the two
    transients the windowed sink exists to expose.
    """
    cycles = 4 if full else 3
    burst = run_points("bursting_load", [{"cycles": cycles}],
                       workers=workers, cache_path=cache_path, shard=shard)
    if shard is not None:
        return _shard_stub(burst, "traffic SLO timeline", shard)
    incast = run_points("incast_transient", [{}], workers=workers,
                        cache_path=cache_path)
    b, i = burst.lookup(cycles=cycles), incast.lookup()
    table = Table(
        title="Traffic SLO timeline (windowed metrics)",
        columns=["t_ns", "burst_queue", "burst_done",
                 "incast_done", "incast_p99_ns"],
    )
    window_ns = b["window_ns"]
    rows = max(len(b["win_queue_max"]), len(i["win_p99_ns"]))
    for w in range(rows):

        def cell(rec, key):
            series = rec[key]
            return series[w] if w < len(series) else ""

        table.add(
            t_ns=w * window_ns,
            burst_queue=cell(b, "win_queue_max"),
            burst_done=cell(b, "win_completed"),
            incast_done=cell(i, "win_completed"),
            incast_p99_ns=cell(i, "win_p99_ns"),
        )
    table.note(
        f"bursting_load: queue peak {b['queue_peak']}, final "
        f"{b['queue_final']}; incast_transient: p99 collapse at "
        f"{i['collapse_t_ns']:.0f} ns, recovery at "
        f"{i['recovery_t_ns']:.0f} ns"
    )
    return table


def ablate_hpus(full: bool = False) -> Table:
    """Ablation: accumulate throughput vs HPU count (validates Fig 4)."""
    from repro.machine.config import integrated_config

    size = 1 << 17
    table = Table(
        title="Ablation: accumulate completion (us) vs #HPUs (128 KiB, int)",
        columns=["hpus", "completion_us", "speedup_vs_1"],
    )
    base = None
    for hpus in (1, 2, 4, 8, 16):
        cfg = integrated_config(hpu_count=hpus)
        t = accumulate_completion_ns(size, "spin", cfg) / 1000
        base = base or t
        table.add(hpus=hpus, completion_us=t, speedup_vs_1=base / t)
    table.note("diminishing returns once HPUs saturate DMA/wire — the "
               "Little's-law sizing of Fig 4")
    return table


def ablate_handler_cost(full: bool = False) -> Table:
    """Ablation: ping-pong latency vs payload-handler cycles/byte."""
    from repro.core.api import PtlHPUAllocMem, spin_me
    from repro.core.handlers import ReturnCode
    from repro.experiments.common import pair_cluster
    from repro.machine.config import integrated_config
    from repro.portals.matching import MatchEntry

    table = Table(
        title="Ablation: 4 KiB one-way latency vs handler cycles/byte (int)",
        columns=["cycles_per_byte", "latency_us"],
    )
    for cpb in (0.0, 0.5, 1.0, 2.0, 4.0):
        cluster = pair_cluster(integrated_config(), with_memory=False)
        env = cluster.env
        done = []

        def ph(ctx, pay, cpb=cpb):
            ctx.charge_per_byte(pay.payload_len, cpb)
            return ReturnCode.SUCCESS

        eq = cluster[1].new_eq()
        cluster[1].post_me(0, spin_me(
            match_bits=1, payload_handler=ph, event_queue=eq,
            hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        eq.on_next(lambda ev: done.append(env.now))

        def sender():
            yield from cluster[0].host_put(1, 4096, match_bits=1)

        env.process(sender())
        cluster.run()
        table.add(cycles_per_byte=cpb, latency_us=done[0] / 1e6)
    table.note("the T̂l(4096) = 650 ns budget of §4.4.2 corresponds to "
               "~0.4 cycles/byte at line rate with 8 HPUs")
    return table
