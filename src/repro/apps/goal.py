"""GOAL-like operation schedules.

LogGOPSim consumes GOAL (Group Operation Assembly Language) dependency
graphs of sends, receives, and computations.  This module provides the
subset the trace generators need: per-rank sequential op lists where sends
and receives are posted non-blocking and ``waitall`` joins everything
posted since the previous join — exactly the post-compute-wait structure of
bulk-synchronous halo codes (and the overlap window the sPIN matching
protocol exploits, §5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.des.engine import ns

__all__ = ["Op", "Schedule", "calc", "recv", "send", "waitall"]


@dataclass(frozen=True)
class Op:
    """One schedule operation.

    kind ∈ {"calc", "send", "recv", "waitall"}; unused fields are 0.
    """

    kind: str
    peer: int = 0
    nbytes: int = 0
    tag: int = 0
    duration_ps: int = 0

    def __post_init__(self):
        if self.kind not in ("calc", "send", "recv", "waitall"):
            raise ValueError(f"unknown op kind {self.kind!r}")
        if self.nbytes < 0 or self.duration_ps < 0:
            raise ValueError("negative size/duration")


def calc(duration_ns: float) -> Op:
    return Op("calc", duration_ps=ns(duration_ns))


def send(peer: int, nbytes: int, tag: int = 0) -> Op:
    return Op("send", peer=peer, nbytes=nbytes, tag=tag)


def recv(peer: int, nbytes: int, tag: int = 0) -> Op:
    return Op("recv", peer=peer, nbytes=nbytes, tag=tag)


def waitall() -> Op:
    return Op("waitall")


@dataclass
class Schedule:
    """Per-rank op lists plus trace statistics."""

    ranks: dict[int, list[Op]] = field(default_factory=dict)
    name: str = "app"

    @property
    def nprocs(self) -> int:
        return max(self.ranks) + 1 if self.ranks else 0

    def append(self, rank: int, op: Op) -> None:
        self.ranks.setdefault(rank, []).append(op)

    def extend(self, rank: int, ops: list[Op]) -> None:
        self.ranks.setdefault(rank, []).extend(ops)

    # -- statistics --------------------------------------------------------
    @property
    def message_count(self) -> int:
        return sum(
            1 for ops in self.ranks.values() for op in ops if op.kind == "send"
        )

    @property
    def bytes_sent(self) -> int:
        return sum(
            op.nbytes for ops in self.ranks.values() for op in ops
            if op.kind == "send"
        )

    def calc_ps(self, rank: int) -> int:
        return sum(op.duration_ps for op in self.ranks.get(rank, [])
                   if op.kind == "calc")

    def validate(self) -> None:
        """Sends and receives must pair up exactly (per peer, tag, size)."""
        pending: dict[tuple, int] = {}
        for rank, ops in self.ranks.items():
            for op in ops:
                if op.kind == "send":
                    key = (rank, op.peer, op.tag, op.nbytes)
                    pending[key] = pending.get(key, 0) + 1
                elif op.kind == "recv":
                    key = (op.peer, rank, op.tag, op.nbytes)
                    pending[key] = pending.get(key, 0) - 1
        unbalanced = {k: v for k, v in pending.items() if v}
        if unbalanced:
            raise ValueError(f"unbalanced sends/recvs: {unbalanced}")
