"""Trace-driven application simulation (the LogGOPSim front end).

* :mod:`repro.apps.goal` — GOAL-like per-rank operation schedules
  (calc / send / recv / waitall), the input format of the executor;
* :mod:`repro.apps.tracegen` — synthetic communication traces reproducing
  the structure of the paper's four applications (MILC, POP, coMD,
  Cloverleaf);
* :mod:`repro.apps.simulator` — executes a schedule over the simulated
  cluster under a matching protocol and reports runtime, communication
  overhead, and the offloading speedup (Table 5c).
"""

from repro.apps.goal import Op, Schedule, calc, recv, send, waitall
from repro.apps.simulator import AppResult, matching_speedup, run_schedule
from repro.apps.tracegen import (
    APP_TRACES,
    cloverleaf_trace,
    comd_trace,
    milc_trace,
    pop_trace,
)

__all__ = [
    "APP_TRACES",
    "AppResult",
    "Op",
    "Schedule",
    "calc",
    "cloverleaf_trace",
    "comd_trace",
    "matching_speedup",
    "milc_trace",
    "pop_trace",
    "recv",
    "run_schedule",
    "send",
    "waitall",
]
