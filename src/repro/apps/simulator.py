"""Schedule executor: runs GOAL traces over the simulated cluster.

This is the reproduction of the paper's full-application experiment
(§5.1, Table 5c): run the same trace under the CPU-progressed RDMA
protocol and under sPIN's fully offloaded matching, measure total runtime
(MPI_Init..MPI_Finalize equivalent) and report communication overhead and
speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.goal import Schedule
from repro.core.nic import SpinNIC
from repro.machine.cluster import Cluster
from repro.machine.config import MachineConfig, config_by_name
from repro.network.topology import FatTree
from repro.runtime.msgmatch import MPIEndpoint

__all__ = ["AppResult", "matching_speedup", "run_schedule"]


@dataclass(frozen=True)
class AppResult:
    """Outcome of one schedule execution."""

    name: str
    protocol: str
    total_ns: float
    comm_fraction: float   # 1 - compute/total, averaged over ranks
    messages: int
    copies: int            # CPU copies performed by the matching layer
    rendezvous_stalls: int

    @property
    def comm_percent(self) -> float:
        return 100.0 * self.comm_fraction


def run_schedule(
    schedule: Schedule,
    protocol: str,
    config: MachineConfig | str = "dis",
    eager_threshold: int = 16384,
) -> AppResult:
    """Execute a schedule under one matching protocol."""
    if isinstance(config, str):
        config = config_by_name(config)
    nprocs = schedule.nprocs
    cluster = Cluster(
        nprocs,
        config=config,
        nic_factory=SpinNIC,
        topology=FatTree(params=config.network, nhosts=max(nprocs, 2)),
        with_memory=False,
    )
    env = cluster.env
    endpoints = [
        MPIEndpoint(cluster[r], protocol, eager_threshold=eager_threshold)
        for r in range(nprocs)
    ]
    finish_ps = [0] * nprocs

    def rank_proc(rank: int):
        ep = endpoints[rank]
        machine = cluster[rank]
        outstanding = []
        for op in schedule.ranks.get(rank, []):
            if op.kind == "calc":
                yield from machine.cpu.run(op.duration_ps, "app-calc")
            elif op.kind == "send":
                req = yield from ep.send(op.peer, op.nbytes, op.tag)
                outstanding.append(req)
            elif op.kind == "recv":
                req = yield from ep.recv(op.peer, op.nbytes, op.tag)
                outstanding.append(req)
            else:  # waitall
                yield from ep.wait_all(outstanding)
                outstanding = []
        if outstanding:
            yield from ep.wait_all(outstanding)
        finish_ps[rank] = env.now

    procs = [env.process(rank_proc(r), name=f"app[{r}]") for r in range(nprocs)]
    env.run(until=env.all_of(procs))
    cluster.run()

    total_ps = max(finish_ps) or 1
    comm_fractions = [
        max(0.0, 1.0 - schedule.calc_ps(r) / total_ps) for r in range(nprocs)
    ]
    return AppResult(
        name=schedule.name,
        protocol=protocol,
        total_ns=total_ps / 1000.0,
        comm_fraction=sum(comm_fractions) / nprocs,
        messages=schedule.message_count,
        copies=sum(ep.copies for ep in endpoints),
        rendezvous_stalls=sum(ep.rendezvous_stalls for ep in endpoints),
    )


def matching_speedup(
    schedule: Schedule, config: MachineConfig | str = "dis",
    eager_threshold: int = 16384,
) -> dict:
    """Table 5c row: baseline overhead + sPIN offloading speedup."""
    base = run_schedule(schedule, "rdma", config, eager_threshold)
    offl = run_schedule(schedule, "spin", config, eager_threshold)
    return {
        "app": schedule.name,
        "messages": schedule.message_count,
        "ovhd_percent": base.comm_percent,
        "speedup_percent": 100.0 * (base.total_ns - offl.total_ns) / base.total_ns,
        "baseline": base,
        "offloaded": offl,
    }


from repro.campaign.registry import Param, scenario as campaign_scenario


@campaign_scenario(
    "apps_matching",
    params=[
        Param("app", str, default="MILC",
              choices=("MILC", "POP", "coMD", "Cloverleaf")),
        Param("nprocs", int, default=16),
        Param("iters", int, default=3),
        Param("eager_threshold", int, default=16384),
    ],
    description="Table 5c full-application offloaded-matching speedup",
    tiny={"nprocs": 4, "iters": 1},
    sweep={"app": ("MILC", "POP", "coMD", "Cloverleaf")},
    tags=("table", "apps"),
)
def _apps_matching_scenario(app: str, nprocs: int, iters: int,
                            eager_threshold: int) -> dict:
    from repro.apps.tracegen import APP_TRACES

    gen = APP_TRACES[app][0]
    row = matching_speedup(gen(nprocs=nprocs, iters=iters),
                           eager_threshold=eager_threshold)
    return {
        "messages": row["messages"],
        "ovhd_percent": row["ovhd_percent"],
        "speedup_percent": row["speedup_percent"],
    }
