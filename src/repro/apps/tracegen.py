"""Synthetic application traces (Table 5c's four applications).

Real traces are hundreds of millions of messages; per DESIGN.md these
generators reproduce each application's *communication structure* — grid
dimensionality, neighbor pattern, message-size mix, collective usage, and
point-to-point overhead fraction — at a scale a Python DES sweeps in
seconds.  Compute granularity is calibrated so the baseline (RDMA) runs
spend roughly the paper's measured fraction of time in point-to-point
communication (MILC 5.5 %, POP 3.1 %, coMD 6.1 %, Cloverleaf 5.2 %).

Every rank posts its receives, then its sends, then computes, then waits —
the standard nonblocking halo-exchange shape whose overlap window offloaded
matching converts into speedup.
"""

from __future__ import annotations

import math

from repro.apps.goal import Schedule, calc, recv, send, waitall
from repro.runtime.collectives import recursive_doubling_rounds

__all__ = [
    "APP_TRACES",
    "cloverleaf_trace",
    "comd_trace",
    "milc_trace",
    "pop_trace",
]


def _grid_dims(nprocs: int, ndims: int) -> list[int]:
    """Near-cubic factorization of ``nprocs`` into ``ndims`` factors."""
    dims = [1] * ndims
    remaining = nprocs
    for i in range(ndims):
        target = round(remaining ** (1 / (ndims - i)))
        f = max(1, target)
        while remaining % f:
            f -= 1
        dims[i] = f
        remaining //= f
    dims[-1] *= remaining if math.prod(dims) != nprocs else 1
    if math.prod(dims) != nprocs:
        raise ValueError(f"cannot factor {nprocs} into {ndims} dims")
    return dims


def _rank_coords(rank: int, dims: list[int]) -> list[int]:
    coords = []
    for d in dims:
        coords.append(rank % d)
        rank //= d
    return coords


def _coords_rank(coords: list[int], dims: list[int]) -> int:
    rank, mult = 0, 1
    for c, d in zip(coords, dims):
        rank += (c % d) * mult
        mult *= d
    return rank


def _halo_iteration(sched: Schedule, dims: list[int], msg_bytes: int,
                    compute_ns: float, tag: int, overlap: float = 1.0) -> None:
    """One bulk-synchronous halo-exchange iteration on a periodic grid.

    ``overlap`` splits the computation: that fraction happens between
    posting and waiting (overlappable); the rest after the waitall.
    """
    nprocs = math.prod(dims)
    for rank in range(nprocs):
        coords = _rank_coords(rank, dims)
        neighbors = []
        for axis, extent in enumerate(dims):
            if extent == 1:
                continue
            for step in (-1, +1):
                nc = list(coords)
                nc[axis] += step
                neighbors.append(_coords_rank(nc, dims))
        ops = []
        for peer in neighbors:
            ops.append(recv(peer, msg_bytes, tag))
        for peer in neighbors:
            ops.append(send(peer, msg_bytes, tag))
        ops.append(calc(compute_ns * overlap))
        ops.append(waitall())
        if overlap < 1.0:
            ops.append(calc(compute_ns * (1 - overlap)))
        sched.extend(rank, ops)


def _allreduce(sched: Schedule, nprocs: int, nbytes: int, tag: int) -> None:
    """Recursive-doubling allreduce appended to every rank."""
    for rnd, pairs in enumerate(recursive_doubling_rounds(nprocs)):
        participants = {}
        for a, b in pairs:
            participants[a] = b
            participants[b] = a
        for rank in range(nprocs):
            peer = participants.get(rank)
            if peer is None:
                continue
            sched.extend(rank, [
                recv(peer, nbytes, tag + rnd),
                send(peer, nbytes, tag + rnd),
                waitall(),
            ])


def milc_trace(nprocs: int = 64, iters: int = 6) -> Schedule:
    """MILC (su3_rmd): 4-D hypercubic grid, 8 neighbors, large CG halos.

    Lattice QCD exchanges sizeable gauge-field halos every CG iteration and
    overlaps them with local su3 matrix math — prime territory for
    asynchronous rendezvous progression.
    """
    sched = Schedule(name="MILC")
    dims = _grid_dims(nprocs, 4)
    for it in range(iters):
        # ~2/3 of the exchanges overlap with CG math; the rest are the
        # blocking phases of the su3 update (Table 5c: 3.6 of 5.5 %
        # overhead is recoverable).
        overlap = 0.9 if it % 3 != 2 else 0.0
        _halo_iteration(sched, dims, msg_bytes=48 * 1024,
                        compute_ns=255_000, tag=100 + it, overlap=overlap)
    return sched


def pop_trace(nprocs: int = 64, iters: int = 6) -> Schedule:
    """POP: 2-D blocks, small nearest-neighbor halos + global reductions.

    The barotropic solver all-reduces every iteration; those collectives
    (and the tiny eager halos) keep the offloadable fraction low — the
    paper's POP speedup is correspondingly the smallest (0.7 %).
    """
    sched = Schedule(name="POP")
    dims = _grid_dims(nprocs, 2)
    for it in range(iters):
        _halo_iteration(sched, dims, msg_bytes=2 * 1024,
                        compute_ns=230_000, tag=200 + 10 * it, overlap=0.3)
        _allreduce(sched, nprocs, nbytes=8, tag=1000 + 16 * it)
    return sched


def comd_trace(nprocs: int = 64, iters: int = 6) -> Schedule:
    """coMD: 3-D domain decomposition, 6 neighbors, atom halo exchanges."""
    sched = Schedule(name="coMD")
    dims = _grid_dims(nprocs, 3)
    for it in range(iters):
        # Position halos overlap the force loop; the redistribute step
        # blocks (recovery ≈ 0.6 of the overhead).
        overlap = 0.9 if it % 3 != 2 else 0.0
        _halo_iteration(sched, dims, msg_bytes=32 * 1024,
                        compute_ns=120_000, tag=300 + it, overlap=overlap)
    return sched


def cloverleaf_trace(nprocs: int = 64, iters: int = 6) -> Schedule:
    """Cloverleaf: 2-D Eulerian grid, 4 neighbors, mixed halo sizes."""
    sched = Schedule(name="Cloverleaf")
    dims = _grid_dims(nprocs, 2)
    for it in range(iters):
        # Half the exchanges overlap the hydro kernels; the small control
        # halos block (recovery ≈ 0.54 of the overhead).
        overlap = 0.9 if it % 2 == 0 else 0.0
        _halo_iteration(sched, dims, msg_bytes=40 * 1024,
                        compute_ns=125_000, tag=400 + 10 * it, overlap=overlap)
        _halo_iteration(sched, dims, msg_bytes=4 * 1024,
                        compute_ns=36_000, tag=405 + 10 * it, overlap=0.0)
    return sched


#: name → (generator, paper procs, paper ovhd %, paper speedup %)
APP_TRACES = {
    "MILC": (milc_trace, 64, 5.5, 3.6),
    "POP": (pop_trace, 64, 3.1, 0.7),
    "coMD": (comd_trace, 72, 6.1, 3.7),
    "Cloverleaf": (cloverleaf_trace, 72, 5.2, 2.8),
}
