"""SPC trace tooling (§5.3).

The paper replays five traces from the Storage Performance Council [41]:
two OLTP traces from a large financial institution and three I/O traces
from a popular search engine.  Those traces are distributed under a
click-through license, so this module provides (per DESIGN.md's
substitution policy):

* a parser for the published SPC trace file format — ASCII records
  ``ASU,LBA,Size,Opcode,Timestamp`` — so the real traces drop in directly;
* synthetic generators reproducing the two workload families' published
  characteristics: *financial* is small-block, write-dominated (~77 %
  writes, 512 B–8 KiB, skewed hot region); *web search* is large-block,
  read-dominated (~99 % reads, 8–64 KiB, highly sequential);
* a closed-loop replayer over :class:`~repro.storage.raid.RaidCluster`
  that reports the trace processing time — the quantity whose RDMA→sPIN
  improvement the paper reports as 2.8 %–43.7 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.machine.config import MachineConfig
from repro.storage.raid import RaidCluster

__all__ = [
    "SPCRecord",
    "format_spc_trace",
    "generate_financial_trace",
    "generate_websearch_trace",
    "parse_spc_trace",
    "replay_trace_ns",
]

SECTOR = 512


@dataclass(frozen=True)
class SPCRecord:
    """One I/O in SPC trace format."""

    asu: int          # application storage unit
    lba: int          # logical block address (in sectors)
    size: int         # bytes, multiple of 512
    opcode: str       # "R" | "W"
    timestamp: float  # seconds from trace start

    def __post_init__(self) -> None:
        if self.opcode not in ("R", "W"):
            raise ValueError(f"bad opcode {self.opcode!r}")
        if self.size <= 0 or self.size % SECTOR:
            raise ValueError(f"size must be a positive multiple of {SECTOR}")
        if self.lba < 0 or self.timestamp < 0:
            raise ValueError("negative LBA or timestamp")


def parse_spc_trace(lines: Iterable[str]) -> list[SPCRecord]:
    """Parse SPC-format ASCII lines (rev 1.0.1: asu,lba,size,opcode,ts)."""
    records = []
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(",")
        if len(parts) < 5:
            raise ValueError(f"line {lineno}: expected 5 fields, got {len(parts)}")
        asu, lba, size, opcode, ts = parts[:5]
        records.append(
            SPCRecord(
                asu=int(asu), lba=int(lba), size=int(size),
                opcode=opcode.strip().upper(), timestamp=float(ts),
            )
        )
    return records


def format_spc_trace(records: Iterable[SPCRecord]) -> str:
    """Serialize records back to the SPC ASCII format."""
    return "\n".join(
        f"{r.asu},{r.lba},{r.size},{r.opcode},{r.timestamp:.6f}" for r in records
    )


def generate_financial_trace(
    nops: int = 200, seed: int = 1, region_sectors: int = 1 << 20
) -> list[SPCRecord]:
    """Synthetic financial-OLTP trace: small, skewed, write-heavy."""
    rng = np.random.default_rng(seed)
    records = []
    t = 0.0
    hot = rng.integers(0, region_sectors // 8)  # hot region base
    for _ in range(nops):
        write = rng.random() < 0.77
        size = SECTOR * int(rng.choice([1, 2, 4, 8, 16], p=[0.2, 0.2, 0.35, 0.15, 0.1]))
        if rng.random() < 0.7:  # skew toward the hot region
            lba = int(hot + rng.integers(0, region_sectors // 16))
        else:
            lba = int(rng.integers(0, region_sectors))
        t += float(rng.exponential(0.0005))
        records.append(SPCRecord(asu=0, lba=lba, size=size,
                                 opcode="W" if write else "R", timestamp=t))
    return records


def generate_websearch_trace(
    nops: int = 200, seed: int = 2, region_sectors: int = 1 << 20
) -> list[SPCRecord]:
    """Synthetic web-search trace: large, sequential, read-dominated."""
    rng = np.random.default_rng(seed)
    records = []
    t = 0.0
    lba = int(rng.integers(0, region_sectors))
    for _ in range(nops):
        write = rng.random() < 0.01
        size = SECTOR * int(rng.choice([16, 32, 64, 128], p=[0.3, 0.35, 0.25, 0.1]))
        if rng.random() < 0.8:  # sequential run
            lba += size // SECTOR
        else:
            lba = int(rng.integers(0, region_sectors))
        lba %= region_sectors
        t += float(rng.exponential(0.001))
        records.append(SPCRecord(asu=0, lba=lba, size=size,
                                 opcode="W" if write else "R", timestamp=t))
    return records


def replay_trace_ns(
    records: list[SPCRecord],
    mode: str,
    config: MachineConfig | str,
    ndata: int = 4,
    region_bytes: int = 1 << 20,
    window: int = 8,
) -> float:
    """Closed-loop replay with ``window`` outstanding ops; total time in ns.

    Writes run the striped RAID-5 update protocol; reads fetch from the
    data server owning the block.  LBAs wrap into the servers' regions.
    Production storage clients keep many requests in flight — the window is
    what exposes the RDMA protocol's server-CPU serialization against
    sPIN's parallel HPU processing (the §5.3 speedups).
    """
    raid = RaidCluster(mode, config, ndata=ndata, region_bytes=region_bytes,
                       with_memory=False)
    env = raid.env
    from repro.des.resources import Resource

    slots = Resource(env, capacity=max(1, window))
    outstanding = []

    def one_op(rec: SPCRecord):
        req = slots.request()
        yield req
        try:
            byte_addr = rec.lba * SECTOR
            if rec.opcode == "W":
                chunk = -(-rec.size // ndata)
                offset = byte_addr % max(region_bytes - chunk, 1)
                yield from raid.client_write(rec.size, offset=offset)
            else:
                node = (byte_addr // SECTOR) % ndata
                offset = byte_addr % max(region_bytes - rec.size, 1)
                yield from raid.client_read(node, rec.size, offset=offset)
        finally:
            slots.release(req)

    def client():
        start = env.now
        for rec in records:
            outstanding.append(env.process(one_op(rec)))
        yield env.all_of(outstanding)
        return env.now - start

    proc = env.process(client())
    elapsed_ps = env.run(until=proc)
    return elapsed_ps / 1000.0


from repro.campaign.registry import Param, scenario as campaign_scenario

_TRACE_FAMILIES = {
    "financial": generate_financial_trace,
    "websearch": generate_websearch_trace,
}


@campaign_scenario(
    "spc_replay",
    params=[
        Param("family", str, default="financial",
              choices=tuple(_TRACE_FAMILIES)),
        Param("trace_seed", int, default=11, help="trace generator seed"),
        Param("nops", int, default=40, help="I/Os to replay"),
        Param("mode", str, default="spin", choices=("rdma", "spin")),
        Param("config", str, default="int", choices=("int", "dis")),
    ],
    description="SPC trace replay over the RAID cluster (section 5.3)",
    tiny={"nops": 8},
    sweep={"family": ("financial", "websearch"), "mode": ("rdma", "spin"),
           "config": ("int", "dis")},
    tags=("storage", "trace"),
)
def _spc_replay_scenario(family: str, trace_seed: int, nops: int,
                         mode: str, config: str) -> dict:
    trace = _TRACE_FAMILIES[family](nops=nops, seed=trace_seed)
    return {"elapsed_ns": replay_trace_ns(trace, mode, config)}
