"""Distributed RAID storage use case (§5.3).

* :mod:`repro.storage.raid` — an in-memory RAID-5 object store (4 data
  nodes + 1 parity node) with both write protocols of Fig. 7b: the
  RDMA/CPU protocol and the sPIN NIC-offloaded protocol, plus offloaded
  reads.
* :mod:`repro.storage.spc` — Storage Performance Council (SPC-1-format)
  trace tooling: a parser for the published format and synthetic generators
  for the two workload families the paper replays (financial OLTP and web
  search), plus the replayer that produces the §5.3 speedups.
"""

from repro.storage.raid import RaidCluster, RAID_WRITE_TAG
from repro.storage.spc import (
    SPCRecord,
    generate_financial_trace,
    generate_websearch_trace,
    parse_spc_trace,
    replay_trace_ns,
)

__all__ = [
    "RAID_WRITE_TAG",
    "RaidCluster",
    "SPCRecord",
    "generate_financial_trace",
    "generate_websearch_trace",
    "parse_spc_trace",
    "replay_trace_ns",
]
