"""In-memory RAID-5 storage cluster (§5.3, Fig. 7b/7c).

Topology: rank 0 = client, ranks 1..ndata = data servers, rank ndata+1 =
parity server.  A write of N bytes is striped as N/ndata contiguous bytes
per data server; the parity region holds the XOR of the data chunks
(p' = p ⊕ n ⊕ n').

Write protocols (Fig. 7b):

* **rdma** — client put → server CPU (poll, read old + new, XOR, write
  new) → put diff → parity CPU (poll, read old parity, XOR, write) → ACK →
  server CPU → ACK → client.
* **spin** — client put → server payload handlers (DMA read old, XOR on
  the HPU, DMA write new, put diff *from the device*, per packet) → parity
  payload handlers fold each diff with handler concurrency control → parity
  completion handler ACKs from the device → the server's ACK-forward header
  handler relays to the client, all without any server CPU.

Reads: **rdma** models a Lustre-style request served by the server CPU;
**spin** serves it in the read header handler via put-from-host (C.3.5's
``primary_read_header_handler``).

Data paths move real bytes; :meth:`RaidCluster.verify` recomputes parity
with numpy and checks every stored block.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import PtlHPUAllocMem, spin_me
from repro.core.handlers import ReturnCode
from repro.core.nic import SpinNIC
from repro.des.resources import Resource
from repro.handlers_library import XOR_CYCLES_PER_BYTE, xor_bytes
from repro.machine.cluster import Cluster
from repro.machine.config import MachineConfig
from repro.network.topology import UniformLatency
from repro.machine.config import CROSS_POD_LATENCY_PS, config_by_name
from repro.portals.matching import MatchEntry
from repro.portals.types import ME_OP_PUT

__all__ = ["RAID_WRITE_TAG", "RaidCluster"]

RAID_WRITE_TAG = 40
RAID_READ_TAG = 41
PARITY_TAG = 53       # the paper's PARITY_TAG
SERVER_ACK_TAG = 30   # parity → data server
CLIENT_ACK_TAG = 31   # data server → client
READ_DATA_TAG = 42    # read replies to the client


class RaidCluster:
    """A RAID-5 storage array on the simulated fabric."""

    def __init__(
        self,
        mode: str,
        config: MachineConfig | str,
        ndata: int = 4,
        region_bytes: int = 1 << 20,
        with_memory: bool = False,
    ):
        if isinstance(config, str):
            config = config_by_name(config)
        if mode not in ("rdma", "spin"):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode
        self.ndata = ndata
        self.region_bytes = region_bytes
        self.with_memory = with_memory
        self.cluster = Cluster(
            ndata + 2,
            config=config,
            nic_factory=SpinNIC,
            topology=UniformLatency(latency=CROSS_POD_LATENCY_PS),
            with_memory=with_memory,
        )
        self.env = self.cluster.env
        self.client = self.cluster[0]
        self.data_nodes = [self.cluster[i + 1] for i in range(ndata)]
        self.parity_node = self.cluster[ndata + 1]
        self.mtu = config.loggp.mtu
        # Client-side ACK accounting.
        self.ack_counter = self.client.new_counter("client-acks")
        self.client.post_me(0, MatchEntry(
            match_bits=CLIENT_ACK_TAG, length=1 << 30, counter=self.ack_counter,
        ))
        self.read_counter = self.client.new_counter("client-reads")
        self.client.post_me(0, MatchEntry(
            match_bits=READ_DATA_TAG, length=1 << 30, counter=self.read_counter,
            options=ME_OP_PUT,
        ))
        if mode == "rdma":
            self._setup_rdma()
        else:
            self._setup_spin()
        # Reference state for verification.
        self._expected = [np.zeros(region_bytes, np.uint8) for _ in range(ndata)]
        # Cumulative completion bookkeeping (supports concurrent operations).
        self._acks_promised = 0
        self._reads_promised = 0

    # ------------------------------------------------------------------
    def _setup_rdma(self) -> None:
        # Incoming writes/diffs land in a staging area behind the data
        # region (a bounce buffer): the CPU protocol then reads old + new
        # and updates the region — the extra copy RDMA cannot avoid.
        for node in self.data_nodes:
            eq = node.new_eq()
            node.post_me(0, MatchEntry(match_bits=RAID_WRITE_TAG,
                                       start=self.region_bytes,
                                       length=self.region_bytes, event_queue=eq))
            req = node.new_eq()
            node.post_me(0, MatchEntry(match_bits=RAID_READ_TAG,
                                       length=1 << 20, event_queue=req))
            ack = node.new_eq()
            node.post_me(0, MatchEntry(match_bits=SERVER_ACK_TAG, length=16,
                                       event_queue=ack))
            self.env.process(self._rdma_data_server(node, eq, ack))
            self.env.process(self._rdma_read_server(node, req))
        # One source-filtered staging area per data server so concurrent
        # diffs never collide in the bounce buffer.
        peq = self.parity_node.new_eq()
        for i, node in enumerate(self.data_nodes):
            self.parity_node.post_me(0, MatchEntry(
                match_bits=PARITY_TAG, source=node.rank,
                start=self.region_bytes * (1 + i),
                length=self.region_bytes, event_queue=peq,
            ))
        self.env.process(self._rdma_parity_server(peq))

    def _rdma_data_server(self, node, eq, ack_eq):
        while True:
            ev = yield from node.wait_event(eq)
            # Read old + staged new, XOR for the diff, write the new data.
            yield from node.cpu.touch(ev.length, passes=3, label="raid-rmw")
            yield from node.cpu.compute_cycles(
                ev.length * XOR_CYCLES_PER_BYTE, label="raid-xor"
            )
            diff = None
            if self.with_memory:
                staged = node.memory.read(self.region_bytes + ev.offset, ev.length)
                old = node.memory.read(ev.offset, ev.length)
                diff = np.bitwise_xor(staged, old)
                node.memory.write(ev.offset, staged)
            yield from node.host_put(
                self.parity_node.rank, ev.length, match_bits=PARITY_TAG,
                offset=ev.offset, hdr_data=ev.initiator, payload=diff,
            )
            ack = yield from node.wait_event(ack_eq)
            yield from node.host_put(int(ack.hdr_data), 1,
                                     match_bits=CLIENT_ACK_TAG)

    def _rdma_parity_server(self, eq):
        node = self.parity_node
        while True:
            ev = yield from node.wait_event(eq)
            yield from node.cpu.touch(ev.length, passes=3, label="parity-rmw")
            yield from node.cpu.compute_cycles(
                ev.length * XOR_CYCLES_PER_BYTE, label="parity-xor"
            )
            if self.with_memory:
                staging = self.region_bytes * (ev.initiator)  # server i+1 → area i+1
                diff = node.memory.read(staging + ev.offset, ev.length)
                parity = node.memory.view(ev.offset, ev.length)
                parity ^= diff
            yield from node.host_put(
                ev.initiator, 1, match_bits=SERVER_ACK_TAG, hdr_data=ev.hdr_data,
            )

    def _rdma_read_server(self, node, req_eq):
        while True:
            ev = yield from node.wait_event(req_eq)
            yield from node.cpu.match()
            yield from node.host_put(ev.initiator, int(ev.hdr_data),
                                     match_bits=READ_DATA_TAG)

    # ------------------------------------------------------------------
    def _setup_spin(self) -> None:
        parity_rank = self.parity_node.rank
        for node in self.data_nodes:
            node.post_me(0, spin_me(
                match_bits=RAID_WRITE_TAG, length=self.region_bytes,
                header_handler=self._primary_header,
                payload_handler=self._make_primary_payload(parity_rank),
                hpu_memory=PtlHPUAllocMem(node, 1024),
            ))
            node.post_me(0, spin_me(
                match_bits=RAID_READ_TAG, length=1 << 20,
                header_handler=self._primary_read_header,
                hpu_memory=PtlHPUAllocMem(node, 256),
            ))
            node.post_me(0, spin_me(
                match_bits=SERVER_ACK_TAG, length=16,
                header_handler=self._ack_forward_header,
                hpu_memory=PtlHPUAllocMem(node, 256),
            ))
        # Striped locks: diffs touching the same MTU-aligned parity range
        # serialize (RMW correctness); different ranges fold in parallel
        # across HPUs.
        stripe_locks: dict[int, Resource] = {}
        self.parity_node.post_me(0, spin_me(
            match_bits=PARITY_TAG, length=self.region_bytes,
            header_handler=self._parity_header,
            payload_handler=self._make_parity_payload(stripe_locks, self.mtu),
            completion_handler=self._parity_completion,
            hpu_memory=PtlHPUAllocMem(self.parity_node, 4096),
        ))

    # -- data-server handlers (per-message state keyed by msg id) ---------
    @staticmethod
    def _primary_header(ctx, h):
        ctx.charge(4)
        ctx.state.vars[("msg", h.msg_id)] = {
            "source": h.source, "client": h.hdr_data,
        }
        return ReturnCode.PROCESS_DATA

    def _make_primary_payload(self, parity_rank: int):
        def payload(ctx, p):
            # The ME-relative base already includes the put's remote offset;
            # handlers address packet-relative positions only.
            info = ctx.state.vars[("msg", ctx.message.msg_id)]
            old = yield from ctx.dma_from_host_b(p.payload_offset, p.payload_len)
            ctx.charge_per_byte(p.payload_len, XOR_CYCLES_PER_BYTE)
            diff = None
            new = None
            if old is not None and p.payload is not None:
                new = np.asarray(p.payload)
                diff = xor_bytes(old, new)
            yield from ctx.dma_to_host_b(new, p.payload_offset,
                                         nbytes=p.payload_len)
            yield from ctx.put_from_device(
                diff, target=parity_rank, match_bits=PARITY_TAG,
                nbytes=p.payload_len, hdr_data=info["client"],
                user_hdr={
                    "block_offset": ctx.message.offset + p.payload_offset,
                    "server": ctx.nic.rank,
                },
            )
            return ReturnCode.SUCCESS

        return payload

    @staticmethod
    def _primary_read_header(ctx, h):
        """C.3.5 primary_read_header_handler: serve the read from the NIC."""
        ctx.charge(6)
        nbytes = (h.user_hdr or {}).get("length", h.hdr_data) or h.hdr_data
        # The ME-relative base already includes the request's remote offset.
        yield from ctx.put_from_host(
            0, int(nbytes), target=h.source, match_bits=READ_DATA_TAG
        )
        return ReturnCode.DROP  # request consumed on the NIC

    @staticmethod
    def _ack_forward_header(ctx, h):
        """Forward the parity ACK straight to the client, from the device."""
        ctx.charge(4)
        yield from ctx.put_from_device(
            None, target=int(h.hdr_data), match_bits=CLIENT_ACK_TAG, nbytes=1
        )
        return ReturnCode.DROP

    # -- parity handlers ---------------------------------------------------
    @staticmethod
    def _parity_header(ctx, h):
        ctx.charge(6)
        user = h.user_hdr or {}
        ctx.state.vars[("msg", h.msg_id)] = {
            "source": h.source, "client": h.hdr_data,
            "block_offset": user.get("block_offset", h.offset),
        }
        return ReturnCode.PROCESS_DATA

    @staticmethod
    def _make_parity_payload(stripe_locks: dict, mtu: int):
        def payload(ctx, p):
            info = ctx.state.vars[("msg", ctx.message.msg_id)]
            base = info["block_offset"]
            # Handler concurrency control (§3.2): diffs for the same parity
            # range fold under a lock so read-modify-write never loses
            # updates; disjoint ranges proceed in parallel.
            stripe = (base + p.payload_offset) // mtu
            lock = stripe_locks.setdefault(stripe, Resource(ctx.env, capacity=1))
            req = lock.request()
            yield req
            try:
                old = yield from ctx.dma_from_host_b(base + p.payload_offset,
                                                     p.payload_len)
                ctx.charge_per_byte(p.payload_len, XOR_CYCLES_PER_BYTE)
                folded = None
                if old is not None and p.payload is not None:
                    folded = xor_bytes(old, np.asarray(p.payload))
                write_done = yield from ctx.dma_to_host_b(
                    folded, base + p.payload_offset, nbytes=p.payload_len
                )
                yield write_done
            finally:
                lock.release(req)
            return ReturnCode.SUCCESS

        return payload

    @staticmethod
    def _parity_completion(ctx, dropped_bytes, flow_control_triggered):
        info = ctx.state.vars.pop(("msg", ctx.message.msg_id))
        ctx.charge(4)
        yield from ctx.put_from_device(
            None, target=info["source"], match_bits=SERVER_ACK_TAG,
            nbytes=1, hdr_data=info["client"],
        )
        return ReturnCode.SUCCESS

    # ------------------------------------------------------------------
    def acks_for_write(self, total_bytes: int) -> int:
        """ACKs the client must collect for one striped write."""
        chunk = -(-total_bytes // self.ndata)
        if self.mode == "rdma":
            return self.ndata
        # sPIN: every MTU-sized diff message is ACKed independently.
        return sum(
            -(-min(chunk, total_bytes - i * chunk) // self.mtu)
            for i in range(self.ndata)
        )

    def client_write(self, total_bytes: int, offset: int = 0):
        """Striped write; completes when all ACKs arrived (Fig. 7c metric)."""
        chunk = -(-total_bytes // self.ndata)
        self._acks_promised += self.acks_for_write(total_bytes)
        expected = self._acks_promised
        rng = np.random.default_rng(total_bytes)
        for i, node in enumerate(self.data_nodes):
            nbytes = min(chunk, total_bytes - i * chunk)
            if nbytes <= 0:
                break
            payload = None
            if self.with_memory:
                payload = rng.integers(0, 256, nbytes, dtype=np.uint8)
                self._expected[i][offset : offset + nbytes] = payload
            yield from self.client.host_put(
                node.rank, nbytes, match_bits=RAID_WRITE_TAG,
                offset=offset, payload=payload, hdr_data=self.client.rank,
            )
        gate = self.env.event()
        self.ack_counter.on_threshold(expected, lambda: gate.succeed(self.env.now))
        yield gate
        yield from self.client.cpu.poll()
        return self.env.now

    def client_read(self, node_index: int, nbytes: int, offset: int = 0):
        """Read ``nbytes`` from one data server (request/reply protocol)."""
        node = self.data_nodes[node_index]
        self._reads_promised += 1
        expected = self._reads_promised
        yield from self.client.host_put(
            node.rank, 0, match_bits=RAID_READ_TAG, offset=offset,
            hdr_data=nbytes, user_hdr={"length": nbytes},
        )
        gate = self.env.event()
        self.read_counter.on_threshold(expected, lambda: gate.succeed(self.env.now))
        yield gate
        yield from self.client.cpu.poll()
        return self.env.now

    # ------------------------------------------------------------------
    def verify(self) -> bool:
        """Check stored data and parity against the numpy reference."""
        if not self.with_memory:
            raise RuntimeError("verify() requires with_memory=True")
        for i, node in enumerate(self.data_nodes):
            if not np.array_equal(
                node.memory.read(0, self.region_bytes), self._expected[i]
            ):
                return False
        expected_parity = np.zeros(self.region_bytes, np.uint8)
        for arr in self._expected:
            expected_parity ^= arr
        return np.array_equal(
            self.parity_node.memory.read(0, self.region_bytes), expected_parity
        )
