"""Discrete-event simulation kernel.

A small, dependency-free, generator-based discrete-event engine in the style
of SimPy, purpose-built for the sPIN reproduction.  Simulated processes are
Python generators that ``yield`` events (timeouts, resource requests, other
processes); the :class:`~repro.des.engine.Environment` steps the global event
queue in timestamp order.

Time is kept internally in integer **picoseconds** so that long simulations
never accumulate floating-point drift; the helpers :func:`~repro.des.engine.ns`
and :func:`~repro.des.engine.us` convert from the nanosecond/microsecond
quantities used throughout the paper.
"""

from repro.des.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
    ns,
    ps_to_ns,
    ps_to_us,
    us,
)
from repro.des.resources import RateLimiter, Resource, Server, Store
from repro.des.trace import Span, Timeline, render_timeline

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "RateLimiter",
    "Resource",
    "Server",
    "SimulationError",
    "Span",
    "Store",
    "Timeline",
    "Timeout",
    "ns",
    "ps_to_ns",
    "ps_to_us",
    "render_timeline",
    "us",
]
