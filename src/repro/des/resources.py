"""Shared-resource primitives built on the DES kernel.

These model the contention points of the simulated system:

* :class:`Resource` — a counted semaphore with FIFO queueing (CPU cores,
  HPU execution contexts).
* :class:`Server` — a serializing bandwidth port: callers occupy it for a
  service duration (host memory port, PCIe port, NIC wire).
* :class:`Store` — a FIFO item queue with blocking get (work queues).
* :class:`RateLimiter` — enforces a minimum spacing between grants (the LogGP
  ``g`` message-rate limit).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from repro.des.engine import (
    PRIORITY_URGENT,
    Environment,
    Event,
    SimulationError,
    Timeout,
    _PENDING,
)

__all__ = ["RateLimiter", "Resource", "ServeChain", "Server", "Store"]


class Request(Event):
    """A pending claim on a :class:`Resource` (fires when granted)."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        self.env = resource.env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self.resource = resource


class Resource:
    """Counted resource with FIFO discipline.

    Usage from a process::

        req = resource.request()
        yield req
        ...  # hold the resource
        resource.release(req)
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: set[Request] = set()
        self._waiting: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of outstanding (ungranted) requests."""
        return len(self._waiting)

    def request(self) -> Request:
        req = Request(self)
        if len(self._users) < self.capacity:
            # Uncontended: grant synchronously, with no kernel event.  The
            # request comes back already *processed* (callbacks is None), so
            # a waiting process resumes inline and a callback chain calls its
            # continuation directly — the queue round-trip the old
            # ``req.succeed()`` paid bought nothing but a tie-order slot.
            self._users.add(req)
            req._value = None
            req.callbacks = None
        else:
            self._waiting.append(req)
        return req

    def release(self, req) -> None:
        if req not in self._users:
            raise SimulationError("releasing a request that does not hold the resource")
        self._users.remove(req)
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.add(nxt)
            nxt.succeed()

    def cancel(self, req: Request) -> None:
        """Withdraw an ungranted request (no-op if already granted)."""
        try:
            self._waiting.remove(req)
        except ValueError:
            pass

    def reset(self) -> None:
        """Forget all holders/waiters (cluster reuse; see Session pooling)."""
        self._users.clear()
        self._waiting.clear()

    def use(self, duration: int) -> Generator[Any, Any, None]:
        """Sub-process helper: hold the resource for ``duration`` ps."""
        req = self.request()
        yield req
        try:
            yield self.env.timeout(duration)
        finally:
            self.release(req)


class Server:
    """A serializing service port (bandwidth pipe).

    ``serve(duration)`` queues FIFO behind earlier work and occupies the port
    for ``duration`` picoseconds.  This is how the host memory port
    (150 GiB/s), the PCIe port (64 GiB/s) and the NIC wire (G per byte) are
    modelled: time-per-byte multiplied out by the caller.
    """

    def __init__(self, env: Environment, name: str = "server"):
        self.env = env
        self.name = name
        self._resource = Resource(env, capacity=1)
        self.busy_time: int = 0
        self.jobs_served: int = 0

    def serve(self, duration: int) -> Generator[Any, Any, None]:
        """Process helper: wait for the port, then hold it for ``duration``."""
        if duration < 0:
            raise SimulationError(f"negative service duration {duration}")
        req = self._resource.request()
        yield req
        try:
            yield Timeout(self.env, duration)
            self.busy_time += duration
            self.jobs_served += 1
        finally:
            self._resource.release(req)

    def release(self, req) -> None:
        """Release a raw :meth:`request`, granting any queued waiter."""
        self._resource.release(req)

    def request(self):
        """Issue a raw FIFO request on the underlying resource.

        Fast-path callback chains use the raw request/release pair (with
        their own service accounting) instead of the :meth:`serve`
        generator; both produce identical kernel event sequences.
        """
        return self._resource.request()

    @property
    def queue_length(self) -> int:
        return self._resource.queue_length

    def utilization(self, elapsed: Optional[int] = None) -> float:
        """Fraction of wall-clock the port was busy."""
        elapsed = self.env.now if elapsed is None else elapsed
        if elapsed <= 0:
            return 0.0
        return self.busy_time / elapsed

    def reset(self) -> None:
        """Zero the service accounting (cluster reuse)."""
        self.busy_time = 0
        self.jobs_served = 0
        self._resource.reset()


class ServeChain:
    """Callback mirror of ``env.process(server.serve(duration))``.

    Push-structure preserving: pseudo-initialize (URGENT), the server's
    real FIFO request/grant event, and a fire-and-forget callback at the
    serve-timeout position — no process, no generator.  Used by fast paths
    for fire-and-forget port occupancy (e.g. background DMA staging).
    ``then``, when given, runs right after the service accounting, at the
    position generator code following the serve would run.
    """

    __slots__ = ("server", "duration", "req", "then")

    def __init__(self, server: Server, duration: int,
                 then: Optional[Any] = None):
        if duration < 0:
            raise SimulationError(f"negative service duration {duration}")
        self.server = server
        self.duration = duration
        self.req = None
        self.then = then
        # Request synchronously (no URGENT 0-delay hop): construction order
        # is FIFO order either way, and ``_done``'s timestamp is unchanged.
        self.req = req = server._resource.request()
        if req.callbacks is None:
            self._granted(req)
        else:
            req.callbacks.append(self._granted)

    def _granted(self, _event: Event) -> None:
        self.server.env.schedule_fn(self.duration, self._done)

    def _done(self) -> None:
        server = self.server
        server.busy_time += self.duration
        server.jobs_served += 1
        server._resource.release(self.req)
        self.req = None
        if self.then is not None:
            self.then()


class Store:
    """Unbounded FIFO queue of items with blocking ``get``."""

    def __init__(self, env: Environment):
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item (never blocks)."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event firing with the next item."""
        event = Event(self.env)
        if self._items:
            # Item available: deliver synchronously (processed, no kernel
            # event) — matches the uncontended Resource.request fast path.
            event._value = self._items.popleft()
            event.callbacks = None
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking pop: (True, item) or (False, None)."""
        if self._items:
            return True, self._items.popleft()
        return False, None


class RateLimiter:
    """Enforces a minimum inter-grant gap (LogGP ``g``).

    Each ``wait_turn()`` call returns an event that fires no earlier than
    ``gap`` picoseconds after the previous grant.  Grants are FIFO.
    """

    def __init__(self, env: Environment, gap: int):
        if gap < 0:
            raise SimulationError(f"negative gap {gap}")
        self.env = env
        self.gap = gap
        self._next_free: int = 0

    def claim(self) -> int:
        """Synchronously take the next grant slot; returns its absolute time.

        The event-free core of :meth:`wait_turn`: fast paths call this and
        schedule their own continuation at the returned time.
        """
        grant_at = max(self.env._now, self._next_free)
        self._next_free = grant_at + self.gap
        return grant_at

    def wait_turn(self) -> Event:
        return self.env.timeout(self.claim() - self.env._now)

    def reset(self) -> None:
        """Forget the grant history (cluster reuse)."""
        self._next_free = 0

    @property
    def next_free(self) -> int:
        """Earliest time the next grant could occur."""
        return max(self.env.now, self._next_free)
