"""Core discrete-event engine: environment, events, processes.

The design follows SimPy's proven architecture (events with callback lists,
generator-based processes) but is intentionally minimal: only the features the
sPIN simulation needs are implemented, and the whole kernel is small enough to
be audited in one sitting.

Units
-----
All timestamps and delays are integer **picoseconds**.  Use :func:`ns` /
:func:`us` to build delays from the paper's nanosecond/microsecond constants
and :func:`ps_to_ns` / :func:`ps_to_us` to convert results back for reporting.
Non-integer delays are rejected (or, for exactly-integral floats, coerced) at
construction: float timestamps would silently break both the canonical trace
encoding and the calendar queue's integer bucket keys.

Event queue
-----------
The default pending-event structure is an indexed **calendar queue**: events
are hashed into fixed-width time buckets by ``when >> _BUCKET_SHIFT``; future
buckets are plain append-lists (O(1) insertion) indexed by a small min-heap of
occupied bucket ids, and the *current* bucket is heapified once when the clock
enters it.  Bucket width is 2**20 ps ≈ 1.05 µs — wide relative to the LogGP
models' event horizon (per-packet gaps, overheads and match latencies are a
few ns to a few hundred ns), so near-term events heap-push straight into the
already-heapified current bucket, while coarser timers append to future
buckets in O(1) and are heapified at most once.  Queue entries are
4-slot lists recycled through a free list (arena-style: a drained entry is
reused by the next push instead of allocating).  Total order is exactly the
classic ``(time, priority, seq)`` triple — ``seq`` is unique, so bucket-local
heap ordering reproduces the global heap's pop order byte-for-byte, and
``Timeline.canonical_bytes()`` is invariant to the queue flavour.

Set ``REPRO_EVENT_QUEUE=heap`` to select the legacy binary-heap queue (tuples
in one ``heapq`` list) — kept as a differential-testing escape hatch.
"""

from __future__ import annotations

import os
from gc import disable as _gc_disable, enable as _gc_enable
from gc import isenabled as _gc_isenabled
from heapq import heapify, heappop, heappush
from operator import index as _as_int
from types import GeneratorType
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "ns",
    "ps_to_ns",
    "ps_to_us",
    "us",
]

#: Scheduling priorities: URGENT events at the same timestamp run before
#: NORMAL ones.  Used by the kernel itself (process resumption) — model code
#: rarely needs anything but NORMAL.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1

#: log2 of the calendar-queue bucket width in picoseconds (see module
#: docstring for the sizing argument).
_BUCKET_SHIFT = 20

# ``os.environ`` lookups go through ``_Environ.__getitem__`` (encode + dict +
# decode) — measurable on construction-heavy paths that consult fast-path
# switches per build.  On POSIX CPython the backing ``_data`` dict of encoded
# keys/values is stable and kept in sync by ``putenv``/``monkeypatch.setenv``,
# so read it directly; fall back to the mapping API anywhere it is absent.
_ENV_DATA = getattr(os.environ, "_data", None) if os.name == "posix" else None
_ENV_KEYS: dict[str, bytes] = {}


def _env_get(name: str) -> Optional[str]:
    """Cheap ``os.environ.get`` honouring live mutation (monkeypatch etc.)."""
    if _ENV_DATA is None:
        return os.environ.get(name)
    key = _ENV_KEYS.get(name)
    if key is None:
        _ENV_KEYS[name] = key = os.fsencode(name)
    raw = _ENV_DATA.get(key)
    return None if raw is None else os.fsdecode(raw)


def env_flag(name: str, default: bool = True) -> bool:
    """Parse an on/off environment switch.

    ``0``/``false``/``no``/``off`` and the empty string disable (any case);
    everything else enables.  Shared by the fast-path toggles
    (``REPRO_FABRIC_FAST_PATH``, ``REPRO_NIC_FAST_RX``) so every switch
    accepts the same spellings.
    """
    value = _env_get(name)
    if value is None:
        return default
    return value.strip().lower() not in ("0", "false", "no", "off", "")


def _queue_flavour() -> str:
    """Resolve ``REPRO_EVENT_QUEUE`` to ``calendar`` (default) or ``heap``."""
    value = _env_get("REPRO_EVENT_QUEUE")
    if value is None or value == "":
        return "calendar"
    value = value.strip().lower()
    if value not in ("calendar", "heap"):
        raise SimulationError(
            f"REPRO_EVENT_QUEUE={value!r}: expected 'calendar' or 'heap'"
        )
    return value


def ns(value: float) -> int:
    """Convert nanoseconds to integer picoseconds (round-to-nearest)."""
    return round(value * 1_000)


def us(value: float) -> int:
    """Convert microseconds to integer picoseconds (round-to-nearest)."""
    return round(value * 1_000_000)


def ps_to_ns(value: int) -> float:
    """Convert integer picoseconds to float nanoseconds."""
    return value / 1_000


def ps_to_us(value: int) -> float:
    """Convert integer picoseconds to float microseconds."""
    return value / 1_000_000


class SimulationError(Exception):
    """Raised for misuse of the kernel (double-trigger, bad yields, ...)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupting cause is available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


def _coerce_delay(delay: Any) -> int:
    """Validate a delay that is not a plain ``int``.

    Index-able integers (numpy ints, bools) pass through; floats are accepted
    only when exactly integral (the historical tolerance — a stray ``2.0``
    used to work by accident), everything else is a kernel-invariant
    violation and is rejected loudly.
    """
    try:
        return _as_int(delay)
    except TypeError:
        pass
    if isinstance(delay, float) and delay.is_integer():
        return int(delay)
    raise SimulationError(
        f"non-integer delay {delay!r}: simulation time is integer picoseconds"
        " (round at the call site)"
    )


# Sentinel distinguishing "not yet triggered" from a triggered None value.
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    triggers it, which schedules all registered callbacks to run at the
    current simulation time.  Triggering twice is an error.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state inspection --------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire (or has fired)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once all callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or the exception for failed events)."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional payload."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._seq = seq = env._seq + 1
        if env._heap is not None:
            heappush(env._heap, (env._now, PRIORITY_NORMAL, seq, self))
        else:
            # Inlined calendar push (see Environment._cal_push) — succeed()
            # is one of the kernel's hottest call sites.
            when = env._now
            free = env._free
            if free:
                entry = free.pop()
                entry[0] = when
                entry[1] = PRIORITY_NORMAL
                entry[2] = seq
                entry[3] = self
            else:
                entry = [when, PRIORITY_NORMAL, seq, self]
            if when >> env._shift == env._cur_id:
                heappush(env._cur, entry)
            else:
                env._cal_far(entry)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters will see the exception."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self, PRIORITY_NORMAL, 0)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (triggered) event."""
        if event._ok:
            self.succeed(event._value)
        else:
            self._defused = True
            self.fail(event._value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically after a fixed delay.

    Construction is flattened to a single scheduling step (no chained
    ``__init__``): timeouts are the kernel's hottest allocation.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: int, value: Any = None):
        if type(delay) is not int:
            delay = _coerce_delay(delay)
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env._seq = seq = env._seq + 1
        if env._heap is not None:
            heappush(env._heap, (env._now + delay, PRIORITY_NORMAL, seq, self))
        else:
            # Inlined calendar push — the kernel's hottest allocation site.
            when = env._now + delay
            free = env._free
            if free:
                entry = free.pop()
                entry[0] = when
                entry[1] = PRIORITY_NORMAL
                entry[2] = seq
                entry[3] = self
            else:
                entry = [when, PRIORITY_NORMAL, seq, self]
            if when >> env._shift == env._cur_id:
                heappush(env._cur, entry)
            else:
                env._cal_far(entry)


class _Callback:
    """A fire-and-forget queue entry: ``fn()`` runs at its scheduled time.

    The no-allocation alternative to a Timeout-plus-callback: no Event, no
    callbacks list, no value plumbing.  Created by
    :meth:`Environment.schedule_callback`; ``cancel()`` turns the entry
    into a no-op (it stays in the queue and is skipped when popped).
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[], None]):
        self.fn = fn

    def cancel(self) -> None:
        self.fn = None

    def __call__(self) -> None:
        fn = self.fn
        if fn is not None:
            fn()


class Initialize(Event):
    """Internal: kicks off a new process at the current time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self._defused = False
        env._seq = seq = env._seq + 1
        if env._heap is not None:
            heappush(env._heap, (env._now, PRIORITY_URGENT, seq, self))
        else:
            env._cal_push(env._now, PRIORITY_URGENT, seq, self)


class Process(Event):
    """Wraps a generator; the process event fires when the generator ends.

    The generator yields :class:`Event` instances; each yield suspends the
    process until the event fires, at which point the event's value is sent
    back into the generator (or its exception thrown).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Any, Any, Any],
        name: Optional[str] = None,
        _inline: bool = False,
    ):
        if type(generator) is not GeneratorType and not hasattr(generator, "send"):
            raise SimulationError(f"{generator!r} is not a generator")
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        if _inline:
            # Advance the body synchronously, as if it ran inline at the
            # call site (used by fast paths handing work back to generator
            # code mid-callback without an Initialize round-trip).
            boot = Event.__new__(Event)
            boot.env = env
            boot.callbacks = None
            boot._value = None
            boot._ok = True
            boot._defused = False
            self._resume(boot)
        else:
            Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        waiting on an event detaches it from that event.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self._target is self:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.env._schedule(interrupt_event, PRIORITY_URGENT, 0)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired event's outcome."""
        env = self.env
        target = self._target
        if target is not None and target is not event:
            # We were interrupted while waiting for _target; detach so the
            # stale wakeup does not resume us twice.
            if target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._target = None
        while True:
            env._active_process = self
            try:
                if event._ok:
                    result = self._generator.send(event._value)
                else:
                    event._defused = True
                    result = self._generator.throw(event._value)
            except StopIteration as stop:
                env._active_process = None
                self._ok = True
                self._value = stop.value
                env._seq = seq = env._seq + 1
                if env._heap is not None:
                    heappush(env._heap, (env._now, PRIORITY_NORMAL, seq, self))
                else:
                    when = env._now
                    free = env._free
                    if free:
                        entry = free.pop()
                        entry[0] = when
                        entry[1] = PRIORITY_NORMAL
                        entry[2] = seq
                        entry[3] = self
                    else:
                        entry = [when, PRIORITY_NORMAL, seq, self]
                    if when >> env._shift == env._cur_id:
                        heappush(env._cur, entry)
                    else:
                        env._cal_far(entry)
                return
            except BaseException as exc:
                env._active_process = None
                self._ok = False
                self._value = exc
                self._defused = False
                env._schedule(self, PRIORITY_NORMAL, 0)
                return
            env._active_process = None

            callbacks = result.callbacks if isinstance(result, Event) else None
            if callbacks is not None:
                callbacks.append(self._resume)
                self._target = result
                return
            if isinstance(result, Event):
                # Already processed (synchronous grant / ready store item /
                # long-fired event): deliver its outcome without a queue
                # round-trip, exactly as if the value had been sent inline.
                event = result
                continue
            raise SimulationError(
                f"process {self.name!r} yielded non-event {result!r}"
            )


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)
        if not self._events and not self.triggered:
            self.succeed(self._collect())

    def _collect(self) -> dict[Event, Any]:
        # Only *processed* events (callbacks already ran) carry a delivered
        # value; Timeouts pre-set their payload at construction, so testing
        # `triggered` here would wrongly include future timeouts.
        return {e: e._value for e in self._events if e.callbacks is None}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when all constituent events have fired (fails fast on error)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self._events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires when the first constituent event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


#: Optional instrumentation sink (see :mod:`repro.perf.meter`): when set,
#: every new Environment registers itself so perf harnesses can read kernel
#: event counts after a run without threading the env through every API.
_METER = None


class Environment:
    """The simulation clock and event queue.

    Two queue flavours (see module docstring): the default calendar queue
    and the legacy heap, selected per-environment at construction from
    ``REPRO_EVENT_QUEUE``.  Both implement the identical total order
    ``(time, priority, seq)``; ``_heap`` is the tuple heap in heap mode and
    ``None`` in calendar mode (push sites branch on that).
    """

    def __init__(self, initial_time: int = 0):
        self._now: int = initial_time
        self._seq: int = 0
        self._active_process: Optional[Process] = None
        self.queue_flavour: str = _queue_flavour()
        if self.queue_flavour == "heap":
            self._heap: Optional[list] = []
        else:
            self._heap = None
            self._shift: int = _BUCKET_SHIFT
            #: current (heapified) bucket + its id; pushes into the current
            #: bucket heappush here so mid-drain arrivals stay ordered.
            self._cur: list = []
            self._cur_id: int = (initial_time >> _BUCKET_SHIFT) - 1
            #: future buckets: id -> unsorted entry list, plus a min-heap of
            #: occupied ids (never stale: an id is pushed exactly when its
            #: bucket is created and popped when the bucket becomes current).
            self._buckets: dict[int, list] = {}
            self._bucket_ids: list[int] = []
            #: entry arena: drained [when, prio, seq, payload] lists are
            #: recycled instead of reallocated.
            self._free: list = []
        if _METER is not None:
            _METER.register(self)

    def reset(self) -> None:
        """Rewind a *drained* environment to t=0 for reuse.

        Session pooling (see :mod:`repro.sim.session`) rebinds a finished
        cluster to a fresh simulation instead of rebuilding it; the kernel
        side of that is rewinding the clock and the seq counter so the next
        run's ``(time, priority, seq)`` order is identical to a fresh
        environment's.  The calendar's entry arena deliberately survives —
        recycled entries are the point of the arena.  Raises if events are
        still pending: resetting a live queue would drop them silently.
        """
        if self._heap is not None:
            if self._heap:
                raise SimulationError("reset() with events still pending")
        elif self._cur or self._buckets:
            raise SimulationError("reset() with events still pending")
        if _METER is not None:
            # Bank the count before zeroing: a metered window must see
            # events from environments that are rewound inside it.
            _METER.flush(self._seq)
        self._now = 0
        self._seq = 0
        self._active_process = None
        if self._heap is None:
            self._cur_id = -1

    @property
    def events_scheduled(self) -> int:
        """Total kernel events pushed onto the queue so far (perf metric)."""
        return self._seq

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def now_ns(self) -> float:
        """Current simulation time in nanoseconds."""
        return self._now / 1_000

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped (None outside process code)."""
        return self._active_process

    # -- event factories -------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` picoseconds from now."""
        return Timeout(self, delay, value)

    def timeout_ns(self, delay_ns: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay_ns`` nanoseconds from now."""
        return Timeout(self, ns(delay_ns), value)

    def process(
        self, generator: Generator[Any, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Register a generator as a simulated process."""
        return Process(self, generator, name)

    def process_inline(
        self, generator: Generator[Any, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Register a process whose body starts *now*, inside this callback.

        Unlike :meth:`process` (which schedules an URGENT initialize event,
        starting the body after the current callback stack unwinds), the
        generator runs immediately up to its first yield — the event-order
        equivalent of having inlined its body at the call site.  Fast paths
        use this to hand mid-pipeline work back to generator code without
        perturbing the kernel event sequence.
        """
        return Process(self, generator, name, _inline=True)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling & stepping --------------------------------------------
    def _cal_push(self, when: int, priority: int, seq: int, payload: Any) -> None:
        """Insert into the calendar queue (callers already bumped ``_seq``)."""
        free = self._free
        if free:
            entry = free.pop()
            entry[0] = when
            entry[1] = priority
            entry[2] = seq
            entry[3] = payload
        else:
            entry = [when, priority, seq, payload]
        if when >> self._shift == self._cur_id:
            heappush(self._cur, entry)
        else:
            self._cal_far(entry)

    def _cal_far(self, entry: list) -> None:
        """Insert an entry whose bucket is not the current one (cold half of
        the push, shared by the inlined hot sites)."""
        bid = entry[0] >> self._shift
        buckets = self._buckets
        bucket = buckets.get(bid)
        if bucket is None:
            buckets[bid] = [entry]
            heappush(self._bucket_ids, bid)
        else:
            bucket.append(entry)

    def _advance_bucket(self) -> Optional[list]:
        """Make the earliest occupied bucket current; None if queue empty."""
        if self._cur:
            return self._cur
        ids = self._bucket_ids
        if not ids:
            return None
        bid = heappop(ids)
        self._cur = cur = self._buckets.pop(bid)
        self._cur_id = bid
        if len(cur) > 1:
            heapify(cur)
        return cur

    def _schedule(self, event: Event, priority: int, delay: int) -> None:
        self._seq = seq = self._seq + 1
        if self._heap is not None:
            heappush(self._heap, (self._now + delay, priority, seq, event))
        else:
            self._cal_push(self._now + delay, priority, seq, event)

    def schedule_callback(
        self,
        delay: int,
        fn: Callable[[], None],
        priority: int = PRIORITY_NORMAL,
    ) -> _Callback:
        """Fire-and-forget: run ``fn()`` ``delay`` picoseconds from now.

        The lightweight alternative to ``Timeout`` + callback for code that
        only needs deferred execution — no Event allocation, no value, no
        waiters.  Returns a handle whose ``cancel()`` makes the entry a
        no-op.  Exceptions raised by ``fn`` propagate out of ``step()``.
        """
        if type(delay) is not int:
            delay = _coerce_delay(delay)
        if delay < 0:
            raise SimulationError(f"negative callback delay {delay}")
        handle = _Callback(fn)
        self._seq = seq = self._seq + 1
        if self._heap is not None:
            heappush(self._heap, (self._now + delay, priority, seq, handle))
        else:
            when = self._now + delay
            free = self._free
            if free:
                entry = free.pop()
                entry[0] = when
                entry[1] = priority
                entry[2] = seq
                entry[3] = handle
            else:
                entry = [when, priority, seq, handle]
            if when >> self._shift == self._cur_id:
                heappush(self._cur, entry)
            else:
                self._cal_far(entry)
        return handle

    def schedule_fn(
        self,
        delay: int,
        fn: Callable[[], None],
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Like :meth:`schedule_callback`, but with no cancellation handle.

        The queue entry's payload is the bare callable — no ``_Callback``
        allocation.  This is the primitive the fast-path chains use: they
        schedule one hop per kernel event and never cancel.
        """
        if type(delay) is not int:
            delay = _coerce_delay(delay)
        if delay < 0:
            raise SimulationError(f"negative callback delay {delay}")
        self._seq = seq = self._seq + 1
        if self._heap is not None:
            heappush(self._heap, (self._now + delay, priority, seq, fn))
        else:
            when = self._now + delay
            free = self._free
            if free:
                entry = free.pop()
                entry[0] = when
                entry[1] = priority
                entry[2] = seq
                entry[3] = fn
            else:
                entry = [when, priority, seq, fn]
            if when >> self._shift == self._cur_id:
                heappush(self._cur, entry)
            else:
                self._cal_far(entry)

    def peek(self) -> Optional[int]:
        """Timestamp of the next scheduled event, or None if queue is empty.

        Purely observational: the calendar flavour must *not* promote a
        future bucket here.  Committing to a current bucket before the
        clock reaches it would misfile a later push with an earlier
        timestamp into a lower-id far bucket, which the drain loops only
        visit after emptying the (wrongly) current one — events would run
        out of time order.
        """
        if self._heap is not None:
            return self._heap[0][0] if self._heap else None
        cur = self._cur
        if cur:
            return cur[0][0]
        ids = self._bucket_ids
        if not ids:
            return None
        # The earliest occupied future bucket holds the globally earliest
        # entry, but it is an unsorted append-list — scan it.
        return min(entry[0] for entry in self._buckets[ids[0]])

    def step(self) -> None:
        """Process the next scheduled event."""
        if self._heap is not None:
            queue = self._heap
            if not queue:
                raise SimulationError("step() on an empty event queue")
            when, _prio, _seq, event = heappop(queue)
        else:
            cur = self._cur or self._advance_bucket()
            if not cur:
                raise SimulationError("step() on an empty event queue")
            entry = heappop(cur)
            when = entry[0]
            event = entry[3]
            self._free.append(entry)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        if not isinstance(event, Event):
            event()  # bare callable or _Callback handle
            return
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # An unhandled failure: surface it instead of silently dropping.
            raise event._value

    def run(self, until: Optional[int] = None) -> Any:
        """Run until the queue drains, a time is reached, or an event fires.

        ``until`` may be an absolute time (int picoseconds) or an
        :class:`Event`; in the latter case :meth:`run` returns the event's
        value when it fires.

        Cyclic GC is paused for the duration of the drain: the loop
        allocates heavily (entries, chains, generator frames) and nearly
        everything dies young by refcount, so generation scans mid-drain
        only burn time re-tracking short-lived objects.  Collection is
        deferred, not skipped — the pause is released on exit (exceptions
        included) and a GC the user disabled themselves stays disabled.
        """
        if _gc_isenabled():
            _gc_disable()
            try:
                return self._run(until)
            finally:
                _gc_enable()
        return self._run(until)

    def _run(self, until: Optional[int] = None) -> Any:
        if self._heap is not None:
            return self._run_heap(until)
        free = self._free
        buckets = self._buckets
        ids = self._bucket_ids
        if until is None:
            # Batched drain: the inner loop empties the whole current bucket
            # without re-probing the bucket map (the simulator's innermost
            # hot path; validated delays make step()'s past-check redundant).
            # The bucket advance is inlined — at small bucket occupancies it
            # runs nearly once per event.
            while True:
                cur = self._cur
                if not cur:
                    if not ids:
                        return None
                    bid = heappop(ids)
                    self._cur = cur = buckets.pop(bid)
                    self._cur_id = bid
                    if len(cur) > 1:
                        heapify(cur)
                while cur:
                    entry = heappop(cur)
                    self._now = entry[0]
                    event = entry[3]
                    free.append(entry)
                    if not isinstance(event, Event):
                        event()
                        continue
                    callbacks, event.callbacks = event.callbacks, None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
        if isinstance(until, Event):
            sentinel = until
            if sentinel.callbacks is None:
                return sentinel.value
            done: list = []
            sentinel.callbacks.append(done.append)
            while not done:
                cur = self._cur
                if not cur:
                    if not ids:
                        break
                    bid = heappop(ids)
                    self._cur = cur = buckets.pop(bid)
                    self._cur_id = bid
                    if len(cur) > 1:
                        heapify(cur)
                while cur:
                    entry = heappop(cur)
                    self._now = entry[0]
                    event = entry[3]
                    free.append(entry)
                    if not isinstance(event, Event):
                        event()
                    else:
                        callbacks, event.callbacks = event.callbacks, None
                        for callback in callbacks:
                            callback(event)
                        if not event._ok and not event._defused:
                            raise event._value
                    if done:
                        break
            if not done:
                raise SimulationError(
                    "simulation ran out of events before the awaited event fired"
                )
            if not sentinel._ok:
                raise sentinel._value
            return sentinel._value
        horizon = int(until)
        if horizon < self._now:
            raise SimulationError("cannot run() into the past")
        shift = self._shift
        while True:
            cur = self._cur
            if not cur:
                ids = self._bucket_ids
                # Earliest possible entry in the next bucket is its base
                # time; stop before heapifying a bucket past the horizon.
                if not ids or (ids[0] << shift) > horizon:
                    break
                cur = self._advance_bucket()
            if cur[0][0] > horizon:
                # Everything left in this bucket — and every later bucket —
                # lies beyond the horizon.
                break
            while cur and cur[0][0] <= horizon:
                self.step()
        self._now = horizon
        return None

    def _run_heap(self, until: Optional[int]) -> Any:
        """Legacy heap drain loops (``REPRO_EVENT_QUEUE=heap``)."""
        queue = self._heap
        if until is None:
            while queue:
                when, _prio, _seq, event = heappop(queue)
                self._now = when
                if not isinstance(event, Event):
                    event()
                    continue
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            return None
        if isinstance(until, Event):
            sentinel = until
            if sentinel.callbacks is None:
                return sentinel.value
            done = []
            sentinel.callbacks.append(done.append)
            while queue and not done:
                when, _prio, _seq, event = heappop(queue)
                self._now = when
                if not isinstance(event, Event):
                    event()
                    continue
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            if not done:
                raise SimulationError(
                    "simulation ran out of events before the awaited event fired"
                )
            if not sentinel._ok:
                raise sentinel._value
            return sentinel._value
        horizon = int(until)
        if horizon < self._now:
            raise SimulationError("cannot run() into the past")
        step = self.step
        while queue and queue[0][0] <= horizon:
            step()
        self._now = horizon
        return None
