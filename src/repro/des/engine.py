"""Core discrete-event engine: environment, events, processes.

The design follows SimPy's proven architecture (events with callback lists,
generator-based processes) but is intentionally minimal: only the features the
sPIN simulation needs are implemented, and the whole kernel is small enough to
be audited in one sitting.

Units
-----
All timestamps and delays are integer **picoseconds**.  Use :func:`ns` /
:func:`us` to build delays from the paper's nanosecond/microsecond constants
and :func:`ps_to_ns` / :func:`ps_to_us` to convert results back for reporting.
"""

from __future__ import annotations

from heapq import heappop, heappush
from types import GeneratorType
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "ns",
    "ps_to_ns",
    "ps_to_us",
    "us",
]

#: Scheduling priorities: URGENT events at the same timestamp run before
#: NORMAL ones.  Used by the kernel itself (process resumption) — model code
#: rarely needs anything but NORMAL.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


def env_flag(name: str, default: bool = True) -> bool:
    """Parse an on/off environment switch.

    ``0``/``false``/``no``/``off`` and the empty string disable (any case);
    everything else enables.  Shared by the fast-path toggles
    (``REPRO_FABRIC_FAST_PATH``, ``REPRO_NIC_FAST_RX``) so every switch
    accepts the same spellings.
    """
    import os

    value = os.environ.get(name)
    if value is None:
        return default
    return value.strip().lower() not in ("0", "false", "no", "off", "")


def ns(value: float) -> int:
    """Convert nanoseconds to integer picoseconds (round-to-nearest)."""
    return round(value * 1_000)


def us(value: float) -> int:
    """Convert microseconds to integer picoseconds (round-to-nearest)."""
    return round(value * 1_000_000)


def ps_to_ns(value: int) -> float:
    """Convert integer picoseconds to float nanoseconds."""
    return value / 1_000


def ps_to_us(value: int) -> float:
    """Convert integer picoseconds to float microseconds."""
    return value / 1_000_000


class SimulationError(Exception):
    """Raised for misuse of the kernel (double-trigger, bad yields, ...)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupting cause is available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Sentinel distinguishing "not yet triggered" from a triggered None value.
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    triggers it, which schedules all registered callbacks to run at the
    current simulation time.  Triggering twice is an error.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state inspection --------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire (or has fired)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once all callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or the exception for failed events)."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional payload."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._seq = seq = env._seq + 1
        heappush(env._queue, (env._now, PRIORITY_NORMAL, seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters will see the exception."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self, PRIORITY_NORMAL, 0)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (triggered) event."""
        if event._ok:
            self.succeed(event._value)
        else:
            self._defused = True
            self.fail(event._value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically after a fixed delay.

    Construction is flattened to a single ``_schedule`` call (no chained
    ``__init__``): timeouts are the kernel's hottest allocation.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env._seq = seq = env._seq + 1
        heappush(env._queue, (env._now + delay, PRIORITY_NORMAL, seq, self))


class _Callback:
    """A fire-and-forget queue entry: ``fn()`` runs at its scheduled time.

    The no-allocation alternative to a Timeout-plus-callback: no Event, no
    callbacks list, no value plumbing.  Created by
    :meth:`Environment.schedule_callback`; ``cancel()`` turns the entry
    into a no-op (it stays in the heap and is skipped when popped).
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[], None]):
        self.fn = fn

    def cancel(self) -> None:
        self.fn = None


class Initialize(Event):
    """Internal: kicks off a new process at the current time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self._defused = False
        env._seq = seq = env._seq + 1
        heappush(env._queue, (env._now, PRIORITY_URGENT, seq, self))


class Process(Event):
    """Wraps a generator; the process event fires when the generator ends.

    The generator yields :class:`Event` instances; each yield suspends the
    process until the event fires, at which point the event's value is sent
    back into the generator (or its exception thrown).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Any, Any, Any],
        name: Optional[str] = None,
        _inline: bool = False,
    ):
        if type(generator) is not GeneratorType and not hasattr(generator, "send"):
            raise SimulationError(f"{generator!r} is not a generator")
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        if _inline:
            # Advance the body synchronously, as if it ran inline at the
            # call site (used by fast paths handing work back to generator
            # code mid-callback without an Initialize round-trip).
            boot = Event.__new__(Event)
            boot.env = env
            boot.callbacks = None
            boot._value = None
            boot._ok = True
            boot._defused = False
            self._resume(boot)
        else:
            Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        waiting on an event detaches it from that event.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self._target is self:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.env._schedule(interrupt_event, PRIORITY_URGENT, 0)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired event's outcome."""
        env = self.env
        target = self._target
        if target is not None and target is not event:
            # We were interrupted while waiting for _target; detach so the
            # stale wakeup does not resume us twice.
            if target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._target = None
        env._active_process = self
        try:
            if event._ok:
                result = self._generator.send(event._value)
            else:
                event._defused = True
                result = self._generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            self._ok = True
            self._value = stop.value
            env._seq = seq = env._seq + 1
            heappush(env._queue, (env._now, PRIORITY_NORMAL, seq, self))
            return
        except BaseException as exc:
            env._active_process = None
            self._ok = False
            self._value = exc
            self._defused = False
            env._schedule(self, PRIORITY_NORMAL, 0)
            return
        env._active_process = None

        callbacks = result.callbacks if isinstance(result, Event) else None
        if callbacks is not None:
            callbacks.append(self._resume)
            self._target = result
        elif isinstance(result, Event):
            # Already processed: resume immediately at the current time.
            immediate = Event(env)
            immediate.callbacks.append(self._resume)
            immediate.trigger(result)
            self._target = immediate
        else:
            raise SimulationError(
                f"process {self.name!r} yielded non-event {result!r}"
            )


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)
        if not self._events and not self.triggered:
            self.succeed(self._collect())

    def _collect(self) -> dict[Event, Any]:
        # Only *processed* events (callbacks already ran) carry a delivered
        # value; Timeouts pre-set their payload at construction, so testing
        # `triggered` here would wrongly include future timeouts.
        return {e: e._value for e in self._events if e.callbacks is None}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when all constituent events have fired (fails fast on error)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self._events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires when the first constituent event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


#: Optional instrumentation sink (see :mod:`repro.perf.meter`): when set,
#: every new Environment registers itself so perf harnesses can read kernel
#: event counts after a run without threading the env through every API.
_METER = None


class Environment:
    """The simulation clock and event queue."""

    def __init__(self, initial_time: int = 0):
        self._now: int = initial_time
        self._queue: list[tuple[int, int, int, Event]] = []
        self._seq: int = 0
        self._active_process: Optional[Process] = None
        if _METER is not None:
            _METER.register(self)

    @property
    def events_scheduled(self) -> int:
        """Total kernel events pushed onto the queue so far (perf metric)."""
        return self._seq

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def now_ns(self) -> float:
        """Current simulation time in nanoseconds."""
        return self._now / 1_000

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped (None outside process code)."""
        return self._active_process

    # -- event factories -------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` picoseconds from now."""
        return Timeout(self, delay, value)

    def timeout_ns(self, delay_ns: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay_ns`` nanoseconds from now."""
        return Timeout(self, ns(delay_ns), value)

    def process(
        self, generator: Generator[Any, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Register a generator as a simulated process."""
        return Process(self, generator, name)

    def process_inline(
        self, generator: Generator[Any, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Register a process whose body starts *now*, inside this callback.

        Unlike :meth:`process` (which schedules an URGENT initialize event,
        starting the body after the current callback stack unwinds), the
        generator runs immediately up to its first yield — the event-order
        equivalent of having inlined its body at the call site.  Fast paths
        use this to hand mid-pipeline work back to generator code without
        perturbing the kernel event sequence.
        """
        return Process(self, generator, name, _inline=True)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling & stepping --------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: int) -> None:
        self._seq = seq = self._seq + 1
        heappush(self._queue, (self._now + delay, priority, seq, event))

    def schedule_callback(
        self,
        delay: int,
        fn: Callable[[], None],
        priority: int = PRIORITY_NORMAL,
    ) -> _Callback:
        """Fire-and-forget: run ``fn()`` ``delay`` picoseconds from now.

        The lightweight alternative to ``Timeout`` + callback for code that
        only needs deferred execution — no Event allocation, no value, no
        waiters.  Returns a handle whose ``cancel()`` makes the entry a
        no-op.  Exceptions raised by ``fn`` propagate out of ``step()``.
        """
        if delay < 0:
            raise SimulationError(f"negative callback delay {delay}")
        entry = _Callback(fn)
        self._seq = seq = self._seq + 1
        heappush(self._queue, (self._now + delay, priority, seq, entry))
        return entry

    def peek(self) -> Optional[int]:
        """Timestamp of the next scheduled event, or None if queue is empty."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> None:
        """Process the next scheduled event."""
        queue = self._queue
        if not queue:
            raise SimulationError("step() on an empty event queue")
        when, _prio, _seq, event = heappop(queue)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        if event.__class__ is _Callback:
            fn = event.fn
            if fn is not None:
                fn()
            return
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # An unhandled failure: surface it instead of silently dropping.
            raise event._value

    def run(self, until: Optional[int] = None) -> Any:
        """Run until the queue drains, a time is reached, or an event fires.

        ``until`` may be an absolute time (int picoseconds) or an
        :class:`Event`; in the latter case :meth:`run` returns the event's
        value when it fires.
        """
        queue = self._queue
        if until is None:
            # Inlined step loop: the per-event dispatch is the simulator's
            # innermost hot path (validated delays make the past-check of
            # step() redundant here).
            while queue:
                when, _prio, _seq, event = heappop(queue)
                self._now = when
                if event.__class__ is _Callback:
                    fn = event.fn
                    if fn is not None:
                        fn()
                    continue
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            return None
        if isinstance(until, Event):
            sentinel = until
            if sentinel.callbacks is None:
                return sentinel.value
            done = []
            sentinel.callbacks.append(done.append)
            while queue and not done:
                when, _prio, _seq, event = heappop(queue)
                self._now = when
                if event.__class__ is _Callback:
                    fn = event.fn
                    if fn is not None:
                        fn()
                    continue
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            if not done:
                raise SimulationError(
                    "simulation ran out of events before the awaited event fired"
                )
            if not sentinel._ok:
                raise sentinel._value
            return sentinel._value
        horizon = int(until)
        if horizon < self._now:
            raise SimulationError("cannot run() into the past")
        step = self.step
        while queue and queue[0][0] <= horizon:
            step()
        self._now = horizon
        return None
