"""Execution timeline tracing.

The paper's appendix shows per-rank timelines with lanes for the CPU, the
NIC, the DMA engine, and each HPU.  :class:`Timeline` collects
:class:`Span` records from the simulation, and :func:`render_timeline`
renders them as ASCII diagrams (the reproduction's analogue of Appendix C's
trace figures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["Span", "Timeline", "render_timeline", "span_category"]

#: Span categories, keyed by exact lane name.  Lanes not listed here are
#: classified by prefix in :func:`span_category` (``HPU<i>`` → ``hpu``).
_LANE_CATEGORIES = {
    "CPU": "cpu",
    "NIC": "rx",
    "NIC-tx": "tx",
    "DMA": "dma",
}


def span_category(lane: str) -> str:
    """Coarse resource category for a timeline lane name.

    The observability layer (:mod:`repro.obs`) groups lanes into
    categories — ``cpu``, ``rx`` (match unit), ``tx`` (wire injection),
    ``dma``, ``hpu`` — for occupancy roll-ups and Perfetto track naming.
    Unknown lanes report ``"other"`` rather than raising, so scenario
    code may record custom lanes freely.
    """
    cat = _LANE_CATEGORIES.get(lane)
    if cat is not None:
        return cat
    if lane.startswith("HPU"):
        return "hpu"
    return "other"


@dataclass(frozen=True, slots=True)
class Span:
    """A half-open busy interval [start, end) on one lane of one rank."""

    rank: int
    lane: str
    start: int
    end: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"span ends before it starts: {self}")

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class Timeline:
    """Collects spans; cheap to disable (``enabled=False`` drops everything).

    Per-lane busy totals and the global extent are maintained incrementally
    on :meth:`record`, so :meth:`busy_time` and :meth:`extent` are O(1) —
    they were profiled hot (full rescans of ``spans``) in trace-enabled SPC
    runs.  Out-of-band edits to ``spans`` are detected by *length change
    only*: appends/removals trigger a rebuild on the next read, but a
    same-length in-place replacement is invisible — call :meth:`_retally`
    after such edits (``canonical_bytes``/``digest`` read the list directly
    and are always exact).
    """

    enabled: bool = True
    spans: list[Span] = field(default_factory=list)
    _busy: dict = field(default_factory=dict, repr=False, compare=False)
    _t0: int = field(default=0, repr=False, compare=False)
    _t1: int = field(default=0, repr=False, compare=False)
    _tallied: int = field(default=0, repr=False, compare=False)

    #: Observer probe slot (see :mod:`repro.obs`): an attached observer
    #: sets an *instance* attribute ``(rank, lane, start, end, label) ->
    #: None`` called after each recorded span.  The class-level ``None``
    #: keeps the default path to one identity test; the probe is a pure
    #: reader — span storage and ``canonical_bytes()`` are unaffected.
    _probe = None

    def record(self, rank: int, lane: str, start: int, end: int, label: str = "") -> None:
        if not self.enabled:
            return
        if self._tallied != len(self.spans):
            self._retally()
        self.spans.append(Span(rank, lane, start, end, label))
        self._tally(rank, lane, start, end)
        if self._probe is not None:
            self._probe(rank, lane, start, end, label)

    def _tally(self, rank: int, lane: str, start: int, end: int) -> None:
        key = (rank, lane)
        busy = self._busy
        busy[key] = busy.get(key, 0) + (end - start)
        if self._tallied == 0:
            self._t0, self._t1 = start, end
        else:
            if start < self._t0:
                self._t0 = start
            if end > self._t1:
                self._t1 = end
        self._tallied += 1

    def _retally(self) -> None:
        """Rebuild the incremental totals after out-of-band span edits.

        Rebuilds in place — ``self.spans`` is never rebound, so external
        aliases to the list stay live.
        """
        self._busy = {}
        self._tallied = 0
        self._t0 = self._t1 = 0
        for s in self.spans:
            self._tally(s.rank, s.lane, s.start, s.end)

    def lanes(self, rank: Optional[int] = None) -> list[tuple[int, str]]:
        """Distinct (rank, lane) pairs in first-appearance order."""
        seen: dict[tuple[int, str], None] = {}
        for span in self.spans:
            if rank is None or span.rank == rank:
                seen.setdefault((span.rank, span.lane), None)
        return list(seen)

    def busy_time(self, rank: int, lane: str) -> int:
        """Total busy picoseconds on a lane (spans assumed non-overlapping)."""
        if self._tallied != len(self.spans):
            self._retally()
        return self._busy.get((rank, lane), 0)

    def clear(self) -> None:
        """Drop all recorded spans (keeps the enabled flag).

        ``spans`` is cleared in place so external references stay valid,
        mirroring :meth:`_retally`'s contract.
        """
        self.spans.clear()
        self._busy.clear()
        self._t0 = self._t1 = 0
        self._tallied = 0

    def extent(self) -> tuple[int, int]:
        """(min start, max end) over all spans; (0, 0) if empty."""
        if not self.spans:
            return (0, 0)
        if self._tallied != len(self.spans):
            self._retally()
        return (self._t0, self._t1)

    def canonical_bytes(self) -> bytes:
        """Byte-exact encoding of the recorded spans, in recording order.

        Two simulation runs are event-trace identical iff these bytes are
        identical — the golden-trace regression tests hash this.
        """
        return "\n".join(
            f"{s.rank}|{s.lane}|{s.start}|{s.end}|{s.label}" for s in self.spans
        ).encode()

    def digest(self) -> str:
        """SHA-256 hex digest of :meth:`canonical_bytes`."""
        import hashlib

        return hashlib.sha256(self.canonical_bytes()).hexdigest()


def render_timeline(
    timeline: Timeline,
    width: int = 100,
    ranks: Optional[Iterable[int]] = None,
) -> str:
    """Render collected spans as an ASCII Gantt chart.

    Each (rank, lane) becomes one row; busy intervals are drawn with ``#``.
    The output mirrors the appendix trace diagrams well enough to eyeball
    pipelining (e.g. streaming handlers overlapping the incoming message).
    """
    spans = timeline.spans
    if ranks is not None:
        wanted = set(ranks)
        spans = [s for s in spans if s.rank in wanted]
    if not spans:
        return "(empty timeline)"

    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    extent = max(t1 - t0, 1)
    scale = width / extent

    lanes: dict[tuple[int, str], list[Span]] = {}
    for span in spans:
        lanes.setdefault((span.rank, span.lane), []).append(span)

    label_width = max(len(f"r{r} {lane}") for r, lane in lanes) + 1
    lines = [
        f"{'':<{label_width}}|{'-' * width}|  "
        f"t0={t0 / 1e6:.3f}us span={extent / 1e6:.3f}us"
    ]
    for (rank, lane), lane_spans in sorted(lanes.items()):
        row = [" "] * width
        for span in lane_spans:
            a = int((span.start - t0) * scale)
            b = int((span.end - t0) * scale)
            b = max(b, a + 1)
            for i in range(a, min(b, width)):
                row[i] = "#"
        lines.append(f"{f'r{rank} {lane}':<{label_width}}|{''.join(row)}|")
    return "\n".join(lines)
