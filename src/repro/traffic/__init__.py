"""Traffic-pattern subsystem: declarative specs lowered onto sessions.

The layers, bottom-up:

* :mod:`repro.traffic.spec` — the vocabulary: source processes
  (:class:`Periodic`, :class:`Poisson`, :class:`BurstyOnOff`,
  :class:`TraceReplay`), :class:`Edge`, graph constructors
  (:func:`all_to_one`, :func:`one_to_all`, :func:`permutation`,
  :func:`pairwise`), and the composing :class:`TrafficSpec`;
* :mod:`repro.traffic.trace` — :class:`TraceEvent` records plus JSONL
  :func:`save_trace` / :func:`load_trace`;
* :mod:`repro.traffic.run` — :class:`TrafficRun`, which lowers a spec
  onto a live :class:`~repro.sim.session.Session` through the driver
  machinery and optionally feeds a
  :class:`~repro.sim.metrics.WindowedMetrics` time-resolved sink;
* :mod:`repro.traffic.scenarios` — the registered ``traffic`` campaign
  family (``bursting_load``, ``incast_transient``, ``replay_trace``,
  ``burst_under_flap``).
"""

from repro.traffic.run import TrafficRun
from repro.traffic.spec import (
    TRAFFIC_TAG,
    BurstyOnOff,
    Edge,
    Periodic,
    Poisson,
    TraceReplay,
    TrafficSpec,
    all_to_one,
    one_to_all,
    pairwise,
    permutation,
)
from repro.traffic.trace import TraceEvent, load_trace, save_trace

__all__ = [
    "TRAFFIC_TAG",
    "BurstyOnOff",
    "Edge",
    "Periodic",
    "Poisson",
    "TraceEvent",
    "TraceReplay",
    "TrafficRun",
    "TrafficSpec",
    "all_to_one",
    "load_trace",
    "one_to_all",
    "pairwise",
    "permutation",
    "save_trace",
]
