"""Declarative traffic specifications: sources, edges, and node graphs.

A :class:`TrafficSpec` describes a traffic experiment as pure data — the
``network_tester`` idiom: *what* traffic flows between *which* nodes, with
no imperative driver wiring.  The vocabulary:

* **Source processes** generate arrival times for one edge:
  :class:`Periodic` (fixed-gap), :class:`Poisson` (exponential
  interarrivals), :class:`BurstyOnOff` (alternating on/off phases with
  per-phase rates), and :class:`TraceReplay` (explicit recorded arrival
  times, optionally with per-arrival sizes).
* **Edges** bind a source process to one ``(src, dst)`` rank pair, each
  carrying its own size distribution and optional ``make_request`` hook.
* **Graph constructors** build edge tuples over arbitrary node sets:
  :func:`all_to_one`, :func:`one_to_all`, :func:`permutation`,
  :func:`pairwise`.
* :class:`TrafficSpec` composes edges with a shared match-bits tag and a
  seed from which every edge derives its own private RNG stream.

Determinism contract
--------------------
A spec is frozen data; all randomness is deferred to *lowering* time
(:class:`~repro.traffic.run.TrafficRun`), where edge ``i`` draws from
``random.Random(spec.edge_seed(i))`` and nothing else — never the
process-global RNG, never another edge's stream.  Arrival schedules are
materialised before the simulation starts, so kernel-event interleaving
cannot perturb the draws: identical spec + seed means identical offered
traffic on every executor, worker count, and path flavour.

Times are given in **nanoseconds** (floats are fine); exact offsets are
carried in float picoseconds and rounded once per arrival, so a schedule
never accumulates rounding drift (arrival *i* is within 0.5 ps of its
exact position).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional, Sequence, Union

from repro.sim.drivers import SizeMix

__all__ = [
    "BurstyOnOff",
    "Edge",
    "Periodic",
    "Poisson",
    "TraceReplay",
    "TrafficSpec",
    "all_to_one",
    "one_to_all",
    "pairwise",
    "permutation",
]

#: Default match-bits tag for traffic-spec sink entries.
TRAFFIC_TAG = 57

#: 1 million messages/second expressed as a picosecond interarrival.
_PS_PER_MMPS = 1_000_000.0


def _check_rate(rate_mmps: float, what: str) -> None:
    if rate_mmps <= 0:
        raise ValueError(f"{what}: rate must be positive, got {rate_mmps}")


def _check_count(count: int, what: str) -> None:
    if count < 1:
        raise ValueError(f"{what}: need at least one arrival, got {count}")


@dataclass(frozen=True)
class Periodic:
    """Fixed-gap arrivals: ``count`` requests at ``rate_mmps``.

    The first arrival sits at ``phase_ns``; subsequent arrivals follow at
    exact multiples of the mean gap (no per-gap rounding drift).
    """

    rate_mmps: float
    count: int
    phase_ns: float = 0.0

    def __post_init__(self) -> None:
        _check_rate(self.rate_mmps, "Periodic")
        _check_count(self.count, "Periodic")
        if self.phase_ns < 0:
            raise ValueError(f"Periodic: negative phase {self.phase_ns}")

    def offsets_ps(self, rng: random.Random) -> Iterator[float]:
        gap = _PS_PER_MMPS / self.rate_mmps
        start = self.phase_ns * 1000.0
        for i in range(self.count):
            yield start + i * gap


@dataclass(frozen=True)
class Poisson:
    """Exponential interarrivals: ``count`` requests at mean ``rate_mmps``."""

    rate_mmps: float
    count: int
    phase_ns: float = 0.0

    def __post_init__(self) -> None:
        _check_rate(self.rate_mmps, "Poisson")
        _check_count(self.count, "Poisson")
        if self.phase_ns < 0:
            raise ValueError(f"Poisson: negative phase {self.phase_ns}")

    def offsets_ps(self, rng: random.Random) -> Iterator[float]:
        gap = _PS_PER_MMPS / self.rate_mmps
        exact = self.phase_ns * 1000.0
        for _ in range(self.count):
            exact += rng.expovariate(1.0) * gap
            yield exact


@dataclass(frozen=True)
class BurstyOnOff:
    """Alternating on/off phases with per-phase offered rates.

    Each cycle is an *on* window of ``on_ns`` at ``rate_on_mmps`` followed
    by an *off* window of ``off_ns`` at ``rate_off_mmps`` (0 = silent).
    ``poisson=True`` draws exponential gaps inside each phase instead of
    fixed ones; arrivals never spill across a phase boundary.  This is the
    ``network_tester`` bursting generator: the transient the windowed
    metrics exist to expose.
    """

    on_ns: float
    off_ns: float
    rate_on_mmps: float
    rate_off_mmps: float = 0.0
    cycles: int = 1
    poisson: bool = False
    phase_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.on_ns <= 0:
            raise ValueError(f"BurstyOnOff: on window must be positive, "
                             f"got {self.on_ns}")
        if self.off_ns < 0:
            raise ValueError(f"BurstyOnOff: negative off window {self.off_ns}")
        _check_rate(self.rate_on_mmps, "BurstyOnOff(on)")
        if self.rate_off_mmps < 0:
            raise ValueError(
                f"BurstyOnOff: negative off rate {self.rate_off_mmps}")
        _check_count(self.cycles, "BurstyOnOff")
        if self.phase_ns < 0:
            raise ValueError(f"BurstyOnOff: negative phase {self.phase_ns}")

    def _phase(self, rng: random.Random, start_ps: float, dur_ps: float,
               rate_mmps: float) -> Iterator[float]:
        if rate_mmps <= 0:
            return
        gap = _PS_PER_MMPS / rate_mmps
        exact = start_ps
        while True:
            exact += rng.expovariate(1.0) * gap if self.poisson else gap
            if exact > start_ps + dur_ps:
                return
            yield exact

    def offsets_ps(self, rng: random.Random) -> Iterator[float]:
        on_ps = self.on_ns * 1000.0
        off_ps = self.off_ns * 1000.0
        t = self.phase_ns * 1000.0
        for _ in range(self.cycles):
            yield from self._phase(rng, t, on_ps, self.rate_on_mmps)
            t += on_ps
            yield from self._phase(rng, t, off_ps, self.rate_off_mmps)
            t += off_ps


@dataclass(frozen=True)
class TraceReplay:
    """Explicit recorded arrival times (ns), optionally with sizes.

    ``offsets_ns`` must be non-decreasing; when ``sizes`` is given it
    carries one message size per arrival, overriding the edge's size
    distribution — the shape a recorded ``(t, src, dst, size)`` trace
    lowers to after grouping by edge
    (:meth:`TrafficSpec.from_trace`).
    """

    offsets_ns: tuple[float, ...]
    sizes: Optional[tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not self.offsets_ns:
            raise ValueError("TraceReplay: empty arrival list")
        if any(b < a for a, b in zip(self.offsets_ns, self.offsets_ns[1:])):
            raise ValueError("TraceReplay: arrival times must be sorted")
        if self.offsets_ns[0] < 0:
            raise ValueError("TraceReplay: negative arrival time")
        if self.sizes is not None:
            if len(self.sizes) != len(self.offsets_ns):
                raise ValueError("TraceReplay: sizes/offsets length mismatch")
            if any(s < 0 for s in self.sizes):
                raise ValueError("TraceReplay: negative message size")

    def offsets_ps(self, rng: random.Random) -> Iterator[float]:
        for t_ns in self.offsets_ns:
            yield t_ns * 1000.0

    def size_at(self, index: int) -> Optional[int]:
        return None if self.sizes is None else self.sizes[index]


#: Any of the source-process flavours above (duck-typed on offsets_ps).
Source = Union[Periodic, Poisson, BurstyOnOff, TraceReplay]


@dataclass(frozen=True)
class Edge:
    """One directed traffic flow: a source process bound to ``src → dst``.

    ``size`` accepts an int, a sequence of ints, or a
    :class:`~repro.sim.drivers.SizeMix`; ``make_request`` (same signature
    as the driver hook: ``(rng, index) -> dict``) overrides the whole
    request.  ``stream`` names the metrics stream (default
    ``"e<src>-<dst>"``); ``match_bits`` defaults to the spec-level tag.
    """

    src: int
    dst: int
    source: Source
    size: Union[int, SizeMix, Sequence[int]] = 64
    stream: Optional[str] = None
    match_bits: Optional[int] = None
    make_request: Optional[Callable[[random.Random, int], dict]] = None

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ValueError(f"Edge: negative rank in {self.src}->{self.dst}")
        if self.src == self.dst:
            raise ValueError(f"Edge: self-loop at rank {self.src}")
        if not hasattr(self.source, "offsets_ps"):
            raise ValueError(
                f"Edge: {self.source!r} is not a source process "
                f"(needs offsets_ps)")

    @property
    def stream_name(self) -> str:
        return self.stream if self.stream else f"e{self.src}-{self.dst}"


# -- graph constructors ------------------------------------------------------

def _ranks(nodes: Union[int, Iterable[int]]) -> tuple[int, ...]:
    if isinstance(nodes, int):
        return tuple(range(nodes))
    return tuple(nodes)


def all_to_one(sources: Union[int, Iterable[int]], target: int,
               source: Source, **edge_kwargs) -> tuple[Edge, ...]:
    """Every rank in ``sources`` sends to ``target`` (incast)."""
    return tuple(Edge(src=s, dst=target, source=source, **edge_kwargs)
                 for s in _ranks(sources) if s != target)


def one_to_all(src: int, targets: Union[int, Iterable[int]],
               source: Source, **edge_kwargs) -> tuple[Edge, ...]:
    """``src`` sends to every rank in ``targets`` (broadcast-shaped)."""
    return tuple(Edge(src=src, dst=t, source=source, **edge_kwargs)
                 for t in _ranks(targets) if t != src)


def permutation(nodes: Union[int, Iterable[int]], shift: int,
                source: Source, **edge_kwargs) -> tuple[Edge, ...]:
    """Rank ``i`` sends to rank ``(i + shift) mod N`` (shift pattern)."""
    ranks = _ranks(nodes)
    n = len(ranks)
    if n < 2:
        raise ValueError("permutation needs at least two nodes")
    if shift % n == 0:
        raise ValueError(f"shift {shift} maps every rank to itself on {n} nodes")
    return tuple(Edge(src=ranks[i], dst=ranks[(i + shift) % n],
                      source=source, **edge_kwargs)
                 for i in range(n))


def pairwise(pairs: Iterable[tuple[int, int]], source: Source,
             **edge_kwargs) -> tuple[Edge, ...]:
    """Explicit ``(src, dst)`` pairs, one edge each."""
    return tuple(Edge(src=s, dst=d, source=source, **edge_kwargs)
                 for s, d in pairs)


@dataclass(frozen=True)
class TrafficSpec:
    """A complete declarative traffic experiment over one node set.

    ``edges`` is any tuple of :class:`Edge` (compose the graph
    constructors freely — ``all_to_one(...) + pairwise(...)`` is a valid
    spec).  ``nodes`` may be left at 0 to mean "smallest cluster that
    fits every rank".  ``seed`` roots the per-edge RNG streams.
    """

    edges: tuple[Edge, ...]
    nodes: int = 0
    match_bits: int = TRAFFIC_TAG
    seed: int = 1

    def __post_init__(self) -> None:
        if not self.edges:
            raise ValueError("TrafficSpec: no edges")
        object.__setattr__(self, "edges", tuple(self.edges))
        needed = self.min_nodes()
        if self.nodes and self.nodes < needed:
            raise ValueError(
                f"TrafficSpec: nodes={self.nodes} but edges reference "
                f"ranks up to {needed - 1}")

    def min_nodes(self) -> int:
        return 1 + max(max(e.src, e.dst) for e in self.edges)

    def node_count(self) -> int:
        return self.nodes if self.nodes else self.min_nodes()

    def destinations(self) -> tuple[int, ...]:
        return tuple(sorted({e.dst for e in self.edges}))

    def edge_seed(self, index: int) -> int:
        """The private RNG seed for edge ``index`` (stable, collision-free
        across edges for any spec seed)."""
        return self.seed * 1_000_003 + index

    @classmethod
    def from_trace(cls, events: Iterable, **kwargs) -> "TrafficSpec":
        """Lower a recorded ``(t_ns, src, dst, nbytes)`` trace to a spec.

        Events are grouped per ``(src, dst)`` edge — in first-appearance
        order, so replaying a recorded run rebuilds the same edge list —
        and each group becomes a :class:`TraceReplay` source carrying the
        group's arrival times and sizes.  Accepts
        :class:`~repro.traffic.trace.TraceEvent` objects or plain
        ``(t_ns, src, dst, nbytes)`` tuples.
        """
        grouped: dict[tuple[int, int], list[tuple[float, int]]] = {}
        for ev in events:
            t_ns, src, dst, nbytes = (
                (ev.t_ns, ev.src, ev.dst, ev.nbytes)
                if hasattr(ev, "t_ns") else ev)
            grouped.setdefault((src, dst), []).append((t_ns, nbytes))
        if not grouped:
            raise ValueError("from_trace: empty trace")
        edges = tuple(
            Edge(src=src, dst=dst,
                 source=TraceReplay(
                     offsets_ns=tuple(t for t, _ in items),
                     sizes=tuple(n for _, n in items)))
            for (src, dst), items in grouped.items()
        )
        return cls(edges=edges, **kwargs)
