"""Campaign scenarios for the traffic-pattern subsystem (``traffic`` family).

Four registered scenarios, each pairing a declarative
:class:`~repro.traffic.spec.TrafficSpec` with the windowed time-resolved
metrics the specs exist to feed:

* ``bursting_load`` — on/off bursts into one victim over the congestion
  fabric; the per-window fabric queue depth shows growth during each on
  phase and drain during each off phase.
* ``incast_transient`` — a steady background stream plus a synchronized
  incast burst; per-window p99 exposes the latency collapse and the
  scenario reports the collapse/recovery timestamps.
* ``replay_trace`` — record a mixed run to a JSONL trace, lower it back
  through :meth:`TrafficSpec.from_trace`, and replay on a fresh session;
  the result asserts the per-edge offered counts round-trip exactly.
* ``burst_under_flap`` — bursts through a flapping victim-ingress link
  (reusing :class:`~repro.faults.plan.FaultPlan`) with the drivers'
  timeout/retransmit layer; per-window drops localise the outages.

Every result value is a JSON scalar or a flat list of scalars so the
campaign cache and the serial/parallel executors treat traffic runs like
any other scenario.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.campaign.registry import Param, scenario as campaign_scenario
from repro.faults.plan import FaultPlan, link_flap
from repro.sim.metrics import Metrics, WindowedMetrics
from repro.sim.session import ClusterSpec, Session
from repro.traffic.run import TrafficRun
from repro.traffic.spec import (
    BurstyOnOff,
    Periodic,
    Poisson,
    TrafficSpec,
    all_to_one,
    pairwise,
    permutation,
)
from repro.traffic.trace import load_trace, save_trace

__all__: list[str] = []


def _win_lists(windows: WindowedMetrics) -> dict:
    """The compact per-window lists every traffic result carries."""
    return {
        "window_ns": windows.window_ps / 1000.0,
        "win_completed": [int(v) for v in windows.series("completed")],
        "win_dropped": [int(v) for v in windows.series("dropped")],
        "win_queue_max": [int(v) for v in windows.series("queue_max")],
        "win_p99_ns": [round(v, 1) for v in windows.series("p99_ns")],
    }


@campaign_scenario(
    "bursting_load",
    params=[
        Param("fanin", int, default=4, help="bursting senders"),
        Param("on_ns", float, default=2000.0, help="on-phase duration"),
        Param("off_ns", float, default=2000.0, help="off-phase duration"),
        Param("rate_on_mmps", float, default=6.0, help="on-phase rate/sender"),
        Param("cycles", int, default=3, help="on/off cycles"),
        Param("size", int, default=4096, help="message size in bytes"),
        Param("depth", int, default=128, help="per-link queue depth"),
        Param("window_ns", float, default=500.0, help="metrics window width"),
        Param("pattern", str, default="incast",
              choices=("incast", "permutation"),
              help="edge graph: all-to-one or shift-by-one"),
        Param("config", str, default="int", choices=("int", "dis")),
        Param("seed", int, default=1),
    ],
    description="on/off bursts into one victim: windowed queue depth "
                "shows growth during on phases, drain during off phases",
    tiny={"fanin": 2, "cycles": 2, "on_ns": 1000.0, "off_ns": 1000.0,
          "rate_on_mmps": 10.0},
    sweep={"rate_on_mmps": (3.0, 6.0, 12.0), "cycles": (2, 4)},
    tags=("traffic", "congestion", "windowed"),
)
def _bursting_load(fanin: int, on_ns: float, off_ns: float,
                   rate_on_mmps: float, cycles: int, size: int, depth: int,
                   window_ns: float, pattern: str, config: str,
                   seed: int) -> dict:
    burst = BurstyOnOff(on_ns=on_ns, off_ns=off_ns,
                        rate_on_mmps=rate_on_mmps, cycles=cycles)
    if pattern == "incast":
        edges = all_to_one(fanin, fanin, burst, size=size, stream="burst")
        nodes = fanin + 1
    else:
        edges = permutation(fanin + 1, 1, burst, size=size, stream="burst")
        nodes = fanin + 1
    spec = TrafficSpec(edges=edges, nodes=nodes, seed=seed)
    windows = WindowedMetrics(window_ns=window_ns)
    with Session(ClusterSpec(nodes=nodes, config=config,
                             fabric="congestion",
                             link_queue_depth=depth)) as sess:
        run = TrafficRun(sess, spec, windows=windows)
        metrics = run.run()
        metrics.observe_fabric(sess.cluster.fabric, elapsed_ps=sess.env.now)
        summary = metrics.summary(elapsed_ps=sess.env.now)
    queue = windows.series("queue_max")
    return {
        "offered": run.offered_total(),
        "completed": summary["completed"],
        "lost": summary["dropped"],
        "queue_peak": int(max(queue, default=0)),
        "queue_final": int(queue[-1]) if queue else 0,
        "p99_ns": summary.get("p99_ns", 0.0),
        "goodput_mmps": round(summary.get("goodput_mmps", 0.0), 3),
        **_win_lists(windows),
    }


@campaign_scenario(
    "incast_transient",
    params=[
        Param("fanin", int, default=4, help="bursting senders"),
        Param("bg_rate_mmps", float, default=0.5, help="background rate"),
        Param("bg_count", int, default=12, help="background requests"),
        Param("burst_at_ns", float, default=6000.0, help="burst start"),
        Param("burst_ns", float, default=1500.0, help="burst duration"),
        Param("burst_rate_mmps", float, default=8.0, help="burst rate/sender"),
        Param("size", int, default=4096, help="message size in bytes"),
        Param("depth", int, default=256, help="per-link queue depth"),
        Param("window_ns", float, default=500.0, help="metrics window width"),
        Param("collapse_ns", float, default=1500.0,
              help="per-window p99 above this counts as collapsed"),
        Param("config", str, default="int", choices=("int", "dis")),
        Param("seed", int, default=1),
    ],
    description="background stream + synchronized incast burst: windowed "
                "p99 collapse and recovery timestamps",
    tiny={"fanin": 2, "bg_count": 6, "burst_rate_mmps": 10.0},
    sweep={"burst_rate_mmps": (4.0, 8.0, 16.0), "fanin": (2, 4, 8)},
    tags=("traffic", "congestion", "windowed"),
)
def _incast_transient(fanin: int, bg_rate_mmps: float, bg_count: int,
                      burst_at_ns: float, burst_ns: float,
                      burst_rate_mmps: float, size: int, depth: int,
                      window_ns: float, collapse_ns: float, config: str,
                      seed: int) -> dict:
    target = fanin
    background = pairwise(
        ((0, target),),
        Periodic(rate_mmps=bg_rate_mmps, count=bg_count),
        size=size, stream="bg")
    burst = all_to_one(
        fanin, target,
        BurstyOnOff(on_ns=burst_ns, off_ns=1.0, rate_on_mmps=burst_rate_mmps,
                    phase_ns=burst_at_ns),
        size=size, stream="burst")
    spec = TrafficSpec(edges=background + burst, nodes=fanin + 1, seed=seed)
    windows = WindowedMetrics(window_ns=window_ns)
    with Session(ClusterSpec(nodes=fanin + 1, config=config,
                             fabric="congestion",
                             link_queue_depth=depth)) as sess:
        run = TrafficRun(sess, spec, windows=windows)
        metrics = run.run()
        metrics.observe_fabric(sess.cluster.fabric, elapsed_ps=sess.env.now)
        summary = metrics.summary(elapsed_ps=sess.env.now)
    # Collapse = first window whose p99 crosses the threshold; recovery =
    # first later window that completed work back under it.
    p99s = windows.series("p99_ns")
    completed = windows.series("completed")
    collapse_idx = next((i for i, v in enumerate(p99s)
                         if v and v >= collapse_ns), None)
    recovery_idx = None
    if collapse_idx is not None:
        recovery_idx = next(
            (i for i in range(collapse_idx + 1, len(p99s))
             if completed[i] and 0 < p99s[i] < collapse_ns), None)
    w_ns = windows.window_ps / 1000.0
    return {
        "offered": run.offered_total(),
        "completed": summary["completed"],
        "lost": summary["dropped"],
        "p99_ns": summary.get("p99_ns", 0.0),
        "collapse_t_ns": (-1.0 if collapse_idx is None
                          else collapse_idx * w_ns),
        "recovery_t_ns": (-1.0 if recovery_idx is None
                          else recovery_idx * w_ns),
        **_win_lists(windows),
    }


@campaign_scenario(
    "replay_trace",
    params=[
        Param("nodes", int, default=4, help="cluster size"),
        Param("rate_mmps", float, default=2.0, help="offered rate/edge"),
        Param("count", int, default=10, help="requests per edge"),
        Param("size", int, default=1024, help="message size in bytes"),
        Param("config", str, default="int", choices=("int", "dis")),
        Param("seed", int, default=1),
    ],
    description="record a Poisson permutation run to a JSONL trace, lower "
                "it back via from_trace, replay: offered counts round-trip",
    tiny={"nodes": 3, "count": 6},
    sweep={"nodes": (3, 4, 6), "seed": (1, 2)},
    tags=("traffic", "determinism"),
)
def _replay_trace(nodes: int, rate_mmps: float, count: int, size: int,
                  config: str, seed: int) -> dict:
    spec = TrafficSpec(
        edges=permutation(nodes, 1,
                          Poisson(rate_mmps=rate_mmps, count=count),
                          size=(size, size * 2)),
        nodes=nodes, seed=seed)
    record: list = []
    with Session(ClusterSpec(nodes=nodes, config=config)) as sess:
        run = TrafficRun(sess, spec, record=record)
        recorded = run.run().summary(elapsed_ps=sess.env.now)
        offered_rec = run.offered_counts()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "traffic.jsonl"
        save_trace(path, record)
        replay_spec = TrafficSpec.from_trace(load_trace(path),
                                             nodes=nodes, seed=seed)
        with Session(ClusterSpec(nodes=nodes, config=config)) as sess:
            run2 = TrafficRun(sess, replay_spec)
            replayed = run2.run().summary(elapsed_ps=sess.env.now)
            offered_rep = run2.offered_counts()
    return {
        "edges": len(spec.edges),
        "offered": sum(offered_rec.values()),
        "recorded_events": len(record),
        "counts_match": offered_rec == offered_rep,
        "completed_record": recorded["completed"],
        "completed_replay": replayed["completed"],
        "bytes_match": recorded["bytes"] == replayed["bytes"],
    }


@campaign_scenario(
    "burst_under_flap",
    params=[
        Param("fanin", int, default=3, help="bursting senders"),
        Param("on_ns", float, default=2500.0, help="on-phase duration"),
        Param("off_ns", float, default=2500.0, help="off-phase duration"),
        Param("rate_on_mmps", float, default=4.0, help="on-phase rate/sender"),
        Param("cycles", int, default=2, help="on/off cycles"),
        Param("size", int, default=2048, help="message size in bytes"),
        Param("depth", int, default=64, help="per-link queue depth"),
        Param("first_down_ns", float, default=1000.0, help="outage start"),
        Param("down_ns", float, default=2000.0, help="outage duration"),
        Param("timeout_ns", float, default=4000.0,
              help="per-request retransmission timeout"),
        Param("retries", int, default=6, help="retransmission budget"),
        Param("window_ns", float, default=500.0, help="metrics window width"),
        Param("config", str, default="int", choices=("int", "dis")),
        Param("seed", int, default=1),
    ],
    description="bursts through a flapping victim-ingress link: windowed "
                "drops localise the outage, retransmits recover it",
    tiny={"fanin": 2, "cycles": 1, "on_ns": 1500.0},
    sweep={"down_ns": (1000.0, 2000.0, 4000.0)},
    tags=("traffic", "faults", "reliability", "windowed"),
)
def _burst_under_flap(fanin: int, on_ns: float, off_ns: float,
                      rate_on_mmps: float, cycles: int, size: int,
                      depth: int, first_down_ns: float, down_ns: float,
                      timeout_ns: float, retries: int, window_ns: float,
                      config: str, seed: int) -> dict:
    target = fanin
    spec = TrafficSpec(
        edges=all_to_one(fanin, target,
                         BurstyOnOff(on_ns=on_ns, off_ns=off_ns,
                                     rate_on_mmps=rate_on_mmps,
                                     cycles=cycles),
                         size=size, stream="burst"),
        nodes=fanin + 1, seed=seed)
    windows = WindowedMetrics(window_ns=window_ns)
    metrics = Metrics()
    metrics.completion_log = []
    with Session(ClusterSpec(nodes=fanin + 1, config=config,
                             fabric="congestion",
                             link_queue_depth=depth)) as sess:
        injector = sess.attach_faults(FaultPlan(
            faults=link_flap(f"->host{target}", first_down_ns=first_down_ns,
                             down_ns=down_ns, up_ns=on_ns + off_ns,
                             cycles=cycles),
            seed=seed,
        ))
        run = TrafficRun(sess, spec, metrics=metrics, windows=windows,
                         timeout_ns=timeout_ns, retries=retries)
        run.run()
        fabric = sess.cluster.fabric
        metrics.observe_fabric(fabric, elapsed_ps=sess.env.now)
        summary = metrics.summary(elapsed_ps=sess.env.now)
        clear_ps = injector.last_link_clear_ps
        first_after = metrics.first_completion_after(clear_ps)
        fault_drops = fabric.total_fault_link_drops()
    return {
        "offered": run.offered_total(),
        "completed": summary["completed"],
        "lost": summary["dropped"],
        "timeouts": summary["timeouts"],
        "retransmits": summary["retransmits"],
        "fault_link_drops": fault_drops,
        "last_clear_ns": clear_ps / 1000.0,
        "recovery_ns": (-1.0 if first_after is None
                        else (first_after - clear_ps) / 1000.0),
        "p99_ns": summary.get("p99_ns", 0.0),
        **_win_lists(windows),
    }
