"""Traffic traces: record offered requests, save/load, replay.

A trace is an ordered tuple of :class:`TraceEvent` — one ``(t_ns, src,
dst, nbytes)`` record per offered request, in issue order.  Traces come
from :class:`~repro.traffic.run.TrafficRun` (pass ``record=[]``) or any
external tool that writes the JSONL format; they lower back to a spec via
:meth:`~repro.traffic.spec.TrafficSpec.from_trace`, closing the
record → save → load → replay loop.

File format: one compact JSON object per line, ``{"t_ns": ..., "src":
..., "dst": ..., "nbytes": ...}``, in event order.  Append-friendly and
diff-able, like the campaign caches.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Union

__all__ = ["TraceEvent", "load_trace", "save_trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One offered request: issue time (ns), source/destination, size."""

    t_ns: float
    src: int
    dst: int
    nbytes: int

    def __post_init__(self) -> None:
        if self.t_ns < 0:
            raise ValueError(f"TraceEvent: negative time {self.t_ns}")
        if self.src < 0 or self.dst < 0:
            raise ValueError(
                f"TraceEvent: negative rank {self.src}->{self.dst}")
        if self.nbytes < 0:
            raise ValueError(f"TraceEvent: negative size {self.nbytes}")


def save_trace(path: Union[str, Path],
               events: Iterable[TraceEvent]) -> int:
    """Write ``events`` as JSONL; returns the number of records written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    n = 0
    with path.open("w") as fh:
        for ev in events:
            fh.write(json.dumps(
                {"t_ns": ev.t_ns, "src": ev.src, "dst": ev.dst,
                 "nbytes": ev.nbytes},
                sort_keys=True) + "\n")
            n += 1
    return n


def load_trace(path: Union[str, Path]) -> tuple[TraceEvent, ...]:
    """Read a JSONL trace; blank lines are tolerated, torn lines are not."""
    events = []
    with Path(path).open() as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
                events.append(TraceEvent(
                    t_ns=float(rec["t_ns"]), src=int(rec["src"]),
                    dst=int(rec["dst"]), nbytes=int(rec["nbytes"])))
            except (ValueError, KeyError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{lineno}: bad trace record {line!r}") from exc
    return tuple(events)
