"""TrafficRun: lower a declarative TrafficSpec onto a live Session.

The engine reuses the driver machinery from :mod:`repro.sim.drivers` —
per-request tracked puts with issue→ACK latency, the opt-in
timeout/retry reliability layer, drop reconciliation — rather than
hand-wiring N drivers per scenario.  Lowering a spec:

1. materialise every edge's arrival schedule up front, each from its own
   ``random.Random(spec.edge_seed(i))`` stream (kernel-event interleaving
   can never perturb the draws);
2. install one sink matching entry per distinct ``(dst, match_bits)``
   (skip with ``install_sinks=False`` when the scenario installs handler
   channels itself);
3. run one :class:`_EdgeDriver` per edge — a
   :class:`~repro.sim.drivers._DriverBase` whose arrival process walks
   the materialised schedule instead of drawing open-loop gaps;
4. optionally sample fabric queue depth into an attached
   :class:`~repro.sim.metrics.WindowedMetrics` at a fixed period, bounded
   by the schedule horizon plus a configurable tail (the sampler is a
   pure reader: it adds kernel callbacks inside traffic runs only and
   never perturbs model timing, so traces stay byte-identical across
   path/queue flavours).

Passing ``record=[]`` appends one
:class:`~repro.traffic.trace.TraceEvent` per offered request in issue
order — the record half of the record/replay loop.
"""

from __future__ import annotations

import random
from typing import Generator, Optional

from repro.portals.matching import MatchEntry
from repro.sim.drivers import _DriverBase
from repro.sim.metrics import Metrics, WindowedMetrics
from repro.traffic.spec import TraceReplay, TrafficSpec
from repro.traffic.trace import TraceEvent

__all__ = ["TrafficRun"]


def _materialise(source, rng: random.Random) -> tuple[int, ...]:
    """Round a source's exact float-ps offsets to the integer clock.

    Rounding each *absolute* offset (not per-gap) keeps every arrival
    within 0.5 ps of its exact position; clamping enforces monotonicity
    against pathological float behaviour at equal offsets.
    """
    out = []
    prev = 0
    for exact in source.offsets_ps(rng):
        when = round(exact)
        if when < prev:
            when = prev
        out.append(when)
        prev = when
    return tuple(out)


class _EdgeDriver(_DriverBase):
    """One edge's load: a driver walking a pre-materialised schedule.

    Inherits the whole request path — tracked acked puts, per-request
    MD/EQ, timeout/retry/backoff, finalize reconciliation — from
    :class:`~repro.sim.drivers._DriverBase`; only the arrival process
    differs from :class:`~repro.sim.drivers.OpenLoopDriver`.
    """

    def __init__(self, session, *, edge, schedule: tuple[int, ...],
                 rng: random.Random, record: Optional[list] = None,
                 **kwargs):
        super().__init__(session, target=edge.dst, size=edge.size,
                         make_request=edge.make_request, **kwargs)
        self.edge = edge
        self.schedule = schedule
        self._rng = rng
        self._record = record
        self._trace_sizes = (edge.source.sizes
                             if isinstance(edge.source, TraceReplay)
                             else None)

    def request_kwargs(self, rng: random.Random, index: int) -> dict:
        request = super().request_kwargs(rng, index)
        if self._make_request is None and self._trace_sizes is not None:
            request["nbytes"] = self._trace_sizes[index]
        return request

    def start(self):
        return self.session.process(
            self._arrivals(), name=f"edge[{self.stream}]")

    def _arrivals(self) -> Generator:
        env = self.session.env
        machine = self.session[self.edge.src]
        record = self._record
        elapsed = 0
        for index, when in enumerate(self.schedule):
            gap = when - elapsed
            if gap:
                yield env.timeout(gap)
                elapsed = when
            request = self.request_kwargs(self._rng, index)
            if record is not None:
                record.append(TraceEvent(
                    t_ns=env.now / 1000.0, src=self.edge.src,
                    dst=request["target"], nbytes=request["nbytes"]))
            env.process(self._one(machine, request),
                        name=f"{self.stream}[{index}]")

    def _one(self, machine, request: dict) -> Generator:
        yield from self._tracked_put(machine, self.stream, request)
        # The gate resolves on ACK; edge arrivals never wait for it.


class TrafficRun:
    """A lowered TrafficSpec: edge drivers + sinks + optional sampling.

    Typical use::

        windows = WindowedMetrics(window_ns=500.0)
        run = TrafficRun(sess, spec, windows=windows)
        run.run()                      # start + drain + finalize
        ts = windows.timeseries()      # time-resolved view
        summary = run.metrics.summary(elapsed_ps=sess.env.now)

    ``timeout_ns``/``retries``/``backoff`` apply the drivers' reliability
    layer to every edge.  ``sample_queue_ns`` overrides the queue-depth
    sampling period (default: a quarter window); sampling happens only
    when ``windows`` is attached, and only reads fabric state.
    """

    def __init__(self, session, spec: TrafficSpec, *,
                 metrics: Optional[Metrics] = None,
                 windows: Optional[WindowedMetrics] = None,
                 timeout_ns: Optional[float] = None,
                 retries: int = 0, backoff: float = 2.0,
                 install_sinks: bool = True, sink_length: int = 1 << 30,
                 record: Optional[list] = None,
                 sample_queue_ns: Optional[float] = None,
                 sample_tail_windows: int = 4):
        if len(session) < spec.node_count():
            raise ValueError(
                f"spec needs {spec.node_count()} nodes; session has "
                f"{len(session)}")
        self.session = session
        self.spec = spec
        self.metrics = metrics if metrics is not None else Metrics()
        self.windows = windows
        if windows is not None:
            self.metrics.windowed = windows
        self.record = record
        if install_sinks:
            installed = set()
            for edge in spec.edges:
                bits = (spec.match_bits if edge.match_bits is None
                        else edge.match_bits)
                key = (edge.dst, bits)
                if key not in installed:
                    installed.add(key)
                    session.install(edge.dst, MatchEntry(
                        match_bits=bits, length=sink_length))
        self.drivers: list[_EdgeDriver] = []
        horizon = 0
        for index, edge in enumerate(spec.edges):
            rng = random.Random(spec.edge_seed(index))
            schedule = _materialise(edge.source, rng)
            if schedule and schedule[-1] > horizon:
                horizon = schedule[-1]
            self.drivers.append(_EdgeDriver(
                session, edge=edge, schedule=schedule, rng=rng,
                record=record, metrics=self.metrics,
                stream=edge.stream_name,
                match_bits=(spec.match_bits if edge.match_bits is None
                            else edge.match_bits),
                seed=spec.edge_seed(index),
                timeout_ns=timeout_ns, retries=retries, backoff=backoff,
            ))
        #: Last scheduled arrival (integer ps) across every edge.
        self.horizon_ps = horizon
        if windows is not None:
            period = (round(sample_queue_ns * 1000.0)
                      if sample_queue_ns is not None
                      else max(1, windows.window_ps // 4))
            if period < 1:
                raise ValueError("sample_queue_ns rounds to zero ps")
            self._sample_period = period
            self._sample_until = (horizon
                                  + sample_tail_windows * windows.window_ps)
        else:
            self._sample_period = None
            self._sample_until = 0
        self._started = False

    # -- queue-depth sampling ---------------------------------------------
    def _queue_depth(self) -> int:
        fabric = self.session.cluster.fabric
        links = getattr(fabric, "links", None)
        if not links:
            return 0
        now = self.session.env.now
        return max((link.backlog(now) for link in links.values()), default=0)

    def _sample(self) -> None:
        env = self.session.env
        self.windows.observe_queue_depth(env.now, self._queue_depth())
        if env.now + self._sample_period <= self._sample_until:
            env.schedule_callback(self._sample_period, self._sample)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Launch every edge's arrival process (idempotent) + sampler."""
        if self._started:
            return
        self._started = True
        for driver in self.drivers:
            driver.start()
        if self._sample_period is not None:
            # The t=0 sample is trivially empty; start one period in.  The
            # sampler bounds itself at horizon + tail so the run always
            # quiesces even if some requests are silently lost.
            self.session.env.schedule_callback(self._sample_period,
                                               self._sample)

    def finalize(self) -> int:
        """Reconcile never-ACKed requests on every edge (post-drain)."""
        return sum(driver.finalize() for driver in self.drivers)

    def run(self) -> Metrics:
        """start → drain → finalize; returns the fed metrics sink."""
        self.start()
        self.session.drain()
        self.finalize()
        return self.metrics

    # -- accounting --------------------------------------------------------
    def offered_counts(self) -> dict[str, int]:
        """Requests scheduled per edge stream (the record/replay check)."""
        out: dict[str, int] = {}
        for driver in self.drivers:
            out[driver.stream] = out.get(driver.stream, 0) + len(driver.schedule)
        return out

    def offered_total(self) -> int:
        return sum(len(driver.schedule) for driver in self.drivers)
