"""repro-spin: a reproduction of *sPIN: High-performance streaming
Processing in the Network* (Hoefler et al., SC'17).

Public API tour:

* build a system: :class:`repro.machine.Cluster` with
  :func:`repro.machine.integrated_config` / ``discrete_config`` and the
  :class:`repro.core.SpinNIC` factory;
* program the NIC: :func:`repro.core.connect` or :func:`repro.core.spin_me`
  with header/payload/completion handlers returning
  :class:`repro.core.ReturnCode`;
* run experiments: :mod:`repro.experiments` (microbenchmarks),
  :mod:`repro.apps` (full applications), :mod:`repro.storage` (RAID/SPC),
  :mod:`repro.usecases` (the §5.4 services);
* regenerate the paper: ``python -m repro.bench all``.
"""

from repro.core import (
    HandlerCostModel,
    HPUMemory,
    PtlHPUAllocMem,
    PtlHPUFreeMem,
    ReturnCode,
    SpinNIC,
    connect,
    spin_me,
)
from repro.machine import Cluster, Machine, discrete_config, integrated_config

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "HPUMemory",
    "HandlerCostModel",
    "Machine",
    "PtlHPUAllocMem",
    "PtlHPUFreeMem",
    "ReturnCode",
    "SpinNIC",
    "__version__",
    "connect",
    "discrete_config",
    "integrated_config",
    "spin_me",
]
