"""The §5.4 use cases: further systems accelerated with sPIN handlers.

* :mod:`repro.usecases.kvstore` — distributed key-value store with
  header-handler inserts (bounded hash-chain walk, host fallback);
* :mod:`repro.usecases.condread` — conditional read (database filter
  scans) as a request-reply protocol served by the NIC;
* :mod:`repro.usecases.transactions` — RDMA access introspection for
  distributed transactions (handler-side access logging);
* :mod:`repro.usecases.graph` — BFS visit / SSSP relax vertex updates
  applied by payload handlers (networkx-verified);
* :mod:`repro.usecases.ftbcast` — fault-tolerant broadcast on a binomial
  graph with first-copy delivery and failure injection.
"""

from repro.usecases.kvstore import KVStore
from repro.usecases.condread import ConditionalReader
from repro.usecases.transactions import TransactionLog
from repro.usecases.graph import DistributedGraph
from repro.usecases.ftbcast import FaultTolerantBroadcast, binomial_graph_peers

__all__ = [
    "ConditionalReader",
    "DistributedGraph",
    "FaultTolerantBroadcast",
    "KVStore",
    "TransactionLog",
    "binomial_graph_peers",
]
