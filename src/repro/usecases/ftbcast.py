"""Fault-tolerant broadcast on a binomial graph (§5.4).

Redundant delivery over a binomial graph tolerates < log2(P) failures
without failure detectors [50].  Normally every redundant copy is
delivered to host memory; with sPIN the header handler forwards and
delivers only the **first** copy of each broadcast, dropping duplicates on
the NIC — a transparent reliable-broadcast service.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.handlers import ReturnCode
from repro.experiments.common import pair_session
from repro.machine.config import MachineConfig, config_by_name

__all__ = ["FaultTolerantBroadcast", "binomial_graph_peers"]

FTB_TAG = 95


def binomial_graph_peers(rank: int, nprocs: int) -> list[int]:
    """Neighbors of ``rank`` in the binomial graph: rank ± 2^k mod P."""
    peers = []
    k = 1
    while k < nprocs:
        peers.append((rank + k) % nprocs)
        peers.append((rank - k) % nprocs)
        k <<= 1
    return sorted(set(p for p in peers if p != rank))


class FaultTolerantBroadcast:
    """Broadcast service with redundant forwarding and NIC deduplication."""

    def __init__(self, nprocs: int = 8, config: MachineConfig | str = "int",
                 failed: Optional[set[int]] = None):
        if isinstance(config, str):
            config = config_by_name(config)
        self.nprocs = nprocs
        self.failed = failed or set()
        #: Ranks fail-stopped *after* construction (see :meth:`crash`).
        #: Deliberately NOT consulted by the forwarding handler: the
        #: protocol has no failure detector, so live ranks keep forwarding
        #: into crashed peers and redundancy alone must carry delivery.
        self.crashed: set[int] = set()
        self.session = pair_session(config, nprocs=nprocs, with_memory=False)
        self.cluster = self.session.cluster
        self.env = self.session.env
        self.delivered: dict[int, set[int]] = {}   # bcast id → ranks delivered
        self.duplicates_dropped = 0
        self.forwards = 0
        ftb = self

        def make_handler(rank: int):
            def ftb_header_handler(ctx, h):
                ctx.charge(10)
                bcast_id = h.hdr_data
                seen = ctx.state.vars.setdefault("seen", set())
                if bcast_id in seen:
                    # Redundant copy: drop on the NIC, never touches host.
                    ftb.duplicates_dropped += 1
                    return ReturnCode.DROP
                seen.add(bcast_id)
                ftb.delivered.setdefault(bcast_id, set()).add(rank)
                # Forward redundantly along the binomial graph.
                for peer in binomial_graph_peers(rank, ftb.nprocs):
                    if peer in ftb.failed:
                        continue
                    ctx.charge(4)
                    ftb.forwards += 1
                    yield from ctx.put_from_device(
                        None, target=peer, match_bits=FTB_TAG,
                        nbytes=max(h.length, 1), hdr_data=bcast_id,
                    )
                return ReturnCode.PROCEED  # first copy delivered to host

            return ftb_header_handler

        for rank in range(nprocs):
            if rank in self.failed:
                self.cluster.fabric.detach(rank)
                continue
            self.session.connect(
                rank,
                match_bits=FTB_TAG, length=1 << 20,
                header_handler=make_handler(rank),
                hpu_mem_bytes=1024,
            )

    def crash(self, rank: int) -> int:
        """Fail-stop ``rank`` mid-protocol; returns reaped receive states.

        Unlike the constructor's ``failed`` set (ranks dead from the
        start, which peers route around), a crash is invisible to the
        survivors — their forwards toward the dead rank vanish in the
        fabric.  Delivery checks must use :meth:`live_ranks`.
        """
        if rank in self.failed or rank in self.crashed:
            return 0
        self.crashed.add(rank)
        return self.cluster.crash(rank)

    def live_ranks(self) -> set[int]:
        """Ranks neither failed at construction nor crashed since."""
        return (set(range(self.nprocs)) - self.failed) - self.crashed

    def delivered_to_all_live(self, bcast_id: int = 1) -> bool:
        """Did every currently-live rank deliver ``bcast_id``?"""
        return self.live_ranks() <= self.delivered.get(bcast_id, set())

    def broadcast(self, root: int = 0, bcast_id: int = 1,
                  nbytes: int = 64) -> Generator:
        """Root injects the broadcast to its binomial-graph peers."""
        self.delivered.setdefault(bcast_id, set()).add(root)
        # Mark the root's own dedup state.
        root_me = None
        for entry in self.cluster[root].ni.pt(0).match_list.priority:
            if entry.match_bits == FTB_TAG and entry.spin is not None:
                root_me = entry
                break
        if root_me is not None:
            root_me.spin.hpu_memory.vars.setdefault("seen", set()).add(bcast_id)
        for peer in binomial_graph_peers(root, self.nprocs):
            if peer in self.failed:
                continue
            yield from self.cluster[root].host_put(
                peer, nbytes, match_bits=FTB_TAG, hdr_data=bcast_id,
            )

    def run_broadcast(self, root: int = 0, bcast_id: int = 1) -> set[int]:
        """Broadcast and drain; returns the set of ranks that delivered."""
        proc = self.env.process(self.broadcast(root, bcast_id))
        self.env.run(until=proc)
        self.env.run()
        return self.delivered.get(bcast_id, set())
