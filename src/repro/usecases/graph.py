"""Distributed graph kernels with handler-side vertex updates (§5.4).

BFS visit and SSSP relax messages crossing node boundaries are applied by
payload handlers directly (conditional min-update in the handler), saving
the store-batch-reload round trip through host memory.  Results are
verified against networkx on the full graph.
"""

from __future__ import annotations

import math
from typing import Generator

import networkx as nx

from repro.core.handlers import ReturnCode
from repro.experiments.common import pair_session
from repro.machine.config import MachineConfig, config_by_name

__all__ = ["DistributedGraph"]

RELAX_TAG = 90


class DistributedGraph:
    """A weighted graph partitioned over ``nparts`` simulated nodes."""

    def __init__(self, graph: nx.Graph, nparts: int = 2,
                 config: MachineConfig | str = "int"):
        if isinstance(config, str):
            config = config_by_name(config)
        self.graph = graph
        self.nparts = nparts
        self.session = pair_session(config, nprocs=nparts, with_memory=False)
        self.cluster = self.session.cluster
        self.env = self.session.env
        self.dist: dict = {v: math.inf for v in graph.nodes}
        self.handler_updates = 0
        self.handler_rejects = 0
        dg = self

        def relax_header_handler(ctx, h):
            # Message carries (vertex, candidate distance): conditionally
            # update — the atomic check-and-min the paper describes.
            ctx.charge(10)
            vertex, cand = h.user_hdr["vertex"], h.user_hdr["distance"]
            if cand < dg.dist[vertex]:
                dg.dist[vertex] = cand
                dg.handler_updates += 1
                # Re-relax the vertex's local+remote neighbors.
                for nbr in dg.graph.neighbors(vertex):
                    w = dg.graph[vertex][nbr].get("weight", 1)
                    ctx.charge(6)
                    dg._relax_later(nbr, cand + w)
            else:
                dg.handler_rejects += 1
            return ReturnCode.DROP

        for part in range(nparts):
            self.session.connect(
                part,
                match_bits=RELAX_TAG,
                header_handler=relax_header_handler,
                hpu_mem_bytes=256,
            )

    def owner(self, vertex) -> int:
        return hash(vertex) % self.nparts

    def _relax_later(self, vertex, distance) -> None:
        """Queue a relax message to the vertex's owner."""
        owner = self.owner(vertex)

        def sender():
            src = self.cluster[(owner + 1) % self.nparts]
            yield from src.host_put(
                owner, 16, match_bits=RELAX_TAG,
                user_hdr={"vertex": vertex, "distance": distance},
            )

        self.env.process(sender())

    def sssp(self, source) -> Generator:
        """Run asynchronous SSSP from ``source``; returns the distance map."""
        self.dist = {v: math.inf for v in self.graph.nodes}
        self._relax_later(source, 0)
        # Run to quiescence: the DES drains when no relax is in flight.
        yield self.env.timeout(0)
        return self.dist

    def run_sssp(self, source) -> dict:
        """Drive :meth:`sssp` to completion and verify-ready distances."""
        proc = self.env.process(self.sssp(source))
        self.env.run(until=proc)
        self.env.run()
        return dict(self.dist)

    def reference_sssp(self, source) -> dict:
        """networkx ground truth."""
        lengths = nx.single_source_dijkstra_path_length(self.graph, source)
        return {v: lengths.get(v, math.inf) for v in self.graph.nodes}
