"""Distributed key-value store with offloaded inserts (§5.4).

Two-level hashing: H1(key) picks the node, H2(key) the bucket.  The client
sends ``(H2(k), len(k), k, v)``; the server's **header handler** walks the
bucket chain in host memory (bounded number of steps to avoid backing up
the network) and links the record — or defers to the host CPU when the
walk budget is exhausted.  ``get`` follows the same request-reply shape as
the conditional read.
"""

from __future__ import annotations

import hashlib
from typing import Generator

import numpy as np

from repro.core.handlers import ReturnCode
from repro.experiments.common import pair_session
from repro.machine.config import MachineConfig, config_by_name

__all__ = ["KVStore"]

KV_INSERT_TAG = 60
#: Header-handler walk budget (steps) before deferring to the host.
MAX_WALK_STEPS = 4


def h1(key: bytes, nnodes: int) -> int:
    return int.from_bytes(hashlib.blake2b(key, digest_size=8).digest(), "little") % nnodes


def h2(key: bytes, nbuckets: int) -> int:
    return int.from_bytes(
        hashlib.blake2b(key, digest_size=8, salt=b"bucket2").digest(), "little"
    ) % nbuckets


class KVStore:
    """A client plus ``nservers`` sPIN-accelerated storage nodes."""

    def __init__(self, nservers: int = 2, nbuckets: int = 64,
                 config: MachineConfig | str = "int"):
        if isinstance(config, str):
            config = config_by_name(config)
        self.nbuckets = nbuckets
        self.session = pair_session(config, nprocs=nservers + 1,
                                    with_memory=False)
        self.cluster = self.session.cluster
        self.env = self.session.env
        self.client = self.cluster[0]
        self.servers = [self.cluster[i + 1] for i in range(nservers)]
        #: Python-dict shadow stores standing in for the host-memory hash
        #: tables (buckets → list of (key, value)).
        self.tables = [
            {b: [] for b in range(nbuckets)} for _ in range(nservers)
        ]
        self.inserted_by_nic = 0
        self.deferred_to_host = 0
        for idx in range(nservers):
            self.session.connect(
                idx + 1,
                match_bits=KV_INSERT_TAG,
                header_handler=self._make_insert_handler(idx),
                hpu_mem_bytes=256,
            )

    def _make_insert_handler(self, server_index: int):
        store = self

        def insert_header_handler(ctx, h):
            user = h.user_hdr
            bucket, key, value = user["bucket"], user["key"], user["value"]
            chain = store.tables[server_index][bucket]
            # Bounded chain walk: one DMA-ish pointer chase per step.
            steps = min(len(chain), MAX_WALK_STEPS)
            ctx.charge(12 + 8 * steps)
            if len(chain) >= MAX_WALK_STEPS:
                # Don't back up the network: deposit a work item for the CPU.
                store.deferred_to_host += 1

                def host_side():
                    yield from store.servers[server_index].cpu.run(
                        ctx.nic.machine.config.host.dram_latency_ps * (len(chain) + 1),
                        "kv-host-insert",
                    )
                    chain.append((key, value))

                ctx.env.process(host_side())
                return ReturnCode.DROP
            chain.append((key, value))
            store.inserted_by_nic += 1
            return ReturnCode.DROP

        return insert_header_handler

    # -- client API ----------------------------------------------------------
    def insert(self, key: bytes, value: bytes) -> Generator:
        """Insert (k, v): H1 picks the node, H2 the bucket (the §5.4 flow)."""
        node = h1(key, len(self.servers))
        bucket = h2(key, self.nbuckets)
        yield from self.client.host_put(
            self.servers[node].rank,
            len(key) + len(value),
            match_bits=KV_INSERT_TAG,
            payload=np.frombuffer(key + value, dtype=np.uint8),
            user_hdr={"bucket": bucket, "key": key, "value": value,
                      "len_k": len(key)},
        )

    def lookup_local(self, key: bytes):
        """Reference lookup against the shadow tables (correctness check)."""
        node = h1(key, len(self.servers))
        bucket = h2(key, self.nbuckets)
        for k, v in reversed(self.tables[node][bucket]):
            if k == key:
                return v
        return None


from repro.campaign.registry import Param, scenario as campaign_scenario


@campaign_scenario(
    "kvstore_insert",
    params=[
        Param("nservers", int, default=2),
        Param("nkeys", int, default=32, help="keys inserted by the client"),
        Param("value_bytes", int, default=32),
        Param("config", str, default="int", choices=("int", "dis")),
    ],
    description="Section 5.4 KV-store NIC-side insert workload",
    tiny={"nkeys": 8},
    sweep={"nservers": (1, 2, 4), "nkeys": (32, 128)},
    tags=("usecase", "kvstore"),
)
def _kvstore_scenario(nservers: int, nkeys: int, value_bytes: int,
                      config: str) -> dict:
    store = KVStore(nservers=nservers, config=config)
    env = store.env

    def client():
        for i in range(nkeys):
            yield from store.insert(f"key{i}".encode(), b"v" * value_bytes)

    proc = env.process(client())
    env.run(until=proc)
    store.cluster.run()
    return {
        "total_ns": env.now / 1000.0,
        "nic_inserts": store.inserted_by_nic,
        "host_fallback": store.deferred_to_host,
    }
