"""Conditional read: NIC-filtered table scans (§5.4).

``SELECT name FROM employees WHERE id = X`` over a remote table: reading
the whole table via RDMA wastes bandwidth, so the request carries the
filter and the reply carries only matching rows.  The server's header
handler scans the (host-memory) table — charged per scanned row — and
replies from the host with just the matches.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.core.handlers import ReturnCode
from repro.experiments.common import pair_session
from repro.machine.config import MachineConfig, config_by_name
from repro.portals.matching import MatchEntry

__all__ = ["ConditionalReader"]

SCAN_REQUEST_TAG = 70
SCAN_REPLY_TAG = 71
#: Handler cycles per scanned row (predicate evaluation on the HPU).
CYCLES_PER_ROW = 6


class ConditionalReader:
    """One client, one table server with an offloaded filter scan."""

    def __init__(self, rows: list[dict], config: MachineConfig | str = "int",
                 row_bytes: int = 64):
        if isinstance(config, str):
            config = config_by_name(config)
        self.rows = rows
        self.row_bytes = row_bytes
        self.session = pair_session(config, with_memory=False)
        self.cluster = self.session.cluster
        self.env = self.session.env
        self.client, self.server = self.session[0], self.session[1]
        self.bytes_saved = 0
        self.scans_served = 0
        self._reply_ct = self.client.new_counter("scan-replies")
        self.session.install(0, MatchEntry(
            match_bits=SCAN_REPLY_TAG, length=1 << 30, counter=self._reply_ct,
        ))
        reader = self

        def scan_header_handler(ctx, h):
            predicate: Callable[[dict], bool] = h.user_hdr["predicate"]
            ctx.charge(10)
            ctx.charge(CYCLES_PER_ROW * len(reader.rows))
            matches = [row for row in reader.rows if predicate(row)]
            reader.scans_served += 1
            reply_bytes = max(1, len(matches) * reader.row_bytes)
            reader.bytes_saved += (len(reader.rows) - len(matches)) * reader.row_bytes
            reader._last_matches = matches
            yield from ctx.put_from_host(
                0, reply_bytes, target=h.source, match_bits=SCAN_REPLY_TAG,
                user_hdr={"matches": matches},
            )
            return ReturnCode.DROP

        self.session.connect(
            1,
            match_bits=SCAN_REQUEST_TAG,
            header_handler=scan_header_handler,
            hpu_mem_bytes=256,
        )

    def select(self, predicate: Callable[[dict], bool]) -> Generator:
        """Run the filtered scan; returns (matching rows, elapsed ps)."""
        start = self.env.now
        expected = self._reply_ct.success + 1
        gate = self.env.event()
        self._reply_ct.on_threshold(expected, lambda: gate.succeed(self.env.now))
        yield from self.client.host_put(
            1, 0, match_bits=SCAN_REQUEST_TAG,
            user_hdr={"predicate": predicate},
        )
        yield gate
        yield from self.client.cpu.poll()
        return [r for r in self.rows if predicate(r)], self.env.now - start

    def full_table_bytes(self) -> int:
        return len(self.rows) * self.row_bytes
