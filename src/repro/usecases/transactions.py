"""Distributed-transaction access logging (§5.4).

The header handlers of all incoming RDMA puts are introspected: each access
(initiator, address range, timestamp) is recorded at line rate into a log
in HPU/host memory; conflict validation then runs on the host at commit
time by evaluating the logs — no per-packet CPU involvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.core.handlers import ReturnCode
from repro.experiments.common import pair_session
from repro.machine.config import MachineConfig, config_by_name

__all__ = ["AccessRecord", "TransactionLog"]

TXN_TAG = 80


@dataclass(frozen=True)
class AccessRecord:
    """One introspected remote access."""

    initiator: int
    offset: int
    length: int
    when_ps: int
    txn_id: int


class TransactionLog:
    """A server whose incoming writes are logged by the NIC."""

    def __init__(self, nclients: int = 2, config: MachineConfig | str = "int"):
        if isinstance(config, str):
            config = config_by_name(config)
        self.session = pair_session(config, nprocs=nclients + 1,
                                    with_memory=False)
        self.cluster = self.session.cluster
        self.env = self.session.env
        self.server = self.session[nclients]
        self.clients = [self.session[i] for i in range(nclients)]
        self.log: list[AccessRecord] = []
        log = self.log

        def introspect_header_handler(ctx, h):
            # Record the access at line rate (§5.4: "the introspection can
            # be performed at line rate").
            ctx.charge(8)
            log.append(AccessRecord(
                initiator=h.source,
                offset=h.offset,
                length=h.length,
                when_ps=ctx.env.now,
                txn_id=h.hdr_data,
            ))
            return ReturnCode.PROCEED  # the write proceeds as normal

        self.session.connect(
            nclients,
            match_bits=TXN_TAG, length=1 << 30,
            header_handler=introspect_header_handler,
            hpu_mem_bytes=4096,
        )

    def remote_write(self, client_index: int, offset: int, nbytes: int,
                     txn_id: int) -> Generator:
        client = self.clients[client_index]
        done = yield from client.host_put(
            self.server.rank, nbytes, match_bits=TXN_TAG,
            offset=offset, hdr_data=txn_id,
        )
        yield done

    # -- commit-time validation on the host -------------------------------
    def conflicts(self) -> list[tuple[AccessRecord, AccessRecord]]:
        """Pairs of accesses from different transactions that overlap."""
        out = []
        for i, a in enumerate(self.log):
            for b in self.log[i + 1:]:
                if a.txn_id == b.txn_id:
                    continue
                if a.offset < b.offset + b.length and b.offset < a.offset + a.length:
                    out.append((a, b))
        return out

    def validate(self, txn_id: int) -> bool:
        """A transaction commits iff none of its accesses conflict."""
        return not any(
            txn_id in (a.txn_id, b.txn_id) for a, b in self.conflicts()
        )
