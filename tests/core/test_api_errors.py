"""Error paths of the P4sPIN user API and ReturnCode predicate properties."""

import pytest

from repro.core.api import PtlHPUAllocMem, PtlHPUFreeMem, spin_me
from repro.core.handlers import HandlerError, HPUMemory, ReturnCode
from repro.portals.limits import NILimits
from repro.portals.types import PortalsError
from repro.sim import Session


class TestPtlHPUAllocMem:
    def test_alloc_within_limits(self):
        limits = NILimits()
        mem = PtlHPUAllocMem(limits, limits.max_handler_mem)
        assert mem.size == limits.max_handler_mem
        assert not mem.freed

    def test_alloc_beyond_limit_rejected(self):
        limits = NILimits()
        with pytest.raises(PortalsError, match="exceeds limit"):
            PtlHPUAllocMem(limits, limits.max_handler_mem + 1)

    def test_alloc_validates_against_machine_limits(self):
        sess = Session.pair("int")
        machine = sess[0]
        with pytest.raises(PortalsError, match="exceeds limit"):
            PtlHPUAllocMem(machine, machine.ni.limits.max_handler_mem + 1)

    def test_negative_size_rejected(self):
        with pytest.raises(HandlerError, match="negative"):
            PtlHPUAllocMem(NILimits(), -1)


class TestPtlHPUFreeMem:
    def test_free_marks_memory(self):
        mem = PtlHPUAllocMem(NILimits(), 64)
        PtlHPUFreeMem(mem)
        assert mem.freed

    @pytest.mark.parametrize("access", [
        lambda m: m.read(0, 8),
        lambda m: m.write(0, [1] * 8),
        lambda m: m.view(0, 8),
        lambda m: m.load_u64(0),
        lambda m: m.store_u64(0, 1),
    ])
    def test_use_after_free_guard(self, access):
        mem = PtlHPUAllocMem(NILimits(), 64)
        PtlHPUFreeMem(mem)
        with pytest.raises(HandlerError, match="freed"):
            access(mem)

    def test_double_free_is_idempotent(self):
        mem = HPUMemory(32)
        PtlHPUFreeMem(mem)
        PtlHPUFreeMem(mem)
        assert mem.freed


class TestSpinMe:
    def test_no_handlers_degrades_to_plain_me(self):
        entry = spin_me(match_bits=5, length=64)
        assert entry.spin is None

    def test_any_handler_field_creates_handler_set(self):
        entry = spin_me(hpu_memory=HPUMemory(64))
        assert entry.spin is not None
        assert entry.spin.hpu_memory.size == 64

    def test_initial_state_without_hpu_memory_rejected_on_validate(self):
        entry = spin_me(header_handler=lambda ctx, h: ReturnCode.DROP,
                        initial_state=b"\x01\x02")
        with pytest.raises(PortalsError, match="requires HPU memory"):
            entry.spin.validate(NILimits())

    def test_initial_state_larger_than_hpu_memory_rejected(self):
        entry = spin_me(hpu_memory=HPUMemory(4), initial_state=b"\0" * 8)
        with pytest.raises(PortalsError, match="larger than HPU memory"):
            entry.spin.validate(NILimits())

    def test_oversized_user_header_rejected(self):
        limits = NILimits()
        entry = spin_me(hpu_memory=HPUMemory(16),
                        user_hdr_size=limits.max_user_hdr_size + 1)
        with pytest.raises(PortalsError, match="user header"):
            entry.spin.validate(limits)


class TestReturnCodePredicates:
    ALL = tuple(ReturnCode)

    def test_error_codes(self):
        errors = {rc for rc in self.ALL if rc.is_error}
        assert errors == {ReturnCode.FAIL, ReturnCode.SEGV}

    def test_pending_codes_have_non_pending_twin(self):
        for rc in self.ALL:
            if rc.is_pending:
                base = ReturnCode(rc.value.replace("_PENDING", ""))
                assert not base.is_pending
                assert base.drops_message == rc.drops_message
                assert base.proceeds == rc.proceeds
                assert base.processes_data == rc.processes_data

    def test_steering_predicates_are_mutually_exclusive(self):
        for rc in self.ALL:
            steers = [rc.drops_message, rc.proceeds, rc.processes_data]
            assert sum(steers) <= 1

    def test_errors_never_pend_or_steer(self):
        for rc in (ReturnCode.FAIL, ReturnCode.SEGV):
            assert not rc.is_pending
            assert not rc.drops_message
            assert not rc.proceeds
            assert not rc.processes_data

    def test_success_codes_neither_steer_nor_error(self):
        for rc in (ReturnCode.SUCCESS, ReturnCode.SUCCESS_PENDING):
            assert not rc.is_error
            assert not rc.drops_message
            assert not rc.proceeds
            assert not rc.processes_data
