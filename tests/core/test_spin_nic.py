"""Integration tests for the sPIN NIC runtime: dispatch, ordering, actions."""

import numpy as np
import pytest

from repro.core import HandlerCostModel, PtlHPUAllocMem, ReturnCode, SpinNIC, connect, spin_me
from repro.des import ns
from repro.machine import Cluster, integrated_config
from repro.network import UniformLatency
from repro.portals import EventKind


def spin_cluster(n=2, config=None, cost_model=None, **kw):
    factory = (
        (lambda env, m: SpinNIC(env, m, cost_model=cost_model))
        if cost_model
        else SpinNIC
    )
    return Cluster(n, config=config or integrated_config(), nic_factory=factory, **kw)


def send(cluster, src, dst, nbytes, match_bits=0, payload=None, **kw):
    def proc():
        yield from cluster[src].host_put(dst, nbytes, match_bits=match_bits,
                                         payload=payload, **kw)

    cluster.env.process(proc())


class TestDispatchOrdering:
    def test_header_handler_called_once_per_message(self):
        cluster = spin_cluster()
        calls = []

        def hh(ctx, hdr):
            calls.append((hdr.source, hdr.length))
            return ReturnCode.PROCEED

        cluster[1].post_me(0, spin_me(match_bits=1, length=1 << 20, header_handler=hh,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 10_000, match_bits=1)
        cluster.run()
        assert calls == [(0, 10_000)]

    def test_payload_handler_per_packet(self):
        cluster = spin_cluster()
        seen = []

        def ph(ctx, pay):
            seen.append((pay.payload_offset, pay.payload_len))
            return ReturnCode.SUCCESS

        cluster[1].post_me(0, spin_me(match_bits=1, payload_handler=ph,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 10_000, match_bits=1)  # 3 packets at MTU 4096
        cluster.run()
        assert sorted(seen) == [(0, 4096), (4096, 4096), (8192, 10_000 - 8192)]

    def test_no_payload_handler_before_header_done(self):
        cluster = spin_cluster()
        events = []

        def hh(ctx, hdr):
            ctx.charge(1000)  # 400 ns of header work
            events.append(("hh", ctx.env.now))
            return ReturnCode.PROCESS_DATA

        def ph(ctx, pay):
            events.append(("ph", ctx.env.now))
            return ReturnCode.SUCCESS

        cluster[1].post_me(0, spin_me(match_bits=1, header_handler=hh, payload_handler=ph,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 12_000, match_bits=1)
        cluster.run()
        hh_start = [t for k, t in events if k == "hh"][0]
        # hh records at entry (before its charge elapses): payload handlers
        # must start at least 400ns after.
        for kind, t in events:
            if kind == "ph":
                assert t >= hh_start + ns(400)

    def test_payload_handlers_parallel_across_hpus(self):
        cluster = spin_cluster(config=integrated_config(hpu_count=4))
        running = {"now": 0, "max": 0}

        def ph(ctx, pay):
            running["now"] += 1
            running["max"] = max(running["max"], running["now"])
            ctx.charge(10_000)  # 4 us each: packets must overlap

            def finish():
                yield from ctx.elapse()
                running["now"] -= 1
                return ReturnCode.SUCCESS

            return finish()

        cluster[1].post_me(0, spin_me(match_bits=1, payload_handler=ph,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 16_384, match_bits=1)  # 4 packets
        cluster.run()
        assert running["max"] >= 2  # genuine HPU-level parallelism

    def test_completion_handler_runs_after_payload_and_before_event(self):
        cluster = spin_cluster()
        env = cluster.env
        order = []

        def ph(ctx, pay):
            order.append(("ph", env.now))
            return ReturnCode.SUCCESS

        def ch(ctx, dropped, fc):
            order.append(("ch", env.now))
            assert dropped == 0 and not fc
            return ReturnCode.SUCCESS

        eq = cluster[1].new_eq()
        cluster[1].post_me(0, spin_me(match_bits=1, payload_handler=ph,
                                      completion_handler=ch, event_queue=eq,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 9000, match_bits=1)
        event_time = []
        eq.on_next(lambda ev: event_time.append(env.now))
        cluster.run()
        kinds = [k for k, _ in order]
        assert kinds.count("ph") == 3 and kinds[-1] == "ch"
        assert event_time[0] >= order[-1][1]


class TestSteering:
    def test_proceed_deposits_to_host(self):
        cluster = spin_cluster()
        buf = cluster[1].memory.alloc(8192)
        data = np.arange(5000 % 256, dtype=np.uint8)
        data = np.resize(np.arange(256, dtype=np.uint8), 5000)

        def hh(ctx, hdr):
            return ReturnCode.PROCEED

        cluster[1].post_me(0, spin_me(match_bits=1, start=buf, length=8192,
                                      header_handler=hh,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 5000, match_bits=1, payload=data)
        cluster.run()
        assert np.array_equal(cluster[1].memory.read(buf, 5000), data)

    def test_process_data_does_not_auto_deposit(self):
        cluster = spin_cluster()
        buf = cluster[1].memory.alloc(8192)

        def ph(ctx, pay):
            return ReturnCode.SUCCESS

        cluster[1].post_me(0, spin_me(match_bits=1, start=buf, length=8192,
                                      payload_handler=ph,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 4096, match_bits=1,
             payload=np.full(4096, 7, np.uint8))
        cluster.run()
        assert cluster[1].memory.read(buf, 4096).sum() == 0  # untouched

    def test_header_drop_discards_message(self):
        cluster = spin_cluster()
        ph_calls = []
        dropped = []

        def hh(ctx, hdr):
            return ReturnCode.DROP

        def ph(ctx, pay):
            ph_calls.append(1)
            return ReturnCode.SUCCESS

        def ch(ctx, dropped_bytes, fc):
            dropped.append(dropped_bytes)
            return ReturnCode.SUCCESS

        cluster[1].post_me(0, spin_me(match_bits=1, header_handler=hh,
                                      payload_handler=ph, completion_handler=ch,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 10_000, match_bits=1)
        cluster.run()
        assert ph_calls == []
        assert dropped == [10_000]

    def test_payload_drop_counts_bytes(self):
        cluster = spin_cluster()
        dropped = []

        def ph(ctx, pay):
            # Drop the second packet only.
            return ReturnCode.DROP if pay.payload_offset else ReturnCode.SUCCESS

        def ch(ctx, dropped_bytes, fc):
            dropped.append((dropped_bytes, fc))
            return ReturnCode.SUCCESS

        cluster[1].post_me(0, spin_me(match_bits=1, payload_handler=ph,
                                      completion_handler=ch,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 6000, match_bits=1)  # packets: 4096 + 1904
        cluster.run()
        assert dropped == [(1904, False)]

    def test_pending_suppresses_completion(self):
        cluster = spin_cluster()
        eq = cluster[1].new_eq()
        ct = cluster[1].new_counter()

        def hh(ctx, hdr):
            return ReturnCode.PROCEED_PENDING

        cluster[1].post_me(0, spin_me(match_bits=1, length=1 << 20, header_handler=hh,
                                      event_queue=eq, counter=ct,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 256, match_bits=1)
        cluster.run()
        assert len(eq) == 0
        assert ct.success == 0


class TestActions:
    def test_put_from_device_pingpong(self):
        cluster = spin_cluster()
        env = cluster.env
        pong_eq = cluster[0].new_eq()
        cluster[0].post_me(0, spin_me(match_bits=2, length=4096, event_queue=pong_eq))

        def ph(ctx, pay):
            yield from ctx.put_from_device(pay.payload, target=ctx.message.source,
                                           match_bits=2)
            return ReturnCode.SUCCESS

        cluster[1].post_me(0, spin_me(match_bits=1, payload_handler=ph,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 64, match_bits=1,
             payload=np.arange(64, dtype=np.uint8))
        got = []
        pong_eq.on_next(lambda ev: got.append(env.now))
        cluster.run()
        assert len(got) == 1

    def test_put_from_device_size_limit(self):
        cluster = spin_cluster()
        errors = cluster[1].nic.handler_errors

        def ph(ctx, pay):
            # 2*MTU exceeds max_payload_size: must SEGV-fail the handler.
            yield from ctx.put_from_device(None, target=0, nbytes=8192)
            return ReturnCode.SUCCESS

        cluster[1].post_me(0, spin_me(match_bits=1, payload_handler=ph,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 64, match_bits=1)
        cluster.run()
        assert errors and errors[0][1] == ReturnCode.SEGV

    def test_handler_dma_write_visible_to_host_after_event(self):
        cluster = spin_cluster()
        env = cluster.env
        buf = cluster[1].memory.alloc(4096)
        eq = cluster[1].new_eq()

        def ph(ctx, pay):
            doubled = (np.asarray(pay.payload) * 2).astype(np.uint8)
            yield from ctx.dma_to_host_b(doubled, pay.payload_offset)
            return ReturnCode.SUCCESS

        cluster[1].post_me(0, spin_me(match_bits=1, start=buf, length=4096,
                                      payload_handler=ph, event_queue=eq,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 100, match_bits=1,
             payload=np.arange(100, dtype=np.uint8))
        result = []
        eq.on_next(lambda ev: result.append(cluster[1].memory.read(buf, 100)))
        cluster.run()
        assert np.array_equal(result[0], (np.arange(100) * 2).astype(np.uint8))

    def test_handler_dma_read_sees_host_data(self):
        cluster = spin_cluster()
        buf = cluster[1].memory.alloc(4096)
        cluster[1].memory.write(buf, np.full(16, 5, np.uint8))
        got = []

        def ph(ctx, pay):
            data = yield from ctx.dma_from_host_b(0, 16)
            got.append(data)
            return ReturnCode.SUCCESS

        cluster[1].post_me(0, spin_me(match_bits=1, start=buf, length=4096,
                                      payload_handler=ph,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 8, match_bits=1)
        cluster.run()
        assert np.array_equal(got[0], np.full(16, 5, np.uint8))

    def test_hpu_atomics(self):
        cluster = spin_cluster()
        results = {}

        def ph(ctx, pay):
            results["cas_ok"] = ctx.hpu_cas(0, 0, 42)
            results["cas_fail"] = ctx.hpu_cas(0, 0, 7)
            results["fadd_before"] = ctx.hpu_fadd(8, 5)
            results["fadd_after"] = ctx.state.load_u64(8)
            return ReturnCode.SUCCESS

        cluster[1].post_me(0, spin_me(match_bits=1, payload_handler=ph,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 8, match_bits=1)
        cluster.run()
        assert results == {
            "cas_ok": True, "cas_fail": False,
            "fadd_before": 0, "fadd_after": 5,
        }

    def test_initial_state_and_params_visible(self):
        cluster = spin_cluster()
        seen = {}

        def hh(ctx, hdr):
            seen["state0"] = int(ctx.state.raw[0])
            seen["param"] = ctx.params["knob"]
            return ReturnCode.PROCEED

        cluster[1].post_me(0, spin_me(
            match_bits=1, length=1 << 20, header_handler=hh,
            hpu_memory=PtlHPUAllocMem(cluster[1], 64),
            initial_state=b"\x2a", params={"knob": "value"},
        ))
        send(cluster, 0, 1, 8, match_bits=1)
        cluster.run()
        assert seen == {"state0": 42, "param": "value"}


class TestTimingModel:
    def test_handler_cycles_advance_simulated_time(self):
        """500 instructions at 2.5 GHz must take 200 ns on the HPU."""
        cfg = integrated_config()
        cluster = Cluster(2, config=cfg, nic_factory=SpinNIC,
                          topology=UniformLatency(latency=0))
        spans = []

        def ph(ctx, pay):
            start = ctx.env.now
            ctx.charge(500)

            def rest():
                yield from ctx.elapse()
                spans.append(ctx.env.now - start)
                return ReturnCode.SUCCESS

            return rest()

        cluster[1].post_me(0, spin_me(match_bits=1, payload_handler=ph,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 64, match_bits=1)
        cluster.run()
        # 500 charged cycles + 2 invoke cycles pending at first elapse.
        assert spans[0] == ns(200.8)

    def test_hpu_busy_accounting(self):
        cluster = spin_cluster()

        def ph(ctx, pay):
            ctx.charge(250)  # 100 ns
            return ReturnCode.SUCCESS

        cluster[1].post_me(0, spin_me(match_bits=1, payload_handler=ph,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 64, match_bits=1)
        cluster.run()
        pool = cluster[1].nic.hpus
        assert pool.handlers_run == 1
        # invoke(2) + charge(250) + return(1) = 253 cycles = 101.2 ns
        assert pool.busy_ps == ns(101.2)


class TestFaults:
    def test_flow_control_on_hpu_exhaustion(self):
        cfg = integrated_config(hpu_count=1, max_pending_packets=1)
        cluster = spin_cluster(config=cfg)
        completions = []

        def ph(ctx, pay):
            ctx.charge(1_000_000)  # 400 us: all later packets pile up
            return ReturnCode.SUCCESS

        def ch(ctx, dropped, fc):
            completions.append((dropped, fc))
            return ReturnCode.SUCCESS

        eq = cluster[1].new_eq()
        cluster[1].post_me(0, spin_me(match_bits=1, payload_handler=ph,
                                      completion_handler=ch, event_queue=eq,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 40_960, match_bits=1)  # 10 packets
        cluster.run()
        dropped, fc = completions[0]
        assert fc is True
        assert dropped > 0
        assert not cluster[1].ni.pt(0).enabled
        assert cluster[1].nic.flow_control_trips >= 1

    def test_handler_error_raises_event_once(self):
        cluster = spin_cluster()
        eq = cluster[1].new_eq()

        def ph(ctx, pay):
            return ReturnCode.FAIL

        cluster[1].post_me(0, spin_me(match_bits=1, payload_handler=ph,
                                      event_queue=eq,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 12_000, match_bits=1)  # 3 packets, 3 FAILs
        cluster.run()
        errors = [e for e in eq.drain() if e.kind == EventKind.HANDLER_ERROR]
        assert len(errors) == 1  # only the first error is reported (§B.4)

    def test_segv_on_bad_hpu_access(self):
        cluster = spin_cluster()

        def ph(ctx, pay):
            ctx.state.read(1 << 20, 4)  # way out of bounds
            return ReturnCode.SUCCESS

        cluster[1].post_me(0, spin_me(match_bits=1, payload_handler=ph,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 64, match_bits=1)
        cluster.run()
        assert cluster[1].nic.handler_errors[0][1] == ReturnCode.SEGV

    def test_cycle_budget_enforcement(self):
        cost = HandlerCostModel(enforce_cycle_budget=True)
        cluster = spin_cluster(cost_model=cost)

        def ph(ctx, pay):
            ctx.charge(10_000_000)  # absurdly over budget
            return ReturnCode.SUCCESS

        cluster[1].post_me(0, spin_me(match_bits=1, payload_handler=ph,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 64, match_bits=1)
        cluster.run()
        assert not cluster[1].ni.pt(0).enabled  # killed + flow control (§7)


class TestChannel:
    def test_connect_installs_handlers(self):
        cluster = spin_cluster()
        got = []

        def ph(ctx, pay):
            got.append(bytes(pay.payload))
            return ReturnCode.SUCCESS

        chan = connect(cluster[1], peer=0, payload_handler=ph, hpu_mem_bytes=256)
        assert chan.channel_id > 0
        assert chan.hpu_memory.size == 256
        send(cluster, 0, 1, 5, match_bits=0, payload=np.frombuffer(b"hello", np.uint8))
        cluster.run()
        assert got == [b"hello"]

    def test_channel_peer_filter(self):
        cluster = spin_cluster(3)
        got = []

        def ph(ctx, pay):
            got.append(ctx.message.source)
            return ReturnCode.SUCCESS

        connect(cluster[2], peer=0, payload_handler=ph)
        # From rank 1: no matching channel → flow control; from rank 0: handled.
        send(cluster, 0, 2, 8)
        cluster.run()
        assert got == [0]
