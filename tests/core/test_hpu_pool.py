"""HPUPool checkout accounting: double releases must be impossible.

Regression (ISSUE 5): ``release`` used to blindly ``put`` the id back, so
a double release put a duplicate id in the free store — two handlers
could "run" on one HPU and utilization exceeded 1.0.
"""

import pytest

from repro.core.hpu import HPUPool
from repro.des.engine import Environment


def _acquire(env: Environment, pool: HPUPool) -> list:
    got = []

    def proc():
        hpu_id = yield from pool.acquire()
        got.append(hpu_id)

    env.process(proc())
    env.run()
    return got


class TestCheckoutTracking:
    def test_acquire_release_round_trip(self):
        env = Environment()
        pool = HPUPool(env, 2)
        (a,) = _acquire(env, pool)
        assert pool.outstanding == {a}
        assert pool.idle == 1
        pool.release(a)
        assert pool.outstanding == frozenset()
        assert pool.idle == 2

    def test_double_release_raises(self):
        env = Environment()
        pool = HPUPool(env, 2)
        (a,) = _acquire(env, pool)
        pool.release(a)
        with pytest.raises(ValueError, match="double release"):
            pool.release(a)
        assert pool.idle == 2  # no duplicate id entered the free store

    def test_release_of_never_acquired_id_raises(self):
        env = Environment()
        pool = HPUPool(env, 4)
        with pytest.raises(ValueError, match="not checked out"):
            pool.release(0)
        with pytest.raises(ValueError):
            pool.release(7)  # out of range, as before

    def test_release_with_waiter_hands_over_and_stays_checked_out(self):
        """A release that feeds a queued waiter keeps the id checked out."""
        env = Environment()
        pool = HPUPool(env, 1)
        (a,) = _acquire(env, pool)
        # A second acquirer now queues on the empty free store.
        waiter_got = _acquire(env, pool)
        assert waiter_got == []
        pool.release(a)
        env.run()
        assert waiter_got == [a]  # handed straight through
        assert pool.outstanding == {a}  # ...and immediately checked out
        assert pool.idle == 0
        pool.release(a)  # the waiter's own, legitimate release
        assert pool.outstanding == frozenset()
        assert pool.idle == 1
        with pytest.raises(ValueError, match="double release"):
            pool.release(a)

    def test_inline_fast_path_get_is_tracked(self):
        """SpinNIC inlines ``_free.get()``; tracking lives in the store."""
        env = Environment()
        pool = HPUPool(env, 2)
        got = []

        def inline_proc():
            # Mirrors SpinNIC._run_handler's inlined acquire.
            pool._waiting += 1
            try:
                hpu_id = yield pool._free.get()
            finally:
                pool._waiting -= 1
            got.append(hpu_id)

        env.process(inline_proc())
        env.run()
        assert pool.outstanding == set(got)
        pool.release(got[0])
        with pytest.raises(ValueError):
            pool.release(got[0])

    def test_utilization_cannot_exceed_one_per_hpu(self):
        """With double releases blocked, busy accounting stays sane."""
        env = Environment()
        pool = HPUPool(env, 1)

        def worker():
            hpu_id = yield from pool.acquire()
            start = env.now
            yield env.timeout(100)
            pool.record(hpu_id, start, env.now, "h")
            pool.release(hpu_id)

        for _ in range(3):
            env.process(worker())
        env.run()
        assert env.now == 300  # strictly serialized on the single HPU
        assert pool.utilization() == 1.0
        assert pool.handlers_run == 3
