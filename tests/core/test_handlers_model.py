"""Unit tests for return codes, HPU memory, and handler bindings."""

import numpy as np
import pytest

from repro.core import HPUMemory, HandlerSet, ReturnCode
from repro.core.handlers import HandlerError
from repro.portals import NILimits, PortalsError


class TestReturnCode:
    def test_error_codes(self):
        assert ReturnCode.FAIL.is_error and ReturnCode.SEGV.is_error
        assert not ReturnCode.SUCCESS.is_error

    def test_pending_codes(self):
        for code in (
            ReturnCode.DROP_PENDING,
            ReturnCode.PROCESS_DATA_PENDING,
            ReturnCode.PROCEED_PENDING,
            ReturnCode.SUCCESS_PENDING,
        ):
            assert code.is_pending
        assert not ReturnCode.PROCEED.is_pending

    def test_steering_predicates(self):
        assert ReturnCode.DROP.drops_message
        assert ReturnCode.PROCEED_PENDING.proceeds
        assert ReturnCode.PROCESS_DATA.processes_data
        assert not ReturnCode.SUCCESS.processes_data


class TestHPUMemory:
    def test_write_read_round_trip(self):
        mem = HPUMemory(128)
        mem.write(16, np.arange(8, dtype=np.uint8))
        assert np.array_equal(mem.read(16, 8), np.arange(8, dtype=np.uint8))

    def test_out_of_bounds_raises_handler_error(self):
        mem = HPUMemory(16)
        with pytest.raises(HandlerError):
            mem.read(10, 8)
        with pytest.raises(HandlerError):
            mem.write(-1, np.zeros(2, np.uint8))

    def test_use_after_free(self):
        mem = HPUMemory(16)
        mem.freed = True
        with pytest.raises(HandlerError):
            mem.read(0, 1)

    def test_u64_accessors(self):
        mem = HPUMemory(16)
        mem.store_u64(8, 0xDEADBEEF)
        assert mem.load_u64(8) == 0xDEADBEEF
        mem.store_u64(0, (1 << 64) + 5)  # wraps to 5
        assert mem.load_u64(0) == 5

    def test_vars_dict(self):
        mem = HPUMemory(0)
        mem.vars["count"] = 3
        assert mem.vars["count"] == 3


class TestHandlerSet:
    def test_validate_against_limits(self):
        limits = NILimits(max_handler_mem=1024, max_initial_state=64)
        hs = HandlerSet(hpu_memory=HPUMemory(512), initial_state=b"x" * 64)
        hs.validate(limits)

    def test_oversized_hpu_memory_rejected(self):
        limits = NILimits(max_handler_mem=128, max_initial_state=16)
        hs = HandlerSet(hpu_memory=HPUMemory(256))
        with pytest.raises(PortalsError):
            hs.validate(limits)

    def test_initial_state_requires_hpu_memory(self):
        with pytest.raises(PortalsError):
            HandlerSet(initial_state=b"abc").validate(NILimits())

    def test_initial_state_too_large_for_memory(self):
        hs = HandlerSet(hpu_memory=HPUMemory(2), initial_state=b"abcd")
        with pytest.raises(PortalsError):
            hs.validate(NILimits())

    def test_ensure_state_copies_once(self):
        hs = HandlerSet(hpu_memory=HPUMemory(16), initial_state=b"\x07\x08")
        hs.ensure_state()
        assert hs.hpu_memory.raw[0] == 7 and hs.hpu_memory.raw[1] == 8
        hs.hpu_memory.raw[0] = 99
        hs.ensure_state()  # second call must not overwrite
        assert hs.hpu_memory.raw[0] == 99
