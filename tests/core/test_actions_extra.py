"""Coverage for the remaining PtlHandler* actions (Appendix B.6)."""

import numpy as np
import pytest

from repro.core import PtlHPUAllocMem, ReturnCode, SpinNIC, spin_me
from repro.machine import Cluster, integrated_config
from repro.portals import Counter
from repro.portals.matching import MatchEntry


def spin_cluster(n=2):
    return Cluster(n, config=integrated_config(), nic_factory=SpinNIC)


def send(cluster, src, dst, nbytes, match_bits=1, payload=None, **kw):
    def proc():
        yield from cluster[src].host_put(dst, nbytes, match_bits=match_bits,
                                         payload=payload, **kw)

    cluster.env.process(proc())


class TestNonBlockingDMA:
    def test_nb_read_returns_data_via_handle(self):
        cluster = spin_cluster()
        buf = cluster[1].memory.alloc(64)
        cluster[1].memory.write(buf, np.full(8, 3, np.uint8))
        got = {}

        def ph(ctx, pay):
            handle = yield from ctx.dma_from_host_nb(0, 8)
            assert not ctx.dma_test(handle)  # not yet complete
            yield from ctx.dma_wait(handle)
            assert ctx.dma_test(handle)
            got["data"] = handle.value
            return ReturnCode.SUCCESS

        cluster[1].post_me(0, spin_me(match_bits=1, start=buf, length=64,
                                      payload_handler=ph,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 8)
        cluster.run()
        assert np.array_equal(got["data"], np.full(8, 3, np.uint8))

    def test_nb_write_overlaps_compute(self):
        """A non-blocking write lets the handler compute while data lands."""
        cluster = spin_cluster()
        buf = cluster[1].memory.alloc(4096)
        times = {}

        def ph(ctx, pay):
            handle = yield from ctx.dma_to_host_nb(pay.payload, 0,
                                                   nbytes=pay.payload_len)
            t0 = ctx.env.now
            ctx.charge(2500)  # 1 us of compute overlapping the write
            yield from ctx.elapse()
            times["compute_done"] = ctx.env.now
            yield from ctx.dma_wait(handle)
            times["write_done"] = ctx.env.now
            return ReturnCode.SUCCESS

        cluster[1].post_me(0, spin_me(match_bits=1, start=buf, length=4096,
                                      payload_handler=ph,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 512, payload=np.full(512, 9, np.uint8))
        cluster.run()
        # The write completed during (or right at) the compute window.
        assert times["write_done"] <= times["compute_done"] + 1
        assert np.array_equal(cluster[1].memory.read(buf, 512),
                              np.full(512, 9, np.uint8))


class TestHostAtomicsFromHandlers:
    def test_dma_cas_and_fadd(self):
        cluster = spin_cluster()
        buf = cluster[1].memory.alloc(64)
        results = {}

        def ph(ctx, pay):
            ok, seen = yield from ctx.dma_cas(0, 0, 77)
            results["cas"] = (ok, seen)
            before = yield from ctx.dma_fetch_add(8, 5)
            results["fadd_before"] = before
            return ReturnCode.SUCCESS

        cluster[1].post_me(0, spin_me(match_bits=1, start=buf, length=64,
                                      payload_handler=ph,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 8)
        cluster.run()
        assert results["cas"] == (True, 0)
        assert results["fadd_before"] == 0
        assert int.from_bytes(cluster[1].memory.read(buf, 8).tobytes(),
                              "little") == 77
        assert int.from_bytes(cluster[1].memory.read(buf + 8, 8).tobytes(),
                              "little") == 5


class TestHandlerHostMem:
    def test_handler_host_mem_region(self):
        """HANDLER_HOST_MEM addresses the second host region (B.2)."""
        cluster = spin_cluster()
        me_buf = cluster[1].memory.alloc(64)
        stats_buf = cluster[1].memory.alloc(64)

        def ph(ctx, pay):
            yield from ctx.dma_to_host_b(np.full(4, 0xAB, np.uint8), 0,
                                         options="handler")
            return ReturnCode.SUCCESS

        cluster[1].post_me(0, spin_me(
            match_bits=1, start=me_buf, length=64, payload_handler=ph,
            hpu_memory=PtlHPUAllocMem(cluster[1], 64),
            host_mem_start=stats_buf, host_mem_length=64,
        ))
        send(cluster, 0, 1, 8)
        cluster.run()
        assert np.array_equal(cluster[1].memory.read(stats_buf, 4),
                              np.full(4, 0xAB, np.uint8))
        assert cluster[1].memory.read(me_buf, 4).sum() == 0

    def test_bad_option_faults_handler(self):
        cluster = spin_cluster()

        def ph(ctx, pay):
            yield from ctx.dma_from_host_b(0, 4, options="bogus")
            return ReturnCode.SUCCESS

        cluster[1].post_me(0, spin_me(match_bits=1, payload_handler=ph,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 8)
        cluster.run()
        assert cluster[1].nic.handler_errors[0][1] == ReturnCode.SEGV


class TestCountersAndYield:
    def test_ct_manipulation(self):
        cluster = spin_cluster()
        ct = Counter("handler-ct")
        seen = {}

        def ph(ctx, pay):
            ctx.ct_inc(ct, 2, nbytes=pay.payload_len)
            seen["get"] = ctx.ct_get(ct)
            ctx.ct_set(ct, 10)
            yield from ctx.yield_()
            return ReturnCode.SUCCESS

        cluster[1].post_me(0, spin_me(match_bits=1, payload_handler=ph,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 16)
        cluster.run()
        assert seen["get"] == (2, 0)
        assert ct.success == 10

    def test_ack_from_handler_message(self):
        """put_from_device with ack=True completes at the issuing NIC."""
        cluster = spin_cluster()
        sender_ct = cluster[1].new_counter()
        from repro.portals.ni import MemoryDescriptor

        # The handler's put originates at rank 1, so its ACK (from rank 0)
        # is consumed by rank 1's MD.
        md = cluster[1].bind_md(MemoryDescriptor(length=64, counter=sender_ct))
        cluster[0].post_me(0, MatchEntry(match_bits=2, length=64))

        def ph(ctx, pay):
            yield from ctx.put_from_device(None, target=0, match_bits=2,
                                           nbytes=4, ack=True, md=md)
            return ReturnCode.SUCCESS

        cluster[1].post_me(0, spin_me(match_bits=1, payload_handler=ph,
                                      hpu_memory=PtlHPUAllocMem(cluster[1], 64)))
        send(cluster, 0, 1, 8)
        cluster.run()
        assert sender_ct.success == 1
