"""Integration tests for the §4.4 microbenchmark experiments.

These assert the paper's qualitative *shapes* (who wins where); the bench
harness reproduces the full curves.
"""

import pytest

from repro.des import ns
from repro.experiments import (
    accumulate_completion_ns,
    arrival_rate_mmps,
    broadcast_latency_ns,
    hpus_needed,
    max_handler_time_ns,
    pingpong_half_rtt_ns,
)
from repro.network import FixedFrequencyNoise


class TestPingPong:
    def test_spin_beats_rdma_and_p4_small_messages(self):
        """Fig 3b/3c: sPIN < P4 < RDMA for small messages."""
        for cfg in ("int", "dis"):
            rdma = pingpong_half_rtt_ns(8, "rdma", cfg)
            p4 = pingpong_half_rtt_ns(8, "p4", cfg)
            spin = pingpong_half_rtt_ns(8, "spin_stream", cfg)
            assert spin < p4 < rdma, (cfg, spin, p4, rdma)

    def test_store_equals_stream_for_single_packet(self):
        """§4.4.3: within ~5% for single-packet messages."""
        store = pingpong_half_rtt_ns(64, "spin_store", "dis")
        stream = pingpong_half_rtt_ns(64, "spin_stream", "dis")
        assert store == pytest.approx(stream, rel=0.05)

    def test_streaming_wins_large_messages(self):
        """Fig 3b/3c: large messages benefit from never touching host memory."""
        for cfg in ("int", "dis"):
            stream = pingpong_half_rtt_ns(1 << 18, "spin_stream", cfg)
            store = pingpong_half_rtt_ns(1 << 18, "spin_store", cfg)
            rdma = pingpong_half_rtt_ns(1 << 18, "rdma", cfg)
            assert stream < store
            assert stream < rdma

    def test_discrete_gap_larger_than_integrated(self):
        """Fig 3c: 'the latency difference is more pronounced in the
        discrete setting due to the higher DMA latency'."""
        gap_int = pingpong_half_rtt_ns(8, "rdma", "int") - pingpong_half_rtt_ns(
            8, "spin_stream", "int")
        gap_dis = pingpong_half_rtt_ns(8, "rdma", "dis") - pingpong_half_rtt_ns(
            8, "spin_stream", "dis")
        assert gap_dis > gap_int

    def test_absolute_range_plausible(self):
        """Small-message half-RTT lands in the paper's sub-microsecond band."""
        assert 400 < pingpong_half_rtt_ns(8, "spin_stream", "int") < 900
        assert 500 < pingpong_half_rtt_ns(8, "rdma", "int") < 1200

    def test_noise_hurts_rdma_not_p4_or_spin(self):
        """§4.4.1: only the CPU-progressed pong absorbs system noise."""
        noise = FixedFrequencyNoise(period_ps=ns(2000), duration_ps=ns(1500))
        rdma_quiet = pingpong_half_rtt_ns(8, "rdma", "int")
        rdma_noisy = pingpong_half_rtt_ns(8, "rdma", "int", noise=noise)
        spin_quiet = pingpong_half_rtt_ns(8, "spin_stream", "int")
        spin_noisy = pingpong_half_rtt_ns(8, "spin_stream", "int", noise=noise)
        assert rdma_noisy > rdma_quiet
        assert spin_noisy == pytest.approx(spin_quiet, rel=0.01)


class TestAccumulate:
    def test_rdma_wins_small_spin_wins_large(self):
        """Fig 3d: DMA round trips hurt small, pipelining wins large."""
        small_rdma = accumulate_completion_ns(8, "rdma", "dis")
        small_spin = accumulate_completion_ns(8, "spin", "dis")
        assert small_rdma < small_spin  # the 250ns DMA latency is visible

        large_rdma = accumulate_completion_ns(1 << 18, "rdma", "dis")
        large_spin = accumulate_completion_ns(1 << 18, "spin", "dis")
        assert large_spin < large_rdma

    def test_integrated_spin_small_penalty_smaller(self):
        """Fig 3d: the small-message penalty shrinks with the int NIC."""
        pen_dis = accumulate_completion_ns(8, "spin", "dis") - accumulate_completion_ns(
            8, "rdma", "dis")
        pen_int = accumulate_completion_ns(8, "spin", "int") - accumulate_completion_ns(
            8, "rdma", "int")
        assert pen_int < pen_dis

    def test_large_speedup_factor(self):
        """sPIN's large-message win is a real factor, not noise."""
        rdma = accumulate_completion_ns(1 << 18, "rdma", "int")
        spin = accumulate_completion_ns(1 << 18, "spin", "int")
        assert rdma / spin > 1.3


class TestLittlesLaw:
    def test_arrival_rate_range(self):
        """§4.4.2: 12.5 Mmps ≤ Δ ≤ 150 Mmps."""
        assert arrival_rate_mmps(4096) == pytest.approx(12.2, rel=0.02)
        assert arrival_rate_mmps(64) == pytest.approx(149.25, rel=0.01)

    def test_paper_hat_Ts(self):
        """8 HPUs sustain any packet size if T <= ~53ns."""
        assert max_handler_time_ns(8, 64) == pytest.approx(53.6, rel=0.01)
        assert hpus_needed(53, 64) == 8
        assert hpus_needed(54, 64) == 9

    def test_paper_hat_Tl_4096(self):
        """T̂l(4096) = 8·G·s = 650 ns."""
        assert max_handler_time_ns(8, 4096) == pytest.approx(655.36, rel=0.01)

    def test_g_bound_vs_G_bound_crossover(self):
        """Below 335 B requirements are flat (g-bound), then they fall."""
        flat = {hpus_needed(200, s) for s in (16, 64, 128, 300)}
        assert len(flat) == 1
        assert hpus_needed(200, 4096) < hpus_needed(200, 335)

    def test_monotonicity(self):
        assert hpus_needed(1000, 512) >= hpus_needed(100, 512)


class TestBroadcast:
    def test_spin_fastest_small_message(self):
        """Fig 5a, 8B: direct NIC forwarding beats CPU and triggered ops."""
        rdma = broadcast_latency_ns(16, 8, "rdma", "dis")
        p4 = broadcast_latency_ns(16, 8, "p4", "dis")
        spin = broadcast_latency_ns(16, 8, "spin", "dis")
        assert spin < p4 < rdma

    def test_spin_fastest_large_message(self):
        """Fig 5a, 64KiB: streaming pipelining wins."""
        rdma = broadcast_latency_ns(16, 1 << 16, "rdma", "dis")
        p4 = broadcast_latency_ns(16, 1 << 16, "p4", "dis")
        spin = broadcast_latency_ns(16, 1 << 16, "spin", "dis")
        assert spin < p4
        assert spin < rdma

    def test_latency_grows_with_process_count(self):
        lat = [broadcast_latency_ns(p, 8, "spin", "dis") for p in (4, 16, 64)]
        assert lat[0] < lat[1] < lat[2]

    def test_single_process_broadcast_trivial(self):
        assert broadcast_latency_ns(2, 8, "rdma", "dis") > 0
