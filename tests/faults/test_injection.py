"""FaultInjector behavior against live sessions, fault family by family."""

import pytest

from repro.core.handlers import ReturnCode
from repro.faults import (
    FaultPlan,
    HandlerFault,
    LinkDegrade,
    LinkDown,
    NodeCrash,
    PacketCorrupt,
    PacketLoss,
)
from repro.portals.matching import MatchEntry
from repro.sim import ClusterSpec, Metrics, Session
from repro.sim.drivers import OpenLoopDriver

TAG = 52


def _drive(sess, count=64, size=64, rate=4.0, seed=5, **kwargs):
    metrics = Metrics()
    driver = OpenLoopDriver(
        sess, source=0, target=1, rate_mmps=rate, count=count, size=size,
        match_bits=TAG, seed=seed, metrics=metrics, **kwargs)
    driver.start()
    sess.drain()
    driver.finalize()
    return metrics.summary(elapsed_ps=sess.env.now)


class TestDefaultPathPurity:
    def test_unfaulted_session_carries_no_fault_hooks(self):
        with Session.pair("int") as sess:
            fabric = sess.cluster.fabric
            assert "_dispatch" not in fabric.__dict__
            assert "_deliver" not in fabric.__dict__
            assert "_handler_fault" not in sess[1].nic.__dict__
            assert sess[1].nic._handler_fault is None

    def test_empty_plan_arms_nothing_but_unpools(self):
        with Session.pair("int") as sess:
            inj = sess.attach_faults(FaultPlan())
            assert "_dispatch" not in sess.cluster.fabric.__dict__
            assert sess._pool_key is None
            assert inj.summary()["crashes"] == 0


class TestPacketLoss:
    def test_loss_rate_tracks_configured_probability(self):
        p = 0.25
        with Session.pair("int") as sess:
            sess.attach_faults(FaultPlan(faults=(PacketLoss(p),), seed=17))
            sess.install(1, MatchEntry(match_bits=TAG, length=1 << 30))
            _drive(sess, count=200, size=64)
            fabric = sess.cluster.fabric
            lost = fabric.fault_packets_lost
            total = lost + fabric.packets_delivered
        # ~400 single-packet messages+ACKs: 3 sigma of a Bernoulli(0.25)
        # at n=400 is ~0.065 — the band below is comfortably outside it,
        # and the draw sequence is seeded, so this never flakes.
        assert total >= 300
        assert abs(lost / total - p) < 0.08

    def test_loss_window_only_applies_inside_it(self):
        with Session.pair("int") as sess:
            sess.attach_faults(FaultPlan(
                faults=(PacketLoss(1.0, start_ns=0.0, stop_ns=1.0),),
                seed=1,
            ))
            sess.install(1, MatchEntry(match_bits=TAG, length=1 << 30))
            # Injection reaches the fabric after host overhead >> 1 ns...
            # use a window guaranteed over before the first dispatch.
            summary = _drive(sess, count=8)
            assert summary["completed"] == 8
            assert sess.cluster.fabric.fault_packets_lost == 0

    def test_total_loss_completes_nothing(self):
        with Session.pair("int") as sess:
            sess.attach_faults(FaultPlan(faults=(PacketLoss(1.0),), seed=1))
            sess.install(1, MatchEntry(match_bits=TAG, length=1 << 30))
            summary = _drive(sess, count=8)
            assert summary["completed"] == 0
            assert sess.cluster.fabric.fault_packets_lost > 0


class TestPacketCorruption:
    def test_corrupted_packets_traverse_then_die_at_delivery(self):
        with Session.pair("int") as sess:
            sess.attach_faults(FaultPlan(faults=(PacketCorrupt(1.0),), seed=1))
            sess.install(1, MatchEntry(match_bits=TAG, length=1 << 30))
            summary = _drive(sess, count=6)
            fabric = sess.cluster.fabric
            assert summary["completed"] == 0
            assert fabric.fault_packets_corrupted > 0
            assert fabric.packets_delivered == 0
            # The CRC drop happens before any rx state exists: no orphan
            # or stalled receive-side accounting.
            assert fabric.rx_orphan_packets() == 0

    def test_corruption_mark_purged_when_packet_dropped_en_route(self):
        """A corrupted packet the fabric drops never reaches _deliver; its
        mark must be purged at the drop site, not pinned for the run."""
        spec = ClusterSpec(nodes=2, config="int", fabric="congestion")
        with Session(spec) as sess:
            inj = sess.attach_faults(FaultPlan(faults=(
                PacketCorrupt(1.0),
                LinkDown(pattern="->host1", at_ns=0.0, duration_ns=1e9),
            ), seed=1))
            sess.install(1, MatchEntry(match_bits=TAG, length=1 << 30))
            _drive(sess, count=8)
            fabric = sess.cluster.fabric
            assert fabric.total_fault_link_drops() > 0
            assert not inj._corrupted


class TestLinkFaults:
    def test_link_faults_require_congestion_fabric(self):
        with Session.pair("int") as sess:
            with pytest.raises(ValueError, match="congestion"):
                sess.attach_faults(FaultPlan(faults=(
                    LinkDown(pattern="xbar", at_ns=0.0, duration_ns=10.0),)))

    def test_link_down_window_drops_then_heals(self):
        spec = ClusterSpec(nodes=2, config="int", fabric="congestion")
        with Session(spec) as sess:
            sess.attach_faults(FaultPlan(faults=(
                LinkDown(pattern="->host1", at_ns=0.0, duration_ns=8000.0),)))
            sess.install(1, MatchEntry(match_bits=TAG, length=1 << 30))
            summary = _drive(sess, count=16, rate=1.0)
            fabric = sess.cluster.fabric
            assert fabric.total_fault_link_drops() > 0
            assert fabric.fault_link_down_events == 1
            # The outage window closed: later requests got through, and
            # no link is left marked down.
            assert summary["completed"] > 0
            assert fabric.links_down() == 0

    def test_degraded_link_stretches_the_run(self):
        def run(faults):
            spec = ClusterSpec(nodes=2, config="int", fabric="congestion")
            with Session(spec) as sess:
                sess.attach_faults(FaultPlan(faults=faults))
                sess.install(1, MatchEntry(match_bits=TAG, length=1 << 30))
                summary = _drive(sess, count=16, size=4096, rate=8.0)
                assert summary["completed"] == 16
                return sess.env.now

        healthy = run(())
        degraded = run((LinkDegrade(pattern="->host1", at_ns=0.0,
                                    duration_ns=1e6, tx_scale=8),))
        assert degraded > healthy


class TestNodeCrash:
    def test_crash_detaches_and_kills_sends(self):
        with Session.pair("int") as sess:
            inj = sess.attach_faults(FaultPlan(faults=(
                NodeCrash(rank=1, at_ns=0.0),)))
            sess.install(1, MatchEntry(match_bits=TAG, length=1 << 30))
            summary = _drive(sess, count=6)
            fabric = sess.cluster.fabric
            assert inj.crashed == [1]
            assert summary["completed"] == 0
            assert fabric.packets_dropped > 0  # traffic toward the corpse

            # The corpse "sending" vanishes silently instead of raising.
            def from_the_dead():
                yield from sess[1].host_put(0, 64, match_bits=TAG)

            sess.process(from_the_dead())
            sess.drain()
            assert fabric.messages_from_dead == 1

    def test_crash_is_idempotent(self):
        with Session.pair("int") as sess:
            inj = sess.attach_faults(FaultPlan(faults=(
                NodeCrash(rank=1, at_ns=0.0),
                NodeCrash(rank=1, at_ns=5.0),)))
            sess.run()
            assert inj.crashed == [1]


class TestHandlerFaults:
    def _channel_session(self):
        sess = Session.pair("int")
        served = []

        def header(ctx, h):
            ctx.charge(8)
            served.append(h.hdr_data)
            return ReturnCode.PROCEED

        sess.connect(1, match_bits=TAG, length=1 << 30,
                     header_handler=header, hpu_mem_bytes=256)
        return sess, served

    def test_handler_fault_drives_error_machinery(self):
        sess, _ = self._channel_session()
        with sess:
            inj = sess.attach_faults(FaultPlan(faults=(
                HandlerFault(rank=1, probability=1.0),)))
            summary = _drive(sess, count=4)
            nic = sess[1].nic
            assert inj.handler_faults_injected > 0
            assert nic.handler_errors
            assert all(code.is_error for _, code in nic.handler_errors)
            # Errored messages still complete toward the initiator (the
            # ME acks), so the driver is not left hanging.
            assert summary["completed"] == 4

    def test_handler_fault_probability_zero_is_a_noop(self):
        sess, served = self._channel_session()
        with sess:
            sess.attach_faults(FaultPlan(faults=(
                HandlerFault(rank=1, probability=0.0),), seed=9))
            summary = _drive(sess, count=4)
            assert summary["completed"] == 4
            assert not sess[1].nic.handler_errors
            assert len(served) == 4

    def test_handler_faults_require_spin_nic(self):
        with Session.pair("int", nic="baseline") as sess:
            with pytest.raises(ValueError, match="spin"):
                sess.attach_faults(FaultPlan(faults=(
                    HandlerFault(rank=1),)))
