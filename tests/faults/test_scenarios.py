"""The registered fault scenarios: acceptance regimes + campaign contract."""

import math

import pytest

from repro.campaign import all_scenarios, get_scenario, run_grid
from repro.campaign.cache import DETERMINISTIC_FIELDS
from repro.faults.scenarios import pick_crash_ranks
from repro.usecases.ftbcast import binomial_graph_peers

FAULT_SCENARIOS = ("ftbcast_faults", "lossy_pingpong", "link_flap_recovery")


def test_fault_scenarios_are_registered_with_sweeps():
    registered = all_scenarios()
    for name in FAULT_SCENARIOS:
        assert name in registered
        sc = registered[name]
        assert sc.sweep, f"{name} needs a default sweep grid"
        assert sc.tiny, f"{name} needs tiny smoke params"
        assert "faults" in sc.tags


@pytest.mark.parametrize("name", FAULT_SCENARIOS)
def test_tiny_run_is_deterministic(name):
    sc = get_scenario(name)
    assert sc.run(sc.tiny) == sc.run(sc.tiny)


class TestCrashPlacement:
    def test_spread_is_seeded_and_never_hits_root(self):
        a = pick_crash_ranks(8, 3, "spread", seed=5)
        assert a == pick_crash_ranks(8, 3, "spread", seed=5)
        assert a != pick_crash_ranks(8, 3, "spread", seed=6)
        assert 0 not in a and len(a) == 3

    def test_adversarial_targets_a_victim_out_of_roots_reach(self):
        ranks = pick_crash_ranks(8, 5, "adversarial", seed=1)
        assert 0 not in ranks
        # Some rank outside the crash set has every peer inside it.
        isolated = [
            v for v in range(1, 8)
            if v not in ranks
            and set(binomial_graph_peers(v, 8)) <= set(ranks)
        ]
        assert isolated, "adversarial set severed nobody"


class TestFtbcastFaults:
    def test_delivery_survives_below_the_tolerance(self):
        sc = get_scenario("ftbcast_faults")
        result = sc.run({"failures": 2, "placement": "spread"})
        assert result["failures"] == 2 < int(math.log2(result["nprocs"]))
        assert result["all_live_delivered"] is True
        assert result["delivered_live"] == result["live_ranks"]

    def test_adversarial_crashes_beyond_tolerance_break_delivery(self):
        sc = get_scenario("ftbcast_faults")
        result = sc.run({"failures": 5, "placement": "adversarial"})
        assert result["failures"] == 5 >= result["tolerance"]
        assert result["all_live_delivered"] is False
        assert result["delivered_live"] < result["live_ranks"]

    def test_adversarial_below_tolerance_still_delivers(self):
        sc = get_scenario("ftbcast_faults")
        result = sc.run({"failures": 2, "placement": "adversarial"})
        assert result["all_live_delivered"] is True


class TestLossyPingpong:
    def test_clean_fabric_needs_no_retransmits(self):
        result = get_scenario("lossy_pingpong").run({"loss": 0.0,
                                                     "count": 16})
        assert result["completed"] == 16
        assert result["retransmits"] == 0
        assert result["packets_lost"] == 0

    def test_lossy_fabric_recovers_goodput_via_retransmission(self):
        result = get_scenario("lossy_pingpong").run({"loss": 0.2,
                                                     "count": 32})
        assert result["packets_lost"] > 0
        assert result["retransmits"] > 0
        assert result["completed"] == 32  # at-least-once, exactly counted
        assert result["goodput_mmps"] > 0

    def test_goodput_degrades_with_loss(self):
        sc = get_scenario("lossy_pingpong")
        clean = sc.run({"loss": 0.0, "count": 32})
        lossy = sc.run({"loss": 0.3, "count": 32})
        assert lossy["goodput_mmps"] < clean["goodput_mmps"]


class TestLinkFlapRecovery:
    def test_recovery_time_is_finite_and_drops_happened(self):
        sc = get_scenario("link_flap_recovery")
        result = sc.run(sc.tiny)
        assert result["fault_link_drops"] > 0
        assert result["timeouts"] > 0
        assert result["retransmits"] > 0
        assert result["link_down_events"] >= 1
        # Finite time-to-recovery: something completed after the final
        # link-up (-1.0 is the "never recovered" sentinel).
        assert result["recovery_ns"] >= 0.0
        assert result["completed"] == result["offered"]


def _det(record):
    return {k: record[k] for k in DETERMINISTIC_FIELDS}


def test_fault_sweeps_identical_serial_vs_parallel(tmp_path):
    sweeps = (
        ("lossy_pingpong", {"loss": (0.0, 0.2)}, {"count": 16}),
        ("ftbcast_faults", {"failures": (1, 5)},
         {"placement": "adversarial"}),
    )

    def run_all(workers, cache_path):
        records = []
        for name, grid, overrides in sweeps:
            res = run_grid(name, grid, workers=workers,
                           cache_path=cache_path, overrides=overrides)
            assert res.executed == len(res.jobs)
            records.extend(res.records)
        return records

    serial = run_all(1, tmp_path / "serial.jsonl")
    parallel = run_all(2, tmp_path / "parallel.jsonl")
    assert [_det(r) for r in serial] == [_det(r) for r in parallel]
