"""The drivers' reliability layer: timeouts, retransmits, dedup, recovery."""

import pytest

from repro.faults import FaultPlan, PacketLoss
from repro.portals.matching import MatchEntry
from repro.sim import ClusterSpec, Metrics, Session
from repro.sim.drivers import ClosedLoopDriver, OpenLoopDriver, dedup_channel

TAG = 54


class TestParameterValidation:
    def test_retries_need_a_timeout(self):
        with Session.pair("int") as sess:
            with pytest.raises(ValueError, match="timeout"):
                OpenLoopDriver(sess, source=0, target=1, rate_mmps=1.0,
                               count=1, match_bits=TAG, retries=3)

    def test_rejects_degenerate_knobs(self):
        with Session.pair("int") as sess:
            with pytest.raises(ValueError):
                OpenLoopDriver(sess, source=0, target=1, rate_mmps=1.0,
                               count=1, match_bits=TAG, timeout_ns=0.0)
            with pytest.raises(ValueError):
                OpenLoopDriver(sess, source=0, target=1, rate_mmps=1.0,
                               count=1, match_bits=TAG, timeout_ns=100.0,
                               retries=-1)
            with pytest.raises(ValueError):
                OpenLoopDriver(sess, source=0, target=1, rate_mmps=1.0,
                               count=1, match_bits=TAG, timeout_ns=100.0,
                               retries=1, backoff=0.5)


class TestRetransmission:
    def test_open_loop_recovers_every_request_under_loss(self):
        with Session.pair("int") as sess:
            sess.attach_faults(FaultPlan(faults=(PacketLoss(0.2),), seed=11))
            dedup_channel(sess, 1, match_bits=TAG)
            metrics = Metrics()
            metrics.completion_log = []
            driver = OpenLoopDriver(
                sess, source=0, target=1, rate_mmps=1.0, count=64, size=2048,
                match_bits=TAG, seed=5, metrics=metrics,
                timeout_ns=20000.0, retries=6,
            )
            driver.start()
            sess.drain()
            assert driver.finalize() == 0
            summary = metrics.summary(elapsed_ps=sess.env.now)
        assert summary["completed"] == 64
        assert summary["dropped"] == 0
        assert summary["timeouts"] > 0
        assert summary["retransmits"] > 0
        # Every unique completion was logged exactly once.
        assert len(metrics.completion_log) == 64
        # Goodput counts unique requests, not retransmitted wire traffic.
        assert summary["goodput_mmps"] > 0

    def test_retry_budget_exhaustion_drops_the_request(self):
        with Session.pair("int") as sess:
            sess.attach_faults(FaultPlan(faults=(PacketLoss(1.0),), seed=2))
            dedup_channel(sess, 1, match_bits=TAG)
            metrics = Metrics()
            driver = OpenLoopDriver(
                sess, source=0, target=1, rate_mmps=1.0, count=8, size=512,
                match_bits=TAG, seed=5, metrics=metrics,
                timeout_ns=3000.0, retries=2,
            )
            driver.start()
            sess.drain()
            # The timers resolved every request in-sim: nothing to reap.
            assert driver.finalize() == 0
            summary = metrics.summary(elapsed_ps=sess.env.now)
        assert summary["dropped"] == 8
        assert summary["retransmits"] == 16  # 2 retries each
        assert summary["timeouts"] == 24     # 3 attempts each timed out
        assert metrics.notes["lost_requests"] == 8

    def test_dedup_channel_absorbs_duplicate_deliveries(self):
        with Session.pair("int") as sess:
            sess.attach_faults(FaultPlan(faults=(PacketLoss(0.25),), seed=11))
            channel = dedup_channel(sess, 1, match_bits=TAG)
            metrics = Metrics()
            driver = OpenLoopDriver(
                sess, source=0, target=1, rate_mmps=1.0, count=48, size=1024,
                match_bits=TAG, seed=5, metrics=metrics,
                timeout_ns=8000.0, retries=8,
            )
            driver.start()
            sess.drain()
            driver.finalize()
            summary = metrics.summary(elapsed_ps=sess.env.now)
            hpu_vars = channel.entry.spin.hpu_memory.vars
        # Lost ACKs make the initiator retransmit already-delivered
        # requests; the target must drop those copies on the NIC yet the
        # unique-completion count must still be exact.
        assert summary["completed"] == 48
        assert hpu_vars.get("dups", 0) > 0
        assert len(hpu_vars["seen"]) == 48


class TestTimeoutUnblocksClosedLoop:
    def test_total_loss_does_not_hang_the_drain(self):
        with Session.pair("int") as sess:
            sess.attach_faults(FaultPlan(faults=(PacketLoss(1.0),), seed=2))
            dedup_channel(sess, 1, match_bits=TAG)
            metrics = Metrics()
            driver = ClosedLoopDriver(
                sess, sources=[0], clients=3, requests_per_client=4,
                target=1, size=256, match_bits=TAG, seed=9, metrics=metrics,
                timeout_ns=5000.0,
            )
            driver.start()
            sess.drain()  # would deadlock without the per-request timer
            assert driver.finalize() == 0
            summary = metrics.summary(elapsed_ps=sess.env.now)
        assert summary["started"] == 12
        assert summary["dropped"] == 12
        assert summary["timeouts"] == 12

    def test_congestion_tail_drop_times_out_instead_of_hanging(self):
        """Regression: silent tail-drops used to stall closed-loop clients.

        An incast through depth-2 link queues tail-drops some requests;
        each affected client must time out, count the loss, and keep
        issuing — the run ends with zero in-flight requests.
        """
        spec = ClusterSpec(nodes=4, config="int", fabric="congestion",
                           link_queue_depth=2)
        with Session(spec) as sess:
            sess.install(3, MatchEntry(match_bits=TAG, length=1 << 30))
            metrics = Metrics()
            driver = ClosedLoopDriver(
                sess, sources=[0, 1, 2], clients=4, requests_per_client=8,
                target=3, size=8192, match_bits=TAG, seed=3, metrics=metrics,
                timeout_ns=50000.0,
            )
            driver.start()
            sess.drain()
            assert driver.finalize() == 0
            summary = metrics.summary(elapsed_ps=sess.env.now)
            dropped_in_net = sess.cluster.fabric.total_link_drops()
        # clients are a population shared across the sources: 4 × 8.
        assert summary["started"] == 32
        assert dropped_in_net > 0, "queues never overflowed — weak fixture"
        assert summary["timeouts"] > 0
        assert summary["completed"] + summary["dropped"] == 32
        total = metrics.total()
        assert total.in_flight == 0


class TestDefaultPathUnchanged:
    def test_no_timeout_driver_reports_zero_reliability_counters(self):
        with Session.pair("int") as sess:
            sess.install(1, MatchEntry(match_bits=TAG, length=1 << 30))
            metrics = Metrics()
            driver = OpenLoopDriver(
                sess, source=0, target=1, rate_mmps=1.0, count=8,
                match_bits=TAG, seed=1, metrics=metrics,
            )
            driver.start()
            sess.drain()
            driver.finalize()
            summary = metrics.summary(elapsed_ps=sess.env.now)
        assert summary["completed"] == 8
        assert summary["timeouts"] == 0
        assert summary["retransmits"] == 0

    def test_hdr_data_is_untagged_without_retries(self):
        seen = []

        with Session.pair("int") as sess:
            from repro.core.handlers import ReturnCode

            def header(ctx, h):
                ctx.charge(4)
                seen.append(h.hdr_data)
                return ReturnCode.PROCEED

            sess.connect(1, match_bits=TAG, length=1 << 30,
                         header_handler=header, hpu_mem_bytes=256)
            driver = OpenLoopDriver(
                sess, source=0, target=1, rate_mmps=1.0, count=4,
                match_bits=TAG, seed=1, timeout_ns=50000.0,  # no retries
            )
            driver.start()
            sess.drain()
            driver.finalize()
        assert seen == [0, 0, 0, 0]
