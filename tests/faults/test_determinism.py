"""Fault determinism: identical plans replay byte-identically everywhere.

The injector's randomness comes from a dedicated ``random.Random`` whose
draws happen in kernel-event order; both event cores and both fast-path
flavours pin that order, so a faulted run's canonical trace bytes must
match across every flavour combination — and a plan with no faults must
leave the trace byte-identical to an unfaulted run.
"""

import pytest

from repro.faults import FaultPlan, PacketLoss
from repro.sim import Metrics, Session
from repro.sim.drivers import OpenLoopDriver, dedup_channel

TAG = 53

FLAVOURS = [
    (queue, fast)
    for queue in ("calendar", "heap")
    for fast in (True, False)
]


def _set_flavour(monkeypatch, queue: str, fast: bool) -> None:
    monkeypatch.setenv("REPRO_EVENT_QUEUE", queue)
    monkeypatch.setenv("REPRO_FABRIC_FAST_PATH", "1" if fast else "0")
    monkeypatch.setenv("REPRO_NIC_FAST_RX", "1" if fast else "0")


def _lossy_run(plan):
    """A traced lossy run with the full reliability stack engaged."""
    with Session.pair("int", trace=True) as sess:
        if plan is not None:
            sess.attach_faults(plan)
        dedup_channel(sess, 1, match_bits=TAG)
        metrics = Metrics()
        driver = OpenLoopDriver(
            sess, source=0, target=1, rate_mmps=2.0, count=24, size=2048,
            match_bits=TAG, seed=7, metrics=metrics,
            timeout_ns=15000.0, retries=4,
        )
        driver.start()
        sess.drain()
        driver.finalize()
        summary = metrics.summary(elapsed_ps=sess.env.now)
        return (summary["completed"], summary["retransmits"],
                sess.timeline.canonical_bytes())


def test_identical_plan_replays_identically_across_all_flavours(monkeypatch):
    results = []
    for queue, fast in FLAVOURS:
        _set_flavour(monkeypatch, queue, fast)
        results.append(_lossy_run(FaultPlan(faults=(PacketLoss(0.3),),
                                            seed=23)))
    first = results[0]
    assert first[1] > 0, "loss never triggered a retransmit — weak fixture"
    for other, (queue, fast) in zip(results[1:], FLAVOURS[1:]):
        assert other == first, f"flavour ({queue}, fast={fast}) diverged"


def test_fault_seed_actually_steers_the_draws(monkeypatch):
    _set_flavour(monkeypatch, "calendar", True)
    a = _lossy_run(FaultPlan(faults=(PacketLoss(0.3),), seed=23))
    b = _lossy_run(FaultPlan(faults=(PacketLoss(0.3),), seed=24))
    assert a[2] != b[2]


def test_empty_plan_leaves_trace_byte_identical_to_no_plan(monkeypatch):
    _set_flavour(monkeypatch, "calendar", True)
    unfaulted = _lossy_run(None)
    armed_empty = _lossy_run(FaultPlan())
    assert armed_empty == unfaulted


@pytest.mark.parametrize("queue,fast", FLAVOURS)
def test_same_flavour_rerun_is_bitwise_stable(monkeypatch, queue, fast):
    _set_flavour(monkeypatch, queue, fast)
    plan = FaultPlan(faults=(PacketLoss(0.3),), seed=23)
    assert _lossy_run(plan) == _lossy_run(plan)
