"""FaultPlan validation: immutable, typed, and loudly rejected when wrong."""

import pytest

from repro.faults import (
    FaultPlan,
    HandlerFault,
    LinkDegrade,
    LinkDown,
    NodeCrash,
    PacketCorrupt,
    PacketLoss,
    link_flap,
)


class TestSpecValidation:
    def test_link_down_rejects_bad_windows(self):
        with pytest.raises(ValueError):
            LinkDown(pattern="core", at_ns=-1.0, duration_ns=100.0)
        with pytest.raises(ValueError):
            LinkDown(pattern="core", at_ns=0.0, duration_ns=0.0)
        with pytest.raises(ValueError):
            LinkDown(pattern="", at_ns=0.0, duration_ns=100.0)

    def test_link_degrade_needs_integer_scale(self):
        with pytest.raises(ValueError):
            LinkDegrade(pattern="core", at_ns=0.0, duration_ns=1.0,
                        tx_scale=0)
        with pytest.raises(ValueError):
            LinkDegrade(pattern="core", at_ns=0.0, duration_ns=1.0,
                        tx_scale=2.5)

    @pytest.mark.parametrize("cls", (PacketLoss, PacketCorrupt))
    def test_packet_faults_validate_probability_and_window(self, cls):
        with pytest.raises(ValueError):
            cls(probability=1.5)
        with pytest.raises(ValueError):
            cls(probability=-0.1)
        with pytest.raises(ValueError):
            cls(probability=0.5, start_ns=-1.0)
        with pytest.raises(ValueError):
            cls(probability=0.5, start_ns=10.0, stop_ns=10.0)
        # Degenerate-but-legal probabilities are fine.
        cls(probability=0.0)
        cls(probability=1.0)

    def test_node_crash_and_handler_fault_reject_negatives(self):
        with pytest.raises(ValueError):
            NodeCrash(rank=-1, at_ns=0.0)
        with pytest.raises(ValueError):
            NodeCrash(rank=0, at_ns=-5.0)
        with pytest.raises(ValueError):
            HandlerFault(rank=-2)
        with pytest.raises(ValueError):
            HandlerFault(rank=0, probability=2.0)


class TestFaultPlan:
    def test_rejects_non_fault_entries(self):
        with pytest.raises(TypeError):
            FaultPlan(faults=("not a fault",))

    def test_truthiness_tracks_contents(self):
        assert not FaultPlan()
        assert FaultPlan(faults=(PacketLoss(0.1),))

    def test_of_type_filters(self):
        plan = FaultPlan(faults=(
            PacketLoss(0.1),
            NodeCrash(rank=1, at_ns=0.0),
            PacketCorrupt(0.2),
        ))
        assert len(plan.of_type(PacketLoss)) == 1
        assert len(plan.of_type(PacketLoss, PacketCorrupt)) == 2
        assert plan.of_type(LinkDown) == ()

    def test_plans_are_immutable(self):
        plan = FaultPlan(faults=(PacketLoss(0.1),), seed=3)
        with pytest.raises(AttributeError):
            plan.seed = 4


class TestLinkFlap:
    def test_generates_one_window_per_cycle(self):
        windows = link_flap("core", first_down_ns=100.0, down_ns=50.0,
                            up_ns=25.0, cycles=3)
        assert [w.at_ns for w in windows] == [100.0, 175.0, 250.0]
        assert all(w.duration_ns == 50.0 for w in windows)
        assert all(w.pattern == "core" for w in windows)

    def test_rejects_degenerate_schedules(self):
        with pytest.raises(ValueError):
            link_flap("core", first_down_ns=0.0, down_ns=1.0, up_ns=1.0,
                      cycles=0)
        with pytest.raises(ValueError):
            link_flap("core", first_down_ns=0.0, down_ns=1.0, up_ns=-1.0)
