"""Tests for LogGP parameters and paper-derived quantities (§4.2, §4.4.2)."""

import pytest

from repro.des import ns
from repro.network import LogGPParams, NetworkParams


class TestPaperConstants:
    """The defaults must reproduce the paper's §4.2 parameters."""

    def test_defaults(self):
        p = LogGPParams()
        assert p.o_ps == ns(65)
        assert p.g_ps == ns(6.7)
        assert p.G_ps_per_byte == 20  # 400 Gbit/s = 20 ps/Byte
        assert p.mtu == 4096

    def test_line_rate_is_50_gbytes(self):
        assert LogGPParams().bandwidth_gbytes == pytest.approx(50.0)

    def test_message_rate_is_150_mmps(self):
        assert LogGPParams().message_rate_mmps == pytest.approx(149.25, rel=0.01)

    def test_g_over_G_crossover_is_335_bytes(self):
        """§4.4.2: 'From g/G = 335B, the link bandwidth becomes the bottleneck'."""
        assert LogGPParams().g_over_G_bytes == pytest.approx(335.0)

    def test_full_packet_serialization_time(self):
        # 4 KiB at 50 GB/s = 81.92 ns
        assert LogGPParams().serialization_ps(4096) == 4096 * 20


class TestDerived:
    def test_packets_in(self):
        p = LogGPParams()
        assert p.packets_in(0) == 1  # header-only
        assert p.packets_in(1) == 1
        assert p.packets_in(4096) == 1
        assert p.packets_in(4097) == 2
        assert p.packets_in(65536) == 16

    def test_arrival_rate_small_packets_g_bound(self):
        p = LogGPParams()
        # Below 335 B the message rate caps arrivals.
        assert p.arrival_rate_pps(64) == pytest.approx(1.0 / p.g_ps)

    def test_arrival_rate_large_packets_G_bound(self):
        p = LogGPParams()
        assert p.arrival_rate_pps(4096) == pytest.approx(1.0 / (20 * 4096))

    def test_arrival_rate_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LogGPParams().arrival_rate_pps(0)

    def test_invalid_mtu_rejected(self):
        with pytest.raises(ValueError):
            LogGPParams(mtu=0)

    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            LogGPParams(o_ps=-1)


class TestNetworkParams:
    def test_latency_for_hops_matches_paper_model(self):
        np_ = NetworkParams()
        # 1 switch + 2 wires: 50 + 2*33.4 = 116.8 ns
        assert np_.latency_for_hops(1) == ns(50) + 2 * ns(33.4)
        # Cross-pod: 5 switches + 6 wires = 250 + 200.4 = 450.4 ns
        assert np_.latency_for_hops(5) == 5 * ns(50) + 6 * ns(33.4)

    def test_loopback_zero(self):
        assert NetworkParams().latency_for_hops(0) == 0

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            NetworkParams().latency_for_hops(-1)

    def test_odd_radix_rejected(self):
        with pytest.raises(ValueError):
            NetworkParams(switch_radix=35)

    def test_with_loggp_override(self):
        np_ = NetworkParams().with_loggp(mtu=1024)
        assert np_.loggp.mtu == 1024
        assert np_.loggp.o_ps == ns(65)  # untouched fields preserved
