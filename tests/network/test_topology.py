"""Tests for the fat-tree topology: hop arithmetic vs networkx ground truth."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import FatTree, NetworkParams, UniformLatency
from repro.network.topology import cross_pod_pair


def small_tree(nhosts=64, radix=8):
    return FatTree(params=NetworkParams(switch_radix=radix), nhosts=nhosts)


class TestStructure:
    def test_capacity_36_port(self):
        tree = FatTree(nhosts=1024)
        assert tree.capacity == 36**3 // 4 == 11664
        assert tree.hosts_per_edge == 18
        assert tree.hosts_per_pod == 324

    def test_too_many_hosts_rejected(self):
        with pytest.raises(ValueError):
            FatTree(params=NetworkParams(switch_radix=4), nhosts=17)  # cap=16

    def test_pod_and_edge_assignment(self):
        tree = small_tree(nhosts=64, radix=8)  # 4 hosts/edge, 16 hosts/pod
        assert tree.edge_switch_of(0) == 0
        assert tree.edge_switch_of(3) == 0
        assert tree.edge_switch_of(4) == 1
        assert tree.pod_of(15) == 0
        assert tree.pod_of(16) == 1


class TestHops:
    def test_loopback(self):
        assert small_tree().switch_hops(5, 5) == 0

    def test_same_edge(self):
        tree = small_tree()
        assert tree.switch_hops(0, 3) == 1

    def test_same_pod(self):
        tree = small_tree()
        assert tree.switch_hops(0, 4) == 3

    def test_cross_pod(self):
        tree = small_tree()
        assert tree.switch_hops(0, 16) == 5

    def test_symmetry(self):
        tree = small_tree()
        for a, b in [(0, 3), (0, 4), (0, 16), (7, 63)]:
            assert tree.switch_hops(a, b) == tree.switch_hops(b, a)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            small_tree(nhosts=8).switch_hops(0, 8)


class TestLatency:
    def test_cross_pod_latency_value(self):
        tree = FatTree(nhosts=1024)
        # 5 switches * 50ns + 6 wires * 33.4ns = 450.4 ns
        assert tree.latency_ps(0, 324) == 450_400
        assert tree.max_latency_ps() == 450_400

    def test_same_edge_latency_value(self):
        tree = FatTree(nhosts=1024)
        assert tree.latency_ps(0, 1) == 116_800  # 50 + 2*33.4


class TestAgainstNetworkx:
    @settings(max_examples=20, deadline=None)
    @given(
        a=st.integers(min_value=0, max_value=31),
        b=st.integers(min_value=0, max_value=31),
    )
    def test_arithmetic_matches_graph_shortest_path(self, a, b):
        tree = small_tree(nhosts=32, radix=8)  # radix-8 capacity = 128
        if a == b:
            assert tree.switch_hops(a, b) == 0
            return
        assert tree.switch_hops(a, b) == tree.graph_switch_hops(a, b)


class TestUniformLatency:
    def test_uniform(self):
        u = UniformLatency(latency=1000)
        assert u.latency_ps(0, 1) == 1000
        assert u.latency_ps(3, 3) == 0
        assert u.max_latency_ps() == 1000


class TestHelpers:
    def test_cross_pod_pair(self):
        tree = small_tree(nhosts=64, radix=8)
        pair = cross_pod_pair(tree)
        assert pair is not None
        a, b = pair
        assert tree.pod_of(a) != tree.pod_of(b)

    def test_cross_pod_pair_none_when_single_pod(self):
        assert cross_pod_pair(small_tree(nhosts=16, radix=8)) is None
