"""Deterministic routed-path selection over the fat tree and crossbar."""

import pytest

from repro.network.loggp import NetworkParams
from repro.network.routing import (
    ROUTING_POLICIES,
    crossbar_path,
    fattree_path,
    hash_choice,
)
from repro.network.topology import FatTree


def tree(radix=4, nhosts=16):
    return FatTree(params=NetworkParams(switch_radix=radix), nhosts=nhosts)


def switches_on(path):
    return [node for node in path if node[0] != "host"]


class TestPathStructure:
    def test_loopback_is_empty(self):
        assert fattree_path(tree(), 3, 3, msg_id=0) == []
        assert crossbar_path(5, 5) == []

    def test_endpoints_and_switch_count_match_arithmetic(self):
        t = tree()
        for src in range(t.nhosts):
            for dst in range(t.nhosts):
                if src == dst:
                    continue
                for msg_id in (0, 1, 17):
                    path = fattree_path(t, src, dst, msg_id)
                    assert path[0] == ("host", src)
                    assert path[-1] == ("host", dst)
                    assert len(switches_on(path)) == t.switch_hops(src, dst)

    def test_every_hop_is_a_real_fattree_edge(self):
        """Cross-validate arithmetic paths against the networkx wiring."""
        t = tree()
        graph = t.build_graph()
        for src in range(t.nhosts):
            for dst in range(t.nhosts):
                if src == dst:
                    continue
                for msg_id in range(8):
                    path = fattree_path(t, src, dst, msg_id)
                    for u, v in zip(path, path[1:]):
                        assert graph.has_edge(u, v), (src, dst, msg_id, u, v)

    def test_crossbar_path_shape(self):
        assert crossbar_path(2, 7) == [("host", 2), ("xbar", 0), ("host", 7)]

    def test_unknown_routing_rejected(self):
        with pytest.raises(ValueError):
            fattree_path(tree(), 0, 5, 0, routing="valiant")


class TestDeterminism:
    def test_same_inputs_same_path(self):
        """Same (src, dst, msg_id) → the same path, run after run."""
        t = tree()
        for routing in ROUTING_POLICIES:
            paths = [
                fattree_path(t, 1, 14, msg_id=42, routing=routing)
                for _ in range(5)
            ]
            assert all(p == paths[0] for p in paths)

    def test_hash_choice_is_pure_and_in_range(self):
        seen = {hash_choice(8, 3, 5, m) for m in range(256)}
        assert seen == {hash_choice(8, 3, 5, m) for m in range(256)}
        assert seen <= set(range(8))
        # ECMP actually spreads over several choices.
        assert len(seen) > 4

    def test_ecmp_varies_with_msg_id(self):
        t = tree()
        paths = {tuple(fattree_path(t, 0, 15, m)) for m in range(64)}
        assert len(paths) > 1  # multipath actually used
        # ... but all are valid minimal paths between the same endpoints.
        for p in paths:
            assert p[0] == ("host", 0) and p[-1] == ("host", 15)
            assert len(switches_on(list(p))) == 5

    def test_dmodk_ignores_msg_id(self):
        t = tree()
        paths = {
            tuple(fattree_path(t, 0, 15, m, routing="dmodk"))
            for m in range(64)
        }
        assert len(paths) == 1

    def test_dmodk_pins_all_sources_to_one_core(self):
        """Every flow toward one destination shares the same core switch —
        the property congested_tenants uses to build a shared bottleneck."""
        t = tree()
        dst = 2
        cores = set()
        for src in range(4, 16):  # all hosts outside dst's pod
            path = fattree_path(t, src, dst, msg_id=src * 7, routing="dmodk")
            cores.update(node for node in path if node[0] == "core")
        assert len(cores) == 1

    def test_cross_pod_core_agg_consistency(self):
        """The chosen core must attach to the chosen agg level in both pods
        (core a*(k/2)+c wires to agg index a everywhere)."""
        t = tree()
        half_k = t.radix // 2
        for msg_id in range(32):
            path = fattree_path(t, 0, 15, msg_id)
            aggs = [n for n in path if n[0] == "agg"]
            core = next(n for n in path if n[0] == "core")
            assert len(aggs) == 2
            assert aggs[0][2] == aggs[1][2] == core[1] // half_k
