"""Deterministic routed-path selection over the fat tree and crossbar."""

import pytest

from repro.network.loggp import NetworkParams
from repro.network.routing import (
    ROUTING_POLICIES,
    crossbar_path,
    fattree_path,
    hash_choice,
)
from repro.network.topology import FatTree


def tree(radix=4, nhosts=16):
    return FatTree(params=NetworkParams(switch_radix=radix), nhosts=nhosts)


def switches_on(path):
    return [node for node in path if node[0] != "host"]


class TestPathStructure:
    def test_loopback_is_empty(self):
        assert fattree_path(tree(), 3, 3, msg_id=0) == []
        assert crossbar_path(5, 5) == []

    def test_endpoints_and_switch_count_match_arithmetic(self):
        t = tree()
        for src in range(t.nhosts):
            for dst in range(t.nhosts):
                if src == dst:
                    continue
                for msg_id in (0, 1, 17):
                    path = fattree_path(t, src, dst, msg_id)
                    assert path[0] == ("host", src)
                    assert path[-1] == ("host", dst)
                    assert len(switches_on(path)) == t.switch_hops(src, dst)

    def test_every_hop_is_a_real_fattree_edge(self):
        """Cross-validate arithmetic paths against the networkx wiring."""
        t = tree()
        graph = t.build_graph()
        for src in range(t.nhosts):
            for dst in range(t.nhosts):
                if src == dst:
                    continue
                for msg_id in range(8):
                    path = fattree_path(t, src, dst, msg_id)
                    for u, v in zip(path, path[1:]):
                        assert graph.has_edge(u, v), (src, dst, msg_id, u, v)

    def test_crossbar_path_shape(self):
        assert crossbar_path(2, 7) == [("host", 2), ("xbar", 0), ("host", 7)]

    def test_unknown_routing_rejected(self):
        with pytest.raises(ValueError):
            fattree_path(tree(), 0, 5, 0, routing="valiant")


class TestDeterminism:
    def test_same_inputs_same_path(self):
        """Same (src, dst, msg_id) → the same path, run after run."""
        t = tree()
        for routing in ROUTING_POLICIES:
            paths = [
                fattree_path(t, 1, 14, msg_id=42, routing=routing)
                for _ in range(5)
            ]
            assert all(p == paths[0] for p in paths)

    def test_hash_choice_is_pure_and_in_range(self):
        seen = {hash_choice(8, 3, 5, m) for m in range(256)}
        assert seen == {hash_choice(8, 3, 5, m) for m in range(256)}
        assert seen <= set(range(8))
        # ECMP actually spreads over several choices.
        assert len(seen) > 4

    def test_ecmp_varies_with_msg_id(self):
        t = tree()
        paths = {tuple(fattree_path(t, 0, 15, m)) for m in range(64)}
        assert len(paths) > 1  # multipath actually used
        # ... but all are valid minimal paths between the same endpoints.
        for p in paths:
            assert p[0] == ("host", 0) and p[-1] == ("host", 15)
            assert len(switches_on(list(p))) == 5

    def test_dmodk_ignores_msg_id(self):
        t = tree()
        paths = {
            tuple(fattree_path(t, 0, 15, m, routing="dmodk"))
            for m in range(64)
        }
        assert len(paths) == 1

    def test_dmodk_pins_all_sources_to_one_core(self):
        """Every flow toward one destination shares the same core switch —
        the property congested_tenants uses to build a shared bottleneck."""
        t = tree()
        dst = 2
        cores = set()
        for src in range(4, 16):  # all hosts outside dst's pod
            path = fattree_path(t, src, dst, msg_id=src * 7, routing="dmodk")
            cores.update(node for node in path if node[0] == "core")
        assert len(cores) == 1

class TestMultiPod:
    """Larger radices (hundreds of hosts, many pods): the serving-cluster
    regime.  Routed paths must stay real edges of the materialized wiring
    at every scale, not just the radix-4 toy tree."""

    @pytest.mark.parametrize("radix,nhosts", [(6, 54), (8, 128)])
    def test_every_hop_is_a_real_edge_at_scale(self, radix, nhosts):
        t = tree(radix=radix, nhosts=nhosts)
        assert t.num_pods > 2  # genuinely multi-pod, not a one-pod subset
        graph = t.build_graph()
        # Sampled pairs: same-edge, same-pod, and cross-pod distances all
        # represented; full O(n²) would be slow for no extra coverage.
        pairs = [(a, b)
                 for a in range(0, nhosts, 7)
                 for b in range(0, nhosts, 11) if a != b]
        assert any(t.switch_hops(a, b) == 5 for a, b in pairs)
        for routing in ROUTING_POLICIES:
            for a, b in pairs:
                for msg_id in (0, 3, 91):
                    path = fattree_path(t, a, b, msg_id, routing=routing)
                    assert path[0] == ("host", a)
                    assert path[-1] == ("host", b)
                    assert len(switches_on(path)) == t.switch_hops(a, b)
                    for u, v in zip(path, path[1:]):
                        assert graph.has_edge(u, v), (routing, a, b, u, v)

    def test_for_hosts_picks_minimal_radix(self):
        for nhosts, radix in [(2, 2), (16, 4), (17, 6), (100, 8), (1000, 16)]:
            t = FatTree.for_hosts(nhosts)
            assert t.radix == radix
            assert t.capacity >= nhosts
            # Minimal: the next smaller even radix cannot hold the hosts.
            if radix > 2:
                assert (radix - 2) ** 3 // 4 < nhosts

    def test_for_hosts_preserves_other_params(self):
        params = NetworkParams(switch_radix=36, wire_delay_ps=123_000)
        t = FatTree.for_hosts(100, params=params)
        assert t.radix == 8
        assert t.params.wire_delay_ps == 123_000

    def test_pod_and_switch_counts(self):
        t = tree(radix=4, nhosts=16)
        assert t.num_pods == 4
        assert t.num_edge_switches == 8
        assert t.num_core_switches == 4
        assert tree(radix=4, nhosts=5).num_pods == 2  # ceil(5/4)

    def test_ecmp_spreads_across_cores_in_a_big_tree(self):
        t = tree(radix=8, nhosts=128)
        cores = {
            next(n for n in fattree_path(t, 0, 127, m) if n[0] == "core")
            for m in range(128)
        }
        assert len(cores) > 4  # multipath genuinely used at scale


class TestCrossPodConsistency:
    def test_cross_pod_core_agg_consistency(self):
        """The chosen core must attach to the chosen agg level in both pods
        (core a*(k/2)+c wires to agg index a everywhere)."""
        t = tree()
        half_k = t.radix // 2
        for msg_id in range(32):
            path = fattree_path(t, 0, 15, msg_id)
            aggs = [n for n in path if n[0] == "agg"]
            core = next(n for n in path if n[0] == "core")
            assert len(aggs) == 2
            assert aggs[0][2] == aggs[1][2] == core[1] // half_k
