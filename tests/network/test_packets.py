"""Tests for message packetization and reassembly."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network import Message, packetize, reassemble


def make_message(length, source=0, target=1):
    rng = np.random.default_rng(length)
    payload = rng.integers(0, 256, size=length, dtype=np.uint8) if length else np.zeros(0, np.uint8)
    return Message(source=source, target=target, length=length, payload=payload)


class TestMessage:
    def test_payload_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Message(source=0, target=1, length=10, payload=np.zeros(5, np.uint8))

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            Message(source=0, target=1, length=-1)

    def test_from_bytes(self):
        msg = Message.from_bytes(0, 1, b"hello")
        assert msg.length == 5
        assert bytes(msg.payload) == b"hello"

    def test_modelled_message_has_no_payload(self):
        msg = Message(source=0, target=1, length=1 << 20)
        assert msg.payload is None

    def test_unique_ids(self):
        a, b = make_message(4), make_message(4)
        assert a.msg_id != b.msg_id


class TestPacketize:
    def test_zero_length_message_single_header_packet(self):
        pkts = packetize(Message(source=0, target=1, length=0), mtu=4096)
        assert len(pkts) == 1
        assert pkts[0].is_header
        assert pkts[0].payload_len == 0
        assert pkts[0].wire_bytes == 1  # minimal wire slot

    def test_single_packet_message(self):
        pkts = packetize(make_message(100), mtu=4096)
        assert len(pkts) == 1
        assert pkts[0].is_header and pkts[0].payload_len == 100

    def test_exact_mtu_boundary(self):
        assert len(packetize(make_message(4096), mtu=4096)) == 1
        assert len(packetize(make_message(4097), mtu=4096)) == 2

    def test_packet_sequence_and_offsets(self):
        pkts = packetize(make_message(10_000), mtu=4096)
        assert [p.seq for p in pkts] == [0, 1, 2]
        assert [p.payload_offset for p in pkts] == [0, 4096, 8192]
        assert [p.payload_len for p in pkts] == [4096, 4096, 10_000 - 8192]
        assert [p.is_header for p in pkts] == [True, False, False]

    def test_payload_views_share_memory(self):
        msg = make_message(8192)
        pkts = packetize(msg, mtu=4096)
        assert pkts[1].payload.base is msg.payload or pkts[1].payload.base is msg.payload.base

    def test_invalid_mtu(self):
        with pytest.raises(ValueError):
            packetize(make_message(10), mtu=0)


class TestReassemble:
    def test_round_trip_in_order(self):
        msg = make_message(10_000)
        assert np.array_equal(reassemble(packetize(msg, 4096)), msg.payload)

    def test_round_trip_out_of_order(self):
        msg = make_message(20_000)
        pkts = packetize(msg, 4096)
        assert np.array_equal(reassemble(pkts[::-1]), msg.payload)

    def test_missing_packet_detected(self):
        pkts = packetize(make_message(10_000), 4096)
        with pytest.raises(ValueError, match="holes"):
            reassemble(pkts[:-1])

    def test_duplicate_packet_detected(self):
        pkts = packetize(make_message(10_000), 4096)
        with pytest.raises(ValueError, match="overlap"):
            reassemble(pkts + [pkts[0]])

    def test_mixed_messages_rejected(self):
        a = packetize(make_message(100), 4096)
        b = packetize(make_message(100), 4096)
        with pytest.raises(ValueError, match="different messages"):
            reassemble([a[0], b[0]])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            reassemble([])

    def test_modelled_message_rejected(self):
        pkts = packetize(Message(source=0, target=1, length=100), 64)
        with pytest.raises(ValueError, match="modelled"):
            reassemble(pkts)


class TestPacketizeProperties:
    @given(
        length=st.integers(min_value=0, max_value=200_000),
        mtu=st.sampled_from([64, 256, 1024, 4096]),
    )
    def test_round_trip_identity(self, length, mtu):
        msg = make_message(length)
        pkts = packetize(msg, mtu)
        # Packet count matches the analytic formula.
        expected = 1 if length == 0 else -(-length // mtu)
        assert len(pkts) == expected
        # Sizes sum to the message length, every packet <= mtu.
        assert sum(p.payload_len for p in pkts) == length
        assert all(p.payload_len <= mtu for p in pkts)
        # Exactly one header packet, and it is seq 0.
        headers = [p for p in pkts if p.is_header]
        assert len(headers) == 1 and headers[0].seq == 0
        if length:
            assert np.array_equal(reassemble(pkts), msg.payload)
