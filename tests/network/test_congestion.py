"""Congestion fabric: link queues, tail-drop, and the two equivalences.

The two contracts under test:

* **LogGP reduction** — a single uncontended flow sees exactly the
  delivery times the base fabric computes (satellite of ISSUE 4);
* **chain/generator equivalence** — the callback fast path and the
  generator reference path produce identical timings, drops, and link
  accounting under arbitrary contention (the same contract the base
  fabric's ``_TxChain`` honours).
"""

import random

import pytest

from repro.des import Environment, ns
from repro.network import (
    CongestionFabric,
    Fabric,
    FatTree,
    LogGPParams,
    Message,
    NetworkParams,
    UniformLatency,
)


def params(mtu=4096, g=ns(6.7), G=20, depth=64, routing="ecmp", radix=4):
    return NetworkParams(
        loggp=LogGPParams(g_ps=g, G_ps_per_byte=G, mtu=mtu),
        link_queue_depth=depth,
        routing=routing,
        switch_radix=radix,
    )


def make(fabric_cls, p=None, topology=None, fast_path=None):
    env = Environment()
    topo = topology or UniformLatency(latency=ns(100))
    return env, fabric_cls(env, topo, p or params(), fast_path=fast_path)


def attach_sink(fabric, nid):
    received = []
    fabric.attach(nid, lambda pkt: received.append((fabric.env.now, pkt)))
    return received


class TestLogGPReduction:
    @pytest.mark.parametrize("length", (64, 4096, 16384))
    def test_single_message_delivery_times_identical(self, length):
        arrivals = {}
        for cls in (Fabric, CongestionFabric):
            env, fabric = make(cls)
            rx = attach_sink(fabric, 1)
            fabric.attach(0, lambda p: None)
            fabric.inject(Message(source=0, target=1, length=length))
            env.run()
            arrivals[cls] = [(t, p.seq) for t, p in rx]
        assert arrivals[Fabric] == arrivals[CongestionFabric]

    def test_single_flow_stream_identical(self):
        """Back-to-back messages of one flow: still exactly LogGP."""
        from repro.network.packets import reset_msg_ids

        rng = random.Random(7)
        sizes = [rng.choice((1, 512, 4096, 10000)) for _ in range(20)]
        arrivals = {}
        for cls in (Fabric, CongestionFabric):
            reset_msg_ids()
            env, fabric = make(cls)
            rx = attach_sink(fabric, 1)
            fabric.attach(0, lambda p: None)
            for size in sizes:
                fabric.inject(Message(source=0, target=1, length=size))
            env.run()
            arrivals[cls] = [(t, p.message.msg_id, p.seq) for t, p in rx]
        assert arrivals[Fabric] == arrivals[CongestionFabric]

    def test_single_flow_never_queues(self):
        env, fabric = make(CongestionFabric)
        attach_sink(fabric, 1)
        fabric.attach(0, lambda p: None)
        for _ in range(10):
            fabric.inject(Message(source=0, target=1, length=16384))
        env.run()
        assert fabric.max_link_queue() == 0
        assert fabric.total_link_drops() == 0

    def test_fattree_uncontended_matches_topology_latency(self):
        p = params()
        tree = FatTree(params=p, nhosts=16)
        env, fabric = make(CongestionFabric, p, topology=tree)
        rx = attach_sink(fabric, 15)
        fabric.attach(0, lambda pkt: None)
        fabric.inject(Message(source=0, target=15, length=64))
        env.run()
        assert rx[0][0] == 64 * 20 + tree.latency_ps(0, 15)

    def test_loopback_takes_no_links(self):
        env, fabric = make(CongestionFabric)
        rx = attach_sink(fabric, 0)
        fabric.inject(Message(source=0, target=0, length=64))
        env.run()
        assert rx[0][0] == 64 * 20  # source serialization only, zero latency
        assert fabric.links == {}  # loopback takes no links


class TestContention:
    def test_incast_serializes_on_ingress_port(self):
        """Two simultaneous senders: the second message's packets queue
        behind the first on the destination ingress link."""
        env, fabric = make(CongestionFabric, params(G=20, g=0))
        rx = attach_sink(fabric, 2)
        fabric.attach(0, lambda p: None)
        fabric.attach(1, lambda p: None)
        fabric.inject(Message(source=0, target=2, length=4096))
        fabric.inject(Message(source=1, target=2, length=4096))
        env.run()
        ser = 4096 * 20
        arrivals = sorted(t for t, _ in rx)
        # First packet at ser + L; the second had to wait a full slot.
        assert arrivals == [ser + ns(100), 2 * ser + ns(100)]
        assert fabric.max_link_queue() == 1
        ingress = fabric.links[(("xbar", 0), ("host", 2))]
        assert ingress.packets == 2
        assert ingress.wait_ps == ser

    def test_distinct_destinations_do_not_interfere(self):
        env, fabric = make(CongestionFabric, params(g=0))
        rx1 = attach_sink(fabric, 2)
        rx2 = attach_sink(fabric, 3)
        fabric.attach(0, lambda p: None)
        fabric.attach(1, lambda p: None)
        fabric.inject(Message(source=0, target=2, length=4096))
        fabric.inject(Message(source=1, target=3, length=4096))
        env.run()
        assert rx1[0][0] == rx2[0][0] == 4096 * 20 + ns(100)

    def test_tail_drop_at_depth(self):
        """depth=1: a burst of simultaneous single-packet messages keeps at
        most one waiter per link; the overflow is dropped and counted."""
        env, fabric = make(CongestionFabric, params(depth=1, g=0))
        rx = attach_sink(fabric, 8)
        for nid in range(8):
            fabric.attach(nid, lambda p: None)
        for src in range(8):
            fabric.inject(Message(source=src, target=8, length=4096))
        env.run()
        assert fabric.total_link_drops() > 0
        assert len(rx) + fabric.total_link_drops() == 8
        ingress = fabric.links[(("xbar", 0), ("host", 8))]
        assert ingress.drops == fabric.total_link_drops()
        assert ingress.max_queue <= 1

    def test_link_stats_shape(self):
        env, fabric = make(CongestionFabric)
        attach_sink(fabric, 1)
        fabric.attach(0, lambda p: None)
        fabric.inject(Message(source=0, target=1, length=8192))
        env.run()
        stats = fabric.link_stats(env.now)
        assert set(stats) == {"host0->xbar0", "xbar0->host1"}
        for s in stats.values():
            assert s["packets"] == 2
            assert s["drops"] == 0
            assert 0.0 <= s["utilization"] <= 1.0
        assert fabric.max_link_utilization(env.now) > 0

    def test_detached_destination_counts_packets_dropped(self):
        env, fabric = make(CongestionFabric)
        fabric.attach(0, lambda p: None)
        attach_sink(fabric, 1)
        fabric.inject(Message(source=0, target=1, length=8192))
        fabric.detach(1)
        env.run()
        assert fabric.packets_dropped == 2
        assert fabric.packets_delivered == 0


def _contended_run(fast_path, topology_kind, seed):
    """A randomized many-flow workload; returns timings + accounting."""
    p = params(depth=3, g=ns(50))
    if topology_kind == "fattree":
        topo = FatTree(params=p, nhosts=16)
    else:
        topo = UniformLatency(latency=ns(100))
    env = Environment()
    fabric = CongestionFabric(env, topo, p, fast_path=fast_path)
    deliveries = []
    for nid in range(16):
        fabric.attach(
            nid,
            lambda pkt: deliveries.append(
                (env.now, pkt.message.msg_id, pkt.seq, pkt.message.target)
            ),
        )
    rng = random.Random(seed)

    def burst():
        for _ in range(60):
            yield env.timeout(rng.randrange(0, 3000))
            src = rng.randrange(16)
            dst = rng.randrange(16)
            fabric.inject(Message(
                source=src, target=dst,
                length=rng.choice((0, 64, 4096, 9000, 20000)),
            ))

    env.process(burst())
    env.run()
    return deliveries, fabric.link_stats(env.now), fabric.total_link_drops()


class TestFastPathEquivalence:
    """Chain vs. generator walk: identical under randomized contention."""

    @pytest.mark.parametrize("topology_kind", ("xbar", "fattree"))
    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_randomized_contention_identical(self, topology_kind, seed):
        from repro.network.packets import reset_msg_ids

        reset_msg_ids()
        fast = _contended_run(True, topology_kind, seed)
        reset_msg_ids()
        slow = _contended_run(False, topology_kind, seed)
        assert fast == slow
        assert fast[2] > 0  # the pattern actually exercised tail-drop
