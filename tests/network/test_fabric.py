"""Tests for the packet-level fabric (timing and delivery semantics)."""

import numpy as np
import pytest

from repro.des import Environment, Timeline, ns
from repro.network import Fabric, LogGPParams, Message, NetworkParams, UniformLatency


def make_fabric(env, latency=ns(100), mtu=4096, g=ns(6.7), G=20, timeline=None):
    params = NetworkParams(loggp=LogGPParams(g_ps=g, G_ps_per_byte=G, mtu=mtu))
    return Fabric(env, UniformLatency(latency=latency), params, timeline=timeline)


def collect_rx(fabric, nid):
    received = []
    fabric.attach(nid, lambda pkt: received.append((fabric.env.now, pkt)))
    return received


class TestDelivery:
    def test_single_packet_arrival_time(self):
        env = Environment()
        fabric = make_fabric(env, latency=ns(100))
        rx = collect_rx(fabric, 1)
        fabric.attach(0, lambda p: None)
        msg = Message.from_bytes(0, 1, b"x" * 64)
        fabric.inject(msg)
        env.run()
        # serialization 64B*20ps = 1.28ns, then L = 100ns
        assert len(rx) == 1
        assert rx[0][0] == 64 * 20 + ns(100)

    def test_multi_packet_message_pipelining(self):
        env = Environment()
        fabric = make_fabric(env, latency=ns(100), mtu=1024)
        rx = collect_rx(fabric, 1)
        fabric.attach(0, lambda p: None)
        msg = Message(source=0, target=1, length=4096)
        fabric.inject(msg)
        env.run()
        assert len(rx) == 4
        ser = 1024 * 20  # per-packet serialization
        arrivals = [t for t, _ in rx]
        assert arrivals == [ser + ns(100) + i * ser for i in range(4)]
        # Packets arrive in order.
        assert [p.seq for _, p in rx] == [0, 1, 2, 3]

    def test_message_rate_gap_between_messages(self):
        env = Environment()
        fabric = make_fabric(env, latency=0, g=ns(1000), G=0)
        rx = collect_rx(fabric, 1)
        fabric.attach(0, lambda p: None)
        for _ in range(3):
            fabric.inject(Message(source=0, target=1, length=1))
        env.run()
        arrivals = [t for t, _ in rx]
        assert arrivals == [0, ns(1000), ns(2000)]

    def test_distinct_sources_do_not_serialize(self):
        env = Environment()
        fabric = make_fabric(env, latency=0, g=ns(1000), G=0)
        rx = collect_rx(fabric, 2)
        fabric.attach(0, lambda p: None)
        fabric.attach(1, lambda p: None)
        fabric.inject(Message(source=0, target=2, length=1))
        fabric.inject(Message(source=1, target=2, length=1))
        env.run()
        assert [t for t, _ in rx] == [0, 0]

    def test_loopback_zero_latency(self):
        env = Environment()
        fabric = make_fabric(env, latency=ns(500), G=0)
        rx = collect_rx(fabric, 0)
        fabric.inject(Message(source=0, target=0, length=1))
        env.run()
        assert rx[0][0] == 0

    def test_payload_travels_intact(self):
        env = Environment()
        fabric = make_fabric(env, mtu=16)
        rx = collect_rx(fabric, 1)
        fabric.attach(0, lambda p: None)
        data = np.arange(64, dtype=np.uint8)
        fabric.inject(Message.from_bytes(0, 1, data))
        env.run()
        got = np.concatenate([p.payload for _, p in rx])
        assert np.array_equal(got, data)


class TestErrorsAndEdge:
    def test_unattached_source_rejected(self):
        env = Environment()
        fabric = make_fabric(env)
        with pytest.raises(ValueError):
            fabric.inject(Message(source=9, target=1, length=1))

    def test_double_attach_rejected(self):
        env = Environment()
        fabric = make_fabric(env)
        fabric.attach(0, lambda p: None)
        with pytest.raises(ValueError):
            fabric.attach(0, lambda p: None)

    def test_detached_destination_drops_packets(self):
        env = Environment()
        fabric = make_fabric(env)
        fabric.attach(0, lambda p: None)
        rx = collect_rx(fabric, 1)
        fabric.detach(1)
        fabric.inject(Message(source=0, target=1, length=8))
        env.run()
        assert rx == []
        assert fabric.packets_delivered == 0
        assert fabric.packets_dropped == 1

    def test_detach_drop_accounting_per_packet(self):
        """Regression: detached-node losses used to vanish without a
        counter — every undeliverable packet must be accounted."""
        env = Environment()
        fabric = make_fabric(env, mtu=1024)
        fabric.attach(0, lambda p: None)
        collect_rx(fabric, 1)
        fabric.inject(Message(source=0, target=1, length=4096))
        # Detach mid-flight: all 4 packets are already on the wire.
        fabric.detach(1)
        env.run()
        assert fabric.packets_dropped == 4
        assert fabric.packets_delivered == 0
        # A healthy destination afterwards is unaffected.
        collect_rx(fabric, 2)
        fabric.inject(Message(source=0, target=2, length=4096))
        env.run()
        assert fabric.packets_delivered == 4
        assert fabric.packets_dropped == 4

    def test_counters(self):
        env = Environment()
        fabric = make_fabric(env, mtu=1024)
        collect_rx(fabric, 1)
        fabric.attach(0, lambda p: None)
        fabric.inject(Message(source=0, target=1, length=4096))
        env.run()
        assert fabric.messages_injected == 1
        assert fabric.packets_delivered == 4

    def test_timeline_spans_recorded(self):
        env = Environment()
        tl = Timeline()
        fabric = make_fabric(env, timeline=tl, mtu=1024)
        collect_rx(fabric, 1)
        fabric.attach(0, lambda p: None)
        fabric.inject(Message(source=0, target=1, length=2048))
        env.run()
        assert tl.busy_time(0, "NIC-tx") == 2048 * 20

    def test_inject_event_fires_at_tx_complete(self):
        env = Environment()
        fabric = make_fabric(env, latency=ns(1000), mtu=1024, g=0)
        collect_rx(fabric, 1)
        fabric.attach(0, lambda p: None)
        done = fabric.inject(Message(source=0, target=1, length=2048))
        result = env.run(until=done)
        # TX completes after serializing both packets, before arrival+latency.
        assert result == 2 * 1024 * 20


class TestDetachLeaks:
    def test_detach_removes_all_node_state(self):
        """Regression: detach used to pop only _rx, leaking the node's
        RateLimiter and wire Server forever."""
        env = Environment()
        fabric = make_fabric(env)
        for nid in range(3):
            fabric.attach(nid, lambda p: None)
        fabric.detach(1)
        assert 1 not in fabric._rx
        assert 1 not in fabric._msg_limiter
        assert 1 not in fabric._wire

    def test_attach_detach_cycles_do_not_grow_state(self):
        env = Environment()
        fabric = make_fabric(env)
        fabric.attach(0, lambda p: None)
        for _ in range(50):
            fabric.attach(7, lambda p: None)
            msg = Message(source=0, target=7, length=256)
            fabric.inject(msg)
            env.run()
            fabric.detach(7)
        assert len(fabric._rx) == 1
        assert len(fabric._msg_limiter) == 1
        assert len(fabric._wire) == 1

    def test_packets_to_detached_node_dropped_without_residue(self):
        env = Environment()
        fabric = make_fabric(env, latency=ns(100))
        fabric.attach(0, lambda p: None)
        seen = collect_rx(fabric, 1)
        msg = Message(source=0, target=1, length=8192)
        fabric.inject(msg)
        # Detach the destination while packets are on the wire.
        fabric.detach(1)
        env.run()
        assert seen == []
        assert fabric.packets_delivered == 0
        assert fabric.packets_dropped == 2
        assert 1 not in fabric._wire and 1 not in fabric._msg_limiter
