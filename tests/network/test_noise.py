"""Tests for the fixed-frequency noise model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network import FixedFrequencyNoise, NoNoise


class TestNoNoise:
    def test_identity(self):
        assert NoNoise().finish(100, 50) == 150
        assert NoNoise().overhead(100, 50) == 0

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            NoNoise().finish(0, -1)


class TestFixedFrequencyNoise:
    def test_work_between_windows_unaffected(self):
        noise = FixedFrequencyNoise(period_ps=1000, duration_ps=100)
        # Window [0,100); start right after it, finish before the next one.
        assert noise.finish(100, 800) == 900
        assert noise.overhead(100, 800) == 0

    def test_start_inside_window_waits(self):
        noise = FixedFrequencyNoise(period_ps=1000, duration_ps=100)
        assert noise.finish(50, 10) == 110  # blocked until 100, then 10 work

    def test_work_spanning_window_inflated(self):
        noise = FixedFrequencyNoise(period_ps=1000, duration_ps=100)
        # Start at 900, 200 of work: 100 until window at 1000, wait 100, 100 more.
        assert noise.finish(900, 200) == 1200
        assert noise.overhead(900, 200) == 100

    def test_multi_window_span(self):
        noise = FixedFrequencyNoise(period_ps=1000, duration_ps=100)
        # 2500 of work from 100 crosses windows at 1000 and 2000.
        assert noise.finish(100, 2500) == 100 + 2500 + 200

    def test_phase_shifts_windows(self):
        noise = FixedFrequencyNoise(period_ps=1000, duration_ps=100, phase_ps=500)
        assert noise.finish(0, 400) == 400  # window now at [500, 600)
        assert noise.finish(0, 600) == 700

    def test_zero_work_returns_start(self):
        noise = FixedFrequencyNoise(period_ps=1000, duration_ps=100)
        # No work means no delay, even when starting inside a noise window.
        assert noise.finish(50, 0) == 50

    def test_intensity(self):
        assert FixedFrequencyNoise(1000, 100).intensity == pytest.approx(0.1)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FixedFrequencyNoise(period_ps=0, duration_ps=0)
        with pytest.raises(ValueError):
            FixedFrequencyNoise(period_ps=100, duration_ps=100)

    @given(
        period=st.integers(min_value=10, max_value=10_000),
        frac=st.floats(min_value=0.0, max_value=0.9),
        start=st.integers(min_value=0, max_value=10_000),
        work=st.integers(min_value=0, max_value=100_000),
    )
    def test_finish_bounds(self, period, frac, start, work):
        """Noise can only delay, and the delay is bounded by intensity+1 window."""
        duration = int(period * frac)
        noise = FixedFrequencyNoise(period_ps=period, duration_ps=duration)
        finish = noise.finish(start, work)
        assert finish >= start + work
        # Worst case: each period supplies (period - duration) of progress,
        # so we hit at most ceil(work / available) + 1 windows.
        available = period - duration
        max_windows = -(-work // available) + 1 if work else 0
        assert finish <= start + work + max_windows * duration

    @given(
        start=st.integers(min_value=0, max_value=10**6),
        work=st.integers(min_value=0, max_value=10**6),
    )
    def test_monotonic_in_work(self, start, work):
        noise = FixedFrequencyNoise(period_ps=997, duration_ps=101)
        assert noise.finish(start, work + 13) >= noise.finish(start, work)
