"""Tests for network interfaces, portal table flow control, and NI limits."""

import numpy as np
import pytest

from repro.portals import (
    EventKind,
    EventQueue,
    MatchEntry,
    ME_MANAGE_LOCAL,
    ME_OP_PUT,
    NetworkInterface,
    NILimits,
    PortalsError,
)


class ArrayMemory:
    """Minimal host memory for deposit/fetch tests."""

    def __init__(self, size):
        self.data = np.zeros(size, dtype=np.uint8)

    def write(self, offset, data):
        self.data[offset : offset + len(data)] = data

    def read(self, offset, nbytes):
        return self.data[offset : offset + nbytes].copy()


class TestPortalTable:
    def test_alloc_and_duplicate_rejected(self):
        ni = NetworkInterface(nid=0)
        ni.pt_alloc(0)
        with pytest.raises(PortalsError):
            ni.pt_alloc(0)

    def test_unallocated_index_rejected(self):
        with pytest.raises(PortalsError):
            NetworkInterface(nid=0).pt(3)

    def test_match_routes_to_entry(self):
        ni = NetworkInterface(nid=0)
        ni.pt_alloc(0)
        ni.me_append(0, MatchEntry(match_bits=9, length=64))
        assert ni.match(0, initiator=1, match_bits=9).matched

    def test_failed_match_trips_flow_control(self):
        eq = EventQueue()
        ni = NetworkInterface(nid=0)
        ni.pt_alloc(0, eq=eq)
        res = ni.match(0, initiator=1, match_bits=9, length=100)
        assert not res.matched
        pt = ni.pt(0)
        assert not pt.enabled
        assert pt.dropped_messages == 1 and pt.dropped_bytes == 100
        ev = eq.poll()
        assert ev.kind == EventKind.PT_DISABLED

    def test_disabled_entry_drops_everything(self):
        ni = NetworkInterface(nid=0)
        ni.pt_alloc(0)
        ni.me_append(0, MatchEntry(match_bits=9, length=64))
        ni.pt(0).disable()
        assert not ni.match(0, initiator=1, match_bits=9).matched
        assert ni.pt(0).dropped_messages == 1
        ni.pt(0).enable()
        assert ni.match(0, initiator=1, match_bits=9).matched

    def test_disable_episode_raises_event_once(self):
        eq = EventQueue()
        ni = NetworkInterface(nid=0)
        ni.pt_alloc(0, eq=eq)
        pt = ni.pt(0)
        pt.disable()
        pt.disable()
        assert len(eq) == 1
        assert pt.disable_episodes == 1


class TestMELimits:
    def test_me_exhaustion(self):
        ni = NetworkInterface(nid=0, limits=NILimits(max_entries=2))
        ni.pt_alloc(0)
        ni.me_append(0, MatchEntry(length=1))
        ni.me_append(0, MatchEntry(length=1))
        with pytest.raises(PortalsError):
            ni.me_append(0, MatchEntry(length=1))

    def test_unlink_frees_slot(self):
        ni = NetworkInterface(nid=0, limits=NILimits(max_entries=1))
        ni.pt_alloc(0)
        me = ni.me_append(0, MatchEntry(length=1))
        ni.me_unlink(0, me)
        ni.me_append(0, MatchEntry(length=1))  # no longer raises


class TestDeposit:
    def test_deposit_and_fetch_round_trip(self):
        mem = ArrayMemory(256)
        ni = NetworkInterface(nid=0, memory=mem)
        ni.pt_alloc(0)
        me = ni.me_append(0, MatchEntry(match_bits=1, start=64, length=128))
        payload = np.arange(32, dtype=np.uint8)
        ni.deposit(me, offset=10, data=payload)
        assert np.array_equal(mem.data[74:106], payload)
        assert np.array_equal(ni.fetch(me, 10, 32), payload)

    def test_deposit_without_memory_is_noop(self):
        ni = NetworkInterface(nid=0)
        ni.pt_alloc(0)
        me = ni.me_append(0, MatchEntry(length=64))
        ni.deposit(me, 0, np.zeros(8, np.uint8))  # should not raise
        assert ni.fetch(me, 0, 8) is None

    def test_manage_local_deposits_pack(self):
        mem = ArrayMemory(256)
        ni = NetworkInterface(nid=0, memory=mem)
        ni.pt_alloc(0)
        me = ni.me_append(
            0, MatchEntry(options=ME_OP_PUT | ME_MANAGE_LOCAL, start=0, length=256)
        )
        for i in range(3):
            res = ni.match(0, initiator=0, match_bits=0, length=4)
            ni.deposit(res.entry, res.deposit_offset, np.full(4, i + 1, np.uint8))
        assert np.array_equal(
            mem.data[:12], np.repeat(np.array([1, 2, 3], np.uint8), 4)
        )


class TestNILimitsValidation:
    def test_defaults_valid(self):
        NILimits()

    def test_user_header_validation(self):
        limits = NILimits(max_user_hdr_size=16)
        limits.validate_user_header(16)
        with pytest.raises(PortalsError):
            limits.validate_user_header(17)

    def test_hpu_alloc_validation(self):
        limits = NILimits(max_handler_mem=1024, max_initial_state=512)
        limits.validate_hpu_alloc(1024)
        with pytest.raises(PortalsError):
            limits.validate_hpu_alloc(1025)

    def test_initial_state_cannot_exceed_handler_mem(self):
        with pytest.raises(PortalsError):
            NILimits(max_handler_mem=64, max_initial_state=128)

    def test_invalid_payload_size(self):
        with pytest.raises(PortalsError):
            NILimits(max_payload_size=0)
