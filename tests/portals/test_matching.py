"""Tests for masked matching, list discipline, and unexpected messages."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.portals import (
    ANY_SOURCE,
    MatchEntry,
    MatchList,
    ME_MANAGE_LOCAL,
    ME_NO_TRUNCATE,
    ME_OP_GET,
    ME_OP_PUT,
    ME_USE_ONCE,
    PortalsError,
)


class TestMatchEntryPredicates:
    def test_exact_bits(self):
        me = MatchEntry(match_bits=0xDEAD, length=64)
        assert me.matches(0, 0xDEAD, "put", 8)
        assert not me.matches(0, 0xBEEF, "put", 8)

    def test_ignore_bits_mask(self):
        me = MatchEntry(match_bits=0xAB00, ignore_bits=0x00FF, length=64)
        assert me.matches(0, 0xAB42, "put", 8)
        assert not me.matches(0, 0xAC42, "put", 8)

    def test_source_filter(self):
        me = MatchEntry(source=3, length=64)
        assert me.matches(3, 0, "put", 8)
        assert not me.matches(4, 0, "put", 8)
        assert MatchEntry(source=ANY_SOURCE, length=64).matches(7, 0, "put", 8)

    def test_operation_filter(self):
        put_me = MatchEntry(options=ME_OP_PUT, length=64)
        get_me = MatchEntry(options=ME_OP_GET, length=64)
        assert put_me.matches(0, 0, "put", 8) and not put_me.matches(0, 0, "get", 8)
        assert get_me.matches(0, 0, "get", 8) and not get_me.matches(0, 0, "put", 8)
        assert put_me.matches(0, 0, "atomic", 8)

    def test_no_truncate_rejects_oversized(self):
        me = MatchEntry(options=ME_OP_PUT | ME_NO_TRUNCATE, length=64)
        assert me.matches(0, 0, "put", 64)
        assert not me.matches(0, 0, "put", 65)

    def test_oversized_bits_rejected(self):
        with pytest.raises(PortalsError):
            MatchEntry(match_bits=1 << 64)

    def test_unlinked_never_matches(self):
        me = MatchEntry(length=64)
        me.unlinked = True
        assert not me.matches(0, 0, "put", 8)


class TestMatchList:
    def test_first_match_wins_in_append_order(self):
        ml = MatchList()
        first = MatchEntry(match_bits=7, user_ptr="first", length=64)
        second = MatchEntry(match_bits=7, user_ptr="second", length=64)
        ml.append(first)
        ml.append(second)
        assert ml.match(0, 7).entry.user_ptr == "first"

    def test_use_once_unlinks(self):
        ml = MatchList()
        ml.append(MatchEntry(match_bits=7, options=ME_OP_PUT | ME_USE_ONCE, length=64))
        res = ml.match(0, 7)
        assert res.matched and res.auto_unlinked
        assert len(ml) == 0
        assert not ml.match(0, 7).matched

    def test_persistent_entry_matches_repeatedly(self):
        ml = MatchList()
        ml.append(MatchEntry(match_bits=7, length=64))
        assert ml.match(0, 7).matched
        assert ml.match(0, 7).matched

    def test_manage_local_packs_offsets(self):
        ml = MatchList()
        ml.append(
            MatchEntry(match_bits=7, options=ME_OP_PUT | ME_MANAGE_LOCAL, length=100)
        )
        assert ml.match(0, 7, length=30).deposit_offset == 0
        assert ml.match(0, 7, length=30).deposit_offset == 30
        assert ml.match(0, 7, length=30).deposit_offset == 60

    def test_manage_local_unlinks_below_min_free(self):
        ml = MatchList()
        ml.append(
            MatchEntry(
                match_bits=7,
                options=ME_OP_PUT | ME_MANAGE_LOCAL,
                length=100,
                min_free=50,
            )
        )
        res = ml.match(0, 7, length=60)  # leaves 40 < min_free
        assert res.matched and res.auto_unlinked
        assert len(ml) == 0

    def test_manage_local_rejects_overflow_fill(self):
        ml = MatchList()
        ml.append(MatchEntry(match_bits=7, options=ME_OP_PUT | ME_MANAGE_LOCAL, length=100))
        assert ml.match(0, 7, length=101).matched is False

    def test_overflow_fallthrough_records_unexpected(self):
        ml = MatchList()
        ml.append(MatchEntry(match_bits=7, length=64))  # priority, wrong bits
        bounce = MatchEntry(
            match_bits=0, ignore_bits=(1 << 64) - 1,
            options=ME_OP_PUT | ME_MANAGE_LOCAL, length=4096,
        )
        ml.append(bounce, overflow=True)
        res = ml.match(5, 99, length=32)
        assert res.matched and res.list_name == "overflow"
        assert len(ml.unexpected) == 1
        hdr = ml.unexpected[0]
        assert hdr.initiator == 5 and hdr.match_bits == 99 and hdr.length == 32

    def test_no_match_at_all(self):
        ml = MatchList()
        res = ml.match(0, 7)
        assert not res.matched and res.list_name == "none"

    def test_unlink_absent_entry_raises(self):
        ml = MatchList()
        with pytest.raises(PortalsError):
            ml.unlink(MatchEntry())

    def test_search_unexpected_consumes_oldest_match(self):
        ml = MatchList()
        bounce = MatchEntry(
            match_bits=0, ignore_bits=(1 << 64) - 1,
            options=ME_OP_PUT | ME_MANAGE_LOCAL, length=4096,
        )
        ml.append(bounce, overflow=True)
        ml.match(1, 42, length=8)
        ml.match(2, 42, length=8)
        first = ml.search_unexpected(match_bits=42)
        assert first.initiator == 1 and first.consumed
        second = ml.search_unexpected(match_bits=42)
        assert second.initiator == 2
        assert ml.search_unexpected(match_bits=42) is None

    def test_search_unexpected_with_source(self):
        ml = MatchList()
        bounce = MatchEntry(
            match_bits=0, ignore_bits=(1 << 64) - 1,
            options=ME_OP_PUT | ME_MANAGE_LOCAL, length=4096,
        )
        ml.append(bounce, overflow=True)
        ml.match(1, 42, length=8)
        assert ml.search_unexpected(match_bits=42, source=9) is None
        assert ml.search_unexpected(match_bits=42, source=1) is not None


class TestMatchingProperties:
    @given(
        match_bits=st.integers(min_value=0, max_value=(1 << 64) - 1),
        ignore_bits=st.integers(min_value=0, max_value=(1 << 64) - 1),
        probe=st.integers(min_value=0, max_value=(1 << 64) - 1),
    )
    def test_masked_match_reference_semantics(self, match_bits, ignore_bits, probe):
        """ME matching equals the spec formula (bits ^ probe) & ~ignore == 0."""
        me = MatchEntry(match_bits=match_bits, ignore_bits=ignore_bits, length=1 << 30)
        expected = ((match_bits ^ probe) & ~ignore_bits & ((1 << 64) - 1)) == 0
        assert me.matches(0, probe, "put", 1) == expected

    @given(lengths=st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=20))
    def test_manage_local_offsets_are_prefix_sums(self, lengths):
        total = sum(lengths)
        ml = MatchList()
        ml.append(MatchEntry(options=ME_OP_PUT | ME_MANAGE_LOCAL, length=total))
        offsets = [ml.match(0, 0, length=n).deposit_offset for n in lengths]
        prefix = 0
        for length, offset in zip(lengths, offsets):
            assert offset == prefix
            prefix += length
